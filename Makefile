# Development entry points. `make check` is the tier-1 gate plus vet, the
# race detector (the obs registry and middleware must stay clean under
# it) and the spartanvet lint suite (see docs/DEVELOPMENT.md).

GO ?= go

.PHONY: check vet lint build test race bench bench-json benchdiff bin sarif sarifdiff

check: vet build race lint

vet:
	$(GO) vet ./...

# The lint tool is a real file target: it only rebuilds when its sources
# (the driver, the analysis framework, or any analyzer — fixtures under
# testdata excluded) change, so a no-op `make lint` costs one `go vet`
# cache probe instead of a full tool build.
SPARTANVET_SRCS := $(shell find cmd/spartanvet internal/analysis -name '*.go' -not -path '*/testdata/*') go.mod

bin/spartanvet: $(SPARTANVET_SRCS)
	$(GO) build -o $@ ./cmd/spartanvet

# lint runs the project's domain-aware analyzers (internal/analysis)
# through the standard vet driver; any finding fails the target.
lint: bin/spartanvet
	$(GO) vet -vettool=$(CURDIR)/bin/spartanvet ./...

# sarif aggregates the whole module into one SARIF 2.1.0 log for GitHub
# code scanning; it reports rather than gates (exit 0 on findings), but
# the emitted log must pass the strict validator before anyone uploads
# or diffs it.
sarif: bin/spartanvet
	./bin/spartanvet -sarif ./... > spartanvet.sarif
	./bin/spartanvet -sarifvalidate spartanvet.sarif

# sarifdiff is the local equivalent of CI's PR gate: build BASE's report
# with BASE's own tool in a throwaway worktree, build the working tree's
# report, and fail (exit 2) on findings that are new here. Pre-existing
# findings on BASE never block.
BASE ?= origin/main
sarifdiff: bin/spartanvet sarif
	rm -rf .sarif-base
	git worktree add --force --detach .sarif-base $(BASE)
	$(MAKE) -C .sarif-base sarif
	./bin/spartanvet -sarifdiff .sarif-base/spartanvet.sarif spartanvet.sarif; \
	status=$$?; git worktree remove --force .sarif-base; exit $$status

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-json records one BENCH_<n>.json trajectory snapshot (auto-numbered
# under BENCH_DIR); benchdiff gates NEW against OLD the way CI does.
# See docs/OBSERVABILITY.md for the schema and the before/after workflow.
BENCH_ROWS ?= 4000
BENCH_REPS ?= 3
BENCH_DIR ?= .
bench-json:
	$(GO) run ./cmd/spartanbench perf -rows $(BENCH_ROWS) -reps $(BENCH_REPS) -dir $(BENCH_DIR)

# OLD defaults to the newest snapshot committed to git (the recorded
# baseline), so `make benchdiff NEW=BENCH_2.json` gates against the
# trajectory without spelling out which point.
OLD ?= $(shell git ls-files 'BENCH_*.json' | sort -V | tail -1)
benchdiff:
	$(GO) run ./cmd/spartanbench diff $(OLD) $(NEW)

bin:
	$(GO) build -o bin/ ./cmd/...
