# Development entry points. `make check` is the tier-1 gate plus vet, the
# race detector (the obs registry and middleware must stay clean under
# it) and the spartanvet lint suite (see docs/DEVELOPMENT.md).

GO ?= go

.PHONY: check vet lint build test race bench bin

check: vet build race lint

vet:
	$(GO) vet ./...

# lint runs the project's domain-aware analyzers (internal/analysis)
# through the standard vet driver; any finding fails the target.
lint:
	$(GO) build -o bin/spartanvet ./cmd/spartanvet
	$(GO) vet -vettool=$(CURDIR)/bin/spartanvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

bin:
	$(GO) build -o bin/ ./cmd/...
