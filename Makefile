# Development entry points. `make check` is the tier-1 gate plus vet and
# the race detector (the obs registry and middleware must stay clean
# under it).

GO ?= go

.PHONY: check vet build test race bench bin

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

bin:
	$(GO) build -o bin/ ./cmd/...
