package spartan

import (
	"context"
	"io"

	"repro/internal/archive"
)

// Segmented archives: tables far larger than memory compress in bounded
// space by splitting rows into segments, each independently semantically
// compressed (concurrently, on a bounded worker pool). The archive's
// footer records per-segment byte extents, row counts and zone maps, so
// seekable readers decode segments on demand and queries skip segments
// their predicate provably excludes.

// ArchiveWriter appends independently compressed segments to a stream.
type ArchiveWriter = archive.Writer

// ArchiveReader iterates the segments of an archive as a forward-only
// stream (both the current v2 format and legacy v1 archives).
type ArchiveReader = archive.Reader

// Archive reads a v2 archive through its footer: segments decode on
// demand, and Query prunes segments via zone maps.
type Archive = archive.SegReader

// SegmentOptions shapes how CompressArchive splits rows into segments
// and schedules the parallel compression.
type SegmentOptions = archive.SegmentOptions

// ArchiveStats aggregates per-segment compression statistics.
type ArchiveStats = archive.TableStats

// ArchiveQueryStats reports how much decoding a query's zone-map
// pruning saved.
type ArchiveQueryStats = archive.QueryStats

// FramingError reports a segment whose codec stream did not fill its
// declared frame length.
type FramingError = archive.FramingError

// ErrEmptyArchive is returned when reading a structurally valid archive
// that contains zero segments; test for it with errors.Is.
var ErrEmptyArchive = archive.ErrEmptyArchive

// DefaultSegmentRows is the segment size used when SegmentOptions
// leaves SegmentRows zero.
const DefaultSegmentRows = archive.DefaultSegmentRows

// NewArchiveWriter starts an archive on w; the options apply to every
// segment (prefer absolute tolerances so all segments enforce one
// bound). Use CompressArchive to split and compress a whole table in
// parallel instead of framing segments by hand.
func NewArchiveWriter(w io.Writer, opts Options) (*ArchiveWriter, error) {
	return archive.NewWriter(w, opts)
}

// NewArchiveReader opens an archive for segment-at-a-time streaming.
func NewArchiveReader(r io.Reader) (*ArchiveReader, error) {
	return archive.NewReader(r)
}

// ReadArchive decompresses a whole archive into one table (rows in
// segment order).
func ReadArchive(r io.Reader) (*Table, error) {
	return archive.ReadAll(r)
}

// CompressArchive splits t into row segments and writes a segmented
// archive to w, compressing segments concurrently. The output bytes do
// not depend on the worker count.
func CompressArchive(w io.Writer, t *Table, opts Options, seg SegmentOptions) (*ArchiveStats, error) {
	return archive.WriteTable(w, t, opts, seg)
}

// CompressArchiveContext is CompressArchive with cancellation.
func CompressArchiveContext(ctx context.Context, w io.Writer, t *Table, opts Options, seg SegmentOptions) (*ArchiveStats, error) {
	return archive.WriteTableContext(ctx, w, t, opts, seg)
}

// OpenArchive parses the footer of a seekable v2 archive for on-demand
// segment access and zone-map-pruned queries.
func OpenArchive(r io.ReadSeeker) (*Archive, error) {
	return archive.OpenSegmented(r)
}

// QueryArchive runs q against an opened archive, decoding only the
// segments whose zone maps cannot refute the predicate. The result is
// identical to decompressing the whole archive and running the query
// over it.
func QueryArchive(a *Archive, tol Tolerances, q Query) (*QueryResult, *ArchiveQueryStats, error) {
	return a.Query(tol, q)
}
