package spartan

import (
	"io"

	"repro/internal/archive"
)

// Block archives: tables far larger than memory compress in bounded space
// by feeding rows in blocks, each independently semantically compressed.

// ArchiveWriter appends independently compressed blocks to a stream.
type ArchiveWriter = archive.Writer

// ArchiveReader iterates the blocks of an archive.
type ArchiveReader = archive.Reader

// NewArchiveWriter starts an archive on w; the options apply to every
// block (prefer absolute tolerances so all blocks enforce one bound).
func NewArchiveWriter(w io.Writer, opts Options) (*ArchiveWriter, error) {
	return archive.NewWriter(w, opts)
}

// NewArchiveReader opens an archive for block-at-a-time reading.
func NewArchiveReader(r io.Reader) (*ArchiveReader, error) {
	return archive.NewReader(r)
}

// ReadArchive decompresses a whole archive into one table (rows in block
// order).
func ReadArchive(r io.Reader) (*Table, error) {
	return archive.ReadAll(r)
}
