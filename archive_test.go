package spartan

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"repro/internal/datagen"
)

// TestArchiveRoundTripToleranceRespected drives the public archive API
// end to end: blocks in, one table out, every numeric value within the
// tolerance it was compressed under.
func TestArchiveRoundTripToleranceRespected(t *testing.T) {
	tb := datagen.CDR(3000, 9)
	// Absolute tolerances so every block enforces the same bound.
	tol := make(Tolerances, tb.NumCols())
	for i := 0; i < tb.NumCols(); i++ {
		if tb.Attr(i).Kind == Numeric {
			tol[i] = Tolerance{Value: 0.01 * tb.Col(i).Range()}
		}
	}

	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf, Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	const blockRows = 800
	for lo := 0; lo < tb.NumRows(); lo += blockRows {
		hi := lo + blockRows
		if hi > tb.NumRows() {
			hi = tb.NumRows()
		}
		rows := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, r)
		}
		block, err := tb.SelectRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := aw.WriteBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	if aw.Blocks() != 4 {
		t.Fatalf("blocks = %d, want 4", aw.Blocks())
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := ReadArchive(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), tb.NumRows())
	}
	// Verify checks every value against the tolerance vector; do a direct
	// spot check of the max deviation as well so a Verify regression
	// cannot mask a bound violation here.
	if err := Verify(tb, back, tol); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < tb.NumCols(); c++ {
		if tb.Attr(c).Kind != Numeric {
			continue
		}
		worst := 0.0
		for r := 0; r < tb.NumRows(); r++ {
			worst = math.Max(worst, math.Abs(tb.Float(r, c)-back.Float(r, c)))
		}
		if worst > tol[c].Value+1e-9 {
			t.Errorf("column %s: max deviation %g exceeds tolerance %g",
				tb.Attr(c).Name, worst, tol[c].Value)
		}
	}
}

// TestArchiveReaderStreamsBlocks reads the archive block by block via
// the public reader and checks the stream terminates cleanly.
func TestArchiveReaderStreamsBlocks(t *testing.T) {
	tb := datagen.CDR(1200, 5)
	var buf bytes.Buffer
	aw, err := NewArchiveWriter(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half := tb.NumRows() / 2
	for _, bounds := range [][2]int{{0, half}, {half, tb.NumRows()}} {
		rows := make([]int, 0, bounds[1]-bounds[0])
		for r := bounds[0]; r < bounds[1]; r++ {
			rows = append(rows, r)
		}
		block, err := tb.SelectRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := aw.WriteBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	ar, err := NewArchiveReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	blocks := 0
	for {
		block, err := ar.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		blocks++
		rows += block.NumRows()
	}
	if blocks != 2 || rows != tb.NumRows() {
		t.Errorf("streamed %d blocks / %d rows, want 2 / %d", blocks, rows, tb.NumRows())
	}
}
