package spartan

// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// table/figure, plus raw compress/decompress throughput and the ablation
// benches DESIGN.md calls out. Compression ratios are reported as custom
// metrics so `go test -bench` output doubles as the experiment record;
// cmd/spartanbench produces the same numbers in tabular form at larger
// scale.

import (
	"testing"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/table"
)

// benchRows keeps every benchmark iteration under ~a second; the
// spartanbench command runs the same experiments at the (larger) default
// scales.
const benchRows = 4000

// --- Figure 5: compression ratio vs error threshold, per dataset ---------

func benchmarkFig5(b *testing.B, d experiments.Dataset, frac float64) {
	t, err := d.Load(benchRows, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	var last *experiments.Measurement
	for i := 0; i < b.N; i++ {
		m, err := experiments.MeasureTable(t, d, frac)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(last.Gzip.Ratio, "gzip-ratio")
	b.ReportMetric(last.Fascicles.Ratio, "fascicle-ratio")
	b.ReportMetric(last.Spartan.Ratio, "spartan-ratio")
}

func BenchmarkFig5CorelLowTolerance(b *testing.B)   { benchmarkFig5(b, experiments.Corel, 0.01) }
func BenchmarkFig5CorelHighTolerance(b *testing.B)  { benchmarkFig5(b, experiments.Corel, 0.10) }
func BenchmarkFig5ForestLowTolerance(b *testing.B)  { benchmarkFig5(b, experiments.ForestCover, 0.01) }
func BenchmarkFig5ForestHighTolerance(b *testing.B) { benchmarkFig5(b, experiments.ForestCover, 0.10) }
func BenchmarkFig5CensusLowTolerance(b *testing.B)  { benchmarkFig5(b, experiments.Census, 0.01) }
func BenchmarkFig5CensusHighTolerance(b *testing.B) { benchmarkFig5(b, experiments.Census, 0.10) }

// --- Figure 6(a): compression ratio vs sample size ------------------------

func benchmarkFig6aSample(b *testing.B, sampleBytes int) {
	t, err := experiments.ForestCover.Load(benchRows, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		Tolerances:  table.UniformTolerances(t, 0.01, 0),
		SampleBytes: sampleBytes,
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunSpartan(t, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "spartan-ratio")
}

func BenchmarkFig6aSample25KB(b *testing.B)  { benchmarkFig6aSample(b, 25<<10) }
func BenchmarkFig6aSample50KB(b *testing.B)  { benchmarkFig6aSample(b, 50<<10) }
func BenchmarkFig6aSample100KB(b *testing.B) { benchmarkFig6aSample(b, 100<<10) }
func BenchmarkFig6aSample200KB(b *testing.B) { benchmarkFig6aSample(b, 200<<10) }

// --- Figure 6(b): running time vs error threshold -------------------------

func benchmarkFig6bTolerance(b *testing.B, frac float64) {
	t, err := experiments.Census.Load(benchRows, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Tolerances: table.UniformTolerances(t, frac, 0)}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.RunSpartan(t, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bTolerance05pct(b *testing.B) { benchmarkFig6bTolerance(b, 0.005) }
func BenchmarkFig6bTolerance1pct(b *testing.B)  { benchmarkFig6bTolerance(b, 0.01) }
func BenchmarkFig6bTolerance5pct(b *testing.B)  { benchmarkFig6bTolerance(b, 0.05) }
func BenchmarkFig6bTolerance10pct(b *testing.B) { benchmarkFig6bTolerance(b, 0.10) }

// --- Figure 6(c): running time vs sample size is the timing view of the
// Fig6aSample* benchmarks above (ns/op vs sample size).

// --- Table 1: CaRT-selection algorithms -----------------------------------

func benchmarkTable1(b *testing.B, strat core.SelectionStrategy) {
	t, err := experiments.Census.Load(benchRows, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{
		Tolerances: table.UniformTolerances(t, 0.01, 0),
		Selection:  strat,
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	var carts int
	for i := 0; i < b.N; i++ {
		res, stats, err := experiments.RunSpartan(t, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio, carts = res.Ratio, stats.CartsBuilt
	}
	b.ReportMetric(ratio, "spartan-ratio")
	b.ReportMetric(float64(carts), "carts")
}

func BenchmarkTable1Greedy(b *testing.B)     { benchmarkTable1(b, core.SelectGreedy) }
func BenchmarkTable1WMISParent(b *testing.B) { benchmarkTable1(b, core.SelectWMISParents) }
func BenchmarkTable1WMISMarkov(b *testing.B) { benchmarkTable1(b, core.SelectWMISMarkov) }

// --- Core throughput -------------------------------------------------------

func BenchmarkCompressCDR(b *testing.B) {
	t := datagen.CDR(benchRows, 1)
	opts := Options{Tolerances: UniformTolerances(t, 0.01, 0)}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressBytes(t, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressCDR(b *testing.B) {
	t := datagen.CDR(benchRows, 1)
	data, _, err := CompressBytes(t, Options{Tolerances: UniformTolerances(t, 0.01, 0)})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (§3.3, §4.2 and DESIGN.md §8) ------------------------------

// BenchmarkAblationPruneIntegrated/After reproduce the paper's finding
// that integrating pruning into tree growth cuts CaRT build time (§4.2
// reports ~25%).
func benchmarkPruneMode(b *testing.B, mode cart.PruneMode) {
	t := datagen.Corel(benchRows, 1)
	opts := core.Options{
		Tolerances: table.UniformTolerances(t, 0.01, 0),
		Prune:      mode,
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunSpartan(t, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "spartan-ratio")
}

func BenchmarkAblationPruneIntegrated(b *testing.B) { benchmarkPruneMode(b, cart.PruneIntegrated) }
func BenchmarkAblationPruneAfter(b *testing.B)      { benchmarkPruneMode(b, cart.PruneAfter) }

// BenchmarkAblationRowAgg{On,Off} isolate the RowAggregator's contribution.
func benchmarkRowAgg(b *testing.B, disable bool) {
	t := datagen.CDR(benchRows, 1)
	opts := core.Options{
		Tolerances:            table.UniformTolerances(t, 0.05, 0),
		DisableRowAggregation: disable,
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RunSpartan(t, opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Ratio
	}
	b.ReportMetric(ratio, "spartan-ratio")
}

func BenchmarkAblationRowAggOn(b *testing.B)  { benchmarkRowAgg(b, false) }
func BenchmarkAblationRowAggOff(b *testing.B) { benchmarkRowAgg(b, true) }
