// Command datagen emits the synthetic evaluation datasets (stand-ins for
// the paper's Census / Corel / Forest-cover tables, plus the CDR table of
// the paper's motivating example) as CSV or raw binary.
//
// Usage:
//
//	datagen -dataset census -rows 30000 -out census.csv [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "", "census, corel, forest or cdr")
	rows := flag.Int("rows", 10000, "number of rows")
	out := flag.String("out", "", "output file (.csv or raw binary)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()
	if err := run(*dataset, *rows, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, rows int, out string, seed int64) error {
	if dataset == "" || out == "" {
		return fmt.Errorf("-dataset and -out are required")
	}
	if rows <= 0 {
		return fmt.Errorf("-rows must be positive")
	}
	var t *spartan.Table
	switch dataset {
	case "census":
		t = datagen.Census(rows, seed)
	case "corel":
		t = datagen.Corel(rows, seed)
	case "forest":
		t = datagen.ForestCover(rows, seed)
	case "cdr":
		t = datagen.CDR(rows, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want census, corel, forest or cdr)", dataset)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(out), ".csv") {
		if err := spartan.WriteCSV(f, t); err != nil {
			return err
		}
	} else if err := spartan.WriteBinary(f, t); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d rows, %d attributes, raw %d B\n",
		out, t.NumRows(), t.NumCols(), t.RawSizeBytes())
	return nil
}
