package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestRunWritesAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, ds := range []string{"census", "corel", "forest", "cdr"} {
		out := filepath.Join(dir, ds+".bin")
		if err := run(ds, 200, out, 1); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := spartan.ReadBinary(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if tb.NumRows() != 200 {
			t.Errorf("%s: rows = %d", ds, tb.NumRows())
		}
	}
	// CSV output too.
	csvOut := filepath.Join(dir, "c.csv")
	if err := run("cdr", 50, csvOut, 1); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(csvOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := spartan.ReadCSV(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", 10, filepath.Join(dir, "x"), 1); err == nil {
		t.Error("accepted empty dataset")
	}
	if err := run("cdr", 10, "", 1); err == nil {
		t.Error("accepted empty output")
	}
	if err := run("cdr", 0, filepath.Join(dir, "x"), 1); err == nil {
		t.Error("accepted zero rows")
	}
	if err := run("mystery", 10, filepath.Join(dir, "x"), 1); err == nil {
		t.Error("accepted unknown dataset")
	}
}
