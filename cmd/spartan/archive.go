package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"repro"
)

// archiveMagic mirrors internal/archive's stream magic for auto-detection.
const archiveMagic = "SPARC1\n"

// readCompressedFile decompresses either a single-stream file or a block
// archive, detected by magic.
func readCompressedFile(path string) (*spartan.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(archiveMagic))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.Equal(head, []byte(archiveMagic)) {
		return spartan.ReadArchive(br)
	}
	return spartan.Decompress(br)
}

// writeBlocks slices t into blockRows-sized row blocks and writes an
// archive.
func writeBlocks(w io.Writer, t *spartan.Table, opts spartan.Options, blockRows int) error {
	aw, err := spartan.NewArchiveWriter(w, opts)
	if err != nil {
		return err
	}
	for lo := 0; lo < t.NumRows(); lo += blockRows {
		hi := lo + blockRows
		if hi > t.NumRows() {
			hi = t.NumRows()
		}
		rows := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, r)
		}
		block, err := t.SelectRows(rows)
		if err != nil {
			return err
		}
		stats, err := aw.WriteBlock(block)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "block %d: %d rows, ratio %.4f\n",
			aw.Blocks(), block.NumRows(), stats.Ratio)
	}
	return aw.Close()
}
