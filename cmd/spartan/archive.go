package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"repro"
)

// Archive magics mirrored from internal/archive for auto-detection.
const (
	archiveMagicV1 = "SPARC1\n"
	archiveMagicV2 = "SPARC2\n"
)

// readCompressedFile decompresses either a single-stream file or a
// segmented archive (v1 or v2), detected by magic.
func readCompressedFile(path string) (*spartan.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(archiveMagicV2))
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.Equal(head, []byte(archiveMagicV1)) || bytes.Equal(head, []byte(archiveMagicV2)) {
		return spartan.ReadArchive(br)
	}
	return spartan.Decompress(br)
}

// errNotSegmented reports that a file is not a seekable v2 archive;
// callers fall back to whole-stream decompression.
var errNotSegmented = errors.New("not a segmented v2 archive")

// openArchiveFile opens path as a seekable v2 archive, or returns
// errNotSegmented when the file is some other format. The archive owns
// the underlying file: the caller's Close on the archive closes it.
func openArchiveFile(path string) (*spartan.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	head := make([]byte, len(archiveMagicV2))
	if _, err := io.ReadFull(f, head); err != nil || !bytes.Equal(head, []byte(archiveMagicV2)) {
		_ = f.Close()
		return nil, errNotSegmented
	}
	a, err := spartan.OpenArchive(f)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return a, nil
}

// writeSegmented compresses t into a segmented archive, reporting
// per-segment and total statistics on stderr.
func writeSegmented(w io.Writer, t *spartan.Table, opts spartan.Options, seg spartan.SegmentOptions) error {
	stats, err := spartan.CompressArchive(w, t, opts, seg)
	if err != nil {
		return err
	}
	for i, s := range stats.PerSegment {
		fmt.Fprintf(os.Stderr, "segment %d: ratio %.4f (%d outliers)\n", i, s.Ratio, s.Outliers)
	}
	fmt.Fprintf(os.Stderr, "archive: %d segments, %d rows, %d B (ratio %.4f)\n",
		stats.Segments, stats.Rows, stats.CompressedBytes, stats.Ratio)
	return nil
}
