package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/bayesnet"
	"repro/internal/table"
)

// cmdDeps runs only the DependencyFinder and prints the inferred Bayesian
// network, optionally as Graphviz DOT:
//
//	spartan deps -in data.csv [-sample 51200] [-dot]
func cmdDeps(args []string) error {
	fs := flag.NewFlagSet("deps", flag.ExitOnError)
	in := fs.String("in", "", "input table (.csv or raw binary)")
	sample := fs.Int("sample", 50<<10, "sample size in bytes")
	seed := fs.Int64("seed", 1, "sampling seed")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	forceCat := fs.String("categorical", "", "comma-separated CSV columns to force categorical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("deps: -in is required")
	}
	t, err := readTableForced(*in, *forceCat)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	s := t.SampleBytes(*sample, rng)
	net, err := bayesnet.Build(s, bayesnet.Config{MaxParents: 6})
	if err != nil {
		return err
	}
	if *dot {
		printDOT(net, t)
		return nil
	}
	fmt.Printf("Bayesian network over %d attributes (%d edges, %d-row sample):\n\n",
		net.NumNodes(), net.NumEdges(), s.NumRows())
	for _, v := range net.TopoOrder() {
		parents := net.Parents(v)
		if len(parents) == 0 {
			fmt.Printf("  %-24s (root)\n", net.Name(v))
			continue
		}
		fmt.Printf("  %-24s <-", net.Name(v))
		for _, p := range parents {
			fmt.Printf(" %s", net.Name(p))
		}
		fmt.Println()
	}
	return nil
}

func printDOT(net *bayesnet.Network, t *table.Table) {
	fmt.Println("digraph dependencies {")
	fmt.Println("  rankdir=LR;")
	for i := 0; i < net.NumNodes(); i++ {
		shape := "ellipse"
		if t.Attr(i).Kind == table.Categorical {
			shape = "box"
		}
		fmt.Printf("  %q [shape=%s];\n", net.Name(i), shape)
	}
	for _, e := range net.Edges() {
		fmt.Printf("  %q -> %q;\n", net.Name(e[0]), net.Name(e[1]))
	}
	fmt.Println("}")
}
