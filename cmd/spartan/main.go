// Command spartan compresses, decompresses, verifies and inspects tables
// with the SPARTAN model-based semantic compressor.
//
// Usage:
//
//	spartan compress   -in data.csv -out data.sptn [flags]
//	spartan decompress -in data.sptn -out data.csv
//	spartan verify     -original data.csv -compressed data.sptn [flags]
//	spartan inspect    -in data.sptn
//
// Table files ending in .csv are parsed as CSV with a header row; any
// other extension is treated as the raw fixed-record binary format.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "decompress":
		err = cmdDecompress(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "deps":
		err = cmdDeps(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "spartan: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spartan:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: spartan <command> [flags]

commands:
  compress    semantically compress a table within error tolerances
  decompress  reconstruct a table from a compressed stream
  verify      check a compressed stream against the original's tolerances
  inspect     summarize a compressed stream
  query       run a bounded approximate aggregate on a compressed stream
  deps        show the inferred Bayesian dependency network for a table

run 'spartan <command> -h' for command flags
`)
}

// compressionFlags registers the shared compression knobs.
func compressionFlags(fs *flag.FlagSet) (tol, catTol *float64, sample *int, sel *string, theta *float64, noRowAgg *bool, seed *int64) {
	tol = fs.Float64("tolerance", 0, "numeric error tolerance as a fraction of each attribute's value range (0 = lossless)")
	catTol = fs.Float64("cat-tolerance", 0, "categorical mismatch probability tolerance")
	sample = fs.Int("sample", 50<<10, "model-inference sample size in bytes")
	sel = fs.String("selection", "wmis-parents", "CaRT selection: wmis-parents, wmis-markov or greedy")
	theta = fs.Float64("theta", 2, "greedy selection benefit threshold")
	noRowAgg = fs.Bool("no-rowagg", false, "disable the fascicle RowAggregator pass")
	seed = fs.Int64("seed", 1, "sampling seed")
	return
}

func selectionFromName(name string) (spartan.SelectionStrategy, error) {
	switch name {
	case "wmis-parents":
		return spartan.SelectWMISParents, nil
	case "wmis-markov":
		return spartan.SelectWMISMarkov, nil
	case "greedy":
		return spartan.SelectGreedy, nil
	default:
		return 0, fmt.Errorf("unknown selection %q (want wmis-parents, wmis-markov or greedy)", name)
	}
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "", "input table (.csv or raw binary)")
	out := fs.String("out", "", "output compressed file")
	quiet := fs.Bool("q", false, "suppress the statistics report")
	trace := fs.Bool("trace", false, "print the per-phase pipeline span tree (paper §4.2 running-time breakdown)")
	segRows := fs.Int("segment-rows", 0, "write a segmented archive with this many rows per segment (0 = single stream)")
	blockRows := fs.Int("block-rows", 0, "deprecated synonym for -segment-rows")
	workers := fs.Int("workers", 0, "segments compressed concurrently (0 = GOMAXPROCS; output bytes are identical at any setting)")
	forceCat := fs.String("categorical", "", "comma-separated CSV columns to force categorical (numeric-looking codes)")
	tol, catTol, sample, sel, theta, noRowAgg, seed := compressionFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("compress: -in and -out are required")
	}
	t, err := readTableForced(*in, *forceCat)
	if err != nil {
		return err
	}
	strategy, err := selectionFromName(*sel)
	if err != nil {
		return err
	}
	opts := spartan.Options{
		Tolerances:            spartan.UniformTolerances(t, *tol, *catTol),
		SampleBytes:           *sample,
		Selection:             strategy,
		Theta:                 *theta,
		DisableRowAggregation: *noRowAgg,
		Seed:                  *seed,
	}
	var tr *spartan.Trace
	if *trace {
		tr = spartan.NewTrace("compress " + *in)
		tr.CaptureResources()
		opts.Trace = tr
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	if *segRows == 0 {
		*segRows = *blockRows
	}
	if *segRows > 0 {
		seg := spartan.SegmentOptions{SegmentRows: *segRows, Workers: *workers}
		if err := writeSegmented(f, t, opts, seg); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Segment mode reuses one trace: the tree shows every segment's spans.
		tr.WriteTree(os.Stdout)
		return nil
	}
	stats, err := spartan.Compress(f, t, opts)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !*quiet {
		printStats(stats, time.Since(start))
	}
	tr.WriteTree(os.Stdout)
	return nil
}

func printStats(s *spartan.Stats, elapsed time.Duration) {
	fmt.Printf("raw           %12d B\n", s.RawBytes)
	fmt.Printf("compressed    %12d B   (ratio %.4f)\n", s.CompressedBytes, s.Ratio)
	fmt.Printf("  header      %12d B\n", s.HeaderBytes)
	fmt.Printf("  models      %12d B   (%d CaRTs, %d outliers)\n",
		s.ModelBytes, len(s.Predicted), s.Outliers)
	fmt.Printf("  T'          %12d B   (%d fascicles)\n", s.TPrimeBytes, s.Fascicles)
	fmt.Printf("predicted     %s\n", strings.Join(s.Predicted, ", "))
	fmt.Printf("materialized  %s\n", strings.Join(s.Materialized, ", "))
	fmt.Printf("carts built   %d\n", s.CartsBuilt)
	fmt.Printf("time          %v (deps %v, select %v, outliers %v, rowagg %v, encode %v)\n",
		elapsed.Round(time.Millisecond),
		s.Timings.DependencyFinder.Round(time.Millisecond),
		s.Timings.CaRTSelection.Round(time.Millisecond),
		s.Timings.OutlierScan.Round(time.Millisecond),
		s.Timings.RowAggregation.Round(time.Millisecond),
		s.Timings.Encode.Round(time.Millisecond))
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("decompress", flag.ExitOnError)
	in := fs.String("in", "", "input compressed file")
	out := fs.String("out", "", "output table (.csv or raw binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("decompress: -in and -out are required")
	}
	t, err := readCompressedFile(*in)
	if err != nil {
		return err
	}
	return writeTable(*out, t)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	orig := fs.String("original", "", "original table (.csv or raw binary)")
	comp := fs.String("compressed", "", "compressed file to check")
	tol := fs.Float64("tolerance", 0, "numeric tolerance the stream was compressed with")
	catTol := fs.Float64("cat-tolerance", 0, "categorical tolerance the stream was compressed with")
	forceCat := fs.String("categorical", "", "comma-separated CSV columns to force categorical")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *orig == "" || *comp == "" {
		return fmt.Errorf("verify: -original and -compressed are required")
	}
	t, err := readTableForced(*orig, *forceCat)
	if err != nil {
		return err
	}
	restored, err := readCompressedFile(*comp)
	if err != nil {
		return err
	}
	if err := spartan.Verify(t, restored, spartan.UniformTolerances(t, *tol, *catTol)); err != nil {
		return err
	}
	fmt.Printf("ok: %d rows, %d attributes within tolerances\n",
		restored.NumRows(), restored.NumCols())
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "compressed file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	fi, err := os.Stat(*in)
	if err != nil {
		return err
	}
	t, err := readCompressedFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("compressed    %d B\n", fi.Size())
	fmt.Printf("rows          %d\n", t.NumRows())
	fmt.Printf("raw size      %d B (ratio %.4f)\n", t.RawSizeBytes(),
		float64(fi.Size())/float64(t.RawSizeBytes()))
	fmt.Printf("attributes    %d\n", t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		a := t.Attr(i)
		if a.Kind == spartan.Numeric {
			lo, hi := t.Col(i).MinMax()
			fmt.Printf("  %-20s numeric     range [%g, %g]\n", a.Name, lo, hi)
		} else {
			fmt.Printf("  %-20s categorical %d values\n", a.Name, t.Col(i).DomainSize())
		}
	}
	return nil
}

func readTable(path string) (*spartan.Table, error) {
	return readTableForced(path, "")
}

// readTableForced reads a table; forceCat names CSV columns whose kind is
// forced to categorical even when every value parses as a number (e.g.
// telephone exchange codes).
func readTableForced(path, forceCat string) (*spartan.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !strings.EqualFold(filepath.Ext(path), ".csv") {
		if forceCat != "" {
			return nil, fmt.Errorf("-categorical applies to CSV inputs only (binary tables carry their kinds)")
		}
		return spartan.ReadBinary(f)
	}
	t, err := spartan.ReadCSV(f, nil)
	if err != nil || forceCat == "" {
		return t, err
	}
	schema := append(spartan.Schema(nil), t.Schema()...)
	for _, name := range strings.Split(forceCat, ",") {
		i := schema.Index(strings.TrimSpace(name))
		if i < 0 {
			return nil, fmt.Errorf("unknown column %q in -categorical", name)
		}
		schema[i].Kind = spartan.Categorical
	}
	// Re-parse with the corrected schema kinds.
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	return spartan.ReadCSV(f, schema)
}

func writeTable(path string, t *spartan.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		if err := spartan.WriteCSV(f, t); err != nil {
			return err
		}
	} else if err := spartan.WriteBinary(f, t); err != nil {
		return err
	}
	return f.Close()
}
