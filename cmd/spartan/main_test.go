package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/datagen"
)

// writeTempTable materializes a CDR table as CSV and raw binary fixtures.
func writeTempTable(t *testing.T) (csvPath, binPath string) {
	t.Helper()
	dir := t.TempDir()
	tb := datagen.CDR(800, 1)
	csvPath = filepath.Join(dir, "t.csv")
	binPath = filepath.Join(dir, "t.bin")
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := spartan.WriteCSV(cf, tb); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := spartan.WriteBinary(bf, tb); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	return csvPath, binPath
}

func TestCompressVerifyDecompressFlow(t *testing.T) {
	_, binPath := writeTempTable(t)
	dir := filepath.Dir(binPath)
	sptn := filepath.Join(dir, "t.sptn")
	out := filepath.Join(dir, "restored.bin")

	if err := cmdCompress([]string{"-in", binPath, "-out", sptn, "-tolerance", "0.01", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-original", binPath, "-compressed", sptn, "-tolerance", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-in", sptn, "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	restored, err := spartan.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumRows() != 800 {
		t.Errorf("restored %d rows", restored.NumRows())
	}
}

func TestCompressCSVWithForcedCategorical(t *testing.T) {
	csvPath, _ := writeTempTable(t)
	dir := filepath.Dir(csvPath)
	sptn := filepath.Join(dir, "c.sptn")
	if err := cmdCompress([]string{"-in", csvPath, "-out", sptn,
		"-tolerance", "0.01", "-categorical", "src_exchange,dst_exchange", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-original", csvPath, "-compressed", sptn,
		"-tolerance", "0.01", "-categorical", "src_exchange,dst_exchange"}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockArchiveFlow(t *testing.T) {
	_, binPath := writeTempTable(t)
	dir := filepath.Dir(binPath)
	sptn := filepath.Join(dir, "blocks.sptn")
	if err := cmdCompress([]string{"-in", binPath, "-out", sptn,
		"-tolerance", "0.01", "-block-rows", "300", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify([]string{"-original", binPath, "-compressed", sptn,
		"-tolerance", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-in", sptn, "-agg", "sum", "-col", "charge_cents",
		"-where", "duration_sec > 100", "-groupby", "plan", "-tolerance", "0.01"}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAndInspectAndDeps(t *testing.T) {
	csvPath, binPath := writeTempTable(t)
	dir := filepath.Dir(binPath)
	sptn := filepath.Join(dir, "q.sptn")
	if err := cmdCompress([]string{"-in", binPath, "-out", sptn, "-tolerance", "0.01", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-in", sptn, "-agg", "avg", "-col", "charge_cents",
		"-groupby", "call_type", "-tolerance", "0.01"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-in", sptn}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDeps([]string{"-in", csvPath}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDeps([]string{"-in", csvPath, "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestCommandErrors(t *testing.T) {
	_, binPath := writeTempTable(t)
	dir := filepath.Dir(binPath)
	sptn := filepath.Join(dir, "e.sptn")
	if err := cmdCompress([]string{"-in", binPath, "-out", sptn, "-q"}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		run  func() error
	}{
		{"compress missing flags", func() error { return cmdCompress(nil) }},
		{"compress unknown selection", func() error {
			return cmdCompress([]string{"-in", binPath, "-out", sptn, "-selection", "bogus"})
		}},
		{"compress missing input", func() error {
			return cmdCompress([]string{"-in", filepath.Join(dir, "nope"), "-out", sptn})
		}},
		{"compress unknown forced column", func() error {
			return cmdCompress([]string{"-in", binPath, "-out", sptn, "-categorical", "zzz"})
		}},
		{"decompress missing flags", func() error { return cmdDecompress(nil) }},
		{"verify missing flags", func() error { return cmdVerify(nil) }},
		{"verify wrong tolerance", func() error {
			// compressed lossless above, verifying with tolerance 0 passes;
			// verify against a *different* original must fail.
			other := filepath.Join(dir, "other.bin")
			f, err := os.Create(other)
			if err != nil {
				return err
			}
			if err := spartan.WriteBinary(f, datagen.CDR(800, 99)); err != nil {
				return err
			}
			f.Close()
			return cmdVerify([]string{"-original", other, "-compressed", sptn})
		}},
		{"inspect missing flags", func() error { return cmdInspect(nil) }},
		{"query unknown agg", func() error {
			return cmdQuery([]string{"-in", sptn, "-agg", "median"})
		}},
		{"query bad where", func() error {
			return cmdQuery([]string{"-in", sptn, "-agg", "count", "-where", "nope >"})
		}},
		{"deps missing flags", func() error { return cmdDeps(nil) }},
	}
	for _, c := range cases {
		if err := c.run(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSelectionFromName(t *testing.T) {
	for name, want := range map[string]spartan.SelectionStrategy{
		"wmis-parents": spartan.SelectWMISParents,
		"wmis-markov":  spartan.SelectWMISMarkov,
		"greedy":       spartan.SelectGreedy,
	} {
		got, err := selectionFromName(name)
		if err != nil || got != want {
			t.Errorf("selectionFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := selectionFromName("zzz"); err == nil {
		t.Error("selectionFromName accepted unknown name")
	}
}
