package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"strings"

	"repro"
)

// cmdQuery runs an approximate aggregate with guaranteed bounds directly
// against a compressed file:
//
//	spartan query -in data.sptn -agg sum -col charge_cents \
//	    -where "duration_sec > 200 && plan == 'saver'" \
//	    -groupby call_type -tolerance 0.01
func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "compressed file")
	agg := fs.String("agg", "count", "aggregate: count, sum, avg, min or max")
	col := fs.String("col", "", "aggregated numeric column (not used for count)")
	where := fs.String("where", "", "filter expression, e.g. \"x > 3 && g == 'a'\"")
	groupBy := fs.String("groupby", "", "categorical column to group by")
	tol := fs.Float64("tolerance", 0, "numeric tolerance the stream was compressed with")
	catTol := fs.Float64("cat-tolerance", 0, "categorical tolerance the stream was compressed with")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("query: -in is required")
	}
	var aggKind spartan.AggKind
	switch strings.ToLower(*agg) {
	case "count":
		aggKind = spartan.Count
	case "sum":
		aggKind = spartan.Sum
	case "avg":
		aggKind = spartan.Avg
	case "min":
		aggKind = spartan.Min
	case "max":
		aggKind = spartan.Max
	default:
		return fmt.Errorf("query: unknown aggregate %q", *agg)
	}

	var res *spartan.QueryResult
	a, err := openArchiveFile(*in)
	if err != nil {
		if !errors.Is(err, errNotSegmented) {
			return err
		}
	}
	if a != nil {
		// Segmented v2 archive: query through the footer so zone maps can
		// skip segments the predicate refutes before any decoding.
		defer a.Close()
		pred, err := spartan.ParsePredicate(*where, a.Schema())
		if err != nil {
			return err
		}
		var qs *spartan.ArchiveQueryStats
		res, qs, err = spartan.QueryArchive(a, spartan.UniformTolerancesSchema(a.Schema(), *tol, *catTol), spartan.Query{
			Agg:     aggKind,
			Column:  *col,
			Where:   pred,
			GroupBy: *groupBy,
		})
		if err != nil {
			return err
		}
		fmt.Printf("segments: %d decoded, %d pruned (%d of %d rows skipped)\n",
			qs.Decoded, qs.Pruned, qs.RowsPruned, qs.RowsPruned+qs.RowsDecoded)
	} else {
		t, err := readCompressedFile(*in)
		if err != nil {
			return err
		}
		pred, err := spartan.ParsePredicate(*where, t.Schema())
		if err != nil {
			return err
		}
		res, err = spartan.RunQuery(t, spartan.UniformTolerances(t, *tol, *catTol), spartan.Query{
			Agg:     aggKind,
			Column:  *col,
			Where:   pred,
			GroupBy: *groupBy,
		})
		if err != nil {
			return err
		}
	}
	label := strings.ToUpper(*agg)
	if *col != "" {
		label += "(" + *col + ")"
	}
	fmt.Printf("%-16s %14s   %s\n", "group", label, "guaranteed bounds")
	for _, g := range res.Groups {
		key := g.Key
		if key == "" {
			key = "(all)"
		}
		if math.IsNaN(g.Value) {
			fmt.Printf("%-16s %14s   (no rows)\n", key, "-")
			continue
		}
		fmt.Printf("%-16s %14.4g   [%.4g, %.4g]  (%d rows, %d uncertain)\n",
			key, g.Value, g.Lo, g.Hi, g.Rows, g.UncertainRows)
	}
	return nil
}
