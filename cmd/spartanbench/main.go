// Command spartanbench regenerates every table and figure of the paper's
// evaluation (§4) against the synthetic stand-in datasets.
//
// Usage:
//
//	spartanbench fig5    [-rows N] [-seed S]   compression ratio vs error threshold (Figure 5 a/b/c)
//	spartanbench fig6a   [-rows N] [-seed S]   compression ratio vs sample size (Figure 6a)
//	spartanbench fig6b   [-rows N] [-seed S]   running time vs error threshold (Figure 6b)
//	spartanbench fig6c   [-rows N] [-seed S]   running time vs sample size (Figure 6c)
//	spartanbench table1  [-rows N] [-seed S]   CaRT-selection algorithms (Table 1)
//	spartanbench lossless [-rows N] [-seed S]  lossless baselines (gzip / pzip / SPARTAN ē=0)
//	spartanbench ablate  [-rows N] [-seed S]   design-choice ablations
//	spartanbench summary [-rows N] [-seed S]   everything above
//
// Performance trajectory (docs/OBSERVABILITY.md):
//
//	spartanbench perf [-rows N] [-reps R] [-warmup W] [-scenarios LIST] [-out F|-dir D] [-profile D]
//	    record a BENCH_<n>.json snapshot (rows/sec, allocs/op, per-phase spans)
//	spartanbench diff [-threshold F] OLD.json NEW.json
//	    compare two snapshots; exit 2 on regressions past the threshold
//
// -rows 0 (the default) selects per-dataset scaled-down versions of the
// paper's table sizes; see EXPERIMENTS.md for the mapping.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	// The trajectory subcommands own their flag sets (different knobs,
	// positional snapshot arguments, regression exit code).
	switch cmd {
	case "perf":
		if _, err := perfMain(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "spartanbench:", err)
			os.Exit(1)
		}
		return
	case "diff":
		code, err := diffMain(os.Args[2:])
		if err != nil {
			fmt.Fprintln(os.Stderr, "spartanbench:", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	rows := fs.Int("rows", 0, "rows per dataset (0 = per-dataset default)")
	seed := fs.Int64("seed", 1, "generator seed")
	csvOut := fs.Bool("csv", false, "emit machine-readable CSV instead of aligned text (fig5, fig6a, fig6b, fig6c, table1)")
	trace := fs.Bool("trace", false, "print each SPARTAN run's per-phase span tree (paper §4.2 breakdown)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	if *trace {
		experiments.TraceSink = os.Stdout
	}
	var err error
	switch cmd {
	case "fig5":
		if *csvOut {
			err = fig5CSV(*rows, *seed)
			break
		}
		err = fig5(*rows, *seed)
	case "fig6a":
		if *csvOut {
			err = fig6aCSV(*rows, *seed)
			break
		}
		err = fig6a(*rows, *seed)
	case "fig6b":
		if *csvOut {
			err = fig6bCSV(*rows, *seed)
			break
		}
		err = fig6b(*rows, *seed)
	case "fig6c":
		if *csvOut {
			err = fig6cCSV(*rows, *seed)
			break
		}
		err = fig6c(*rows, *seed)
	case "table1":
		if *csvOut {
			err = table1CSV(*rows, *seed)
			break
		}
		err = table1(*rows, *seed)
	case "ablate":
		err = ablate(*rows, *seed)
	case "lossless":
		err = lossless(*rows, *seed)
	case "summary":
		err = summary(*rows, *seed)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "spartanbench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spartanbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: spartanbench <fig5|fig6a|fig6b|fig6c|table1|lossless|ablate|summary> [-rows N] [-seed S] [-csv] [-trace]
       spartanbench perf [-rows N] [-reps R] [-warmup W] [-scenarios LIST] [-out F|-dir D] [-profile D]
       spartanbench diff [-threshold F] OLD.json NEW.json
`)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func fig5(rows int, seed int64) error {
	header("Figure 5: compression ratio vs error threshold (gzip / fascicles / SPARTAN)")
	for _, d := range experiments.AllDatasets {
		if _, err := experiments.Fig5(d, rows, seed, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func fig6a(rows int, seed int64) error {
	header("Figure 6(a): compression ratio vs sample size (Forest-cover, 1% tolerance)")
	_, err := experiments.Fig6a(experiments.ForestCover, rows, 0.01, seed, os.Stdout)
	return err
}

func fig6b(rows int, seed int64) error {
	header("Figure 6(b): SPARTAN running time vs error threshold")
	for _, d := range experiments.AllDatasets {
		if _, err := experiments.Fig6b(d, rows, seed, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func fig6c(rows int, seed int64) error {
	header("Figure 6(c): SPARTAN running time vs sample size (1% tolerance)")
	for _, d := range experiments.AllDatasets {
		pts, err := experiments.Fig6a(d, rows, 0.01, seed, nil)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("%-8s sample=%3dKB  time %8v  (deps %v, select %v, outliers %v)\n",
				d, p.SampleBytes>>10, p.Elapsed.Round(time.Millisecond),
				p.Stats.Timings.DependencyFinder.Round(time.Millisecond),
				p.Stats.Timings.CaRTSelection.Round(time.Millisecond),
				p.Stats.Timings.OutlierScan.Round(time.Millisecond))
		}
	}
	return nil
}

func table1(rows int, seed int64) error {
	header("Table 1: CaRT-selection algorithm vs compression ratio / running time (1% tolerance)")
	_, err := experiments.Table1(experiments.AllDatasets, rows, seed, os.Stdout)
	return err
}

func fig5CSV(rows int, seed int64) error {
	fmt.Println("dataset,tolerance,gzip_ratio,fascicle_ratio,spartan_ratio")
	for _, d := range experiments.AllDatasets {
		ms, err := experiments.Fig5(d, rows, seed, nil)
		if err != nil {
			return err
		}
		for _, m := range ms {
			fmt.Printf("%s,%g,%.4f,%.4f,%.4f\n",
				d, m.Tolerance, m.Gzip.Ratio, m.Fascicles.Ratio, m.Spartan.Ratio)
		}
	}
	return nil
}

func fig6aCSV(rows int, seed int64) error {
	fmt.Println("dataset,sample_bytes,spartan_ratio,elapsed_ms")
	for _, d := range experiments.AllDatasets {
		pts, err := experiments.Fig6a(d, rows, 0.01, seed, nil)
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("%s,%d,%.4f,%d\n", d, p.SampleBytes, p.Ratio, p.Elapsed.Milliseconds())
		}
	}
	return nil
}

func fig6bCSV(rows int, seed int64) error {
	fmt.Println("dataset,tolerance,elapsed_ms,deps_ms,select_ms,rowagg_ms,outliers_ms,encode_ms")
	for _, d := range experiments.AllDatasets {
		pts, err := experiments.Fig6b(d, rows, seed, nil)
		if err != nil {
			return err
		}
		for _, p := range pts {
			t := p.Stats.Timings
			fmt.Printf("%s,%g,%d,%d,%d,%d,%d,%d\n",
				d, p.Tolerance, p.Elapsed.Milliseconds(),
				t.DependencyFinder.Milliseconds(), t.CaRTSelection.Milliseconds(),
				t.RowAggregation.Milliseconds(), t.OutlierScan.Milliseconds(),
				t.Encode.Milliseconds())
		}
	}
	return nil
}

func fig6cCSV(rows int, seed int64) error {
	fmt.Println("dataset,sample_bytes,elapsed_ms,deps_ms,select_ms,outliers_ms")
	for _, d := range experiments.AllDatasets {
		pts, err := experiments.Fig6a(d, rows, 0.01, seed, nil)
		if err != nil {
			return err
		}
		for _, p := range pts {
			t := p.Stats.Timings
			fmt.Printf("%s,%d,%d,%d,%d,%d\n",
				d, p.SampleBytes, p.Elapsed.Milliseconds(),
				t.DependencyFinder.Milliseconds(), t.CaRTSelection.Milliseconds(),
				t.OutlierScan.Milliseconds())
		}
	}
	return nil
}

func table1CSV(rows int, seed int64) error {
	fmt.Println("dataset,strategy,spartan_ratio,elapsed_ms,carts_built")
	rs, err := experiments.Table1(experiments.AllDatasets, rows, seed, nil)
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Printf("%s,%s,%.4f,%d,%d\n", r.Dataset, r.Strategy, r.Ratio,
			r.Elapsed.Milliseconds(), r.CartsBuilt)
	}
	return nil
}

func lossless(rows int, seed int64) error {
	header("Lossless comparison (ē = 0): sorted gzip / pzip-style grouping / SPARTAN")
	for _, d := range experiments.AllDatasets {
		if _, err := experiments.Lossless(d, rows, seed, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func ablate(rows int, seed int64) error {
	for _, d := range experiments.AllDatasets {
		header(fmt.Sprintf("Ablations on %s (1%% tolerance)", d))
		if _, err := experiments.Ablations(d, rows, seed, os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func summary(rows int, seed int64) error {
	for _, f := range []func(int, int64) error{fig5, fig6a, fig6b, fig6c, table1, lossless, ablate} {
		if err := f(rows, seed); err != nil {
			return err
		}
	}
	return nil
}
