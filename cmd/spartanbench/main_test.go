package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Small-row smoke tests over every report: they exercise the full
// experiment drivers and the printers without asserting numbers (the
// experiments package tests cover the shapes).
func TestReportsSmoke(t *testing.T) {
	const rows = 800
	for name, run := range map[string]func(int, int64) error{
		"fig5":      fig5,
		"fig5csv":   fig5CSV,
		"fig6a":     fig6a,
		"fig6acsv":  fig6aCSV,
		"fig6b":     fig6b,
		"fig6bcsv":  fig6bCSV,
		"fig6c":     fig6c,
		"fig6ccsv":  fig6cCSV,
		"table1":    table1,
		"table1csv": table1CSV,
		"lossless":  lossless,
		"ablate":    ablate,
	} {
		if err := run(rows, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPerfDiffEndToEnd drives the trajectory workflow the way CI does:
// record two tiny snapshots, diff them (exit 0), then diff against a
// handicapped run (exit 2) via the SPARTAN_BENCH_HANDICAP test hook.
func TestPerfDiffEndToEnd(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "BENCH_1.json")
	cur := filepath.Join(dir, "BENCH_2.json")
	args := []string{"-rows", "400", "-reps", "1", "-warmup", "0",
		"-scenarios", "micro/cart_build"}
	for _, out := range []string{old, cur} {
		path, err := perfMain(append(args, "-out", out), nil)
		if err != nil {
			t.Fatalf("perf -out %s: %v", out, err)
		}
		if path != out {
			t.Fatalf("perf wrote %s, want %s", path, out)
		}
	}
	// Two honest runs of the same code must pass the gate.
	code, err := diffMain([]string{old, cur})
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if code != 0 {
		t.Fatalf("diff of two honest runs exited %d, want 0", code)
	}

	// A handicapped snapshot must fail it.
	slow := filepath.Join(dir, "BENCH_slow.json")
	os.Setenv("SPARTAN_BENCH_HANDICAP", "250ms")
	defer os.Unsetenv("SPARTAN_BENCH_HANDICAP")
	if _, err := perfMain(append(args, "-out", slow), nil); err != nil {
		t.Fatalf("handicapped perf: %v", err)
	}
	code, err = diffMain([]string{old, slow})
	if err != nil {
		t.Fatalf("diff vs handicapped: %v", err)
	}
	if code != 2 {
		t.Fatalf("diff vs handicapped run exited %d, want 2", code)
	}
}
