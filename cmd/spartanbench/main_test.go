package main

import "testing"

// Small-row smoke tests over every report: they exercise the full
// experiment drivers and the printers without asserting numbers (the
// experiments package tests cover the shapes).
func TestReportsSmoke(t *testing.T) {
	const rows = 800
	for name, run := range map[string]func(int, int64) error{
		"fig5":      fig5,
		"fig5csv":   fig5CSV,
		"fig6a":     fig6a,
		"fig6acsv":  fig6aCSV,
		"fig6b":     fig6b,
		"fig6c":     fig6c,
		"table1":    table1,
		"table1csv": table1CSV,
		"lossless":  lossless,
		"ablate":    ablate,
	} {
		if err := run(rows, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
