package main

// The performance-trajectory subcommands: `perf` records one
// BENCH_<n>.json snapshot (ROADMAP item 3's "recorded perf trajectory"),
// `diff` compares two snapshots and gates on regressions the way the
// SARIF diff gates on new findings. docs/OBSERVABILITY.md documents the
// schema and the engine-PR before/after workflow.

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
)

// perfMain runs the bench harness and writes a snapshot. Returns the
// path written so tests can inspect it.
func perfMain(args []string, progress *os.File) (string, error) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	rows := fs.Int("rows", 4000, "dataset rows per scenario")
	seed := fs.Int64("seed", 1, "generator seed")
	reps := fs.Int("reps", 3, "measured iterations per scenario")
	warmup := fs.Int("warmup", 1, "untimed warmup iterations per scenario")
	scenariosFlag := fs.String("scenarios", "", "comma-separated scenario filter (exact or prefix, e.g. compress or micro/cart_build); empty = all")
	out := fs.String("out", "", "snapshot path (default: next BENCH_<n>.json under -dir)")
	dir := fs.String("dir", ".", "directory for auto-numbered BENCH_<n>.json snapshots")
	profile := fs.String("profile", "", "directory for per-scenario cpu/heap pprof profiles")
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	cfg := bench.Config{
		Rows:       *rows,
		Seed:       *seed,
		Reps:       *reps,
		Warmup:     *warmup,
		ProfileDir: *profile,
		Progress:   progress,
	}
	if *warmup == 0 {
		cfg.Warmup = -1 // flag 0 means none; Config 0 means default
	}
	if *scenariosFlag != "" {
		cfg.Scenarios = strings.Split(*scenariosFlag, ",")
	}
	// Test-only hook: an injected artificial slowdown, so the regression
	// gate can be exercised end to end (see bench.Config.Handicap).
	if h := os.Getenv("SPARTAN_BENCH_HANDICAP"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil {
			return "", fmt.Errorf("SPARTAN_BENCH_HANDICAP: %w", err)
		}
		cfg.Handicap = d
		fmt.Fprintf(os.Stderr, "spartanbench: WARNING: artificial handicap %v per op (test hook); do not record this snapshot as a trajectory point\n", d)
	}

	snap, err := bench.Run(cfg)
	if err != nil {
		return "", err
	}
	path := *out
	if path == "" {
		if path, err = bench.NextPath(*dir); err != nil {
			return "", err
		}
	}
	if err := snap.WriteFile(path); err != nil {
		return "", err
	}
	if progress != nil {
		printPhases(progress, snap)
		fmt.Fprintf(progress, "env: %s\n", snap.Env)
		fmt.Fprintf(progress, "wrote %s\n", path)
	}
	return path, nil
}

// printPhases renders the compress scenario's §4.2 phase attribution —
// the same tree `-trace` prints, now in recorded form.
func printPhases(w *os.File, snap *bench.Snapshot) {
	for _, sc := range snap.Scenarios {
		if len(sc.PhaseNs) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s phases:\n", sc.Name)
		phases := make([]string, 0, len(sc.PhaseNs))
		for name := range sc.PhaseNs {
			phases = append(phases, name)
		}
		sort.Slice(phases, func(i, j int) bool { return sc.PhaseNs[phases[i]] > sc.PhaseNs[phases[j]] })
		for _, name := range phases {
			line := fmt.Sprintf("  %-24s %10v/op", name, time.Duration(sc.PhaseNs[name]).Round(time.Microsecond))
			if ab, ok := sc.PhaseAllocBytes[name]; ok {
				line += fmt.Sprintf("  %10.0f B/op", ab)
			}
			fmt.Fprintln(w, line)
		}
	}
}

// diffMain compares two snapshots; exit code 2 signals regressions past
// the threshold (matching the sarifdiff convention), 0 means clean.
func diffMain(args []string) (exit int, err error) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", bench.DefaultThreshold,
		"fractional worsening that fails the diff (0.4 = 40% worse)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: spartanbench diff [-threshold F] OLD.json NEW.json")
	}
	oldSnap, err := bench.ReadSnapshot(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	newSnap, err := bench.ReadSnapshot(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	rep := bench.Diff(oldSnap, newSnap, bench.DiffOptions{Threshold: *threshold})
	fmt.Printf("bench diff: %s (old) vs %s (new)\n", fs.Arg(0), fs.Arg(1))
	rep.Write(os.Stdout)
	if rep.Regressions() > 0 {
		return 2, nil
	}
	return 0, nil
}
