// Command spartand serves SPARTAN compression, decompression and bounded
// approximate querying over HTTP.
//
//	spartand -addr :8080
//
//	curl -X POST --data-binary @table.csv -H 'Content-Type: text/csv' \
//	    'localhost:8080/compress?tolerance=0.01' > table.sptn
//	curl -X POST --data-binary @table.sptn \
//	    'localhost:8080/query?agg=avg&col=charge&tolerance=0.01'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(),
		ReadHeaderTimeout: 10 * time.Second,
		// Compression of large uploads can legitimately take a while;
		// bound only the idle phases.
		IdleTimeout: 2 * time.Minute,
	}
	log.Printf("spartand listening on %s", *addr)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
