// Command spartand serves SPARTAN compression, decompression and bounded
// approximate querying over HTTP.
//
//	spartand -addr :8080 -log-format json -debug-addr localhost:6060
//
//	curl -X POST --data-binary @table.csv -H 'Content-Type: text/csv' \
//	    'localhost:8080/compress?tolerance=0.01' > table.sptn
//	curl -X POST --data-binary @table.sptn \
//	    'localhost:8080/query?agg=avg&col=charge&tolerance=0.01'
//	curl 'localhost:8080/metrics'
//
// The server logs one structured line per request (text or JSON by
// -log-format), exposes Prometheus metrics on /metrics, and optionally
// runs a separate debug listener with net/http/pprof profiles and a
// /metrics mirror. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight compressions for up to -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	debugAddr := flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof and /metrics (e.g. localhost:6060)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain for in-flight requests")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent compress/query pipelines; excess requests get 429 (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request pipeline deadline; overruns are cancelled and answered 503 (0 = none)")
	segmentRows := flag.Int("segment-rows", 0, "default rows per archive segment for /compress; 0 keeps single-stream output (requests can override with ?segment-rows=)")
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		slog.Error("spartand: bad flags", "err", err)
		os.Exit(2)
	}
	slog.SetDefault(log)

	reg := obs.NewRegistry()
	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(
			server.WithLogger(log),
			server.WithRegistry(reg),
			server.WithMaxConcurrent(*maxConcurrent),
			server.WithRequestTimeout(*requestTimeout),
			server.WithSegmentRows(*segmentRows),
		),
		ReadHeaderTimeout: 10 * time.Second,
		// Compression of large uploads can legitimately take a while;
		// bound only the idle phases.
		IdleTimeout: 2 * time.Minute,
	}

	// SIGINT/SIGTERM begin a graceful shutdown: stop accepting, let
	// in-flight compressions finish within the drain timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		go serveDebug(*debugAddr, reg, log)
	}

	errc := make(chan error, 1)
	go func() {
		log.Info("spartand listening", "addr", *addr, "debug_addr", *debugAddr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("spartand: serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Info("shutting down", "drain_timeout", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Error("drain incomplete, closing", "err", err)
			_ = srv.Close()
			os.Exit(1)
		}
		log.Info("shutdown complete")
	}
}

// newLogger builds the process logger for the requested -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, errors.New(`-log-format must be "text" or "json"`)
	}
}

// serveDebug runs the pprof + metrics debug listener. It is best-effort:
// failure is logged, not fatal, so a busy debug port never takes the
// service down.
func serveDebug(addr string, reg *obs.Registry, log *slog.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Error("debug listener failed", "addr", addr, "err", err)
	}
}
