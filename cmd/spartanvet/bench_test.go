package main

// Self-benchmark for the analyzer suite: every registered analyzer runs
// over a fixed fixture corpus so `go test -bench=. ./cmd/spartanvet`
// attributes analysis cost per analyzer. The corpus is the flow-heavy
// subset of the golden fixtures — decode paths, taint chains, index
// proofs, writer/reader pairs, goroutine spawns — so the numbers track
// the expensive layers (dataflow fixpoints, interval analysis, call
// graphs), not trivial syntax walks. Record a baseline before growing
// the suite and compare with benchstat or `-benchtime=10x` eyeballing;
// a new analyzer that doubles the total shows up here long before it
// shows up as a slow `make lint`.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// benchCorpus names fixture packages under
// internal/analysis/testdata/src. They type-check against the standard
// library alone, so the whole corpus loads with the source importer and
// no build artifacts.
var benchCorpus = []string{
	"codec",
	"cart",
	"taintalloc",
	"sizeoverflow",
	"indexbound",
	"wiresym",
	"locksetrace",
	"hotalloc",
	"detorder",
	"closeleak",
}

type benchPkg struct {
	name  string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	sup   *analysis.Suppressions
}

func loadBenchCorpus(b *testing.B) []*benchPkg {
	b.Helper()
	var out []*benchPkg
	for _, name := range benchCorpus {
		dir := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", name)
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			b.Fatalf("reading corpus dir: %v", err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				b.Fatalf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		pkgName := files[0].Name.Name
		pkg, err := cfg.Check(pkgName, fset, files, info)
		if err != nil {
			b.Fatalf("type-checking %s: %v", name, err)
		}
		out = append(out, &benchPkg{
			name:  name,
			fset:  fset,
			files: files,
			pkg:   pkg,
			info:  info,
			sup:   analysis.IndexSuppressions(fset, files),
		})
	}
	return out
}

// BenchmarkAnalyzers runs each analyzer over the whole corpus per
// iteration. Facts are nil — the analyzers degrade to intraprocedural
// reasoning, exactly as under the fixture harness — so an op measures
// one package-local pass, the unit `make lint` pays once per package.
func BenchmarkAnalyzers(b *testing.B) {
	corpus := loadBenchCorpus(b)
	var reported int
	for _, a := range analyzers {
		b.Run(a.Name, func(b *testing.B) {
			for b.Loop() {
				for _, p := range corpus {
					pass := analysis.NewPassShared(a, p.fset, p.files, p.pkg, p.info,
						func(analysis.Diagnostic) { reported++ }, p.sup)
					if err := a.Run(pass); err != nil {
						b.Fatalf("%s on %s: %v", a.Name, p.name, err)
					}
				}
			}
		})
	}
	if reported < 0 { // keep the diagnostic sink live
		b.Fatal("unreachable")
	}
}

// BenchmarkSuite is the whole-suite number: all analyzers, whole
// corpus, one op — the figure to watch across releases.
func BenchmarkSuite(b *testing.B) {
	corpus := loadBenchCorpus(b)
	var reported int
	for b.Loop() {
		for _, a := range analyzers {
			for _, p := range corpus {
				pass := analysis.NewPassShared(a, p.fset, p.files, p.pkg, p.info,
					func(analysis.Diagnostic) { reported++ }, p.sup)
				if err := a.Run(pass); err != nil {
					b.Fatalf("%s on %s: %v", a.Name, p.name, err)
				}
			}
		}
	}
	if reported < 0 {
		b.Fatal("unreachable")
	}
}
