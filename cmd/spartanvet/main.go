// Spartanvet is SPARTAN's domain-aware static-analysis suite:
// analyzers that encode invariants the Go compiler cannot see. Six are
// syntactic (raw float equality on tolerances, unfinished pipeline
// spans, unbalanced registry locks, swallowed archive-write errors,
// malformed metric names, context-threading conventions in the pipeline
// packages); four are flow-sensitive, built on the control-flow graphs
// and dataflow solver in internal/analysis/cfg and
// internal/analysis/dataflow (values used on proven-error paths, defers
// accumulating inside per-row loops, WaitGroup Add/Done discipline,
// hint-less allocations in row-bounded loops); two are interprocedural,
// built on the call graph and function summaries in
// internal/analysis/callgraph and internal/analysis/summary (taintalloc:
// untrusted wire integers reaching allocations unguarded, sizeoverflow:
// overflow-prone arithmetic on wire values), fed by the funcsummary fact
// producer, which hands per-function dataflow summaries across package
// boundaries through vet's .vetx fact files; three ride the value-range
// interval layer in internal/analysis/vrange (the rangesummary fact
// producer, which proves bounds bottom-up over call-graph SCCs and also
// range-filters the taint analyzers' sinks; indexbound: wire-derived
// slice indexes the interval analysis cannot prove within len; wiresym:
// writer/reader pairs in the codec packages whose fixed-width binary
// operations disagree in width, order or endianness); four are concurrency
// analyzers built on the goroutine-spawn model, lockset dataflow and
// concsummary facts in internal/analysis/conc (locksetrace: goroutine
// accesses with provably disjoint locksets, gocapture: loop state
// captured by reference in go closures, boundedspawn: per-row goroutine
// spawns with no concurrency bound, chanleak: goroutines parked forever
// on a local channel); two ride the per-function effect summaries and
// effectsummary facts in internal/analysis/effects (detorder:
// nondeterministic values — map iteration order, the wall clock,
// unseeded rand, goroutine completion order, addresses — flowing into
// encoded archive bytes, with sorted-keys / seeded-source /
// commutative-accumulator idioms as sanitizers; closeleak: opened
// io.Closer handles not closed on every CFG exit path, defer- and
// ownership-transfer-aware). A synthetic check, staleignore, flags
// //spartanvet:ignore directives that no longer suppress anything.
//
// It speaks the `go vet` tool protocol; run it through the go command:
//
//	go build -o bin/spartanvet ./cmd/spartanvet
//	go vet -vettool=bin/spartanvet ./...
//
// or simply `make lint`. Individual analyzers can be selected the same
// way as with stock vet: `go vet -vettool=bin/spartanvet -floatcmp ./...`.
//
// It also runs standalone over package patterns, aggregating the whole
// module into one report for CI:
//
//	bin/spartanvet -sarif ./... > spartanvet.sarif   # GitHub code scanning
//	bin/spartanvet -json ./...                       # scripting
//	bin/spartanvet -debug.cfg=EncodeFascicle ./...   # dump a function's CFG
//
// See docs/DEVELOPMENT.md for the analyzer catalogue, the
// //spartanvet:ignore suppression syntax, and a guide to writing new
// flow-sensitive analyzers.
package main

import (
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/conc"
	"repro/internal/analysis/conc/boundedspawn"
	"repro/internal/analysis/conc/chanleak"
	"repro/internal/analysis/conc/gocapture"
	"repro/internal/analysis/conc/locksetrace"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/deferloop"
	"repro/internal/analysis/effects"
	"repro/internal/analysis/effects/closeleak"
	"repro/internal/analysis/effects/detorder"
	"repro/internal/analysis/errcheckio"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/indexbound"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/nilflow"
	"repro/internal/analysis/sizeoverflow"
	"repro/internal/analysis/spanfinish"
	"repro/internal/analysis/summary"
	"repro/internal/analysis/taintalloc"
	"repro/internal/analysis/unitchecker"
	"repro/internal/analysis/vrange"
	"repro/internal/analysis/wgbalance"
	"repro/internal/analysis/wiresym"
)

// analyzers is the full suite in registration order; the self-benchmark
// in bench_test.go measures each entry over a fixture corpus.
var analyzers = []*analysis.Analyzer{
	floatcmp.Analyzer,
	spanfinish.Analyzer,
	lockbalance.Analyzer,
	errcheckio.Analyzer,
	metricname.Analyzer,
	ctxfirst.Analyzer,
	nilflow.Analyzer,
	deferloop.Analyzer,
	wgbalance.Analyzer,
	hotalloc.Analyzer,
	summary.Analyzer,
	vrange.Analyzer,
	taintalloc.Analyzer,
	sizeoverflow.Analyzer,
	indexbound.Analyzer,
	wiresym.Analyzer,
	conc.Analyzer,
	locksetrace.Analyzer,
	gocapture.Analyzer,
	boundedspawn.Analyzer,
	chanleak.Analyzer,
	effects.Analyzer,
	detorder.Analyzer,
	closeleak.Analyzer,
}

func main() {
	unitchecker.Run("spartanvet", os.Args[1:], analyzers)
}
