// Spartanvet is SPARTAN's domain-aware static-analysis suite: five
// analyzers that encode invariants the Go compiler cannot see (raw float
// equality on tolerances, unfinished pipeline spans, unbalanced registry
// locks, swallowed archive-write errors, malformed metric names).
//
// It speaks the `go vet` tool protocol; run it through the go command:
//
//	go build -o bin/spartanvet ./cmd/spartanvet
//	go vet -vettool=bin/spartanvet ./...
//
// or simply `make lint`. Individual analyzers can be selected the same
// way as with stock vet: `go vet -vettool=bin/spartanvet -floatcmp ./...`.
// See docs/DEVELOPMENT.md for the analyzer catalogue and the
// //spartanvet:ignore suppression syntax.
package main

import (
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/errcheckio"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/lockbalance"
	"repro/internal/analysis/metricname"
	"repro/internal/analysis/spanfinish"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Run("spartanvet", os.Args[1:], []*analysis.Analyzer{
		floatcmp.Analyzer,
		spanfinish.Analyzer,
		lockbalance.Analyzer,
		errcheckio.Analyzer,
		metricname.Analyzer,
	})
}
