package spartan

// Per-component micro-benchmarks: the paper's §4.2 accounting attributes
// 50-75% of SPARTAN's time to CaRT construction, ~20% to the
// DependencyFinder, and the rest to full-table passes. These benches
// expose each component so regressions are attributable.

import (
	"math/rand"
	"testing"

	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/datagen"
	"repro/internal/fascicle"
	"repro/internal/gzipref"
	"repro/internal/pzipref"
	"repro/internal/table"
	"repro/internal/wmis"
)

func BenchmarkBayesNetBuild(b *testing.B) {
	t := datagen.Census(25000, 1)
	rng := rand.New(rand.NewSource(1))
	sample := t.Sample(1500, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bayesnet.Build(sample, bayesnet.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCartBuildRegression(b *testing.B) {
	t := datagen.Corel(4000, 1)
	rng := rand.New(rand.NewSource(1))
	sample := t.Sample(500, rng)
	cm := cart.NewCostModel(t)
	tol := 0.01 * t.Col(16).Range()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cart.Build(sample, 16, []int{14, 15, 17, 18}, tol, cm,
			cart.Config{FullRows: t.NumRows()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCartBuildClassification(b *testing.B) {
	t := datagen.Census(4000, 1)
	rng := rand.New(rand.NewSource(1))
	sample := t.Sample(1000, rng)
	cm := cart.NewCostModel(t)
	educIdx := t.Schema().Index("education")
	yearsIdx := t.Schema().Index("educ_years")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cart.Build(sample, educIdx, []int{yearsIdx}, 0, cm,
			cart.Config{FullRows: t.NumRows()}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOutlierScan(b *testing.B) {
	t := datagen.Corel(20000, 1)
	rng := rand.New(rand.NewSource(1))
	sample := t.Sample(500, rng)
	cm := cart.NewCostModel(t)
	tol := 0.01 * t.Col(16).Range()
	m, _, err := cart.Build(sample, 16, []int{14, 15, 17, 18}, tol, cm,
		cart.Config{FullRows: t.NumRows()})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(t.NumRows() * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ComputeOutliers(t, tol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFascicleCluster(b *testing.B) {
	t := datagen.CDR(20000, 1)
	widths := make([]float64, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		if t.Attr(i).Kind == table.Numeric {
			widths[i] = 0.01 * t.Col(i).Range()
		}
	}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fascicle.Cluster(t, fascicle.Params{Widths: widths}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWMISExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := wmis.NewGraph(40)
	for v := 0; v < 40; v++ {
		g.SetWeight(v, float64(1+rng.Intn(100)))
	}
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			if rng.Float64() < 0.15 {
				if err := g.AddEdge(u, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wmis.SolveExact(g)
	}
}

func BenchmarkGzipBaseline(b *testing.B) {
	t := datagen.Census(20000, 1)
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gzipref.Compress(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPzipBaseline(b *testing.B) {
	t := datagen.Census(20000, 1)
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pzipref.Compress(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryAggregate(b *testing.B) {
	t := datagen.CDR(50000, 1)
	tol := UniformTolerances(t, 0.01, 0)
	q := Query{Agg: Avg, Column: "charge_cents",
		Where: NumCmp("duration_sec", Gt, 200), GroupBy: "plan"}
	b.SetBytes(int64(t.RawSizeBytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunQuery(t, tol, q); err != nil {
			b.Fatal(err)
		}
	}
}
