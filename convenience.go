package spartan

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/table"
)

// CompressBytes is Compress into a fresh byte slice.
func CompressBytes(t *Table, opts Options) ([]byte, *Stats, error) {
	var buf bytes.Buffer
	stats, err := Compress(&buf, t, opts)
	if err != nil {
		return nil, nil, err
	}
	return buf.Bytes(), stats, nil
}

// DecompressBytes is Decompress from a byte slice.
func DecompressBytes(data []byte) (*Table, error) {
	return Decompress(bytes.NewReader(data))
}

// Verify checks that `restored` satisfies the tolerance guarantees with
// respect to `original`: every numeric cell within its absolute bound,
// every categorical column's mismatch rate within its probability bound.
// A nil tolerance vector demands exact equality (lossless).
func Verify(original, restored *Table, tol Tolerances) error {
	if tol == nil {
		tol = table.ZeroTolerances(original)
	}
	resolved, err := tol.Resolve(original)
	if err != nil {
		return err
	}
	diffs, err := table.MaxAbsDiff(original, restored)
	if err != nil {
		return err
	}
	for i, d := range diffs {
		attr := original.Attr(i)
		bound := resolved[i].Value
		if attr.Kind == Numeric {
			// Guard against float comparison noise at the exact boundary.
			if d > bound*(1+1e-12)+math.SmallestNonzeroFloat64 {
				return fmt.Errorf("spartan: attribute %q: max error %g exceeds tolerance %g",
					attr.Name, d, bound)
			}
			continue
		}
		if len(resolved[i].PerClass) > 0 {
			if err := verifyPerClass(original, restored, i, resolved[i]); err != nil {
				return err
			}
			continue
		}
		if d > bound {
			return fmt.Errorf("spartan: attribute %q: mismatch rate %g exceeds tolerance %g",
				attr.Name, d, bound)
		}
	}
	return nil
}

// verifyPerClass checks per-class categorical bounds: for each class c,
// the fraction of rows whose original value is c that decompress to a
// different value must not exceed that class's tolerance.
func verifyPerClass(original, restored *Table, col int, tol Tolerance) error {
	oc, rc := original.Col(col), restored.Col(col)
	counts := map[string]int{}
	wrong := map[string]int{}
	for r := 0; r < original.NumRows(); r++ {
		class := oc.Dict[oc.Codes[r]]
		counts[class]++
		if rc.Dict[rc.Codes[r]] != class {
			wrong[class]++
		}
	}
	for class, n := range counts {
		bound := tol.Value
		if v, ok := tol.PerClass[class]; ok {
			bound = v
		}
		if rate := float64(wrong[class]) / float64(n); rate > bound {
			return fmt.Errorf("spartan: attribute %q class %q: mismatch rate %g exceeds tolerance %g",
				original.Attr(col).Name, class, rate, bound)
		}
	}
	return nil
}
