package spartan_test

import (
	"fmt"
	"log"

	spartan "repro"
)

// buildExampleTable constructs the paper's Figure 1 credit table.
func buildExampleTable() *spartan.Table {
	b, err := spartan.NewBuilder(spartan.Schema{
		{Name: "age", Kind: spartan.Numeric},
		{Name: "salary", Kind: spartan.Numeric},
		{Name: "assets", Kind: spartan.Numeric},
		{Name: "credit", Kind: spartan.Categorical},
	})
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]any{
		{30.0, 90000.0, 200000.0, "good"},
		{50.0, 110000.0, 250000.0, "good"},
		{70.0, 35000.0, 125000.0, "poor"},
		{75.0, 15000.0, 100000.0, "poor"},
		{25.0, 50000.0, 75000.0, "good"},
		{35.0, 76000.0, 75000.0, "good"},
		{45.0, 100000.0, 175000.0, "poor"},
		{55.0, 80000.0, 150000.0, "good"},
	}
	for _, r := range rows {
		if err := b.AppendRow(r...); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// Compressing and restoring a table under explicit error tolerances.
func Example() {
	tbl := buildExampleTable()
	tol := spartan.Tolerances{
		{Value: 2},     // age ±2
		{Value: 5000},  // salary ±5,000
		{Value: 25000}, // assets ±25,000
		{Value: 0},     // credit exact
	}
	data, _, err := spartan.CompressBytes(tbl, spartan.Options{Tolerances: tol})
	if err != nil {
		log.Fatal(err)
	}
	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := spartan.Verify(tbl, restored, tol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", restored.NumRows())
	fmt.Println("credit[0]:", restored.CatString(0, 3))
	// Output:
	// rows: 8
	// credit[0]: good
}

// Lossless mode: nil tolerances demand (and Verify checks) exact
// equality.
func ExampleVerify() {
	tbl := buildExampleTable()
	data, _, err := spartan.CompressBytes(tbl, spartan.Options{})
	if err != nil {
		log.Fatal(err)
	}
	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spartan.Verify(tbl, restored, nil) == nil)
	// Output:
	// true
}

// Approximate aggregates with guaranteed bounds over restored data.
func ExampleRunQuery() {
	tbl := buildExampleTable()
	tol := spartan.UniformTolerances(tbl, 0.05, 0)
	res, err := spartan.RunQuery(tbl, tol, spartan.Query{
		Agg:     spartan.Avg,
		Column:  "salary",
		Where:   spartan.CatEq("credit", "good"),
		GroupBy: "",
	})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Groups[0]
	fmt.Printf("avg salary of good credit: %.0f (within [%.0f, %.0f])\n",
		g.Value, g.Lo, g.Hi)
	// Output:
	// avg salary of good credit: 81200 (within [76450, 85950])
}

// Filter expressions parse against a schema and bind by attribute kind.
func ExampleParsePredicate() {
	tbl := buildExampleTable()
	pred, err := spartan.ParsePredicate("salary >= 80000 && credit == 'good'", tbl.Schema())
	if err != nil {
		log.Fatal(err)
	}
	res, err := spartan.RunQuery(tbl, nil, spartan.Query{Agg: spartan.Count, Where: pred})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matching rows:", int(res.Groups[0].Value))
	// Output:
	// matching rows: 3
}

// UniformTolerances builds the paper's standard per-attribute vector.
func ExampleUniformTolerances() {
	tbl := buildExampleTable()
	tol := spartan.UniformTolerances(tbl, 0.01, 0)
	fmt.Println("entries:", len(tol))
	fmt.Println("numeric is quantile-form:", tol[0].Quantile)
	// Output:
	// entries: 4
	// numeric is quantile-form: true
}
