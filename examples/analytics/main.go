// Analytics over compressed data: the paper's drill-down scenario (§1).
// An analyst explores an archived table through approximate aggregates
// whose error is bounded by the compression tolerances — fast first
// answers, guarantees included.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	tbl := generateSales(80000)
	tol := spartan.UniformTolerances(tbl, 0.02, 0)

	data, stats, err := spartan.CompressBytes(tbl, spartan.Options{Tolerances: tol})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sales table: %d rows, raw %.1f MB, compressed to %.1f%%\n\n",
		tbl.NumRows(), float64(stats.RawBytes)/1e6, 100*stats.Ratio)

	// The analyst works from the compressed archive only.
	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, q spartan.Query) *spartan.QueryResult {
		res, err := spartan.RunQuery(restored, tol, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(label)
		for _, g := range res.Groups {
			key := g.Key
			if key == "" {
				key = "(all)"
			}
			fmt.Printf("  %-12s %14.0f   guaranteed in [%.0f, %.0f]\n",
				key, g.Value, g.Lo, g.Hi)
		}
		fmt.Println()
		return res
	}

	// Drill-down sequence: total revenue → by region → large orders only.
	run("SELECT SUM(revenue):",
		spartan.Query{Agg: spartan.Sum, Column: "revenue"})

	run("SELECT SUM(revenue) GROUP BY region:",
		spartan.Query{Agg: spartan.Sum, Column: "revenue", GroupBy: "region"})

	run("SELECT COUNT(*) WHERE revenue > 5000 GROUP BY channel:",
		spartan.Query{
			Agg:     spartan.Count,
			Where:   spartan.NumCmp("revenue", spartan.Gt, 5000),
			GroupBy: "channel",
		})

	run("SELECT AVG(unit_price) WHERE region = 'emea' AND quantity >= 10:",
		spartan.Query{
			Agg:    spartan.Avg,
			Column: "unit_price",
			Where: spartan.QAnd(
				spartan.CatEq("region", "emea"),
				spartan.NumCmp("quantity", spartan.Ge, 10),
			),
		})
}

// generateSales synthesizes an order-line table: revenue = price ×
// quantity, price depends on the product tier, shipping class follows the
// channel.
func generateSales(n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "quantity", Kind: spartan.Numeric},
		{Name: "unit_price", Kind: spartan.Numeric},
		{Name: "revenue", Kind: spartan.Numeric},
		{Name: "tier", Kind: spartan.Categorical},
		{Name: "region", Kind: spartan.Categorical},
		{Name: "channel", Kind: spartan.Categorical},
		{Name: "ship_class", Kind: spartan.Categorical},
	}
	b, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	tiers := []string{"basic", "plus", "pro"}
	tierPrice := map[string]float64{"basic": 19, "plus": 49, "pro": 199}
	regions := []string{"amer", "emea", "apac"}
	channels := []string{"web", "retail", "partner"}
	shipOf := map[string]string{"web": "parcel", "retail": "pickup", "partner": "freight"}
	for i := 0; i < n; i++ {
		tier := tiers[rng.Intn(len(tiers))]
		qty := float64(1 + rng.Intn(40))
		price := tierPrice[tier]
		channel := channels[rng.Intn(len(channels))]
		if err := b.AppendRow(qty, price, qty*price, tier,
			regions[rng.Intn(len(regions))], channel, shipOf[channel]); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
