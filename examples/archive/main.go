// Archival: lossless semantic compression (all tolerances zero) compared
// against plain gzip of the serialized table. Even with ē = 0, SPARTAN can
// eliminate functionally-dependent columns entirely — the CaRT predicts
// them exactly and no outliers are needed — which byte-level gzip cannot
// see.
//
//	go run ./examples/archive
package main

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"repro"
)

func main() {
	tbl := generateInventory(40000)
	fmt.Printf("inventory table: %d rows, raw %d B\n\n", tbl.NumRows(), tbl.RawSizeBytes())

	// Lossless SPARTAN: nil tolerances mean ē = 0.
	data, stats, err := spartan.CompressBytes(tbl, spartan.Options{})
	if err != nil {
		log.Fatal(err)
	}
	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := spartan.Verify(tbl, restored, nil); err != nil {
		log.Fatal(err) // nil tolerances demand exact equality
	}
	fmt.Printf("spartan (lossless): %7d B  ratio %.3f  predicted: %v\n",
		stats.CompressedBytes, stats.Ratio, stats.Predicted)

	// Plain gzip of the serialized table for comparison.
	var raw bytes.Buffer
	if err := spartan.WriteBinary(&raw, tbl); err != nil {
		log.Fatal(err)
	}
	var gz bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gzip:               %7d B  ratio %.3f\n",
		gz.Len(), float64(gz.Len())/float64(tbl.RawSizeBytes()))
}

// generateInventory synthesizes a product inventory with derived columns:
// the category is recoverable from the SKU prefix, shipping is a fixed fee
// per (region, category), the VAT class follows the category, and the
// warehouse determines the region.
func generateInventory(n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "net_cents", Kind: spartan.Numeric},
		{Name: "shipping_cents", Kind: spartan.Numeric},
		{Name: "stock", Kind: spartan.Numeric},
		{Name: "sku_prefix", Kind: spartan.Categorical},
		{Name: "category", Kind: spartan.Categorical},
		{Name: "vat_class", Kind: spartan.Categorical},
		{Name: "warehouse", Kind: spartan.Categorical},
		{Name: "region", Kind: spartan.Categorical},
	}
	b, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	categories := []string{"food", "books", "electronics", "clothing"}
	shipBase := map[string]float64{"food": 499, "books": 299, "electronics": 899, "clothing": 399}
	vatClass := map[string]string{"food": "reduced", "books": "reduced", "electronics": "standard", "clothing": "standard"}
	regionOf := map[string]string{"W1": "north", "W2": "north", "W3": "south", "W4": "south"}
	for i := 0; i < n; i++ {
		cat := categories[rng.Intn(len(categories))]
		net := float64(100 + rng.Intn(49900))
		wh := "W" + strconv.Itoa(1+rng.Intn(4))
		region := regionOf[wh]
		shipping := shipBase[cat]
		if region == "south" {
			shipping += 200
		}
		if err := b.AppendRow(net, shipping, float64(rng.Intn(500)),
			"SKU-"+cat[:2], cat, vatClass[cat], wh, region); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
