// CDR warehouse: the paper's motivating scenario (§1). A telecom provider
// stores call-detail records and wants guaranteed-error lossy compression
// for archival and for shipping data to bandwidth-constrained analysts.
//
// This example generates a synthetic CDR table, compresses it at several
// tolerance levels, and shows how the tariff structure (rate → plan, peak,
// call type) is captured by CaRT models instead of stored columns.
//
//	go run ./examples/cdr
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strconv"

	"repro"
)

func main() {
	tbl := generateCDRs(50000)
	fmt.Printf("call-detail table: %d records, %d attributes, raw %d B\n\n",
		tbl.NumRows(), tbl.NumCols(), tbl.RawSizeBytes())

	for _, frac := range []float64{0, 0.01, 0.05} {
		tol := spartan.UniformTolerances(tbl, frac, 0)
		data, stats, err := spartan.CompressBytes(tbl, spartan.Options{Tolerances: tol})
		if err != nil {
			log.Fatal(err)
		}
		restored, err := spartan.DecompressBytes(data)
		if err != nil {
			log.Fatal(err)
		}
		if err := spartan.Verify(tbl, restored, tol); err != nil {
			log.Fatal(err)
		}
		label := "lossless"
		if frac > 0 {
			label = fmt.Sprintf("±%.0f%% numeric", frac*100)
		}
		fmt.Printf("%-12s ratio %.3f  (%d B; %d columns predicted: %v)\n",
			label, stats.Ratio, stats.CompressedBytes, len(stats.Predicted), stats.Predicted)

		// Demonstrate an approximate aggregate on the restored data: the
		// total charged amount is close to the true total.
		fmt.Printf("%-12s total charge: true %.0f, restored %.0f (%.3f%% off)\n\n",
			"", totalCharge(tbl), totalCharge(restored),
			100*math.Abs(totalCharge(tbl)-totalCharge(restored))/totalCharge(tbl))
	}
}

func totalCharge(t *spartan.Table) float64 {
	col := t.ColByName("charge_cents")
	sum := 0.0
	for _, v := range col.Floats {
		sum += v
	}
	return sum
}

// generateCDRs synthesizes fixed-length call-detail records with the
// dependency structure of a real tariff: rate is a function of plan, call
// type and time of day; charge is duration × rate.
func generateCDRs(n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "start_hour", Kind: spartan.Numeric},
		{Name: "duration_sec", Kind: spartan.Numeric},
		{Name: "rate_cents_min", Kind: spartan.Numeric},
		{Name: "charge_cents", Kind: spartan.Numeric},
		{Name: "src_exchange", Kind: spartan.Categorical},
		{Name: "dst_exchange", Kind: spartan.Categorical},
		{Name: "trunk", Kind: spartan.Categorical},
		{Name: "plan", Kind: spartan.Categorical},
		{Name: "peak", Kind: spartan.Categorical},
		{Name: "call_type", Kind: spartan.Categorical},
	}
	b, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	exchanges := []string{"201", "212", "315", "408", "415", "607", "716", "908"}
	plans := []string{"basic", "saver", "business"}
	rates := map[string]float64{"basic": 10, "saver": 7, "business": 5}
	for i := 0; i < n; i++ {
		hour := float64(rng.Intn(24))
		dur := math.Round(math.Abs(rng.NormFloat64())*240 + 20)
		src := exchanges[rng.Intn(len(exchanges))]
		dst := exchanges[rng.Intn(len(exchanges))]
		callType := "local"
		if src != dst {
			callType = "long_distance"
		}
		plan := plans[rng.Intn(len(plans))]
		rate := rates[plan]
		if callType == "long_distance" {
			rate *= 2.5
		}
		peak := "peak"
		if hour >= 19 || hour < 7 {
			peak = "offpeak"
			rate *= 0.6
		}
		charge := math.Round(dur / 60 * rate)
		trunk := src + "-T" + strconv.Itoa(rng.Intn(3))
		if err := b.AppendRow(hour, dur, float64(float32(rate)), charge,
			src, dst, trunk, plan, peak, callType); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
