// Network monitoring: compress SNMP/RMON-style per-flow traffic summaries
// (the paper's second motivating workload, §1) for transfer to a
// bandwidth-constrained analysis site, then run a drill-down query on the
// restored data and compare against the exact answer.
//
//	go run ./examples/netmon
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strconv"

	"repro"
)

func main() {
	tbl := generateFlows(60000)
	fmt.Printf("flow table: %d flows, %d attributes, raw %.1f MB\n\n",
		tbl.NumRows(), tbl.NumCols(), float64(tbl.RawSizeBytes())/1e6)

	// 2% tolerance on byte/packet counters, exact protocol/interface data.
	tol := spartan.UniformTolerances(tbl, 0.02, 0)
	data, stats, err := spartan.CompressBytes(tbl, spartan.Options{Tolerances: tol})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %.1f%% of raw (%d B)\n",
		100*stats.Ratio, stats.CompressedBytes)
	fmt.Printf("predicted columns: %v\n\n", stats.Predicted)

	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := spartan.Verify(tbl, restored, tol); err != nil {
		log.Fatal(err)
	}

	// Drill-down: average bytes per flow for each protocol, computed on the
	// restored (approximate) table vs the original.
	fmt.Println("avg bytes per flow by protocol (true vs restored):")
	trueAvg := avgBytesByProto(tbl)
	gotAvg := avgBytesByProto(restored)
	for proto, want := range trueAvg {
		got := gotAvg[proto]
		fmt.Printf("  %-6s %12.0f  %12.0f  (%.3f%% off)\n",
			proto, want, got, 100*math.Abs(want-got)/want)
	}
}

func avgBytesByProto(t *spartan.Table) map[string]float64 {
	bytesCol := t.ColByName("bytes")
	protoCol := t.ColByName("protocol")
	sums := map[string]float64{}
	counts := map[string]int{}
	for r := 0; r < t.NumRows(); r++ {
		p := protoCol.Dict[protoCol.Codes[r]]
		sums[p] += bytesCol.Floats[r]
		counts[p]++
	}
	for p := range sums {
		sums[p] /= float64(counts[p])
	}
	return sums
}

// generateFlows synthesizes router flow summaries: packets and bytes are
// linked through per-protocol packet sizes, counters derive from duration
// and rate class, and interface/port fields correlate with the protocol.
func generateFlows(n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "duration_ms", Kind: spartan.Numeric},
		{Name: "packets", Kind: spartan.Numeric},
		{Name: "bytes", Kind: spartan.Numeric},
		{Name: "avg_pkt_size", Kind: spartan.Numeric},
		{Name: "protocol", Kind: spartan.Categorical},
		{Name: "src_port_class", Kind: spartan.Categorical},
		{Name: "ingress_if", Kind: spartan.Categorical},
		{Name: "egress_if", Kind: spartan.Categorical},
		{Name: "qos_class", Kind: spartan.Categorical},
	}
	b, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	protos := []string{"tcp", "udp", "icmp"}
	pktSize := map[string]float64{"tcp": 1400, "udp": 512, "icmp": 84}
	portClass := map[string][]string{
		"tcp":  {"web", "mail", "ssh", "other"},
		"udp":  {"dns", "media", "other"},
		"icmp": {"n/a"},
	}
	for i := 0; i < n; i++ {
		proto := protos[rng.Intn(len(protos))]
		durMS := math.Round(math.Abs(rng.NormFloat64())*30000 + 100)
		rate := 1 + rng.Intn(40) // packets per 100ms class
		pkts := math.Round(durMS / 100 * float64(rate))
		size := pktSize[proto]
		bytes := math.Round(pkts * size * (0.95 + 0.1*rng.Float64()))
		avgSize := math.Round(bytes / math.Max(pkts, 1))
		qos := "best_effort"
		if proto == "udp" && rng.Float64() < 0.5 {
			qos = "expedited"
		}
		ifIn := "eth" + strconv.Itoa(rng.Intn(4))
		ifOut := "eth" + strconv.Itoa((rng.Intn(4)+1)%4)
		classes := portClass[proto]
		if err := b.AppendRow(durMS, pkts, bytes, avgSize,
			proto, classes[rng.Intn(len(classes))], ifIn, ifOut, qos); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
