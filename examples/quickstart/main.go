// Quickstart: compress the 8-tuple example table from Figure 1 of the
// SPARTAN paper, then decompress it and check the error guarantees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	// The table of Figure 1(a): age, salary, assets are numeric; credit is
	// categorical.
	schema := spartan.Schema{
		{Name: "age", Kind: spartan.Numeric},
		{Name: "salary", Kind: spartan.Numeric},
		{Name: "assets", Kind: spartan.Numeric},
		{Name: "credit", Kind: spartan.Categorical},
	}
	builder, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][]any{
		{30.0, 90000.0, 200000.0, "good"},
		{50.0, 110000.0, 250000.0, "good"},
		{70.0, 35000.0, 125000.0, "poor"},
		{75.0, 15000.0, 100000.0, "poor"},
		{25.0, 50000.0, 75000.0, "good"},
		{35.0, 76000.0, 75000.0, "good"},
		{45.0, 100000.0, 175000.0, "poor"},
		{55.0, 80000.0, 150000.0, "good"},
	}
	for _, r := range rows {
		if err := builder.AppendRow(r...); err != nil {
			log.Fatal(err)
		}
	}
	tbl, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Example 1.1's tolerances: age ±2, salary ±5,000, assets ±25,000,
	// credit exact. Tolerances are positional (schema order); numeric ones
	// here are absolute values, so Quantile stays false.
	tol := spartan.Tolerances{
		{Value: 2},
		{Value: 5000},
		{Value: 25000},
		{Value: 0},
	}

	data, stats, err := spartan.CompressBytes(tbl, spartan.Options{Tolerances: tol})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw %d B -> compressed %d B (ratio %.3f)\n",
		stats.RawBytes, stats.CompressedBytes, stats.Ratio)
	fmt.Printf("predicted attributes:    %v\n", stats.Predicted)
	fmt.Printf("materialized attributes: %v\n", stats.Materialized)

	restored, err := spartan.DecompressBytes(data)
	if err != nil {
		log.Fatal(err)
	}
	if err := spartan.Verify(tbl, restored, tol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nerror bounds verified; reconstructed table:")
	fmt.Printf("%-5s %-8s %-8s %-6s\n", "age", "salary", "assets", "credit")
	for r := 0; r < restored.NumRows(); r++ {
		fmt.Printf("%-5.0f %-8.0f %-8.0f %-6s",
			restored.Float(r, 0), restored.Float(r, 1), restored.Float(r, 2),
			restored.CatString(r, 3))
		if d := math.Abs(restored.Float(r, 2) - tbl.Float(r, 2)); d > 0 {
			fmt.Printf("   (assets off by %.0f, within ±25,000)", d)
		}
		fmt.Println()
	}

	// At 8 rows a CaRT costs more than the column it would replace, so
	// nothing is predicted above. Scale the same population to 20,000
	// rows and the economics flip: credit and assets get CaRT models.
	big := scaledPopulation(20000)
	bigTol := spartan.UniformTolerances(big, 0.05, 0)
	_, bigStats, err := spartan.CompressBytes(big, spartan.Options{Tolerances: bigTol})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame schema at %d rows, 5%% tolerance: ratio %.3f, predicted %v\n",
		big.NumRows(), bigStats.Ratio, bigStats.Predicted)
}

// scaledPopulation samples the credit-table population of Figure 1:
// salary drives both the credit class and (with age) the asset level.
func scaledPopulation(n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "age", Kind: spartan.Numeric},
		{Name: "salary", Kind: spartan.Numeric},
		{Name: "assets", Kind: spartan.Numeric},
		{Name: "credit", Kind: spartan.Categorical},
	}
	builder, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		age := float64(25 + rng.Intn(50))
		salary := float64(15+rng.Intn(96)) * 1000
		credit := "good"
		if salary < 40000 || (salary >= 95000 && salary < 105000) {
			credit = "poor"
		}
		assets := math.Round(salary*2 + age*500)
		builder.MustAppendRow(age, salary, assets, credit)
	}
	t, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
