// Streaming archive: compress a table far larger than you'd want in
// memory by feeding rows in blocks. Each block is independently
// semantically compressed (its own sample, CaRT models and outliers), and
// the archive reader restores blocks one at a time — memory stays bounded
// by the block size on both sides.
//
//	go run ./examples/streaming
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"

	"repro"
)

const (
	totalRows = 120000
	blockRows = 20000
)

func main() {
	// Absolute tolerances keep every block on the same bound.
	tol := spartan.Tolerances{
		{Value: 0},    // sensor id exact (categorical)
		{Value: 0.25}, // temperature ±0.25°C
		{Value: 5},    // humidity ±5 (per mille)
		{Value: 2},    // battery ±2 mV of trend
	}

	var buf bytes.Buffer
	aw, err := spartan.NewArchiveWriter(&buf, spartan.Options{Tolerances: tol})
	if err != nil {
		log.Fatal(err)
	}
	rawTotal := 0
	rng := rand.New(rand.NewSource(9))
	for wrote := 0; wrote < totalRows; wrote += blockRows {
		block := sensorBlock(rng, blockRows)
		rawTotal += block.RawSizeBytes()
		stats, err := aw.WriteBlock(block)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %6d rows: %7d B -> %6d B (ratio %.3f, predicted %v)\n",
			block.NumRows(), stats.RawBytes, stats.CompressedBytes, stats.Ratio, stats.Predicted)
	}
	if err := aw.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchive: %d B for %d raw B (ratio %.3f, %d blocks)\n\n",
		buf.Len(), rawTotal, float64(buf.Len())/float64(rawTotal), aw.Blocks())

	// Read back block by block: bounded memory on the consumer too.
	ar, err := spartan.NewArchiveReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	blocks, rows := 0, 0
	for {
		block, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		blocks++
		rows += block.NumRows()
	}
	fmt.Printf("restored %d rows from %d blocks\n", rows, blocks)
}

// sensorBlock synthesizes one batch of sensor telemetry: temperature and
// humidity follow each sensor's site profile, battery decays slowly.
func sensorBlock(rng *rand.Rand, n int) *spartan.Table {
	schema := spartan.Schema{
		{Name: "sensor", Kind: spartan.Categorical},
		{Name: "temp_c", Kind: spartan.Numeric},
		{Name: "humidity", Kind: spartan.Numeric},
		{Name: "battery_mv", Kind: spartan.Numeric},
	}
	b, err := spartan.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		site := rng.Intn(12)
		base := 12 + float64(site)
		temp := math.Round((base+rng.Float64())*4) / 4
		hum := math.Round(600 - 10*base + 20*rng.Float64())
		batt := math.Round(3000 - 40*float64(site) - 3*rng.Float64())
		if err := b.AppendRow(fmt.Sprintf("s%02d", site), temp, hum, batt); err != nil {
			log.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}
