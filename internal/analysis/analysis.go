// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that SPARTAN's domain analyzers
// need. The repository is deliberately zero-dependency (see go.mod), so
// instead of importing x/tools this package provides the same shape —
// an Analyzer with a Run function over a type-checked Pass — plus the
// two drivers the repo uses:
//
//   - analyzertest runs an analyzer over golden files in testdata/src and
//     checks diagnostics against `// want "regexp"` comments;
//   - unitchecker speaks the `go vet -vettool` command-line protocol so
//     the whole suite runs as `go vet -vettool=$(which spartanvet) ./...`
//     (the `make lint` entry point).
//
// The analyzers themselves encode SPARTAN invariants the compiler cannot
// see: tolerance comparisons must not use raw float equality (floatcmp),
// pipeline spans must be finished (spanfinish), registry locks must be
// balanced and panic-safe (lockbalance), archive writes must not swallow
// errors (errcheckio), and metric registrations must be valid and
// consistent (metricname).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus facts and requires.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //spartanvet:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text: one summary line, a blank line, then detail.
	Doc string
	// Run executes the check on one package and reports findings via
	// pass.Reportf. A non-nil error aborts the whole vet run — reserve it
	// for internal failures, not findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report     func(Diagnostic)
	suppressed suppressionIndex
}

// NewPass assembles a pass; report receives every non-suppressed
// diagnostic. Drivers construct one pass per (package, analyzer) pair.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		report:     report,
		suppressed: indexSuppressions(fset, files),
	}
}

// Reportf records a finding unless a //spartanvet:ignore directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed.covers(p.Fset, pos, p.Analyzer.Name) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// PackageBase reports whether the pass's package import path has one of
// the given final path elements (e.g. "cart" matches both the real
// "repro/internal/cart" and an analyzer-test fixture package "cart").
// Scoped analyzers use it to restrict themselves to the packages whose
// invariants they encode.
func (p *Pass) PackageBase(names ...string) bool {
	path := p.Pkg.Path()
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//spartanvet:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — a bare directive suppresses nothing.
const IgnoreDirective = "//spartanvet:ignore"

// suppressionIndex maps file → line → analyzer names suppressed there.
type suppressionIndex map[string]map[int][]string

func indexSuppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := suppressionIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					idx[pos.Filename] = byLine
				}
				// Cover the directive's own line (trailing comment) and
				// the next line (comment-above style).
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
				byLine[pos.Line+1] = append(byLine[pos.Line+1], fields[0])
			}
		}
	}
	return idx
}

func (idx suppressionIndex) covers(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	for _, name := range idx[p.Filename][p.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
