// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that SPARTAN's domain analyzers
// need. The repository is deliberately zero-dependency (see go.mod), so
// instead of importing x/tools this package provides the same shape —
// an Analyzer with a Run function over a type-checked Pass — plus the
// two drivers the repo uses:
//
//   - analyzertest runs an analyzer over golden files in testdata/src and
//     checks diagnostics against `// want "regexp"` comments;
//   - unitchecker speaks the `go vet -vettool` command-line protocol so
//     the whole suite runs as `go vet -vettool=$(which spartanvet) ./...`
//     (the `make lint` entry point).
//
// The analyzers themselves encode SPARTAN invariants the compiler cannot
// see: tolerance comparisons must not use raw float equality (floatcmp),
// pipeline spans must be finished (spanfinish), registry locks must be
// balanced and panic-safe (lockbalance), archive writes must not swallow
// errors (errcheckio), and metric registrations must be valid and
// consistent (metricname).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus requires; package-level
// facts are supported through Pass.Facts (see FactStore).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //spartanvet:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text: one summary line, a blank line, then detail.
	Doc string
	// Run executes the check on one package and reports findings via
	// pass.Reportf. A non-nil error aborts the whole vet run — reserve it
	// for internal failures, not findings.
	Run func(pass *Pass) error
	// Facts marks a fact-producing analyzer: drivers must run it over
	// dependency packages too (in dependency order) and make each
	// package's exported facts available to downstream passes through
	// Pass.Facts. Fact producers typically emit no diagnostics.
	Facts bool
}

// RelatedLocation is one step of a finding's explanation — for the
// interprocedural analyzers, one hop of a taint path from source to
// sink. Pos locates steps inside the analyzed package; steps that live
// in an already-compiled dependency (known only through a serialized
// fact) carry a pre-resolved Position instead, with Pos == token.NoPos.
type RelatedLocation struct {
	Pos      token.Pos
	Position token.Position // used only when Pos is NoPos
	Message  string
}

// Diagnostic is one finding at a position. Related, when non-empty,
// carries the explanation steps in source→sink order; drivers surface
// them as SARIF relatedLocations and indented text lines.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Related  []RelatedLocation
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// SuppressedSink, when non-nil, receives every diagnostic a
	// //spartanvet:ignore directive swallowed, paired with the directive
	// that did it. Drivers that emit machine-readable reports (SARIF)
	// use it to publish suppressed results instead of dropping them.
	SuppressedSink func(Diagnostic, *Directive)

	// Facts, when the driver provides one, holds the serialized facts of
	// every dependency package (and receives this package's own exports).
	// Nil under drivers that do not plumb facts (analyzertest); analyzers
	// must degrade to intraprocedural reasoning in that case.
	Facts *FactStore

	report     func(Diagnostic)
	suppressed *Suppressions
}

// NewPass assembles a pass; report receives every non-suppressed
// diagnostic. Drivers construct one pass per (package, analyzer) pair.
// The pass indexes the package's suppression directives privately; a
// driver that runs several analyzers and wants to detect stale
// directives afterwards should use NewPassShared instead.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return NewPassShared(a, fset, files, pkg, info, report, IndexSuppressions(fset, files))
}

// NewPassShared is NewPass with a caller-owned suppression index, so one
// index can observe every analyzer that runs over the package and then
// report the directives none of them needed (Suppressions.Stale).
func NewPassShared(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic), sup *Suppressions) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		report:     report,
		suppressed: sup,
	}
}

// Reportf records a finding unless a //spartanvet:ignore directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed diagnostic (the way to attach Related
// taint steps), honouring suppressions exactly like Reportf. The
// Analyzer field is stamped by the pass.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	if dir := p.suppressed.covering(p.Fset, d.Pos, p.Analyzer.Name); dir != nil {
		dir.used = true
		if p.SuppressedSink != nil {
			p.SuppressedSink(d, dir)
		}
		return
	}
	p.report(d)
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// PackageBase reports whether the pass's package import path has one of
// the given final path elements (e.g. "cart" matches both the real
// "repro/internal/cart" and an analyzer-test fixture package "cart").
// Scoped analyzers use it to restrict themselves to the packages whose
// invariants they encode.
func (p *Pass) PackageBase(names ...string) bool {
	path := p.Pkg.Path()
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// IgnoreDirective is the comment prefix that suppresses a finding:
//
//	//spartanvet:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory — a bare directive suppresses nothing.
const IgnoreDirective = "//spartanvet:ignore"

// StaleIgnoreName is the pseudo-analyzer name carried by diagnostics
// about //spartanvet:ignore directives that suppressed nothing. A stale
// directive hides the next real finding on its line, so it fails lint
// like any other diagnostic. It cannot itself be suppressed.
const StaleIgnoreName = "staleignore"

// Directive is one parsed //spartanvet:ignore comment.
type Directive struct {
	Pos      token.Pos
	Analyzer string // analyzer name, or "all"
	Reason   string
	used     bool
}

// Suppressions is the per-package index of ignore directives. It records
// which directives actually swallowed a diagnostic so drivers can report
// the stale remainder after every analyzer has run.
type Suppressions struct {
	directives []*Directive
	// byLine maps file → line → directives covering that line.
	byLine map[string]map[int][]*Directive
}

// IndexSuppressions parses every //spartanvet:ignore directive in files.
// A directive covers its own line (trailing-comment style) and the line
// directly below it (comment-above style).
func IndexSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	sup := &Suppressions{byLine: map[string]map[int][]*Directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				dir := &Directive{
					Pos:      c.Pos(),
					Analyzer: fields[0],
					Reason:   strings.Join(fields[1:], " "),
				}
				sup.directives = append(sup.directives, dir)
				pos := fset.Position(c.Pos())
				byLine := sup.byLine[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*Directive{}
					sup.byLine[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], dir)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], dir)
			}
		}
	}
	return sup
}

// covering returns the first directive that suppresses analyzer at pos,
// or nil.
func (s *Suppressions) covering(fset *token.FileSet, pos token.Pos, analyzer string) *Directive {
	if s == nil || !pos.IsValid() {
		return nil
	}
	p := fset.Position(pos)
	for _, dir := range s.byLine[p.Filename][p.Line] {
		if dir.Analyzer == analyzer || dir.Analyzer == "all" {
			return dir
		}
	}
	return nil
}

// Stale reports the directives that suppressed nothing, as diagnostics
// under StaleIgnoreName. known holds the analyzer names that actually
// ran: a directive for an analyzer outside that set is not judged (the
// driver cannot know whether it would have fired). Call it only after
// every selected analyzer has run over the package; drivers that run a
// user-selected subset should pass exactly that subset, and "all"
// directives are judged only when judgeAll is set (i.e. the full suite
// ran).
func (s *Suppressions) Stale(known map[string]bool, judgeAll bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.directives {
		if dir.used {
			continue
		}
		if dir.Analyzer == "all" {
			if !judgeAll {
				continue
			}
		} else if !known[dir.Analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      dir.Pos,
			Analyzer: StaleIgnoreName,
			Message: fmt.Sprintf("unused //spartanvet:ignore %s directive: the analyzer reports nothing on this line; delete the stale suppression",
				dir.Analyzer),
		})
	}
	return out
}
