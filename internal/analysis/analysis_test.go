package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo trailing-comment style
	//spartanvet:ignore demo comment-above style
	_ = 2
	_ = 3
}
`)
	idx := indexSuppressions(fset, files)
	tf := fset.File(files[0].Pos())
	for _, tc := range []struct {
		line int
		want bool
	}{
		{4, true},  // trailing comment
		{5, true},  // the directive's own line
		{6, true},  // comment-above
		{7, false}, // out of reach
	} {
		pos := tf.LineStart(tc.line)
		if got := idx.covers(fset, pos, "demo"); got != tc.want {
			t.Errorf("line %d: covers=%v, want %v", tc.line, got, tc.want)
		}
	}
	// A different analyzer name is not covered.
	if idx.covers(fset, tf.LineStart(4), "other") {
		t.Error("directive for demo must not cover analyzer other")
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo
}
`)
	idx := indexSuppressions(fset, files)
	tf := fset.File(files[0].Pos())
	if idx.covers(fset, tf.LineStart(4), "demo") {
		t.Error("a reasonless ignore directive must be inert")
	}
}

func TestPackageBase(t *testing.T) {
	for _, tc := range []struct {
		path string
		name string
		want bool
	}{
		{"repro/internal/cart", "cart", true},
		{"cart", "cart", true},
		{"repro/internal/fascicle", "cart", false},
		{"repro/internal/cartoon", "cart", false},
	} {
		p := &Pass{Pkg: types.NewPackage(tc.path, "x")}
		if got := p.PackageBase(tc.name); got != tc.want {
			t.Errorf("PackageBase(%q) on %q = %v, want %v", tc.name, tc.path, got, tc.want)
		}
	}
}

func TestReportfSuppressed(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo reason here
	_ = 2
	_ = 3
}
`)
	a := &Analyzer{Name: "demo"}
	var got []Diagnostic
	pass := NewPass(a, fset, files, types.NewPackage("p", "p"), &types.Info{}, func(d Diagnostic) {
		got = append(got, d)
	})
	tf := fset.File(files[0].Pos())
	pass.Reportf(tf.LineStart(4), "suppressed")
	pass.Reportf(tf.LineStart(6), "reported")
	if len(got) != 1 || got[0].Message != "reported" {
		t.Fatalf("diagnostics = %+v, want exactly the unsuppressed one", got)
	}
	if got[0].Analyzer != "demo" {
		t.Fatalf("diagnostic analyzer = %q, want demo", got[0].Analyzer)
	}
}
