package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo trailing-comment style
	//spartanvet:ignore demo comment-above style
	_ = 2
	_ = 3
}
`)
	idx := IndexSuppressions(fset, files)
	tf := fset.File(files[0].Pos())
	for _, tc := range []struct {
		line int
		want bool
	}{
		{4, true},  // trailing comment
		{5, true},  // the directive's own line
		{6, true},  // comment-above
		{7, false}, // out of reach
	} {
		pos := tf.LineStart(tc.line)
		if got := idx.covering(fset, pos, "demo") != nil; got != tc.want {
			t.Errorf("line %d: covered=%v, want %v", tc.line, got, tc.want)
		}
	}
	// A different analyzer name is not covered.
	if idx.covering(fset, tf.LineStart(4), "other") != nil {
		t.Error("directive for demo must not cover analyzer other")
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo
}
`)
	idx := IndexSuppressions(fset, files)
	tf := fset.File(files[0].Pos())
	if idx.covering(fset, tf.LineStart(4), "demo") != nil {
		t.Error("a reasonless ignore directive must be inert")
	}
}

func TestPackageBase(t *testing.T) {
	for _, tc := range []struct {
		path string
		name string
		want bool
	}{
		{"repro/internal/cart", "cart", true},
		{"cart", "cart", true},
		{"repro/internal/fascicle", "cart", false},
		{"repro/internal/cartoon", "cart", false},
	} {
		p := &Pass{Pkg: types.NewPackage(tc.path, "x")}
		if got := p.PackageBase(tc.name); got != tc.want {
			t.Errorf("PackageBase(%q) on %q = %v, want %v", tc.name, tc.path, got, tc.want)
		}
	}
}

// TestStaleDirectives checks both placements: a trailing (end-of-line)
// directive whose analyzer fires on its line is used; a comment-above
// directive whose analyzer never fires on the next line is stale.
func TestStaleDirectives(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo trailing: the analyzer fires here
	//spartanvet:ignore demo preceding-line: nothing fires below
	_ = 2
	//spartanvet:ignore other a directive for an analyzer that did not run
	_ = 3
}
`)
	a := &Analyzer{Name: "demo"}
	sup := IndexSuppressions(fset, files)
	pass := NewPassShared(a, fset, files, types.NewPackage("p", "p"), &types.Info{}, func(Diagnostic) {
		t.Error("the only report is suppressed; nothing should reach the sink")
	}, sup)
	tf := fset.File(files[0].Pos())
	pass.Reportf(tf.LineStart(4), "suppressed by the trailing directive")

	stale := sup.Stale(map[string]bool{"demo": true}, false)
	if len(stale) != 1 {
		t.Fatalf("stale = %+v, want exactly the preceding-line directive", stale)
	}
	if got := fset.Position(stale[0].Pos).Line; got != 5 {
		t.Errorf("stale directive reported at line %d, want 5", got)
	}
	if stale[0].Analyzer != StaleIgnoreName {
		t.Errorf("stale diagnostic analyzer = %q, want %q", stale[0].Analyzer, StaleIgnoreName)
	}
}

// TestStaleEndOfLineDirective is the mirror case: a trailing directive
// with no matching finding on its own line (or the next) is stale.
func TestStaleEndOfLineDirective(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo end-of-line: nothing fires here
}
`)
	sup := IndexSuppressions(fset, files)
	// No analyzer reports anything.
	stale := sup.Stale(map[string]bool{"demo": true}, false)
	if len(stale) != 1 {
		t.Fatalf("stale = %+v, want the end-of-line directive", stale)
	}
	if got := fset.Position(stale[0].Pos).Line; got != 4 {
		t.Errorf("stale directive reported at line %d, want 4", got)
	}
}

// TestStaleAllDirective: `ignore all` is judged only under a full-suite
// run (judgeAll), since any analyzer could have been its target.
func TestStaleAllDirective(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore all blanket suppression that suppresses nothing
}
`)
	sup := IndexSuppressions(fset, files)
	if got := sup.Stale(map[string]bool{"demo": true}, false); len(got) != 0 {
		t.Errorf("partial run judged an all-directive: %+v", got)
	}
	if got := sup.Stale(map[string]bool{"demo": true}, true); len(got) != 1 {
		t.Errorf("full run must report the unused all-directive, got %+v", got)
	}
}

// TestSuppressedSink: swallowed diagnostics are forwarded with their
// directive so SARIF emitters can publish them as suppressed results.
func TestSuppressedSink(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo a justified discard
}
`)
	a := &Analyzer{Name: "demo"}
	sup := IndexSuppressions(fset, files)
	pass := NewPassShared(a, fset, files, types.NewPackage("p", "p"), &types.Info{}, func(Diagnostic) {
		t.Error("suppressed diagnostic must not reach the report sink")
	}, sup)
	var gotDiag []Diagnostic
	var gotDir []*Directive
	pass.SuppressedSink = func(d Diagnostic, dir *Directive) {
		gotDiag = append(gotDiag, d)
		gotDir = append(gotDir, dir)
	}
	tf := fset.File(files[0].Pos())
	pass.Reportf(tf.LineStart(4), "swallowed")
	if len(gotDiag) != 1 || gotDiag[0].Message != "swallowed" {
		t.Fatalf("suppressed sink diagnostics = %+v", gotDiag)
	}
	if gotDir[0].Reason != "a justified discard" {
		t.Errorf("directive reason = %q", gotDir[0].Reason)
	}
	if len(sup.Stale(map[string]bool{"demo": true}, true)) != 0 {
		t.Error("a directive that swallowed a diagnostic must not be stale")
	}
}

func TestReportfSuppressed(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 //spartanvet:ignore demo reason here
	_ = 2
	_ = 3
}
`)
	a := &Analyzer{Name: "demo"}
	var got []Diagnostic
	pass := NewPass(a, fset, files, types.NewPackage("p", "p"), &types.Info{}, func(d Diagnostic) {
		got = append(got, d)
	})
	tf := fset.File(files[0].Pos())
	pass.Reportf(tf.LineStart(4), "suppressed")
	pass.Reportf(tf.LineStart(6), "reported")
	if len(got) != 1 || got[0].Message != "reported" {
		t.Fatalf("diagnostics = %+v, want exactly the unsuppressed one", got)
	}
	if got[0].Analyzer != "demo" {
		t.Fatalf("diagnostic analyzer = %q, want demo", got[0].Analyzer)
	}
}
