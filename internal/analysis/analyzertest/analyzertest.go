// Package analyzertest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against expectations
// written in the sources, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	if a == b { // want "compares floats"
//
// Each `// want` comment carries one or more quoted regexps that must
// match diagnostics reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, fail the
// test. Fixture packages live in testdata/src/<pkg> and may import only
// the standard library (type-checking uses the source importer, so no
// compiled artifacts are needed).
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run checks analyzer a against every named fixture package under
// dir/src (dir is typically "testdata").
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPackage(t, filepath.Join(dir, "src", pkg), pkg, a)
		})
	}
}

func runPackage(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	// Type-check under the fixture's package-clause name rather than the
	// directory name, so one analyzer's fixtures can live in their own
	// directory while still matching a scoped analyzer's PackageBase
	// (e.g. testdata/src/hotalloc declares `package codec`).
	if name := files[0].Name.Name; name != "" {
		pkgPath = name
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	sup := analysis.IndexSuppressions(fset, files)
	pass := analysis.NewPassShared(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	}, sup)
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	// Directives for this analyzer that suppressed nothing are findings
	// too (matched against want comments like real diagnostics), so
	// fixtures cover the staleness check end to end.
	diags = append(diags, sup.Stale(map[string]bool{a.Name: true}, false)...)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	keys := make([]lineKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// wantRE extracts the quoted regexps of one `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	out := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRE.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range matches {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}
