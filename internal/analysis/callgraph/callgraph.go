// Package callgraph builds a per-package call graph over go/ast and
// go/types, the first rung of spartanvet's interprocedural layer. Edges
// resolve statically for package-level functions and methods on
// concrete receivers; interface dispatch and function values are kept
// as conservative dynamic edges (the declared callee when one exists,
// nil otherwise). SCCs() groups the in-package nodes into strongly
// connected components in bottom-up order — callees before callers —
// which is the evaluation order internal/analysis/summary needs to
// compute per-function summaries with recursion handled by fixpoint
// iteration inside each component.
//
// Cross-package edges carry the callee's *types.Func but no Node;
// summaries for those come from the fact store (see the summary
// package), computed when the unitchecker visited the dependency.
package callgraph

import (
	"go/ast"
	"go/types"
)

// Node is one function declaration with a body in the package under
// analysis.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Out lists the calls lexically inside Decl, including calls made
	// from function literals declared within it (the literal's frame is
	// attributed to the declaring function — good enough for SCC
	// ordering, and documented as such for summary computation, which
	// does not descend into literals).
	Out []*Edge
}

// Edge is one call site.
type Edge struct {
	Site *ast.CallExpr
	// Callee is the statically declared target: the package function or
	// the method named at the site. Nil when the target is a function
	// value (variable, field, returned closure, immediately-invoked
	// literal).
	Callee *types.Func
	// Node is the in-package Node for Callee, nil for cross-package or
	// dynamic targets.
	Node *Node
	// Dynamic marks calls whose runtime target the graph cannot pin
	// down: interface method dispatch (Callee is the interface method)
	// and function values (Callee is nil). Consumers must treat these
	// conservatively.
	Dynamic bool
}

// Graph is the package call graph.
type Graph struct {
	// Nodes in source declaration order.
	Nodes  []*Node
	byFunc map[*types.Func]*Node
}

// Build constructs the call graph for one type-checked package.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{byFunc: map[*types.Func]*Node{}}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Func: fn, Decl: fd}
			g.Nodes = append(g.Nodes, n)
			g.byFunc[fn] = n
		}
	}
	for _, n := range g.Nodes {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, dynamic, isCall := StaticCallee(info, call)
			if !isCall {
				return true // conversion or builtin
			}
			e := &Edge{Site: call, Callee: callee, Dynamic: dynamic}
			if callee != nil && !dynamic {
				e.Node = g.byFunc[callee]
			}
			n.Out = append(n.Out, e)
			return true
		})
	}
	return g
}

// NodeOf returns the node declaring fn, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	return g.byFunc[fn]
}

// StaticCallee resolves the target of a call expression. isCall is
// false for conversions and builtins (not function calls at all).
// Otherwise callee is the declared target when one is named at the
// site, and dynamic reports whether the runtime target may differ:
// interface dispatch (callee = the interface method) or a function
// value (callee = nil).
func StaticCallee(info *types.Info, call *ast.CallExpr) (callee *types.Func, dynamic, isCall bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return obj, false, true
		case *types.Builtin:
			return nil, false, false
		case *types.TypeName:
			return nil, false, false // conversion
		case *types.Var:
			return nil, true, true // function-typed variable
		case nil:
			return nil, false, false
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return m, true, true
				}
				return m, false, true
			case types.FieldVal:
				return nil, true, true // function-typed struct field
			}
			return nil, true, true
		}
		// Qualified identifier pkg.F, pkg.T (conversion), or method
		// expression T.M.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return obj, false, true
		case *types.TypeName:
			return nil, false, false
		case *types.Var:
			return nil, true, true
		}
	case *ast.FuncLit:
		return nil, true, true // immediately-invoked literal
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr,
		*ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return nil, false, false // composite-type conversion
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation F[T](...) — resolve the instantiated
		// identifier if it names a function.
		var id *ast.Ident
		switch x := fun.(type) {
		case *ast.IndexExpr:
			id, _ = unparen(x.X).(*ast.Ident)
		case *ast.IndexListExpr:
			id, _ = unparen(x.X).(*ast.Ident)
		}
		if id != nil {
			if fn, ok := info.Uses[id].(*types.Func); ok {
				return fn, false, true
			}
		}
		return nil, true, true
	}
	return nil, true, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// SCCs partitions the in-package nodes into strongly connected
// components and returns them bottom-up: every component appears after
// all components it calls into. This is exactly Tarjan's emission
// order, so summaries can be computed in one pass over the result with
// a fixpoint loop only inside each (possibly recursive) component.
func (g *Graph) SCCs() [][]*Node {
	t := &tarjan{
		index:   map[*Node]int{},
		lowlink: map[*Node]int{},
		onStack: map[*Node]bool{},
	}
	for _, n := range g.Nodes {
		if _, seen := t.index[n]; !seen {
			t.strongconnect(n)
		}
	}
	return t.sccs
}

type tarjan struct {
	counter int
	index   map[*Node]int
	lowlink map[*Node]int
	stack   []*Node
	onStack map[*Node]bool
	sccs    [][]*Node
}

func (t *tarjan) strongconnect(n *Node) {
	t.index[n] = t.counter
	t.lowlink[n] = t.counter
	t.counter++
	t.stack = append(t.stack, n)
	t.onStack[n] = true

	for _, e := range n.Out {
		m := e.Node
		if m == nil {
			continue
		}
		if _, seen := t.index[m]; !seen {
			t.strongconnect(m)
			t.lowlink[n] = min(t.lowlink[n], t.lowlink[m])
		} else if t.onStack[m] {
			t.lowlink[n] = min(t.lowlink[n], t.index[m])
		}
	}

	if t.lowlink[n] == t.index[n] {
		var scc []*Node
		for {
			m := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onStack[m] = false
			scc = append(scc, m)
			if m == n {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}
