package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func load(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

func build(t *testing.T, src string) *Graph {
	t.Helper()
	f, info := load(t, src)
	return Build([]*ast.File{f}, info)
}

// edges flattens a node's outgoing edges to "callee" /
// "callee?" (dynamic with declared target) / "?" (fully dynamic).
func edges(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		switch {
		case e.Callee != nil && e.Dynamic:
			out = append(out, e.Callee.Name()+"?")
		case e.Callee != nil:
			out = append(out, e.Callee.Name())
		default:
			out = append(out, "?")
		}
	}
	return out
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

func TestStaticResolution(t *testing.T) {
	g := build(t, `package p

type T struct{}

func (T) M() int  { return helper() }
func (*T) P()     {}
func helper() int { return 0 }

func top() {
	var t T
	_ = t.M()
	t.P()
	_ = helper()
	_ = len("x")      // builtin: no edge
	_ = int64(0)      // conversion: no edge
}
`)
	top := nodeByName(t, g, "top")
	got := edges(top)
	want := []string{"M", "P", "helper"}
	if len(got) != len(want) {
		t.Fatalf("top edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("top edges = %v, want %v", got, want)
		}
	}
	// Static in-package edges must link to the callee's node.
	for _, e := range top.Out {
		if e.Node == nil {
			t.Errorf("edge to %s has no in-package node", e.Callee.Name())
		}
	}
	// M's call to helper is also in the graph.
	m := nodeByName(t, g, "M")
	if got := edges(m); len(got) != 1 || got[0] != "helper" {
		t.Fatalf("M edges = %v, want [helper]", got)
	}
}

func TestDynamicEdges(t *testing.T) {
	g := build(t, `package p

type I interface{ M() }

type C struct{ fn func() }

func viaIface(i I)    { i.M() }
func viaValue(f func()) { f() }
func viaField(c C)    { c.fn() }
func viaLit()         { func() {}() }
`)
	for name, wantCallee := range map[string]bool{
		"viaIface": true,  // declared interface method is known
		"viaValue": false, // pure function value
		"viaField": false,
		"viaLit":   false,
	} {
		n := nodeByName(t, g, name)
		if len(n.Out) != 1 {
			t.Fatalf("%s: %d edges, want 1", name, len(n.Out))
		}
		e := n.Out[0]
		if !e.Dynamic {
			t.Errorf("%s: edge not dynamic", name)
		}
		if (e.Callee != nil) != wantCallee {
			t.Errorf("%s: callee = %v, want present=%v", name, e.Callee, wantCallee)
		}
		if e.Node != nil {
			t.Errorf("%s: dynamic edge must not bind an in-package node", name)
		}
	}
}

func TestFuncLitCallsAttributedToDecl(t *testing.T) {
	g := build(t, `package p

func helper() {}

func spawn() {
	go func() { helper() }()
}
`)
	n := nodeByName(t, g, "spawn")
	var sawHelper bool
	for _, e := range n.Out {
		if e.Callee != nil && e.Callee.Name() == "helper" {
			sawHelper = true
		}
	}
	if !sawHelper {
		t.Fatalf("spawn edges = %v: call inside func literal not attributed to spawn", edges(n))
	}
}

// TestSCCOrder checks the bottom-up guarantee: every SCC appears after
// the SCCs it calls into, and mutually recursive functions share one.
func TestSCCOrder(t *testing.T) {
	g := build(t, `package p

func leaf() int { return 1 }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func root() int {
	if even(3) {
		return leaf()
	}
	return leaf() + 1
}
`)
	sccs := g.SCCs()
	pos := map[string]int{} // func name → SCC index
	for i, scc := range sccs {
		for _, n := range scc {
			pos[n.Func.Name()] = i
		}
	}
	if pos["even"] != pos["odd"] {
		t.Fatalf("even (scc %d) and odd (scc %d) must share an SCC", pos["even"], pos["odd"])
	}
	if !(pos["leaf"] < pos["root"]) {
		t.Errorf("leaf scc %d not before root scc %d", pos["leaf"], pos["root"])
	}
	if !(pos["even"] < pos["root"]) {
		t.Errorf("even/odd scc %d not before root scc %d", pos["even"], pos["root"])
	}
	// Self-recursion is a single-node SCC, still ordered before callers.
	g2 := build(t, `package p
func fact(n int) int {
	if n <= 1 {
		return 1
	}
	return n * fact(n-1)
}
func use() int { return fact(5) }
`)
	sccs2 := g2.SCCs()
	pos2 := map[string]int{}
	for i, scc := range sccs2 {
		for _, n := range scc {
			pos2[n.Func.Name()] = i
		}
	}
	if !(pos2["fact"] < pos2["use"]) {
		t.Errorf("fact scc %d not before use scc %d", pos2["fact"], pos2["use"])
	}
}
