// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, on the standard library alone. It is the foundation
// of spartanvet's flow-sensitive analyzers (nilflow, deferloop,
// wgbalance, hotalloc): the AST pattern checks of the first analyzer
// generation cannot see that a span leaks only on the error path, or
// that a WaitGroup Done is skipped when a branch panics — a CFG can.
//
// The graph decomposes a *ast.BlockStmt into basic blocks of
// straight-line statements connected by edges for every Go control
// construct: if/else, for (all three clauses), range, switch with
// fallthrough, type switch, select (with and without default), labeled
// break/continue, goto, return, and calls that never return (panic,
// os.Exit, log.Fatal*, runtime.Goexit). Function literals are opaque:
// a FuncLit is an expression in its enclosing block, and its own body
// gets its own CFG.
//
// Block 0 is the entry, block 1 the exit; every return edge targets the
// exit. Blocks whose terminator cannot complete (panic and friends) have
// no successors. Deferred calls do not alter edges — they are collected
// in CFG.Defers so analyzers can reason about them explicitly.
package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every basic block; Blocks[0] is the entry and
	// Blocks[1] the synthetic exit that all returns target. Blocks
	// created for unreachable code have no predecessors.
	Blocks []*Block
	// Defers lists every defer statement in the function, in source
	// order. Deferred calls run at every exit (including panics), which
	// no edge set can express; analyzers consult this list instead.
	Defers []*ast.DeferStmt
}

// Block is a maximal run of straight-line statements.
type Block struct {
	Index int
	// Kind names the construct that created the block ("entry", "exit",
	// "if.then", "for.body", "select.comm", ...) for dumps and tests.
	Kind string
	// Nodes holds the block's statements and decomposed expressions in
	// execution order: plain statements appear whole, while control
	// statements contribute only the parts evaluated in this block (an
	// if condition, a switch tag, a whole RangeStmt in its loop header).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// NoReturnCall reports whether call can never return: the panic builtin
// and the conventional process/goroutine terminators. The spartanvet
// analyzers use it so code after `log.Fatal` is not treated as a live
// path.
func NoReturnCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		recv, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch recv.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
		// testing.T/B/F failure methods stop the goroutine via
		// runtime.Goexit. The builder has no type information, so this
		// is syntactic: Fatal* / FailNow on any receiver (the names are
		// unambiguous), Skip* only on the conventional t/b/f/tb
		// receivers (Skip is a common method name elsewhere).
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "FailNow":
			return true
		case "Skip", "Skipf", "SkipNow":
			switch recv.Name {
			case "t", "b", "f", "tb":
				return true
			}
		}
	}
	return false
}

// New builds the CFG of body. It never fails: syntactically valid
// bodies always decompose, and unreachable statements land in blocks
// with no predecessors.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.exit = exit
	b.current = entry
	b.stmt(body)
	// Falling off the end of the body is an implicit return.
	b.jump(exit)
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

type builder struct {
	cfg     *CFG
	exit    *Block
	current *Block
	// targets is the innermost enclosing break/continue/fallthrough
	// scope; labels maps label names to their pre-created blocks.
	targets *targets
	labels  map[string]*labelBlock
}

// targets is one level of the break/continue/fallthrough scope stack.
type targets struct {
	outer        *targets
	breakTarget  *Block
	contTarget   *Block
	fallthroughT *Block
}

// labelBlock holds the jump targets a label can name.
type labelBlock struct {
	gotoTarget  *Block
	breakTarget *Block
	contTarget  *Block
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge current→target and leaves current dead; start a new
// block before emitting more nodes.
func (b *builder) jump(target *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, target)
		b.current = nil
	}
}

// startBlock makes blk the current block (for code following a jump).
func (b *builder) startBlock(blk *Block) {
	b.current = blk
}

// add appends a node to the current block, reviving an unreachable
// block for dead code so the statements are still recorded.
func (b *builder) add(n ast.Node) {
	if b.current == nil {
		b.current = b.newBlock("unreachable")
	}
	b.current.Nodes = append(b.current.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s, "")

	case *ast.RangeStmt:
		b.rangeStmt(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && NoReturnCall(call) {
			// The statement cannot complete; the block dead-ends.
			b.current = nil
		}

	case *ast.EmptyStmt:
		// no node

	default:
		// Assignments, declarations, sends, go, inc/dec: straight-line.
		b.add(s)
	}
}

// branch resolves break/continue/goto/fallthrough to its target block.
func (b *builder) branch(s *ast.BranchStmt) {
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				target = lb.breakTarget
			}
		} else {
			for t := b.targets; t != nil; t = t.outer {
				if t.breakTarget != nil {
					target = t.breakTarget
					break
				}
			}
		}
	case token.CONTINUE:
		if s.Label != nil {
			if lb := b.labels[s.Label.Name]; lb != nil {
				target = lb.contTarget
			}
		} else {
			for t := b.targets; t != nil; t = t.outer {
				if t.contTarget != nil {
					target = t.contTarget
					break
				}
			}
		}
	case token.FALLTHROUGH:
		for t := b.targets; t != nil; t = t.outer {
			if t.fallthroughT != nil {
				target = t.fallthroughT
				break
			}
		}
	case token.GOTO:
		if s.Label != nil {
			target = b.labelFor(s.Label.Name).gotoTarget
		}
	}
	b.add(s)
	if target != nil {
		b.jump(target)
	} else {
		b.current = nil // malformed branch: treat as dead end
	}
}

// labelFor returns (creating on first use, for forward gotos) the label
// record for name.
func (b *builder) labelFor(name string) *labelBlock {
	if b.labels == nil {
		b.labels = map[string]*labelBlock{}
	}
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlock{gotoTarget: b.newBlock("label." + name)}
		b.labels[name] = lb
	}
	return lb
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelFor(s.Label.Name)
	b.jump(lb.gotoTarget)
	b.startBlock(lb.gotoTarget)
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		// A label on a plain statement is only a goto target.
		b.stmt(s.Stmt)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.current
	thenBlock := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.jump(thenBlock)

	elseBlock := done
	if s.Else != nil {
		elseBlock = b.newBlock("if.else")
	}
	condBlock.Succs = append(condBlock.Succs, elseBlock)

	b.startBlock(thenBlock)
	b.stmt(s.Body)
	b.jump(done)

	if s.Else != nil {
		b.startBlock(elseBlock)
		b.stmt(s.Else)
		b.jump(done)
	}
	b.startBlock(done)
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock("for.header")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := header
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jump(header)
	b.startBlock(header)
	if s.Cond != nil {
		b.add(s.Cond)
		header.Succs = append(header.Succs, body, done)
		b.current = nil
	} else {
		b.jump(body) // `for {` loops unconditionally
	}
	b.setLabel(label, done, post)
	b.targets = &targets{outer: b.targets, breakTarget: done, contTarget: post}
	b.startBlock(body)
	b.stmt(s.Body)
	b.jump(post)
	b.targets = b.targets.outer
	if s.Post != nil {
		b.startBlock(post)
		b.stmt(s.Post)
		b.jump(header)
	}
	b.startBlock(done)
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The range expression is evaluated once, before iteration; the
	// header block carries the whole RangeStmt as its node (per-iteration
	// key/value assignment happens there).
	header := b.newBlock("range.header")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.jump(header)
	b.startBlock(header)
	b.add(s)
	b.current.Succs = append(b.current.Succs, body, done)
	b.current = nil
	b.setLabel(label, done, header)
	b.targets = &targets{outer: b.targets, breakTarget: done, contTarget: header}
	b.startBlock(body)
	b.stmt(s.Body)
	b.jump(header)
	b.targets = b.targets.outer
	b.startBlock(done)
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.current
	if head == nil {
		head = b.newBlock("switch.head")
		b.startBlock(head)
	}
	done := b.newBlock("switch.done")
	b.setLabel(label, done, nil)
	b.caseClauses(head, s.Body, done, "switch")
	b.startBlock(done)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Assign != nil {
		b.add(s.Assign)
	}
	head := b.current
	if head == nil {
		head = b.newBlock("typeswitch.head")
		b.startBlock(head)
	}
	done := b.newBlock("typeswitch.done")
	b.setLabel(label, done, nil)
	b.caseClauses(head, s.Body, done, "typeswitch")
	b.startBlock(done)
}

// caseClauses wires head to one block per case clause; fallthrough in a
// clause body targets the next clause's body. Without a default clause,
// head also flows to done.
func (b *builder) caseClauses(head *Block, body *ast.BlockStmt, done *Block, kind string) {
	var clauses []*ast.CaseClause
	for _, st := range body.List {
		if cc, ok := st.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		name := kind + ".case"
		if cc.List == nil {
			name = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(name)
		head.Succs = append(head.Succs, blocks[i])
	}
	if !hasDefault {
		head.Succs = append(head.Succs, done)
	}
	b.current = nil
	for i, cc := range clauses {
		var ft *Block
		if i+1 < len(clauses) {
			ft = blocks[i+1]
		}
		b.targets = &targets{outer: b.targets, breakTarget: done, fallthroughT: ft}
		b.startBlock(blocks[i])
		for _, n := range cc.List {
			b.add(n) // case expressions are evaluated in the clause block
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(done)
		b.targets = b.targets.outer
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.current
	if head == nil {
		head = b.newBlock("select.head")
	}
	b.current = nil
	done := b.newBlock("select.done")
	b.setLabel(label, done, nil)
	var clauses []*ast.CommClause
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CommClause); ok {
			clauses = append(clauses, cc)
		}
	}
	// A select blocks until one comm proceeds, so head never reaches
	// done directly — even without a default clause.
	for _, cc := range clauses {
		name := "select.comm"
		if cc.Comm == nil {
			name = "select.default"
		}
		blk := b.newBlock(name)
		head.Succs = append(head.Succs, blk)
		b.targets = &targets{outer: b.targets, breakTarget: done}
		b.startBlock(blk)
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(done)
		b.targets = b.targets.outer
	}
	b.startBlock(done)
}

// setLabel records break/continue targets for the innermost pending
// label, if the statement being built was labeled.
func (b *builder) setLabel(label string, breakT, contT *Block) {
	if label == "" {
		return
	}
	lb := b.labelFor(label)
	lb.breakTarget = breakT
	lb.contTarget = contT
}

// Reachable returns, per block index, whether the block is reachable
// from the entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(g.Blocks) > 0 {
		walk(g.Blocks[0])
	}
	return seen
}

// Dominators computes the immediate dominator of every reachable block
// (idom[entry] = -1; unreachable blocks also get -1) by iterating the
// classic dominance dataflow to a fixpoint — SPARTAN function CFGs are
// small, so the simple algorithm is plenty.
func (g *CFG) Dominators() []int {
	n := len(g.Blocks)
	reach := g.Reachable()
	// dom[i] = set of blocks dominating i, as a bitvector.
	words := (n + 63) / 64
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		if reach[i] {
			full[i/64] |= 1 << (i % 64)
		}
	}
	dom := make([][]uint64, n)
	for i := range dom {
		dom[i] = make([]uint64, words)
		if i == 0 {
			dom[i][0] = 1 // entry dominates itself only
		} else {
			copy(dom[i], full)
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			if !reach[i] {
				continue
			}
			next := make([]uint64, words)
			copy(next, full)
			any := false
			for _, p := range g.Blocks[i].Preds {
				if !reach[p.Index] {
					continue
				}
				any = true
				for w := range next {
					next[w] &= dom[p.Index][w]
				}
			}
			if !any {
				next = make([]uint64, words)
			}
			next[i/64] |= 1 << (i % 64)
			for w := range next {
				if next[w] != dom[i][w] {
					dom[i] = next
					changed = true
					break
				}
			}
		}
	}
	// Extract immediate dominators: the strict dominator that is itself
	// dominated by every other strict dominator.
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	for i := 1; i < n; i++ {
		if !reach[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i || dom[i][j/64]&(1<<(j%64)) == 0 {
				continue
			}
			// j strictly dominates i; is it the closest? It is iff
			// every other strict dominator k of i also dominates j
			// (i.e. sits above j on the dominator chain).
			isIdom := true
			for k := 0; k < n; k++ {
				if k == i || k == j || dom[i][k/64]&(1<<(k%64)) == 0 {
					continue
				}
				if dom[j][k/64]&(1<<(k%64)) == 0 {
					isIdom = false // k is a strict dominator not above j
					break
				}
			}
			if isIdom {
				idom[i] = j
				break
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators). Every block dominates itself.
func Dominates(idom []int, a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = idom[b]
	}
	return false
}

// LoopBlocks returns, per block index, whether the block lies on a
// cycle — i.e. executes more than once per function call. Computed via
// Tarjan's strongly connected components over the reachable subgraph.
func (g *CFG) LoopBlocks() []bool {
	n := len(g.Blocks)
	inLoop := make([]bool, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, s := range g.Blocks[v].Succs {
			w := s.Index
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				for _, w := range scc {
					inLoop[w] = true
				}
			} else {
				// Single-node SCC is a loop only on a self-edge.
				for _, s := range g.Blocks[scc[0]].Succs {
					if s.Index == scc[0] {
						inLoop[scc[0]] = true
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if index[i] == -1 {
			strongconnect(i)
		}
	}
	return inLoop
}

// BlockOf returns the block whose Nodes contain a node with the given
// position, or nil. Analyzers use it to locate the block of a statement
// they found by AST walking. When several blocks' nodes span the
// position (a range.header carries the whole RangeStmt, which encloses
// every statement of the range body), the innermost — smallest-span —
// node wins, so body statements resolve to their body block rather
// than the enclosing header.
func (g *CFG) BlockOf(pos token.Pos) *Block {
	var best *Block
	var bestSpan token.Pos
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				span := n.End() - n.Pos()
				if best == nil || span < bestSpan {
					best, bestSpan = b, span
				}
			}
		}
	}
	return best
}

// Format renders the graph for golden tests and the spartanvet
// -debug.cfg flag: one paragraph per block with its kind, nodes (as
// source), and successor indices.
func (g *CFG) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, ".%d %s\n", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", formatNode(fset, n))
		}
		if len(b.Succs) > 0 {
			ids := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				ids[i] = fmt.Sprintf("%d", s.Index)
			}
			fmt.Fprintf(&sb, "\t→ %s\n", strings.Join(ids, " "))
		}
	}
	return sb.String()
}

func formatNode(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Render only the header; the body is decomposed into blocks.
		head := "range " + formatNode(fset, r.X)
		if r.Key != nil {
			assign := "="
			if r.Tok == token.DEFINE {
				assign = ":="
			}
			kv := formatNode(fset, r.Key)
			if r.Value != nil {
				kv += ", " + formatNode(fset, r.Value)
			}
			head = kv + " " + assign + " " + head
		}
		return "for " + head
	}
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	// Keep dumps one-line even for multi-line nodes (e.g. defer of a
	// multi-line closure).
	out := sb.String()
	if i := strings.IndexByte(out, '\n'); i >= 0 {
		out = out[:i] + " …"
	}
	return out
}
