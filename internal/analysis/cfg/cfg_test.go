package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src (a file containing one function) and returns the
// CFG of the first function declaration plus the fileset.
func buildFunc(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Body), fset
		}
	}
	t.Fatal("no function in fixture")
	return nil, nil
}

// checkDump compares the formatted graph against a golden dump. Golden
// lines use tabs exactly as Format emits them.
func checkDump(t *testing.T, g *CFG, fset *token.FileSet, want string) {
	t.Helper()
	got := g.Format(fset)
	if got != want {
		t.Errorf("CFG dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestIfElse(t *testing.T) {
	g, fset := buildFunc(t, `
func f(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}`)
	checkDump(t, g, fset, `.0 entry
	a > 0
	→ 2 4
.1 exit
.2 if.then
	a++
	→ 3
.3 if.done
	return a
	→ 1
.4 if.else
	a--
	→ 3
`)
}

func TestLabeledLoops(t *testing.T) {
	g, fset := buildFunc(t, `
func f(rows [][]int) int {
	total := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	return total
}`)
	checkDump(t, g, fset, `.0 entry
	total := 0
	→ 2
.1 exit
.2 label.outer
	i := 0
	→ 3
.3 for.header
	i < len(rows)
	→ 4 5
.4 for.body
	→ 7
.5 for.done
	return total
	→ 1
.6 for.post
	i++
	→ 3
.7 range.header
	for _, v := range rows[i]
	→ 8 9
.8 range.body
	v < 0
	→ 10 11
.9 range.done
	→ 6
.10 if.then
	continue outer
	→ 6
.11 if.done
	v == 99
	→ 12 13
.12 if.then
	break outer
	→ 5
.13 if.done
	total += v
	→ 7
`)
	// The two loop headers and bodies are cyclic; entry/exit/done are not.
	inLoop := g.LoopBlocks()
	for i, want := range map[int]bool{0: false, 1: false, 3: true, 7: true, 8: true, 5: false} {
		if inLoop[i] != want {
			t.Errorf("LoopBlocks[%d] = %v, want %v", i, inLoop[i], want)
		}
	}
}

func TestSelectWithDefault(t *testing.T) {
	g, fset := buildFunc(t, `
func f(c chan int) int {
	select {
	case v := <-c:
		return v
	default:
		return -1
	}
}`)
	checkDump(t, g, fset, `.0 entry
	→ 3 4
.1 exit
.2 select.done
	→ 1
.3 select.comm
	v := <-c
	return v
	→ 1
.4 select.default
	return -1
	→ 1
`)
}

// TestSelectNoDefault: without a default clause the head cannot fall
// through to done — the select blocks until a comm proceeds.
func TestSelectNoDefault(t *testing.T) {
	g, _ := buildFunc(t, `
func f(c, d chan int) {
	select {
	case <-c:
	case <-d:
	}
}`)
	entry := g.Blocks[0]
	for _, s := range entry.Succs {
		if s.Kind == "select.done" {
			t.Errorf("select head must not reach done directly; succs include %s", s.Kind)
		}
	}
	if len(entry.Succs) != 2 {
		t.Errorf("select head has %d succs, want 2 comm clauses", len(entry.Succs))
	}
}

func TestPanicOnlyBranch(t *testing.T) {
	g, fset := buildFunc(t, `
func f(ok bool) int {
	if !ok {
		panic("invariant")
	}
	return 1
}`)
	checkDump(t, g, fset, `.0 entry
	!ok
	→ 2 3
.1 exit
.2 if.then
	panic("invariant")
.3 if.done
	return 1
	→ 1
`)
	// The panic block dead-ends: no successors, so the exit has exactly
	// one predecessor (the return).
	if got := len(g.Blocks[1].Preds); got != 1 {
		t.Errorf("exit preds = %d, want 1 (panic path must not reach exit)", got)
	}
}

func TestRangeOverMap(t *testing.T) {
	g, fset := buildFunc(t, `
func f(m map[string]int) int {
	sum := 0
	for k, v := range m {
		_ = k
		sum += v
	}
	return sum
}`)
	checkDump(t, g, fset, `.0 entry
	sum := 0
	→ 2
.1 exit
.2 range.header
	for k, v := range m
	→ 3 4
.3 range.body
	_ = k
	sum += v
	→ 2
.4 range.done
	return sum
	→ 1
`)
}

func TestSwitchFallthrough(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) string {
	s := ""
	switch n {
	case 0:
		s = "zero"
		fallthrough
	case 1:
		s += "one"
	default:
		s = "many"
	}
	return s
}`)
	// Find the first case block; its fallthrough must edge into the
	// second case block, and the head must not reach done (default exists).
	var case0, case1 *Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			if case0 == nil {
				case0 = b
			} else if case1 == nil {
				case1 = b
			}
		}
	}
	if case0 == nil || case1 == nil {
		t.Fatal("missing switch.case blocks")
	}
	found := false
	for _, s := range case0.Succs {
		if s == case1 {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge case0→case1 missing; succs=%v", kinds(case0.Succs))
	}
	entry := g.Blocks[0]
	for _, s := range entry.Succs {
		if s.Kind == "switch.done" {
			t.Error("switch with default must not edge head→done")
		}
	}
}

func TestTypeSwitch(t *testing.T) {
	g, _ := buildFunc(t, `
func f(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	}
	return 0
}`)
	entry := g.Blocks[0]
	// No default: head reaches both cases and done.
	if len(entry.Succs) != 3 {
		t.Errorf("typeswitch head succs = %v, want two cases plus done", kinds(entry.Succs))
	}
}

func TestGotoForward(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) int {
	if n == 0 {
		goto out
	}
	n *= 2
out:
	return n
}`)
	// The goto block must edge directly to the label block.
	var labelBlk *Block
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "label.") {
			labelBlk = b
		}
	}
	if labelBlk == nil {
		t.Fatal("no label block")
	}
	if len(labelBlk.Preds) != 2 {
		t.Errorf("label block preds = %d, want 2 (goto + fallthrough)", len(labelBlk.Preds))
	}
}

// TestGotoGolden pins the full graph for both goto directions: a
// backward goto forms a loop through its label block (.3→.2), and a
// forward goto jumps over the fallthrough path into a late label.
func TestGotoGolden(t *testing.T) {
	g, fset := buildFunc(t, `
func f(n int) int {
	i := 0
retry:
	if i < n {
		i++
		goto retry
	}
	if n < 0 {
		goto fail
	}
	return i
fail:
	return -1
}`)
	checkDump(t, g, fset, `.0 entry
	i := 0
	→ 2
.1 exit
.2 label.retry
	i < n
	→ 3 4
.3 if.then
	i++
	goto retry
	→ 2
.4 if.done
	n < 0
	→ 5 6
.5 if.then
	goto fail
	→ 7
.6 if.done
	return i
	→ 1
.7 label.fail
	return -1
	→ 1
`)
	// The backward goto makes the label block cyclic; the forward
	// target is not.
	inLoop := g.LoopBlocks()
	if !inLoop[2] || !inLoop[3] {
		t.Error("backward-goto loop (.2/.3) not classified as cyclic")
	}
	if inLoop[7] {
		t.Error("forward-goto target (.7) misclassified as cyclic")
	}
}

// TestLabeledSelectGolden pins the interaction of labeled break and
// continue with a select nested two loops deep: `continue drain` must
// edge to the outer header (no post on a bare for), `break drain` to
// the outer done, and an unlabeled break inside a comm clause to
// select.done — NOT out of the inner for loop.
func TestLabeledSelectGolden(t *testing.T) {
	g, fset := buildFunc(t, `
func f(jobs chan int, quit chan struct{}) int {
	total := 0
drain:
	for {
		for retries := 0; retries < 3; retries++ {
			select {
			case v := <-jobs:
				if v < 0 {
					continue drain
				}
				total += v
			case <-quit:
				break drain
			default:
				break
			}
		}
	}
	return total
}`)
	checkDump(t, g, fset, `.0 entry
	total := 0
	→ 2
.1 exit
.2 label.drain
	→ 3
.3 for.header
	→ 4
.4 for.body
	retries := 0
	→ 6
.5 for.done
	return total
	→ 1
.6 for.header
	retries < 3
	→ 7 8
.7 for.body
	→ 11 14 15
.8 for.done
	→ 3
.9 for.post
	retries++
	→ 6
.10 select.done
	→ 9
.11 select.comm
	v := <-jobs
	v < 0
	→ 12 13
.12 if.then
	continue drain
	→ 3
.13 if.done
	total += v
	→ 10
.14 select.comm
	<-quit
	break drain
	→ 5
.15 select.default
	break
	→ 10
`)
	// break drain leaves every loop: the outer done block is acyclic.
	inLoop := g.LoopBlocks()
	if inLoop[5] {
		t.Error("outer for.done (.5) misclassified as in-loop")
	}
	if !inLoop[11] || !inLoop[15] {
		t.Error("select clauses inside the loops (.11/.15) must be cyclic")
	}
}

func TestDefersCollected(t *testing.T) {
	g, _ := buildFunc(t, `
func f() {
	defer una()
	for i := 0; i < 3; i++ {
		defer dos()
	}
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("Defers = %d, want 2", len(g.Defers))
	}
	inLoop := g.LoopBlocks()
	b0 := g.BlockOf(g.Defers[0].Pos())
	b1 := g.BlockOf(g.Defers[1].Pos())
	if b0 == nil || b1 == nil {
		t.Fatal("BlockOf failed to locate defers")
	}
	if inLoop[b0.Index] {
		t.Error("top-level defer misclassified as in-loop")
	}
	if !inLoop[b1.Index] {
		t.Error("loop-body defer not classified as in-loop")
	}
}

func TestDominators(t *testing.T) {
	g, _ := buildFunc(t, `
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	}
	return x
}`)
	idom := g.Dominators()
	// entry dominates everything; if.then does not dominate if.done.
	var thenIdx, doneIdx int
	for _, b := range g.Blocks {
		switch b.Kind {
		case "if.then":
			thenIdx = b.Index
		case "if.done":
			doneIdx = b.Index
		}
	}
	if !Dominates(idom, 0, doneIdx) {
		t.Error("entry must dominate if.done")
	}
	if Dominates(idom, thenIdx, doneIdx) {
		t.Error("if.then must not dominate if.done")
	}
	if idom[doneIdx] != 0 {
		t.Errorf("idom(if.done) = %d, want 0 (entry)", idom[doneIdx])
	}
}

// TestDominatorChain exercises a ≥2-deep dominator chain: with two
// sequential if-joins, the second join's immediate dominator is the
// first join, not the entry. A naive idom extraction that only ever
// selects the entry fails this.
func TestDominatorChain(t *testing.T) {
	g, _ := buildFunc(t, `
func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	}
	x++
	if a > 1 {
		x = 3
	}
	return x
}`)
	idom := g.Dominators()
	var thens, dones []int
	for _, b := range g.Blocks {
		switch b.Kind {
		case "if.then":
			thens = append(thens, b.Index)
		case "if.done":
			dones = append(dones, b.Index)
		}
	}
	if len(thens) != 2 || len(dones) != 2 {
		t.Fatalf("blocks: thens=%v dones=%v, want two of each", thens, dones)
	}
	first, second := dones[0], dones[1]
	if idom[second] != first {
		t.Errorf("idom(second join .%d) = %d, want %d (first join)", second, idom[second], first)
	}
	if idom[thens[1]] != first {
		t.Errorf("idom(second then .%d) = %d, want %d (first join)", thens[1], idom[thens[1]], first)
	}
	if !Dominates(idom, first, second) {
		t.Error("first join must dominate second join")
	}
	if Dominates(idom, thens[0], second) {
		t.Error("first then-block must not dominate second join")
	}
}

// TestBlockOfInnermost: the range header carries the whole RangeStmt,
// whose span encloses every body statement; BlockOf must resolve a body
// statement to the body block, not the header.
func TestBlockOfInnermost(t *testing.T) {
	g, _ := buildFunc(t, `
func f(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}`)
	var header, bodyBlk *Block
	for _, b := range g.Blocks {
		switch b.Kind {
		case "range.header":
			header = b
		case "range.body":
			bodyBlk = b
		}
	}
	if header == nil || bodyBlk == nil || len(bodyBlk.Nodes) == 0 {
		t.Fatal("fixture CFG missing range.header or a populated range.body")
	}
	if got := g.BlockOf(bodyBlk.Nodes[0].Pos()); got != bodyBlk {
		t.Errorf("BlockOf(range body stmt) = .%d %s, want .%d range.body", got.Index, got.Kind, bodyBlk.Index)
	}
	if got := g.BlockOf(header.Nodes[0].Pos()); got != header {
		t.Errorf("BlockOf(range header) = .%d %s, want .%d range.header", got.Index, got.Kind, header.Index)
	}
}

// TestNoReturnCall covers the recognized terminator spellings.
func TestNoReturnCall(t *testing.T) {
	for src, want := range map[string]bool{
		`panic("x")`:    true,
		`os.Exit(1)`:    true,
		`log.Fatal(e)`:  true,
		`t.Fatal(err)`:  true,
		`t.Fatalf("x")`: true,
		`tb.FailNow()`:  true,
		`t.Skip()`:      true,
		`b.SkipNow()`:   true,
		`r.Skip(4)`:     false, // Skip on a non-testing receiver name
		`fmt.Println()`: false,
		`exit()`:        false,
	} {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", "package p\nfunc f() { "+src+" }", 0)
		if err != nil {
			t.Fatal(err)
		}
		call := f.Decls[0].(*ast.FuncDecl).Body.List[0].(*ast.ExprStmt).X.(*ast.CallExpr)
		if got := NoReturnCall(call); got != want {
			t.Errorf("NoReturnCall(%s) = %v, want %v", src, got, want)
		}
	}
}

func kinds(blocks []*Block) []string {
	out := make([]string, len(blocks))
	for i, b := range blocks {
		out[i] = b.Kind
	}
	return out
}
