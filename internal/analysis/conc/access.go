package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// WriteTarget is one lvalue a node writes through: the written
// expression (an ident, or a selector/index/star chain) and where. For
// writes that happen inside a summarized callee, via and viaPos name
// the helper and the write site inside it.
type WriteTarget struct {
	Expr   ast.Expr
	Pos    token.Pos
	Via    *types.Func
	ViaPos summary.Position
}

// WriteTargets returns the lvalues written by one AST node: assignment
// left-hand sides, inc/dec operands, the destination of the copy
// builtin, range statements assigning pre-declared variables, and —
// when a summary lookup is supplied — arguments passed to a callee
// whose concurrency summary records an unguarded write through that
// parameter.
func WriteTargets(info *types.Info, n ast.Node, lookup Lookup) []WriteTarget {
	var out []WriteTarget
	add := func(e ast.Expr, pos token.Pos) {
		if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		out = append(out, WriteTarget{Expr: e, Pos: pos})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			add(lhs, lhs.Pos())
		}
	case *ast.IncDecStmt:
		add(n.X, n.X.Pos())
	case *ast.RangeStmt:
		if n.Tok == token.ASSIGN {
			if n.Key != nil {
				add(n.Key, n.Key.Pos())
			}
			if n.Value != nil {
				add(n.Value, n.Value.Pos())
			}
		}
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
				add(n.Args[0], n.Args[0].Pos())
				return out
			}
		}
		if lookup == nil {
			return out
		}
		callee, dynamic, isCall := callgraph.StaticCallee(info, n)
		if !isCall || dynamic || callee == nil {
			return out
		}
		cs := lookup(callee)
		if cs == nil {
			return out
		}
		for _, w := range cs.UnguardedWrites {
			arg := argExpr(n, callee, w.Param)
			if arg == nil {
				continue
			}
			out = append(out, WriteTarget{Expr: arg, Pos: n.Pos(), Via: callee, ViaPos: w.Pos})
		}
	}
	return out
}

// LocalOnly reports whether every identifier in e resolves to a
// variable declared within the span [from, to] — the closure-local test
// the sharding exemption uses: s[i] written from a goroutine is private
// to that goroutine when i is a closure parameter or closure-local.
func LocalOnly(info *types.Info, e ast.Expr, from, to token.Pos) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || v.IsField() {
			return true // package/function references and field names
		}
		if v.Pos() < from || v.Pos() > to {
			ok = false
		}
		return ok
	})
	return ok
}

// ShardedAccess reports whether an access expression reaches its root
// variable only through an index that is local to [from, to] — the
// "per-goroutine slot" idiom (scanErrs[i], slots[si], cols[m.Target])
// where each goroutine instance owns a disjoint element. Plain
// whole-variable accesses are never sharded.
func ShardedAccess(info *types.Info, e ast.Expr, from, to token.Pos) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if LocalOnly(info, x.Index, from, to) {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
