// Package boundedspawn flags goroutine spawns whose count scales with
// the data instead of the machine. The engine's parallel sections —
// the outlier scan, candidate building — follow one idiom:
//
//	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
//	for i := range work {
//	    wg.Add(1)
//	    sem <- struct{}{}            // blocks once GOMAXPROCS are running
//	    go func(i int) { defer wg.Done(); defer func() { <-sem }(); ... }(i)
//	}
//
// A spawn inside a row-bounded loop (the same classification hotalloc
// uses: the trip count follows input size, not a constant) with no such
// semaphore acquire before the go statement launches one goroutine per
// row — on a million-row table that is a million stacks before the
// scheduler gets a say. A sync.WaitGroup alone does not bound anything:
// it counts the goroutines, it does not gate their creation. Nor does a
// semaphore acquired *inside* the closure — by then the goroutine (and
// its stack) already exists.
//
// Loops whose bound is the worker count itself (runtime.GOMAXPROCS or
// runtime.NumCPU, directly or through a local variable assigned from
// them) are exempt: spawning one goroutine per core is the point.
// Helper calls are resolved through the "concsummary" facts, so a
// row-bounded loop calling a function that itself leaks an unjoined
// goroutine is flagged at the call site with the helper's spawn in the
// path.
package boundedspawn

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/conc"
	"repro/internal/analysis/loopbound"
)

// Analyzer flags unbounded per-row goroutine spawns.
var Analyzer = &analysis.Analyzer{
	Name: "boundedspawn",
	Doc: "flag goroutine spawns in row-bounded loops with no concurrency bound\n\n" +
		"A go statement inside a loop whose trip count follows the input\n" +
		"launches one goroutine per row. Gate creation with a semaphore sized\n" +
		"to runtime.GOMAXPROCS(0) (acquire before the go statement), or\n" +
		"restructure into a fixed worker pool.",
	Run: run,
}

var scope = []string{"core", "codec", "archive", "selector", "cart", "fascicle", "obs", "server", "spartand", "bench"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	imported := conc.ModuleScoped(pass.Pkg.Path(), conc.FactLookup(pass.Facts))
	local := conc.Compute(pass.Fset, pass.Files, pass.TypesInfo, imported)
	lookup := local.LookupIn(imported)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body, lookup)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, lookup conc.Lookup) {
	info := pass.TypesInfo
	for _, sp := range conc.Spawns(info, body, lookup) {
		if sp.Loop == nil || !loopbound.RowBounded(info, sp.Loop) {
			continue
		}
		// Helper spawns only matter when the goroutine outlives the
		// helper: a helper that waits for its own workers contributes
		// no concurrent goroutines to this loop.
		if sp.Via != nil && !sp.ViaConc.AsyncSpawn {
			continue
		}
		if workerCountLoop(info, body, sp.Loop) {
			continue
		}
		spawnPos := sp.Call.Pos()
		if sp.Go != nil {
			spawnPos = sp.Go.Pos()
		}
		if acquiresBefore(loopBodyOf(sp.Loop), spawnPos) {
			continue
		}
		related := []analysis.RelatedLocation{
			{Pos: sp.Loop.Pos(), Message: "row-bounded loop: trip count follows the input"},
		}
		var msg string
		if sp.Via != nil {
			related = append(related, analysis.RelatedLocation{Pos: sp.Call.Pos(), Message: fmt.Sprintf("%s called once per iteration", sp.Via.Name())})
			for _, site := range sp.ViaSites {
				related = append(related, analysis.RelatedLocation{Position: site.ToTokenPosition(), Message: fmt.Sprintf("goroutine spawned inside %s outlives the call", sp.Via.Name())})
			}
			msg = fmt.Sprintf("%s starts a goroutine that outlives it and is called once per row with no concurrency bound; acquire a GOMAXPROCS-sized semaphore before the call or join the goroutine inside %s", sp.Via.Name(), sp.Via.Name())
		} else {
			related = append(related, analysis.RelatedLocation{Pos: spawnPos, Message: "one goroutine per iteration"})
			msg = "goroutine spawned once per row with no concurrency bound; acquire a semaphore sized to runtime.GOMAXPROCS(0) before the go statement (a WaitGroup counts goroutines, it does not gate their creation)"
		}
		pass.Report(analysis.Diagnostic{Pos: spawnPos, Message: msg, Related: related})
	}
}

// loopBodyOf returns the loop's block.
func loopBodyOf(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// acquiresBefore reports whether the loop body performs a channel send
// (the semaphore-acquire idiom) before the spawn, outside nested
// function literals. A send inside the spawned closure releases nothing
// until after the goroutine exists, so it does not count.
func acquiresBefore(loopBody *ast.BlockStmt, spawnPos token.Pos) bool {
	if loopBody == nil {
		return false
	}
	found := false
	ast.Inspect(loopBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(*ast.SendStmt); ok && s.Pos() < spawnPos {
			found = true
			return false
		}
		return true
	})
	return found
}

// workerCountLoop reports whether the loop's bound is the machine's
// worker count: its condition or range expression mentions
// runtime.GOMAXPROCS or runtime.NumCPU, directly or through a variable
// the enclosing body defines from such a call.
func workerCountLoop(info *types.Info, body *ast.BlockStmt, loop ast.Stmt) bool {
	var bound ast.Expr
	switch l := loop.(type) {
	case *ast.ForStmt:
		bound = l.Cond
	case *ast.RangeStmt:
		bound = l.X
	}
	if bound == nil {
		return false
	}
	found := false
	ast.Inspect(bound, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWorkerCountCall(info, n) {
				found = true
				return false
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && definedFromWorkerCount(info, body, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isWorkerCountCall matches runtime.GOMAXPROCS(...) and runtime.NumCPU().
func isWorkerCountCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "runtime" {
		return false
	}
	return fn.Name() == "GOMAXPROCS" || fn.Name() == "NumCPU"
}

// definedFromWorkerCount reports whether v is bound in body by a :=
// (or var) statement whose right-hand side is a worker-count call,
// possibly inside arithmetic like max(1, runtime.NumCPU()/2).
func definedFromWorkerCount(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			def, isDef := info.Defs[id].(*types.Var)
			use, _ := info.Uses[id].(*types.Var)
			if !(isDef && def == v) && use != v {
				continue
			}
			var rhs ast.Expr
			if len(assign.Rhs) == len(assign.Lhs) {
				rhs = assign.Rhs[i]
			} else if len(assign.Rhs) == 1 {
				rhs = assign.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			ast.Inspect(rhs, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isWorkerCountCall(info, call) {
					found = true
					return false
				}
				return true
			})
		}
		return !found
	})
	return found
}
