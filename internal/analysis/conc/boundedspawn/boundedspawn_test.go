package boundedspawn_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/conc/boundedspawn"
)

func TestBoundedspawn(t *testing.T) {
	analyzertest.Run(t, "../../testdata", boundedspawn.Analyzer, "boundedspawn")
}
