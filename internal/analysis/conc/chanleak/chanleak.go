// Package chanleak flags goroutines that can block forever on a local
// unbuffered channel. The classic shape is an early return between the
// spawn and the receive:
//
//	ch := make(chan result)
//	go func() { ch <- slow() }()
//	if err := check(); err != nil {
//	    return err // goroutine blocks on ch forever
//	}
//	res := <-ch
//
// The sender parks on the unbuffered send until someone receives; if
// every path to the receive can be skipped, the goroutine (stack,
// captured memory, the in-flight result) leaks for the life of the
// process. The daemon calls these functions per request, so each leak
// compounds.
//
// The analyzer tracks channels created by a local `ch := make(chan T)`
// (unbuffered) whose uses it can fully enumerate. For each blocking
// operation on such a channel inside a spawned goroutine it looks for
// the counterpart operation — a receive for a send, a send or close for
// a receive, a close for a range — and reports when either no
// counterpart exists in the function at all, or the counterparts live
// in the spawning function and the control-flow graph has a path from
// the spawn to the function's exit that avoids all of them.
//
// Channels that escape — passed to calls, stored, returned, captured by
// closures that are not directly go-spawned (deferred ones included) —
// are skipped: their counterpart may be anywhere. Operations inside a
// select with a default case or with multiple communication cases are
// not treated as blocking, and are still accepted as counterparts.
package chanleak

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer flags goroutines parked forever on a local channel.
var Analyzer = &analysis.Analyzer{
	Name: "chanleak",
	Doc: "flag goroutines that can block forever on a local unbuffered channel\n\n" +
		"A spawned goroutine sending or receiving on an unbuffered channel\n" +
		"leaks when some path to the function's exit skips the counterpart\n" +
		"operation. Receive on every path before returning, buffer the channel\n" +
		"to the number of sends, or select on a cancellation signal.",
	Run: run,
}

var scope = []string{"core", "codec", "archive", "selector", "cart", "fascicle", "obs", "server", "spartand", "bench"}

const (
	opSend = iota
	opRecv
	opRange
	opClose
)

// op is one channel operation: where, what, which goroutine performs it
// (owner nil = the spawning function), and whether a surrounding select
// makes it non-blocking.
type op struct {
	pos      token.Pos
	kind     int
	owner    *ast.FuncLit
	nonblock bool
}

// chanState accumulates what one tracked channel's value does.
type chanState struct {
	v       *types.Var
	decl    token.Pos
	escaped bool
	ops     []op
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	chans := localUnbufferedChans(info, body)
	if len(chans) == 0 {
		return
	}
	spawnOf := map[*ast.FuncLit]*ast.GoStmt{}
	w := &walker{info: info, chans: chans, spawnOf: spawnOf, consumed: map[*ast.Ident]bool{}}
	w.walk(body, nil, false, false)

	var g *cfg.CFG // built lazily; only needed for the path check
	for _, cs := range chans {
		if cs.escaped {
			continue
		}
		for _, o := range cs.ops {
			if o.owner == nil || o.nonblock || o.kind == opClose {
				continue
			}
			var counters []op
			for _, c := range cs.ops {
				if c.owner == o.owner || !isCounterpart(o.kind, c.kind) {
					continue
				}
				counters = append(counters, c)
			}
			goStmt := spawnOf[o.owner]
			if goStmt == nil {
				continue
			}
			if len(counters) == 0 {
				report(pass, cs, o, goStmt, token.NoPos,
					"no "+counterName(o.kind)+" anywhere in the function")
				continue
			}
			// A counterpart in another goroutine: the pairing is between
			// the two goroutines, independent of the spawner's paths.
			inOther := false
			var outer []op
			for _, c := range counters {
				if c.owner != nil {
					inOther = true
				} else {
					outer = append(outer, c)
				}
			}
			if inOther {
				continue
			}
			if g == nil {
				g = cfg.New(body)
			}
			if witness, leaks := exitAvoiding(g, goStmt, outer); leaks {
				report(pass, cs, o, goStmt, witness,
					"a path to the function's exit skips every "+counterName(o.kind))
			}
		}
	}
}

func report(pass *analysis.Pass, cs *chanState, o op, goStmt *ast.GoStmt, witness token.Pos, why string) {
	verb := map[int]string{opSend: "sending on", opRecv: "receiving from", opRange: "ranging over"}[o.kind]
	related := []analysis.RelatedLocation{
		{Pos: cs.decl, Message: fmt.Sprintf("%s is unbuffered: every %s blocks until its counterpart", cs.v.Name(), opName(o.kind))},
		{Pos: goStmt.Pos(), Message: "goroutine spawned here"},
		{Pos: o.pos, Message: fmt.Sprintf("blocks here %s %s", verb, cs.v.Name())},
	}
	if witness != token.NoPos {
		related = append(related, analysis.RelatedLocation{Pos: witness, Message: "function can exit here without the counterpart operation"})
	}
	pass.Report(analysis.Diagnostic{
		Pos: o.pos,
		Message: fmt.Sprintf("goroutine can block forever %s %s: %s; perform the %s on every path, buffer the channel, or select on a cancellation signal",
			verb, cs.v.Name(), why, counterName(o.kind)),
		Related: related,
	})
}

func opName(kind int) string {
	return map[int]string{opSend: "send", opRecv: "receive", opRange: "receive", opClose: "close"}[kind]
}

// counterName names what would unblock an operation of this kind.
func counterName(kind int) string {
	switch kind {
	case opSend:
		return "receive"
	case opRecv:
		return "send or close"
	default:
		return "close"
	}
}

func isCounterpart(blocked, other int) bool {
	switch blocked {
	case opSend:
		return other == opRecv || other == opRange
	case opRecv:
		return other == opSend || other == opClose
	case opRange:
		return other == opClose
	}
	return false
}

// exitAvoiding reports whether a CFG path runs from the spawn to the
// function's exit without entering any block holding a counterpart. The
// witness is the last statement of the final block on one such path.
func exitAvoiding(g *cfg.CFG, goStmt *ast.GoStmt, outer []op) (witness token.Pos, leaks bool) {
	spawnBlock := g.BlockOf(goStmt.Pos())
	if spawnBlock == nil || len(g.Blocks) < 2 {
		return token.NoPos, false
	}
	blocked := map[*cfg.Block]bool{}
	for _, c := range outer {
		b := g.BlockOf(c.pos)
		if b == nil {
			return token.NoPos, false // unlocatable counterpart: assume it covers
		}
		// Straight-line counterpart after the spawn in the same block
		// covers the fallthrough path.
		if b == spawnBlock && c.pos > goStmt.End() {
			return token.NoPos, false
		}
		blocked[b] = true
	}
	exit := g.Blocks[1]
	parent := map[*cfg.Block]*cfg.Block{spawnBlock: nil}
	queue := []*cfg.Block{spawnBlock}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if blocked[s] {
				continue
			}
			if _, seen := parent[s]; seen {
				continue
			}
			parent[s] = b
			if s == exit {
				// Walk back to the last block with statements for the
				// witness position.
				for p := b; p != nil; p = parent[p] {
					if n := len(p.Nodes); n > 0 {
						return p.Nodes[n-1].Pos(), true
					}
				}
				return goStmt.Pos(), true
			}
			queue = append(queue, s)
		}
	}
	return token.NoPos, false
}

// localUnbufferedChans finds `ch := make(chan T)` declarations of
// unbuffered channels in body (outside nested function literals).
func localUnbufferedChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]*chanState {
	out := map[*types.Var]*chanState{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := info.Defs[id].(*types.Var)
			if !ok {
				continue
			}
			call, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok || !isMake(info, call) {
				continue
			}
			if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
				continue
			}
			if len(call.Args) >= 2 && !isConstZero(info, call.Args[1]) {
				continue // buffered: sends complete up to capacity
			}
			out[v] = &chanState{v: v, decl: id.Pos()}
		}
		return true
	})
	return out
}

func isMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	n, exact := constant.Int64Val(tv.Value)
	return exact && n == 0
}

// walker classifies every use of the tracked channels. owner is the
// directly go-spawned closure the code runs in (nil for the spawning
// function); escaping marks contexts whose execution we cannot place
// (non-spawned closures), where any use disqualifies the channel.
type walker struct {
	info     *types.Info
	chans    map[*types.Var]*chanState
	spawnOf  map[*ast.FuncLit]*ast.GoStmt
	consumed map[*ast.Ident]bool
}

func (w *walker) chanOf(e ast.Expr) (*chanState, *ast.Ident) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, _ := w.info.Uses[id].(*types.Var)
	if v == nil {
		return nil, nil
	}
	return w.chans[v], id
}

func (w *walker) record(e ast.Expr, kind int, owner *ast.FuncLit, nonblock, escaping bool) {
	cs, id := w.chanOf(e)
	if cs == nil {
		return
	}
	w.consumed[id] = true
	if escaping {
		cs.escaped = true
		return
	}
	cs.ops = append(cs.ops, op{pos: e.Pos(), kind: kind, owner: owner, nonblock: nonblock})
}

func (w *walker) walk(root ast.Node, owner *ast.FuncLit, nonblock, escaping bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == root {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				if !escaping {
					w.spawnOf[lit] = n
				}
				for _, a := range n.Call.Args {
					w.walk(a, owner, nonblock, escaping)
				}
				sub := lit
				if escaping {
					sub = owner // keep the escaping context
				}
				w.walk(lit.Body, sub, false, escaping)
				return false
			}
			return true // go f(ch): args walked normally; ch arg escapes below
		case *ast.FuncLit:
			// Not directly spawned: could run anywhere, anytime (defer,
			// stored callback). Its channel uses escape our model.
			w.walk(n.Body, owner, false, true)
			return false
		case *ast.SelectStmt:
			nComm := 0
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
				} else {
					nComm++
				}
			}
			soft := hasDefault || nComm >= 2
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm != nil {
					w.walk(cc.Comm, owner, soft, escaping)
				}
				for _, s := range cc.Body {
					w.walk(s, owner, nonblock, escaping)
				}
			}
			return false
		case *ast.SendStmt:
			w.record(n.Chan, opSend, owner, nonblock, escaping)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.record(n.X, opRecv, owner, nonblock, escaping)
			}
			return true
		case *ast.RangeStmt:
			if cs, _ := w.chanOf(n.X); cs != nil {
				w.record(n.X, opRange, owner, nonblock, escaping)
			}
			return true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "close":
						if len(n.Args) == 1 {
							w.record(n.Args[0], opClose, owner, nonblock, escaping)
						}
						return true
					case "len", "cap":
						if len(n.Args) == 1 {
							if _, argID := w.chanOf(n.Args[0]); argID != nil {
								w.consumed[argID] = true
							}
						}
						return true
					}
				}
			}
			return true
		case *ast.Ident:
			// Any use not consumed by a recognized operation — call
			// argument, assignment, return, composite literal — means
			// the channel escapes our local model.
			if w.consumed[n] {
				return true
			}
			v, _ := w.info.Uses[n].(*types.Var)
			if v == nil {
				return true
			}
			if cs := w.chans[v]; cs != nil {
				cs.escaped = true
			}
			return true
		}
		return true
	})
}
