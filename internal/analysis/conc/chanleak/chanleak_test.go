package chanleak_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/conc/chanleak"
)

func TestChanleak(t *testing.T) {
	analyzertest.Run(t, "../../testdata", chanleak.Analyzer, "chanleak")
}
