// Package conc is spartanvet's goroutine-aware concurrency layer: the
// shared models the four concurrency analyzers (locksetrace, gocapture,
// boundedspawn, chanleak) build on, assembled from the existing CFG,
// dataflow, callgraph and summary infrastructure.
//
// Three pieces live here:
//
//   - a goroutine-spawn model over function bodies (spawn.go): every go
//     statement with the set of variables its closure captures by
//     reference, plus — through the concurrency summaries — calls to
//     helpers that themselves start goroutines;
//   - a forward must-lockset dataflow problem (lockset.go), a
//     dataflow.Problem instance computing the set of mutexes provably
//     held at every block, reusing lockbalance's acquire/release
//     recognition and resolving helper calls through summaries;
//   - per-function concurrency summary facts (summary.go): locks
//     acquired/released on parameters, goroutines spawned (and whether
//     they can outlive the call), and parameters written without a lock
//     held — serialized cross-package as the "concsummary" fact exactly
//     like funcsummary.
//
// The models are deliberately conservative in the same direction as the
// dynamic race detector's absence of a report is not proof of absence:
// they aim for zero false positives on the repo's established
// concurrency idioms (GOMAXPROCS semaphore + WaitGroup with per-index
// sharded result slots, read after Wait) while still catching a deleted
// lock, an unbounded per-row spawn, or a goroutine wedged on an
// unserved channel.
package conc

import (
	"go/ast"
	"go/types"
)

// ReleaseFor maps a mutex acquire method to its release method — the
// same pairing lockbalance checks for panic-safety.
var ReleaseFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// AcquireFor is the inverse of ReleaseFor.
var AcquireFor = map[string]string{"Unlock": "Lock", "RUnlock": "RLock"}

// MutexCall reports the rendered receiver and method name if call is a
// method call on a sync.Mutex or sync.RWMutex (possibly via pointer).
// The rendered receiver ("mu", "r.mu", "shards[i].mu") is the lock key
// the lockset analysis tracks.
func MutexCall(info *types.Info, call *ast.CallExpr) (recv, method string) {
	return syncCall(info, call, "Mutex", "RWMutex")
}

// WaitGroupCall reports the rendered receiver and method name if call
// is a method call on a sync.WaitGroup — the Add/Done/Wait triples the
// spawn model uses to recognize join points.
func WaitGroupCall(info *types.Info, call *ast.CallExpr) (recv, method string) {
	return syncCall(info, call, "WaitGroup")
}

// syncCall matches a method call whose receiver is one of the named
// types from package sync.
func syncCall(info *types.Info, call *ast.CallExpr, typeNames ...string) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	for _, name := range typeNames {
		if obj.Name() == name {
			return ExprString(sel.X), sel.Sel.Name
		}
	}
	return "", ""
}

// ExprString renders an expression as a stable receiver key, the same
// way lockbalance does, so "s.mu" in two statements names one lock.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + ExprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	default:
		return "mutex"
	}
}

// RootIdent returns the leftmost identifier of a selector/index/star
// chain ("s" for s.mu, cols[i].Floats, *p), or nil when the expression
// is not rooted in an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// RootVar resolves the root identifier of e to its variable object, or
// nil.
func RootVar(info *types.Info, e ast.Expr) *types.Var {
	id := RootIdent(e)
	if id == nil {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}
