package conc_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/conc"
)

// check type-checks one source string and returns what the conc layer
// needs: the fileset, file, and types info.
func check(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func funcBody(f *ast.File, name string) *ast.BlockStmt {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	return nil
}

func TestLocksetAtAndExit(t *testing.T) {
	_, f, info := check(t, `package p

import "sync"

type s struct {
	mu sync.Mutex
	n  int
}

func (x *s) balanced() {
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	x.n--
}

func (x *s) deferred() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.n++
}

func (x *s) leaky() {
	x.mu.Lock()
	x.n++
}
`)
	find := func(name, sub string) token.Pos {
		body := funcBody(f, name)
		var pos token.Pos
		ast.Inspect(body, func(n ast.Node) bool {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if inc.Tok.String() == sub {
					pos = inc.Pos()
				}
			}
			return true
		})
		return pos
	}

	ls := conc.SolveLocksets(funcBody(f, "balanced"), info, nil)
	if set, ok := ls.At(find("balanced", "++")); !ok || !set.Has("x.mu") {
		t.Errorf("x.mu should be held at the guarded increment (ok=%v keys=%v)", ok, set.Keys())
	}
	if set, ok := ls.At(find("balanced", "--")); !ok || set.Has("x.mu") {
		t.Errorf("x.mu should be released at the decrement (ok=%v keys=%v)", ok, set.Keys())
	}
	if exit, ok := ls.AtExit(); !ok || len(exit.Keys()) != 0 {
		t.Errorf("balanced should exit lock-free, got %v", exit.Keys())
	}

	// A deferred unlock nets the exit set to empty even though the
	// straight-line code never releases.
	ls = conc.SolveLocksets(funcBody(f, "deferred"), info, nil)
	if set, ok := ls.At(find("deferred", "++")); !ok || !set.Has("x.mu") {
		t.Errorf("x.mu should be held at deferred's increment (ok=%v keys=%v)", ok, set.Keys())
	}
	if exit, ok := ls.AtExit(); !ok || len(exit.Keys()) != 0 {
		t.Errorf("deferred unlock should clear the exit set, got %v", exit.Keys())
	}

	ls = conc.SolveLocksets(funcBody(f, "leaky"), info, nil)
	if exit, ok := ls.AtExit(); !ok || !exit.Has("x.mu") {
		t.Errorf("leaky should exit holding x.mu, got ok=%v %v", ok, exit.Keys())
	}
}

func TestSpawnsCapturesAndLoops(t *testing.T) {
	_, f, info := check(t, `package p

func use(int) {}

func spawner(rows []int) {
	shared := 0
	for _, r := range rows {
		go func() {
			shared += r
		}()
	}
	go use(shared)
}
`)
	spawns := conc.Spawns(info, funcBody(f, "spawner"), nil)
	if len(spawns) != 2 {
		t.Fatalf("expected 2 spawns, got %d", len(spawns))
	}
	inLoop := spawns[0]
	if inLoop.Lit == nil || inLoop.Loop == nil {
		t.Fatalf("first spawn should be a closure inside the loop")
	}
	var names []string
	for _, v := range inLoop.Captured {
		names = append(names, v.Name())
	}
	// r is declared by the range clause (per-iteration, still captured);
	// shared is the function-local accumulator.
	want := map[string]bool{"shared": true, "r": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected captured variable %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("capture of %q not detected", n)
	}
	if inLoop.FirstUse[inLoop.Captured[0]] == token.NoPos {
		t.Errorf("captured variable should carry its first use position")
	}
	named := spawns[1]
	if named.Lit != nil || named.Loop != nil || named.Go == nil {
		t.Errorf("second spawn should be a named-function go outside the loop")
	}
}

func TestComputeSummaries(t *testing.T) {
	fset, f, info := check(t, `package p

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) lock()   { s.mu.Lock() }
func (s *store) unlock() { s.mu.Unlock() }

func (s *store) addGuarded(v int) {
	s.lock()
	s.n += v
	s.unlock()
}

func (s *store) addRaw(v int) {
	s.n += v
}

func fire(s *store) {
	go s.addRaw(1)
}

func fireJoined(s *store) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.addRaw(1)
	}()
	wg.Wait()
}
`)
	res := conc.Compute(fset, []*ast.File{f}, info, nil)
	byName := map[string]*conc.FuncConc{}
	for fn, s := range res.ByFunc {
		byName[fn.Name()] = s
	}

	lockSum := byName["lock"]
	if len(lockSum.NetLocks) != 1 || lockSum.NetLocks[0].Op != "lock" || lockSum.NetLocks[0].Param != 0 || lockSum.NetLocks[0].Path != "mu" {
		t.Errorf("lock helper summary wrong: %+v", lockSum.NetLocks)
	}
	unlockSum := byName["unlock"]
	if len(unlockSum.NetLocks) != 1 || unlockSum.NetLocks[0].Op != "unlock" {
		t.Errorf("unlock helper summary wrong: %+v", unlockSum.NetLocks)
	}

	// addGuarded's write happens between the summarized lock and unlock
	// helpers, so the interprocedural lockset covers it.
	if n := len(byName["addGuarded"].UnguardedWrites); n != 0 {
		t.Errorf("addGuarded should have no unguarded writes, got %d", n)
	}
	raw := byName["addRaw"]
	if len(raw.UnguardedWrites) != 1 || raw.UnguardedWrites[0].Param != 0 {
		t.Errorf("addRaw should record one unguarded receiver write, got %+v", raw.UnguardedWrites)
	}

	if s := byName["fire"]; !s.Spawns || !s.AsyncSpawn || len(s.SpawnSites) != 1 {
		t.Errorf("fire should spawn asynchronously: %+v", s)
	}
	if s := byName["fireJoined"]; !s.Spawns || s.AsyncSpawn {
		t.Errorf("fireJoined should spawn but join before returning: %+v", s)
	}

	// The fact roundtrip drops empty summaries and preserves the rest.
	blob, err := res.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := conc.DecodeFact(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, ok := decoded["(*p.store).lock"]; !ok {
		t.Errorf("decoded fact should keep the lock helper, has %d entries", len(decoded))
	}
	for name, s := range decoded {
		if !s.Spawns && !s.AsyncSpawn && len(s.NetLocks) == 0 && len(s.UnguardedWrites) == 0 {
			t.Errorf("empty summary %q should not round-trip", name)
		}
	}
}

func TestModuleScopedLookup(t *testing.T) {
	fset, f, info := check(t, `package p

func helper() { go func() {}() }
`)
	res := conc.Compute(fset, []*ast.File{f}, info, nil)
	var helperFn *types.Func
	for fn := range res.ByFunc {
		if fn.Name() == "helper" {
			helperFn = fn
		}
	}
	if helperFn == nil {
		t.Fatal("helper not summarized")
	}
	all := func(fn *types.Func) *conc.FuncConc { return res.ByFunc[fn] }
	if got := conc.ModuleScoped("p", all)(helperFn); got == nil || !got.Spawns {
		t.Errorf("same-module lookup should resolve helper, got %+v", got)
	}
	if got := conc.ModuleScoped("repro/internal/core", all)(helperFn); got != nil {
		t.Errorf("cross-module lookup should be filtered, got %+v", got)
	}
}
