// Package gocapture flags loop state captured by reference in a go
// closure that outlives the iteration — the slice of this bug class
// that Go 1.22's per-iteration loop variables did NOT fix. Since 1.22,
// `for i := range xs { go func() { use(i) }() }` is safe: i is a fresh
// variable each iteration. What still races is state the loop shares
// across iterations:
//
//	var cur *row
//	for i := range rows {
//	    cur = &rows[i]            // one variable, rewritten per iteration
//	    go func() { cur.flush() }()  // all goroutines see the last cur
//	}
//
// and pre-1.22-style loops that assign (rather than declare) their
// variable: `for i = 0; ...` or `for k, v = range m` — there the
// variable is a single memory cell every closure shares.
//
// The analyzer flags a go closure inside a loop capturing a free
// variable that is declared outside the loop statement and written by
// the loop (header assignment, range with =, or a body write before the
// spawn). Passing the value as a call argument instead is always safe —
// arguments are evaluated at spawn time — as is joining the goroutine
// within the same iteration (wg.Wait or channel receive after the go
// statement inside the loop body).
package gocapture

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/conc"
)

// Analyzer flags shared loop state captured by go closures.
var Analyzer = &analysis.Analyzer{
	Name: "gocapture",
	Doc: "flag loop variables or per-iteration state captured by reference in go closures\n\n" +
		"A variable declared outside a loop but written each iteration is one\n" +
		"shared cell; a goroutine capturing it reads whatever iteration runs\n" +
		"last. Pass the value as an argument to the spawned closure, or declare\n" +
		"it inside the loop (Go 1.22 loop variables are per-iteration).",
	Run: run,
}

var scope = []string{"core", "codec", "archive", "selector", "cart", "fascicle", "obs", "server", "spartand", "bench"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	for _, sp := range conc.Spawns(info, body, nil) {
		if sp.Lit == nil || sp.Loop == nil {
			continue
		}
		// A goroutine joined before the iteration ends cannot see the
		// next iteration's writes.
		if joinedSameIteration(info, sp) {
			continue
		}
		for _, v := range sp.Captured {
			if v.Pos() >= sp.Loop.Pos() && v.Pos() <= sp.Loop.End() {
				continue // declared by the loop: per-iteration since Go 1.22
			}
			kind, writePos := loopWrite(info, sp.Loop, v)
			if kind == "" {
				continue
			}
			use := sp.FirstUse[v]
			pass.Report(analysis.Diagnostic{
				Pos: sp.Go.Pos(),
				Message: fmt.Sprintf("go closure captures %s, which is %s — every goroutine shares one variable (Go 1.22 per-iteration semantics only cover variables declared by the loop); pass %s as an argument or declare it inside the loop",
					v.Name(), kind, v.Name()),
				Related: []analysis.RelatedLocation{
					{Pos: sp.Loop.Pos(), Message: "loop whose iterations share the variable"},
					{Pos: writePos, Message: fmt.Sprintf("%s %s here", v.Name(), writeVerb(kind))},
					{Pos: use, Message: fmt.Sprintf("%s captured by the goroutine here", v.Name())},
				},
			})
		}
	}
}

// loopWrite classifies how the loop writes v: through its header
// ("assigned by the loop header"), a range with = ("assigned by the
// range clause"), or a body statement before the spawn ("reassigned
// every iteration"). Empty when the loop never writes it — capturing a
// loop-invariant outer variable is fine.
func loopWrite(info *types.Info, loop ast.Stmt, v *types.Var) (kind string, pos token.Pos) {
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		u, _ := info.Uses[id].(*types.Var)
		return u == v
	}
	switch loop := loop.(type) {
	case *ast.ForStmt:
		for _, s := range []ast.Stmt{loop.Init, loop.Post} {
			for _, w := range conc.WriteTargets(info, s, nil) {
				if isV(w.Expr) {
					return "assigned by the loop header", w.Pos
				}
			}
		}
	case *ast.RangeStmt:
		if loop.Tok == token.ASSIGN {
			if isV(loop.Key) {
				return "assigned by the range clause", loop.Key.Pos()
			}
			if loop.Value != nil && isV(loop.Value) {
				return "assigned by the range clause", loop.Value.Pos()
			}
		}
	}
	var bodyPos token.Pos
	var loopBody *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		loopBody = l.Body
	case *ast.RangeStmt:
		loopBody = l.Body
	default:
		return "", token.NoPos
	}
	ast.Inspect(loopBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Writes inside closures (the spawned one included) are not
			// the loop rebinding the variable; cross-goroutine writes
			// are locksetrace's concern.
			return false
		}
		if bodyPos != token.NoPos {
			return false
		}
		for _, w := range conc.WriteTargets(info, n, nil) {
			if isV(w.Expr) {
				bodyPos = w.Pos
				return false
			}
		}
		return true
	})
	if bodyPos != token.NoPos {
		return "reassigned every iteration", bodyPos
	}
	return "", token.NoPos
}

func writeVerb(kind string) string {
	if kind == "reassigned every iteration" {
		return "reassigned"
	}
	return "assigned"
}

// joinedSameIteration reports whether the loop body joins the goroutine
// after spawning it, still inside the iteration: a Wait on a WaitGroup
// the closure Dones, or a receive from a channel it serves.
func joinedSameIteration(info *types.Info, sp conc.Spawn) bool {
	var loopBody *ast.BlockStmt
	switch l := sp.Loop.(type) {
	case *ast.ForStmt:
		loopBody = l.Body
	case *ast.RangeStmt:
		loopBody = l.Body
	default:
		return false
	}
	jk := conc.Joins(info, sp.Lit)
	pos := conc.SyncAfter(info, loopBody, jk, sp.Go.Pos())
	return pos != token.NoPos && pos <= loopBody.End()
}
