package gocapture_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/conc/gocapture"
)

func TestGocapture(t *testing.T) {
	analyzertest.Run(t, "../../testdata", gocapture.Analyzer, "gocapture")
}
