package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// LockSet is the abstract state of the lockset problem: the set of
// mutexes (by rendered receiver key, see ExprString) that are provably
// held. It is a must-analysis, so the lattice top — "every lock held" —
// is the optimistic unvisited state and Join is set intersection:
// a lock counts as held at a block only when it is held on every path
// reaching it.
type LockSet struct {
	// Top marks the unvisited state, the identity for Join. A block
	// still Top at the fixpoint is unreachable.
	Top bool
	// Held maps lock keys ("mu", "r.mu") to true. Never mutated in
	// place; transfer functions copy on write.
	Held map[string]bool
}

// Has reports whether the lock key is held. Top holds everything.
func (s LockSet) Has(key string) bool { return s.Top || s.Held[key] }

// Keys returns the held keys; nil for Top.
func (s LockSet) Keys() map[string]bool { return s.Held }

// Intersects reports whether two concrete locksets share a lock. A Top
// set intersects anything non-empty and, vacuously, everything — Top
// means "unreachable", and unreachable code cannot race.
func (s LockSet) Intersects(o LockSet) bool {
	if s.Top || o.Top {
		return true
	}
	for k := range s.Held {
		if o.Held[k] {
			return true
		}
	}
	return false
}

// Effect is one lock acquired or released by a call, as seen from the
// caller: Key is rendered in the caller's namespace ("s.mu" for a call
// s.lock() whose summary locks the receiver's mu field).
type Effect struct {
	Key     string
	Acquire bool
}

// EffectFn resolves the net lock effects of a function call that is not
// itself a direct mutex method call — typically by consulting the
// callee's concurrency summary. It may be nil (calls are then assumed
// lock-neutral, which matches the overwhelmingly common case of a
// helper that locks and defers the unlock).
type EffectFn func(call *ast.CallExpr) []Effect

// LocksetProblem is the forward must-lockset dataflow.Problem instance.
// Deferred unlocks do not appear in the in-body state — they run at
// function exit — which is exactly what a race check wants: the lock is
// held from the Lock call to the end of the function.
type LocksetProblem struct {
	Info   *types.Info
	Effect EffectFn
}

// Direction implements dataflow.Problem.
func (p *LocksetProblem) Direction() dataflow.Direction { return dataflow.Forward }

// Boundary implements dataflow.Problem: no locks are held at entry.
func (p *LocksetProblem) Boundary() LockSet { return LockSet{Held: map[string]bool{}} }

// Init implements dataflow.Problem: the must-lattice top.
func (p *LocksetProblem) Init() LockSet { return LockSet{Top: true} }

// Join implements dataflow.Problem: intersection, with Top as identity.
func (p *LocksetProblem) Join(a, b LockSet) LockSet {
	if a.Top {
		return b
	}
	if b.Top {
		return a
	}
	out := map[string]bool{}
	for k := range a.Held {
		if b.Held[k] {
			out[k] = true
		}
	}
	return LockSet{Held: out}
}

// Equal implements dataflow.Problem.
func (p *LocksetProblem) Equal(a, b LockSet) bool {
	if a.Top != b.Top {
		return false
	}
	if len(a.Held) != len(b.Held) {
		return false
	}
	for k := range a.Held {
		if !b.Held[k] {
			return false
		}
	}
	return true
}

// Transfer implements dataflow.Problem: apply every acquire/release in
// the block's nodes, in order.
func (p *LocksetProblem) Transfer(b *cfg.Block, in LockSet) LockSet {
	out := in
	for _, n := range b.Nodes {
		out = p.applyNode(out, n)
	}
	return out
}

// applyNode pushes the lockset through one block node. Function
// literals are opaque (their bodies run elsewhere, on their own
// lockset), deferred calls run at exit, and a go statement's call runs
// on another goroutine — all three subtrees are skipped.
func (p *LocksetProblem) applyNode(set LockSet, n ast.Node) LockSet {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			set = p.applyCall(set, m)
		}
		return true
	})
	return set
}

// applyCall applies one call's lock effects to the set.
func (p *LocksetProblem) applyCall(set LockSet, call *ast.CallExpr) LockSet {
	if recv, method := MutexCall(p.Info, call); recv != "" {
		if _, isAcquire := ReleaseFor[method]; isAcquire {
			return set.with(recv)
		}
		if _, isRelease := AcquireFor[method]; isRelease {
			return set.without(recv)
		}
		return set
	}
	if p.Effect == nil {
		return set
	}
	for _, e := range p.Effect(call) {
		if e.Acquire {
			set = set.with(e.Key)
		} else {
			set = set.without(e.Key)
		}
	}
	return set
}

// with returns a copy of the set with key held. Top stays Top.
func (s LockSet) with(key string) LockSet {
	if s.Top || s.Held[key] {
		return s
	}
	out := make(map[string]bool, len(s.Held)+1)
	for k := range s.Held {
		out[k] = true
	}
	out[key] = true
	return LockSet{Held: out}
}

// without returns a copy of the set with key released. Top stays Top.
func (s LockSet) without(key string) LockSet {
	if s.Top || !s.Held[key] {
		return s
	}
	out := make(map[string]bool, len(s.Held))
	for k := range s.Held {
		if k != key {
			out[k] = true
		}
	}
	return LockSet{Held: out}
}

// Locksets solves the must-lockset problem over one function body.
type Locksets struct {
	G   *cfg.CFG
	P   *LocksetProblem
	Res dataflow.Result[LockSet]
}

// SolveLocksets builds the CFG of body and runs the lockset problem to
// its fixpoint.
func SolveLocksets(body *ast.BlockStmt, info *types.Info, effect EffectFn) *Locksets {
	p := &LocksetProblem{Info: info, Effect: effect}
	g := cfg.New(body)
	return &Locksets{G: g, P: p, Res: dataflow.Solve[LockSet](g, p)}
}

// At returns the must-held lockset just before the node at pos, by
// replaying the containing block's nodes from its entry state. ok is
// false when the position cannot be located or lies in unreachable
// code — callers should then treat the site as guarded rather than
// report through a state the analysis cannot see.
func (l *Locksets) At(pos token.Pos) (LockSet, bool) {
	b := l.G.BlockOf(pos)
	if b == nil {
		return LockSet{}, false
	}
	set := l.Res.In[b]
	for _, n := range b.Nodes {
		if n.End() >= pos {
			break
		}
		set = l.P.applyNode(set, n)
	}
	if set.Top {
		return LockSet{}, false
	}
	return set, true
}

// AtExit returns the lockset on the function's normal exit — the net
// locks still held when the body returns, before deferred releases run.
// Deferred mutex releases recorded in the CFG's defer list are applied,
// so a `mu.Lock(); defer mu.Unlock()` pair nets to zero.
func (l *Locksets) AtExit() (LockSet, bool) {
	if len(l.G.Blocks) < 2 {
		return LockSet{}, false
	}
	set := l.Res.In[l.G.Blocks[1]]
	if set.Top {
		return LockSet{}, false
	}
	for _, d := range l.G.Defers {
		set = applyDeferredRelease(l.P.Info, set, d)
	}
	return set, true
}

// applyDeferredRelease removes locks released by a deferred call —
// directly (`defer mu.Unlock()`) or inside a deferred closure.
func applyDeferredRelease(info *types.Info, set LockSet, d *ast.DeferStmt) LockSet {
	apply := func(call *ast.CallExpr) {
		if recv, method := MutexCall(info, call); recv != "" {
			if _, isRelease := AcquireFor[method]; isRelease {
				set = set.without(recv)
			}
		}
	}
	apply(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				apply(c)
			}
			return true
		})
	}
	return set
}
