// Package locksetrace flags shared-variable accesses whose locksets
// cannot overlap: a variable written inside a spawned goroutine and
// accessed outside it (or in another goroutine) where the two sites
// hold no common mutex. It is the static counterpart of the -race job:
// the dynamic detector only sees interleavings the tests happen to
// schedule, while the lockset discipline is checkable on every path.
//
// The check is built on the conc layer: goroutine spawn sites with
// their by-reference captures, a forward must-lockset dataflow over
// both the spawning function and each closure body, and the
// "concsummary" facts for writes that happen inside called helpers
// (including cross-package ones).
//
// Established safe idioms are recognized, not flagged:
//
//   - per-goroutine slots — writes like scanErrs[i] where the index is
//     closure-local, so instances touch disjoint elements;
//   - join ordering — accesses by the spawning function after a
//     wg.Wait() joining the goroutine (or a receive from a channel it
//     sends on or closes) happen after it, as do accesses before the
//     spawn;
//   - internally synchronized types — channels, sync.* values and
//     context.Context are not treated as racy state.
package locksetrace

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/conc"
	"repro/internal/analysis/summary"
)

// Analyzer flags goroutine accesses with provably disjoint locksets.
var Analyzer = &analysis.Analyzer{
	Name: "locksetrace",
	Doc: "flag variables written in a spawned goroutine and accessed elsewhere with no common lock\n\n" +
		"A write inside a go closure that can interleave with another access —\n" +
		"in the spawning function before a join, or in another goroutine\n" +
		"instance — must share a mutex with it. Shard per-goroutine results\n" +
		"into distinct slots, join with wg.Wait() before reading, or guard\n" +
		"both sides with the same lock.",
	Run: run,
}

var scope = []string{"core", "codec", "archive", "selector", "cart", "fascicle", "obs", "server", "spartand", "bench"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	imported := conc.ModuleScoped(pass.Pkg.Path(), conc.FactLookup(pass.Facts))
	local := conc.Compute(pass.Fset, pass.Files, pass.TypesInfo, imported)
	lookup := local.LookupIn(imported)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body, lookup)
			}
			return true
		})
	}
	return nil
}

// access is one touch of a tracked variable: where, whether it writes,
// whether it goes through a goroutine-local index (sharded), and the
// summarized helper that performs it, if any.
type access struct {
	v       *types.Var
	pos     token.Pos
	write   bool
	sharded bool
	via     *types.Func
	viaPos  summary.Position
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt, lookup conc.Lookup) {
	info := pass.TypesInfo
	spawns := conc.Spawns(info, body, lookup)
	var litSpawns []conc.Spawn
	for _, sp := range spawns {
		if sp.Lit != nil && len(sp.Captured) > 0 {
			litSpawns = append(litSpawns, sp)
		}
	}
	if len(litSpawns) == 0 {
		return
	}
	effect := conc.EffectFromLookup(info, lookup)

	// Which captured variables to track: mutable memory the goroutine
	// shares with its spawner. Channels, sync primitives and contexts
	// synchronize internally.
	tracked := map[*types.Var]bool{}
	for _, sp := range litSpawns {
		for _, v := range sp.Captured {
			if racyState(v.Type()) {
				tracked[v] = true
			}
		}
	}
	if len(tracked) == 0 {
		return
	}

	outerLS := conc.SolveLocksets(body, info, effect)
	outer := collectAccesses(info, outerBody{body, litSpawns}, tracked, lookup)

	type goroutine struct {
		sp      conc.Spawn
		ls      *conc.Locksets
		acc     []access
		syncPos token.Pos // first join after the spawn; NoPos = never joined
	}
	gs := make([]goroutine, len(litSpawns))
	for i, sp := range litSpawns {
		jk := conc.Joins(info, sp.Lit)
		gs[i] = goroutine{
			sp:      sp,
			ls:      conc.SolveLocksets(sp.Lit.Body, info, effect),
			acc:     collectAccesses(info, litBody{sp.Lit}, tracked, lookup),
			syncPos: conc.SyncAfter(info, body, jk, sp.Go.Pos()),
		}
	}

	reported := map[token.Pos]bool{}
	report := func(g goroutine, a access, counter access, counterSet conc.LockSet, where string) {
		if reported[a.pos] {
			return
		}
		reported[a.pos] = true
		set, _ := g.ls.At(a.pos)
		verb := "written"
		if !a.write {
			verb = "read"
		}
		related := []analysis.RelatedLocation{
			{Pos: g.sp.Go.Pos(), Message: spawnNote(g.sp)},
		}
		if a.via != nil {
			related = append(related,
				analysis.RelatedLocation{Pos: a.pos, Message: fmt.Sprintf("%s passed to %s here, %s", a.v.Name(), a.via.Name(), holding(set))},
				analysis.RelatedLocation{Position: a.viaPos.ToTokenPosition(), Message: fmt.Sprintf("written without a lock inside %s", a.via.Name())},
			)
		} else {
			related = append(related, analysis.RelatedLocation{Pos: a.pos, Message: fmt.Sprintf("%s %s here, %s", a.v.Name(), verb, holding(set))})
		}
		crel := analysis.RelatedLocation{Pos: counter.pos, Message: fmt.Sprintf("conflicting access, %s", holding(counterSet))}
		if counter.via != nil {
			crel.Message = fmt.Sprintf("conflicting write inside %s called here, %s", counter.via.Name(), holding(counterSet))
		}
		related = append(related, crel)
		pass.Report(analysis.Diagnostic{
			Pos: a.pos,
			Message: fmt.Sprintf("%s is %s in a spawned goroutine and accessed %s with no common lock; guard both sides with one mutex, shard into per-goroutine slots, or join with wg.Wait() first",
				a.v.Name(), verb, where),
			Related: related,
		})
	}

	for i := range gs {
		g := &gs[i]
		for _, a := range g.acc {
			if a.sharded {
				continue
			}
			aSet, ok := g.ls.At(a.pos)
			if !ok {
				continue
			}
			// Same spawn site in a loop: every iteration runs another
			// instance of this closure, so any two of its accesses — a
			// write paired with itself included — can interleave.
			if a.write && g.sp.Loop != nil {
				// A second instance of the same write holds the same
				// lockset; it only conflicts when that set is empty.
				if len(aSet.Keys()) == 0 {
					report(*g, a, a, aSet, "by other instances of the same loop-spawned goroutine")
					continue
				}
				for _, b := range g.acc {
					if b.v != a.v || b.sharded {
						continue
					}
					bSet, ok := g.ls.At(b.pos)
					if ok && !aSet.Intersects(bSet) {
						report(*g, a, b, bSet, "by other instances of the same loop-spawned goroutine")
						break
					}
				}
				if reported[a.pos] {
					continue
				}
			}
			// A different goroutine in the same function.
			for j := range gs {
				if j == i || reported[a.pos] {
					continue
				}
				for _, b := range gs[j].acc {
					if b.v != a.v || b.sharded || !(a.write || b.write) {
						continue
					}
					bSet, ok := gs[j].ls.At(b.pos)
					if ok && !aSet.Intersects(bSet) {
						report(*g, a, b, bSet, "in another goroutine spawned by the same function")
						break
					}
				}
			}
			if reported[a.pos] {
				continue
			}
			// The spawning function itself, in the window between the
			// spawn (everything before it happens-before the goroutine)
			// and the join (everything after happens-after).
			for _, b := range outer {
				if b.v != a.v || !(a.write || b.write) {
					continue
				}
				if b.pos <= g.sp.Go.End() {
					continue
				}
				if g.syncPos != token.NoPos && b.pos >= g.syncPos {
					continue
				}
				bSet, ok := outerLS.At(b.pos)
				if ok && !aSet.Intersects(bSet) {
					report(*g, a, b, bSet, "by the spawning function before any join")
					break
				}
			}
		}
	}
}

// spawnNote renders the spawn-site related message.
func spawnNote(sp conc.Spawn) string {
	if sp.Loop != nil {
		return "goroutine spawned here, once per loop iteration"
	}
	return "goroutine spawned here"
}

// holding renders a lockset for diagnostics.
func holding(s conc.LockSet) string {
	keys := s.Keys()
	if len(keys) == 0 {
		return "holding no locks"
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	return "holding " + strings.Join(names, ", ")
}

// racyState reports whether a variable of this type is shared mutable
// memory worth tracking. Channels and sync.* primitives synchronize
// internally; contexts are immutable.
func racyState(t types.Type) bool {
	seen := 0
	for {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() {
				case "sync", "sync/atomic":
					return false
				case "context":
					return false
				case "time":
					if obj.Name() == "Timer" || obj.Name() == "Ticker" {
						return false
					}
				}
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Chan:
			return false
		case *types.Pointer:
			if seen++; seen > 4 {
				return true
			}
			t = u.Elem()
		default:
			return true
		}
	}
}

// accessScope abstracts "the outer body minus spawned closures" vs "one
// closure body" for the collector.
type accessScope interface {
	walk(visit func(ast.Node))
	span() (token.Pos, token.Pos) // locality bounds for the sharding test
}

type outerBody struct {
	body   *ast.BlockStmt
	spawns []conc.Spawn
}

func (o outerBody) walk(visit func(ast.Node)) {
	ast.Inspect(o.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func (o outerBody) span() (token.Pos, token.Pos) { return o.body.Pos(), o.body.End() }

type litBody struct{ lit *ast.FuncLit }

func (l litBody) walk(visit func(ast.Node)) {
	ast.Inspect(l.lit.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != l.lit {
			return false // nested closure: runs on its own schedule
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func (l litBody) span() (token.Pos, token.Pos) { return l.lit.Pos(), l.lit.End() }

// collectAccesses gathers reads and writes of the tracked variables in
// one scope. Writes come from assignment/inc-dec/copy targets and from
// calls whose concurrency summary records an unguarded parameter write;
// reads are the remaining identifier uses.
func collectAccesses(info *types.Info, sc accessScope, tracked map[*types.Var]bool, lookup conc.Lookup) []access {
	from, to := sc.span()
	var out []access
	writeSpans := map[*ast.Ident]bool{} // root idents consumed by a write target
	sc.walk(func(n ast.Node) {
		for _, w := range conc.WriteTargets(info, n, lookup) {
			root := conc.RootVar(info, w.Expr)
			if root == nil || !tracked[root] {
				continue
			}
			if id := conc.RootIdent(w.Expr); id != nil {
				writeSpans[id] = true
			}
			out = append(out, access{
				v:       root,
				pos:     w.Pos,
				write:   true,
				sharded: conc.ShardedAccess(info, w.Expr, from, to),
				via:     w.Via,
				viaPos:  w.ViaPos,
			})
		}
	})
	sc.walk(func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || writeSpans[id] {
			return
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || !tracked[v] {
			return
		}
		out = append(out, access{v: v, pos: id.Pos()})
	})
	return out
}
