package locksetrace_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/conc/locksetrace"
)

func TestLocksetrace(t *testing.T) {
	analyzertest.Run(t, "../../testdata", locksetrace.Analyzer, "locksetrace")
}
