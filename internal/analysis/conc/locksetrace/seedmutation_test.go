package locksetrace_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/conc/locksetrace"
)

// TestSeedMutation is the analyzer's self-test against the invariant it
// exists to protect: testdata/seedmutation/outlierscan.go is a faithful
// stdlib-only mirror of the real outlier scan in internal/core —
// GOMAXPROCS-bounded loop-spawned goroutines, sharded model slots, and
// a mutex-guarded shared total. The guarded form must analyze clean,
// and mechanically deleting the mu.Lock() call must reproduce the
// locksetrace finding with its spawn→write→conflict path attached.
func TestSeedMutation(t *testing.T) {
	const fixture = "testdata/seedmutation/outlierscan.go"

	if diags := analyze(t, fixture, nil); len(diags) != 0 {
		t.Fatalf("guarded outlier scan should be clean, got %d findings: %v", len(diags), messages(diags))
	}

	var deleted int
	diags := analyze(t, fixture, func(f *ast.File) {
		deleted = deleteLockCalls(f)
	})
	if deleted != 1 {
		t.Fatalf("expected to delete exactly 1 mu.Lock() call, deleted %d", deleted)
	}
	if len(diags) == 0 {
		t.Fatalf("deleting mu.Lock() should reproduce a locksetrace finding, got none")
	}
	var raced *analysis.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "total is written in a spawned goroutine") {
			raced = &diags[i]
		}
	}
	if raced == nil {
		t.Fatalf("expected the unguarded write to total to be flagged, got: %v", messages(diags))
	}
	if len(raced.Related) < 3 {
		t.Fatalf("finding should carry a spawn→write→conflict path, got %d related locations", len(raced.Related))
	}
	if !strings.Contains(raced.Related[0].Message, "once per loop iteration") {
		t.Errorf("path should start at the loop spawn site, starts with %q", raced.Related[0].Message)
	}
	if !strings.Contains(raced.Related[1].Message, "holding no locks") {
		t.Errorf("path should show the lockset at the write, got %q", raced.Related[1].Message)
	}
	last := raced.Related[len(raced.Related)-1]
	if !strings.Contains(last.Message, "conflicting access") {
		t.Errorf("path should end at the conflicting access, ends with %q", last.Message)
	}
}

// analyze parses and type-checks the fixture, applies mutate (if any),
// and returns locksetrace's diagnostics.
func analyze(t *testing.T, path string, mutate func(*ast.File)) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if mutate != nil {
		mutate(f)
	}
	files := []*ast.File{f}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("core", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(locksetrace.Analyzer, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := locksetrace.Analyzer.Run(pass); err != nil {
		t.Fatalf("running locksetrace: %v", err)
	}
	return diags
}

// deleteLockCalls removes every `mu.Lock()` expression statement,
// leaving the unlock behind — exactly the asymmetric deletion a botched
// refactor produces — and reports how many it removed.
func deleteLockCalls(f *ast.File) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		blk, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := blk.List[:0]
		for _, st := range blk.List {
			if isMuLock(st) {
				n++
				continue
			}
			kept = append(kept, st)
		}
		blk.List = kept
		return true
	})
	return n
}

func isMuLock(st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Lock" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "mu"
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
