// Package core is a faithful stdlib-only mirror of CompressContext's
// outlier-scan phase (internal/core): one goroutine per predicted
// attribute bounded by a GOMAXPROCS semaphore, per-goroutine slots for
// the models, and a mutex-guarded running outlier total. The
// locksetrace seed-mutation self-test analyzes it as written (clean),
// then deletes the mu.Lock() call — the mutation a careless refactor
// would make — and asserts the analyzer reproduces the race with its
// full spawn→write→conflict path.
package core

import (
	"runtime"
	"sync"
)

type model struct {
	outliers []int
}

func (m *model) scan(rows []float64, budget float64) []int {
	var out []int
	for i, v := range rows {
		if v > budget || v < -budget {
			out = append(out, i)
		}
	}
	return out
}

func scanOutliers(cols [][]float64, budgets []float64) (int, []*model) {
	models := make([]*model, len(cols))
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, rows := range cols {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, rows []float64) {
			defer wg.Done()
			defer func() { <-sem }()
			m := &model{}
			m.outliers = m.scan(rows, budgets[i])
			models[i] = m
			mu.Lock()
			total += len(m.outliers)
			mu.Unlock()
		}(i, rows)
	}
	wg.Wait()
	return total, models
}
