package conc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// Spawn is one goroutine creation site in a function body: a direct go
// statement, or — through the concurrency summaries — a call to a
// helper that starts goroutines of its own.
type Spawn struct {
	// Go is the statement for direct spawns; nil for helper spawns.
	Go *ast.GoStmt
	// Call is the spawned call (Go.Call for direct spawns, the helper
	// call otherwise).
	Call *ast.CallExpr
	// Lit is the spawned closure body, when the goroutine is a function
	// literal. Named-function spawns and helper spawns leave it nil.
	Lit *ast.FuncLit
	// Via is the summarized helper for indirect spawns, with the go
	// statements inside it (as serialized positions — the helper may
	// live in another package).
	Via      *types.Func
	ViaConc  *FuncConc
	ViaSites []summary.Position
	// Loop is the innermost loop statement (of this body) enclosing the
	// spawn, or nil: a spawn in a loop creates one goroutine per
	// iteration.
	Loop ast.Stmt
	// Captured lists the function-local variables the closure captures
	// by reference (free variables of Lit), in order of first use;
	// FirstUse locates that use for diagnostics.
	Captured []*types.Var
	FirstUse map[*types.Var]token.Pos
}

// Spawns collects the goroutine spawn sites lexically inside body —
// not inside nested function literals, whose spawns belong to whoever
// runs them. lookup (optional) resolves helper calls that spawn.
func Spawns(info *types.Info, body *ast.BlockStmt, lookup Lookup) []Spawn {
	var out []Spawn
	var loops []ast.Stmt
	innermost := func() ast.Stmt {
		if len(loops) == 0 {
			return nil
		}
		return loops[len(loops)-1]
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, n)
			ast.Inspect(n.Body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.RangeStmt:
			loops = append(loops, n)
			ast.Inspect(n.Body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			sp := Spawn{Go: n, Call: n.Call, Loop: innermost()}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				sp.Lit = lit
				sp.Captured, sp.FirstUse = capturedVars(info, lit)
			}
			out = append(out, sp)
			// Arguments are evaluated at spawn time on this goroutine;
			// nothing below the go statement runs here.
			return false
		case *ast.CallExpr:
			if lookup == nil {
				return true
			}
			callee, dynamic, isCall := callgraph.StaticCallee(info, n)
			if !isCall || dynamic || callee == nil {
				return true
			}
			if cs := lookup(callee); cs != nil && cs.Spawns {
				out = append(out, Spawn{
					Call:     n,
					Via:      callee,
					ViaConc:  cs,
					ViaSites: cs.SpawnSites,
					Loop:     innermost(),
				})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// capturedVars lists the free variables of a closure: identifiers in
// its body resolving to function-local variables declared outside the
// literal. Package-level variables are shared too, but the concurrency
// analyzers reason about the spawning function's own state; globals are
// out of scope here.
func capturedVars(info *types.Info, lit *ast.FuncLit) ([]*types.Var, map[*types.Var]token.Pos) {
	var order []*types.Var
	first := map[*types.Var]token.Pos{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the closure (params included)
		}
		if pkgLevel(v) {
			return true
		}
		if _, seen := first[v]; !seen {
			first[v] = id.Pos()
			order = append(order, v)
		}
		return true
	})
	return order, first
}

// pkgLevel reports whether v is declared at package scope.
func pkgLevel(v *types.Var) bool {
	s := v.Parent()
	return s != nil && s.Parent() == types.Universe
}

// JoinKeys describes how a spawned closure announces completion: the
// rendered sync.WaitGroup receivers it calls Done on, and the channels
// it sends on or closes.
type JoinKeys struct {
	WaitGroups map[string]bool
	Chans      map[string]bool
}

// Joins extracts the join keys of a spawned closure (deferred Done
// counts — that is the idiomatic form).
func Joins(info *types.Info, lit *ast.FuncLit) JoinKeys {
	jk := JoinKeys{WaitGroups: map[string]bool{}, Chans: map[string]bool{}}
	if lit == nil {
		return jk
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method := WaitGroupCall(info, n); method == "Done" {
				jk.WaitGroups[recv] = true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					jk.Chans[ExprString(n.Args[0])] = true
				}
			}
		case *ast.SendStmt:
			jk.Chans[ExprString(n.Chan)] = true
		}
		return true
	})
	return jk
}

// SyncAfter returns the position of the first statement after `after`
// in body (outside nested function literals) that joins the spawned
// goroutine: a Wait on a WaitGroup the closure Dones, or a receive from
// a channel the closure sends on or closes. token.NoPos when the body
// never joins it — the goroutine's lifetime is unbounded from the
// spawning function's point of view.
func SyncAfter(info *types.Info, body *ast.BlockStmt, jk JoinKeys, after token.Pos) token.Pos {
	best := token.NoPos
	consider := func(pos token.Pos) {
		if pos > after && (best == token.NoPos || pos < best) {
			best = pos
		}
	}
	walkOutsideFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method := WaitGroupCall(info, n); method == "Wait" && jk.WaitGroups[recv] {
				consider(n.Pos())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && jk.Chans[ExprString(n.X)] {
				consider(n.Pos())
			}
		case *ast.RangeStmt:
			if jk.Chans[ExprString(n.X)] {
				consider(n.Pos())
			}
		}
	})
	return best
}
