package conc

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// FactName is the analyzer name concurrency summaries are stored under
// in a FactStore; the four conc analyzers read the fact directly, the
// same way taintalloc reads "funcsummary".
const FactName = "concsummary"

// LockEffect is one net lock operation a function performs on a mutex
// reachable from a parameter: `func (s *store) lock() { s.mu.Lock() }`
// summarizes as {Param: 0, Path: "mu", Op: "lock"}. Param counts the
// receiver first, like funcsummary's indices.
type LockEffect struct {
	Param int    `json:"param"`
	Path  string `json:"path,omitempty"` // field path to the mutex; "" when the param is the mutex
	Op    string `json:"op"`             // "lock", "rlock", "unlock", "runlock"
}

// ParamWrite marks a parameter (receiver first) that the function
// writes through — *p, p.f, p[i] on a pointer/slice/map parameter —
// with no lock held at the write. Callers running the callee on a
// goroutine must either hold a common lock around the call or own the
// argument exclusively.
type ParamWrite struct {
	Param int              `json:"param"`
	Pos   summary.Position `json:"pos"`
}

// FuncConc is the serialized concurrency summary of one function, keyed
// in a package fact by types.Func.FullName.
type FuncConc struct {
	// Spawns reports that the function starts goroutines, directly or
	// through a callee.
	Spawns bool `json:"spawns,omitempty"`
	// SpawnSites locates the direct go statements (for diagnostics'
	// related-location paths).
	SpawnSites []summary.Position `json:"spawnSites,omitempty"`
	// AsyncSpawn reports that a spawned goroutine can outlive the call:
	// there is a spawn with no sync.WaitGroup.Wait joining it before
	// return, or a callee spawns goroutines this function cannot join.
	// Calling an async spawner once per row is itself an unbounded
	// spawn, which is why boundedspawn needs the distinction.
	AsyncSpawn bool `json:"asyncSpawn,omitempty"`
	// Via names the callee the spawn was inherited from, when the
	// function spawns only through another function.
	Via string `json:"via,omitempty"`
	// NetLocks lists lock operations on parameters that do not balance
	// out inside the function (lock helpers, unlock helpers).
	NetLocks []LockEffect `json:"netLocks,omitempty"`
	// UnguardedWrites lists parameters written without any lock held.
	UnguardedWrites []ParamWrite `json:"unguardedWrites,omitempty"`
}

func (s *FuncConc) empty() bool {
	return !s.Spawns && !s.AsyncSpawn && len(s.NetLocks) == 0 && len(s.UnguardedWrites) == 0
}

func (s *FuncConc) equal(o *FuncConc) bool {
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(o)
	return string(a) == string(b)
}

// Lookup resolves the concurrency summary of a callee, or nil.
type Lookup func(fn *types.Func) *FuncConc

// Result is one package's computed concurrency summaries.
type Result struct {
	// ByFunc holds the summary of every function declared in the
	// package (empty summaries included).
	ByFunc map[*types.Func]*FuncConc
}

// LookupIn chains the package-local summaries with an imported-fact
// lookup, the resolution order every analyzer wants.
func (r *Result) LookupIn(imported Lookup) Lookup {
	return func(fn *types.Func) *FuncConc {
		if s, ok := r.ByFunc[fn]; ok {
			return s
		}
		if imported != nil {
			return imported(fn)
		}
		return nil
	}
}

// Compute builds the package call graph, orders it bottom-up by SCC,
// and summarizes every function body. imported resolves cross-package
// callees (nil is fine: unknown callees are treated as lock-neutral
// non-spawners).
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info, imported Lookup) *Result {
	g := callgraph.Build(files, info)
	res := &Result{ByFunc: map[*types.Func]*FuncConc{}}
	lookup := res.LookupIn(imported)
	for _, scc := range g.SCCs() {
		// Summaries only grow (a spawn discovered through a mutually
		// recursive callee adds a bit, never removes one), so a short
		// fixpoint converges; four rounds bound pathological growth the
		// same way funcsummary's do.
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				sum := computeFunc(fset, info, n.Decl, lookup)
				if old := res.ByFunc[n.Func]; old == nil || !old.equal(sum) {
					changed = true
				}
				res.ByFunc[n.Func] = sum
			}
			if !changed || round >= 3 {
				break
			}
		}
	}
	return res
}

// computeFunc summarizes one function declaration.
func computeFunc(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) *FuncConc {
	sum := &FuncConc{}
	if decl.Body == nil {
		return sum
	}
	params := paramVars(decl, info)

	// Spawn shape: direct go statements and async callees, outside
	// nested function literals (a closure's spawns belong to whoever
	// runs the closure).
	var lastWait token.Pos
	var spawnEnds []token.Pos
	walkOutsideFuncLits(decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			sum.Spawns = true
			sum.SpawnSites = append(sum.SpawnSites, position(fset, n.Pos()))
			spawnEnds = append(spawnEnds, n.Pos())
		case *ast.CallExpr:
			if _, method := WaitGroupCall(info, n); method == "Wait" {
				if n.Pos() > lastWait {
					lastWait = n.Pos()
				}
				return
			}
			callee, dynamic, isCall := callgraph.StaticCallee(info, n)
			if !isCall || dynamic || callee == nil {
				return
			}
			if cs := lookup(callee); cs != nil && cs.Spawns {
				sum.Spawns = true
				if sum.Via == "" && len(sum.SpawnSites) == 0 {
					sum.Via = callee.Name()
				}
				if cs.AsyncSpawn {
					// The callee's goroutines outlive its return and
					// this function has no handle to join them.
					sum.AsyncSpawn = true
				}
			}
		}
	})
	for _, p := range spawnEnds {
		if lastWait < p {
			sum.AsyncSpawn = true
		}
	}

	// Net lock effects on parameters, and unguarded parameter writes,
	// both read off the solved lockset.
	ls := SolveLocksets(decl.Body, info, EffectFromLookup(info, lookup))
	acquireOp := map[string]string{} // lock key -> "lock" | "rlock"
	releaseSeen := map[string]string{}
	walkOutsideFuncLits(decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, method := MutexCall(info, call)
		if recv == "" {
			return
		}
		switch method {
		case "Lock":
			acquireOp[recv] = "lock"
		case "RLock":
			acquireOp[recv] = "rlock"
		case "Unlock":
			releaseSeen[recv] = "unlock"
		case "RUnlock":
			releaseSeen[recv] = "runlock"
		}
	})
	if exit, ok := ls.AtExit(); ok {
		for key := range exit.Keys() {
			if pi, path, ok := paramRelative(key, params); ok {
				op := acquireOp[key]
				if op == "" {
					op = "lock"
				}
				sum.NetLocks = append(sum.NetLocks, LockEffect{Param: pi, Path: path, Op: op})
			}
		}
	}
	for key, op := range releaseSeen {
		if acquireOp[key] != "" {
			continue // balanced inside the function
		}
		if pi, path, ok := paramRelative(key, params); ok {
			sum.NetLocks = append(sum.NetLocks, LockEffect{Param: pi, Path: path, Op: op})
		}
	}
	sortLockEffects(sum.NetLocks)

	walkOutsideFuncLits(decl.Body, func(n ast.Node) {
		for _, w := range WriteTargets(info, n, nil) {
			root := RootVar(info, w.Expr)
			if root == nil {
				continue
			}
			pi := paramIndex(root, params)
			if pi < 0 || !writableThrough(root.Type()) {
				continue
			}
			if _, isIdent := w.Expr.(*ast.Ident); isIdent {
				continue // assigning the parameter variable itself is local
			}
			set, ok := ls.At(w.Pos)
			if !ok || len(set.Keys()) > 0 {
				continue
			}
			sum.UnguardedWrites = append(sum.UnguardedWrites, ParamWrite{Param: pi, Pos: position(fset, w.Pos)})
		}
	})
	return sum
}

// EffectFromLookup adapts summary lookups into the lockset problem's
// call-effect resolver: a call to a summarized lock/unlock helper
// acquires or releases the corresponding caller-side key.
func EffectFromLookup(info *types.Info, lookup Lookup) EffectFn {
	if lookup == nil {
		return nil
	}
	return func(call *ast.CallExpr) []Effect {
		callee, dynamic, isCall := callgraph.StaticCallee(info, call)
		if !isCall || dynamic || callee == nil {
			return nil
		}
		cs := lookup(callee)
		if cs == nil || len(cs.NetLocks) == 0 {
			return nil
		}
		var out []Effect
		for _, e := range cs.NetLocks {
			arg := argExpr(call, callee, e.Param)
			if arg == nil {
				continue
			}
			key := ExprString(arg)
			if e.Path != "" {
				key += "." + e.Path
			}
			out = append(out, Effect{Key: key, Acquire: e.Op == "lock" || e.Op == "rlock"})
		}
		return out
	}
}

// argExpr maps a receiver-first parameter index to the call-site
// expression bound to it.
func argExpr(call *ast.CallExpr, callee *types.Func, param int) ast.Expr {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if param == 0 {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		param--
	}
	if param < 0 || param >= len(call.Args) {
		return nil
	}
	return call.Args[param]
}

// paramRelative splits a lock key rooted at a parameter name into
// (param index, remaining field path). "s.mu" with receiver s yields
// (0, "mu").
func paramRelative(key string, params []*types.Var) (int, string, bool) {
	root, path, _ := strings.Cut(key, ".")
	for i, p := range params {
		if p != nil && p.Name() == root {
			return i, path, true
		}
	}
	return -1, "", false
}

func paramIndex(v *types.Var, params []*types.Var) int {
	for i, p := range params {
		if p == v {
			return i
		}
	}
	return -1
}

// writableThrough reports whether writing through a variable of this
// type is visible outside the function (pointer, slice, map).
func writableThrough(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// paramVars lists the parameter objects of a declaration: receiver
// first, then parameters, matching funcsummary's index convention.
func paramVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	return out
}

// walkOutsideFuncLits visits every node of body that executes on the
// function's own goroutine and defer-free path: nested function
// literals and deferred calls are skipped.
func walkOutsideFuncLits(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func position(fset *token.FileSet, pos token.Pos) summary.Position {
	p := fset.Position(pos)
	return summary.Position{File: p.Filename, Line: p.Line, Col: p.Column}
}

func sortLockEffects(effects []LockEffect) {
	for i := 1; i < len(effects); i++ {
		for j := i; j > 0; j-- {
			a, b := effects[j-1], effects[j]
			if a.Param < b.Param || (a.Param == b.Param && a.Path <= b.Path) {
				break
			}
			effects[j-1], effects[j] = b, a
		}
	}
}

// Encode serializes the non-empty summaries as the package fact body.
func (r *Result) Encode() ([]byte, error) {
	byName := map[string]*FuncConc{}
	for fn, s := range r.ByFunc {
		if !s.empty() {
			byName[fn.FullName()] = s
		}
	}
	if len(byName) == 0 {
		return nil, nil
	}
	return json.Marshal(byName)
}

// DecodeFact parses a fact blob produced by Encode.
func DecodeFact(data []byte) (map[string]*FuncConc, error) {
	byName := map[string]*FuncConc{}
	if len(data) == 0 {
		return byName, nil
	}
	if err := json.Unmarshal(data, &byName); err != nil {
		return nil, err
	}
	return byName, nil
}

// ModuleScoped restricts a lookup to functions whose package shares the
// module root of pkgPath. Concurrency summaries of other modules — the
// standard library above all — describe goroutines those libraries
// manage themselves: http's per-connection goroutines, pprof's profile
// writer, testing's tRunner. Propagating them makes every transitive
// caller a "spawner" (fmt.Errorf reaches one eventually) and drowns the
// repo's own signal, so the analyzers inherit summaries only within the
// module under analysis.
func ModuleScoped(pkgPath string, l Lookup) Lookup {
	root := moduleRoot(pkgPath)
	return func(fn *types.Func) *FuncConc {
		if fn == nil || fn.Pkg() == nil || moduleRoot(fn.Pkg().Path()) != root {
			return nil
		}
		return l(fn)
	}
}

// moduleRoot is the leading element of an import path: "repro" for
// "repro/internal/core", "testing" for "testing".
func moduleRoot(path string) string {
	root, _, _ := strings.Cut(path, "/")
	return root
}

// FactLookup adapts a driver FactStore into a cross-package Lookup,
// caching each dependency's decoded fact. Safe with a nil store.
func FactLookup(store *analysis.FactStore) Lookup {
	cache := map[string]map[string]*FuncConc{}
	return func(fn *types.Func) *FuncConc {
		if fn == nil || fn.Pkg() == nil {
			return nil
		}
		path := fn.Pkg().Path()
		pkg, ok := cache[path]
		if !ok {
			pkg, _ = DecodeFact(store.Get(path, FactName))
			cache[path] = pkg
		}
		return pkg[fn.FullName()]
	}
}

// Analyzer is the fact producer: it emits no diagnostics, only the
// "concsummary" package fact the four concurrency analyzers consume for
// cross-package calls. Drivers run it over dependencies because Facts
// is set.
var Analyzer = &analysis.Analyzer{
	Name:  FactName,
	Doc:   "concsummary: compute per-function concurrency summaries (net lock effects on parameters, goroutine spawns and whether they outlive the call, parameters written without a lock) bottom-up over call-graph SCCs and export them as a package fact for the concurrency analyzers",
	Facts: true,
	Run: func(pass *analysis.Pass) error {
		res := Compute(pass.Fset, pass.Files, pass.TypesInfo, ModuleScoped(pass.Pkg.Path(), FactLookup(pass.Facts)))
		blob, err := res.Encode()
		if err != nil {
			return err
		}
		pass.ExportFact(blob)
		return nil
	},
}
