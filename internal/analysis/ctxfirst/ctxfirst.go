// Package ctxfirst enforces the context conventions of the compression
// pipeline packages (internal/core, selector, cart, fascicle): an
// exported function or method that takes a context.Context must take it
// as its first parameter, and no struct may store a context in a field.
//
// The first rule is the standard library's own (database/sql,
// net/http): a context buried mid-signature is easy to miss at call
// sites and breaks the mechanical ctx-threading pattern the pipeline
// relies on. The second exists because a stored context outlives the
// call that supplied it — cancellation then depends on which caller's
// context happened to be captured, not the current caller's, which is
// exactly the bug ctx-threading is meant to rule out (pass ctx through
// parameters; latch only the resulting error, as cart.treeBuilder does).
package ctxfirst

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer enforces ctx-first signatures and forbids stored contexts in
// the pipeline packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "require context.Context first in exported pipeline signatures; forbid storing it\n\n" +
		"Exported functions in core/selector/cart/fascicle that accept a\n" +
		"context must accept it as the first parameter, and structs must not\n" +
		"hold one: a stored context ties cancellation to whichever caller\n" +
		"created the value instead of the caller of the current operation.",
	Run: run,
}

// scope lists the pipeline packages the conventions apply to.
var scope = []string{"core", "selector", "cart", "fascicle"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSignature flags an exported function whose context parameter is
// not first.
func checkSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fn.Type.Params.List {
		if !isContextType(pass, field.Type) {
			pos += max(len(field.Names), 1)
			continue
		}
		if pos != 0 {
			pass.Reportf(field.Pos(), "%s takes context.Context as parameter %d; contexts go first (ctx context.Context, ...)", fn.Name.Name, pos+1)
		}
		return
	}
}

// checkFields flags struct fields that hold a context.
func checkFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass, field.Type) {
			pass.Reportf(field.Pos(), "struct field stores a context.Context; pass it through call parameters instead (a stored context pins cancellation to the wrong caller)")
		}
	}
}

// isContextType reports whether the expression's type is context.Context.
func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypeOf(expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
