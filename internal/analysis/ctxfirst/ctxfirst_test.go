package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxfirst"
)

func TestCtxfirst(t *testing.T) {
	analyzertest.Run(t, "../testdata", ctxfirst.Analyzer, "ctxfirst")
}
