package dataflow

// BitSet is a fixed-capacity bit vector used as the abstract state of
// set-based problems (reaching definitions indexes its Defs slice with
// it). Operations return fresh sets, matching the immutability contract
// of Problem.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Has reports whether bit i is set.
func (s BitSet) Has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<(i%64)) != 0
}

// With returns a copy of s with bit i set.
func (s BitSet) With(i int) BitSet {
	out := s.Clone()
	out[i/64] |= 1 << (i % 64)
	return out
}

// Without returns a copy of s with bit i cleared.
func (s BitSet) Without(i int) BitSet {
	out := s.Clone()
	if w := i / 64; w < len(out) {
		out[w] &^= 1 << (i % 64)
	}
	return out
}

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	out := make(BitSet, len(s))
	copy(out, s)
	return out
}

// Union returns s ∪ t.
func (s BitSet) Union(t BitSet) BitSet {
	out := s.Clone()
	for i := range t {
		out[i] |= t[i]
	}
	return out
}

// Diff returns s − t.
func (s BitSet) Diff(t BitSet) BitSet {
	out := s.Clone()
	for i := range t {
		out[i] &^= t[i]
	}
	return out
}

// Equal reports element-wise equality (sets must share capacity).
func (s BitSet) Equal(t BitSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Elems returns the indices of the set bits, ascending.
func (s BitSet) Elems() []int {
	var out []int
	for w, bits := range s {
		for b := 0; bits != 0; b++ {
			if bits&1 != 0 {
				out = append(out, w*64+b)
			}
			bits >>= 1
		}
	}
	return out
}
