package dataflow

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the naive reference model for BitSet: a plain map of
// elements. Every BitSet operation has a one-line map equivalent, so
// any divergence under a random op sequence is a BitSet bug (word
// indexing, boundary at multiples of 64, aliasing between results).
type refSet map[int]bool

func (r refSet) clone() refSet {
	out := make(refSet, len(r))
	for k := range r {
		out[k] = true
	}
	return out
}

func (r refSet) with(i int) refSet    { out := r.clone(); out[i] = true; return out }
func (r refSet) without(i int) refSet { out := r.clone(); delete(out, i); return out }

func (r refSet) union(t refSet) refSet {
	out := r.clone()
	for k := range t {
		out[k] = true
	}
	return out
}

func (r refSet) diff(t refSet) refSet {
	out := r.clone()
	for k := range t {
		delete(out, k)
	}
	return out
}

func (r refSet) elems() []int {
	out := make([]int, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func (r refSet) equal(t refSet) bool {
	if len(r) != len(t) {
		return false
	}
	for k := range r {
		if !t[k] {
			return false
		}
	}
	return true
}

// checkAgainstRef verifies a BitSet agrees with its reference on Elems
// and on Has for every index in the universe.
func checkAgainstRef(t *testing.T, label string, n int, s BitSet, r refSet) {
	t.Helper()
	got, want := s.Elems(), r.elems()
	if len(got) != len(want) {
		t.Fatalf("%s: Elems = %v, want %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: Elems = %v, want %v", label, got, want)
		}
	}
	for i := 0; i < n; i++ {
		if s.Has(i) != r[i] {
			t.Fatalf("%s: Has(%d) = %v, want %v", label, i, s.Has(i), r[i])
		}
	}
}

// TestBitSetDifferential runs randomized op sequences over a growing
// pool of sets, mirroring every operation in the map reference and
// comparing after each step. Capacities straddle the 64-bit word
// boundary where the indexing math can go wrong, and the final sweep
// re-checks every set produced along the way — a result that was
// mutated in place by a later With/Union (broken immutability) fails
// there even if it matched when created.
func TestBitSetDifferential(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 130} {
		rng := rand.New(rand.NewSource(int64(0x5eed + n)))
		sets := []BitSet{NewBitSet(n)}
		refs := []refSet{{}}
		pick := func() int { return rng.Intn(len(sets)) }
		for step := 0; step < 400; step++ {
			var (
				s     BitSet
				r     refSet
				label string
			)
			switch op := rng.Intn(5); op {
			case 0:
				i, j := pick(), rng.Intn(n)
				s, r, label = sets[i].With(j), refs[i].with(j), "With"
			case 1:
				i, j := pick(), rng.Intn(n)
				s, r, label = sets[i].Without(j), refs[i].without(j), "Without"
			case 2:
				i, j := pick(), pick()
				s, r, label = sets[i].Union(sets[j]), refs[i].union(refs[j]), "Union"
			case 3:
				i, j := pick(), pick()
				s, r, label = sets[i].Diff(sets[j]), refs[i].diff(refs[j]), "Diff"
			case 4:
				i := pick()
				s, r, label = sets[i].Clone(), refs[i].clone(), "Clone"
			}
			checkAgainstRef(t, label, n, s, r)
			// Equal must agree with the reference for a random pair.
			i, j := pick(), pick()
			if sets[i].Equal(sets[j]) != refs[i].equal(refs[j]) {
				t.Fatalf("n=%d step %d: Equal(sets[%d], sets[%d]) = %v, reference says %v",
					n, step, i, j, sets[i].Equal(sets[j]), refs[i].equal(refs[j]))
			}
			sets = append(sets, s)
			refs = append(refs, r)
			if len(sets) > 32 { // keep the pool bounded but churning
				drop := rng.Intn(len(sets))
				sets = append(sets[:drop], sets[drop+1:]...)
				refs = append(refs[:drop], refs[drop+1:]...)
			}
		}
		// Immutability sweep: every surviving set must still match the
		// reference snapshot taken when it was produced.
		for i := range sets {
			checkAgainstRef(t, "final sweep", n, sets[i], refs[i])
		}
	}
}
