// Package dataflow is a generic intraprocedural dataflow engine over
// the CFGs of package cfg: a forward/backward worklist solver
// parameterized by a small lattice interface, plus the two classic
// instances spartanvet's flow-sensitive analyzers build on —
// reaching definitions (which assignment of a variable can be live at a
// use) and liveness (which variables are still needed after a point).
//
// An analyzer defines its own problem by implementing Problem[S]: the
// abstract state type S, its join and equality, a boundary value, and a
// per-block transfer function. Solve iterates to a fixpoint; SPARTAN
// function CFGs are small, so the plain worklist algorithm terminates
// in a handful of passes.
package dataflow

import (
	"repro/internal/analysis/cfg"
)

// Direction selects how facts propagate through the graph.
type Direction int

const (
	// Forward propagates facts from entry along successor edges
	// (reaching definitions, available expressions).
	Forward Direction = iota
	// Backward propagates facts from the exits along predecessor edges
	// (liveness, very busy expressions).
	Backward
)

// Problem is the lattice-plus-transfer description of one dataflow
// analysis. S is the abstract state attached to block boundaries.
// Implementations must treat states as immutable: Join and Transfer
// return fresh values rather than mutating their inputs.
type Problem[S any] interface {
	Direction() Direction
	// Boundary is the state at the graph's boundary: the entry block
	// for a forward problem, the exit (and every dead-end block) for a
	// backward one.
	Boundary() S
	// Init is the optimistic initial state of every other block,
	// typically the lattice bottom (empty set for may-problems, full
	// set for must-problems).
	Init() S
	// Join combines states flowing in over multiple edges.
	Join(a, b S) S
	// Equal decides convergence.
	Equal(a, b S) bool
	// Transfer pushes a state through one block's statements.
	Transfer(b *cfg.Block, in S) S
}

// Result holds the fixpoint: the state at each block's start (In) and
// end (Out), in execution order regardless of problem direction.
type Result[S any] struct {
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
}

// Solve runs the worklist algorithm to a fixpoint and returns the
// per-block boundary states.
func Solve[S any](g *cfg.CFG, p Problem[S]) Result[S] {
	res := Result[S]{In: map[*cfg.Block]S{}, Out: map[*cfg.Block]S{}}
	for _, b := range g.Blocks {
		res.In[b] = p.Init()
		res.Out[b] = p.Init()
	}

	forward := p.Direction() == Forward
	// sources returns the edges facts arrive over; sinks the blocks to
	// revisit when this block's result changes.
	sources := func(b *cfg.Block) []*cfg.Block {
		if forward {
			return b.Preds
		}
		return b.Succs
	}
	sinks := func(b *cfg.Block) []*cfg.Block {
		if forward {
			return b.Succs
		}
		return b.Preds
	}
	isBoundary := func(b *cfg.Block) bool {
		if forward {
			return b.Index == 0 // entry
		}
		// Backward boundary: the exit and every dead-end (panic) block.
		return len(b.Succs) == 0
	}

	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		var arrive S
		if isBoundary(b) {
			arrive = p.Boundary()
		} else {
			arrive = p.Init()
		}
		for _, src := range sources(b) {
			if forward {
				arrive = p.Join(arrive, res.Out[src])
			} else {
				arrive = p.Join(arrive, res.In[src])
			}
		}
		depart := p.Transfer(b, arrive)

		if forward {
			res.In[b] = arrive
			if p.Equal(depart, res.Out[b]) {
				continue
			}
			res.Out[b] = depart
		} else {
			res.Out[b] = arrive
			if p.Equal(depart, res.In[b]) {
				continue
			}
			res.In[b] = depart
		}
		for _, s := range sinks(b) {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}
