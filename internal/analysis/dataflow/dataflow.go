// Package dataflow is a generic intraprocedural dataflow engine over
// the CFGs of package cfg: a forward/backward worklist solver
// parameterized by a small lattice interface, plus the two classic
// instances spartanvet's flow-sensitive analyzers build on —
// reaching definitions (which assignment of a variable can be live at a
// use) and liveness (which variables are still needed after a point).
//
// An analyzer defines its own problem by implementing Problem[S]: the
// abstract state type S, its join and equality, a boundary value, and a
// per-block transfer function. Solve iterates to a fixpoint; SPARTAN
// function CFGs are small, so the plain worklist algorithm terminates
// in a handful of passes. Problems over infinite-height lattices (the
// interval domain in package vrange) additionally implement the
// optional EdgeTransferrer and Widener hooks for branch refinement and
// loop widening.
package dataflow

import (
	"repro/internal/analysis/cfg"
)

// Direction selects how facts propagate through the graph.
type Direction int

const (
	// Forward propagates facts from entry along successor edges
	// (reaching definitions, available expressions).
	Forward Direction = iota
	// Backward propagates facts from the exits along predecessor edges
	// (liveness, very busy expressions).
	Backward
)

// Problem is the lattice-plus-transfer description of one dataflow
// analysis. S is the abstract state attached to block boundaries.
// Implementations must treat states as immutable: Join and Transfer
// return fresh values rather than mutating their inputs.
type Problem[S any] interface {
	Direction() Direction
	// Boundary is the state at the graph's boundary: the entry block
	// for a forward problem, the exit (and every dead-end block) for a
	// backward one.
	Boundary() S
	// Init is the optimistic initial state of every other block,
	// typically the lattice bottom (empty set for may-problems, full
	// set for must-problems).
	Init() S
	// Join combines states flowing in over multiple edges.
	Join(a, b S) S
	// Equal decides convergence.
	Equal(a, b S) bool
	// Transfer pushes a state through one block's statements.
	Transfer(b *cfg.Block, in S) S
}

// EdgeTransferrer is an optional refinement of Problem for forward
// analyses that want edge-sensitive states: when implemented, the state
// flowing from a block to its i'th successor is EdgeTransfer(from, i,
// out) rather than the block's plain Out state. The block ordering
// convention of package cfg makes this the hook for branch refinement:
// for a block ending in a condition, Succs[0] is the true edge and
// Succs[1] the false edge, so an interval domain can narrow `n` on the
// false edge of `if n > lim.MaxRows`. Implementations must not mutate
// out; return a fresh state (or out itself when nothing changes).
type EdgeTransferrer[S any] interface {
	EdgeTransfer(from *cfg.Block, succIdx int, out S) S
}

// Widener is an optional refinement of Problem for domains with
// unbounded ascending chains (intervals). Once a block has been
// visited more than wideningThreshold times, the solver replaces the
// freshly joined arrival state with Widen(prev, next), where prev is
// the block's previous arrival state. Widen must return a state ≥ both
// arguments in lattice order and must guarantee stabilization (e.g. by
// blowing growing bounds to ±∞); Join alone is used below the
// threshold so short chains keep full precision.
type Widener[S any] interface {
	Widen(prev, next S) S
}

// wideningThreshold is the number of visits after which a Widener
// problem starts widening a block's arrival state. Small enough to
// terminate quickly on nested loops, large enough to let a loop body's
// first couple of iterations sharpen constants before giving up.
const wideningThreshold = 4

// Result holds the fixpoint: the state at each block's start (In) and
// end (Out), in execution order regardless of problem direction.
type Result[S any] struct {
	In  map[*cfg.Block]S
	Out map[*cfg.Block]S
}

// Solve runs the worklist algorithm to a fixpoint and returns the
// per-block boundary states.
func Solve[S any](g *cfg.CFG, p Problem[S]) Result[S] {
	res := Result[S]{In: map[*cfg.Block]S{}, Out: map[*cfg.Block]S{}}
	for _, b := range g.Blocks {
		res.In[b] = p.Init()
		res.Out[b] = p.Init()
	}

	forward := p.Direction() == Forward
	// sources returns the edges facts arrive over; sinks the blocks to
	// revisit when this block's result changes.
	sources := func(b *cfg.Block) []*cfg.Block {
		if forward {
			return b.Preds
		}
		return b.Succs
	}
	sinks := func(b *cfg.Block) []*cfg.Block {
		if forward {
			return b.Succs
		}
		return b.Preds
	}
	isBoundary := func(b *cfg.Block) bool {
		if forward {
			return b.Index == 0 // entry
		}
		// Backward boundary: the exit and every dead-end (panic) block.
		return len(b.Succs) == 0
	}

	edger, hasEdger := p.(EdgeTransferrer[S])
	widener, hasWidener := p.(Widener[S])

	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make([]bool, len(g.Blocks))
	visits := make([]int, len(g.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		visits[b.Index]++

		var arrive S
		if isBoundary(b) {
			arrive = p.Boundary()
		} else {
			arrive = p.Init()
		}
		for _, src := range sources(b) {
			if forward {
				out := res.Out[src]
				if hasEdger {
					// A source may reach b over more than one edge
					// (e.g. both arms of a condition targeting the
					// same block); join every matching edge.
					for i, s := range src.Succs {
						if s == b {
							arrive = p.Join(arrive, edger.EdgeTransfer(src, i, out))
						}
					}
				} else {
					arrive = p.Join(arrive, out)
				}
			} else {
				arrive = p.Join(arrive, res.In[src])
			}
		}
		if hasWidener && visits[b.Index] > wideningThreshold {
			if forward {
				arrive = widener.Widen(res.In[b], arrive)
			} else {
				arrive = widener.Widen(res.Out[b], arrive)
			}
		}
		depart := p.Transfer(b, arrive)

		if forward {
			res.In[b] = arrive
			if p.Equal(depart, res.Out[b]) {
				continue
			}
			res.Out[b] = depart
		} else {
			res.Out[b] = arrive
			if p.Equal(depart, res.In[b]) {
				continue
			}
			res.In[b] = depart
		}
		for _, s := range sinks(b) {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return res
}
