package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/cfg"
)

// --- Solver fixpoints on hand-built graphs -------------------------------

// diamond builds the graph entry→{b2,b3}→b4(exit-pred)→exit by hand:
//
//	0 entry → 2 3
//	1 exit
//	2 then  → 4
//	3 else  → 4
//	4 join  → 1
func diamond() *cfg.CFG {
	g := &cfg.CFG{}
	for i, kind := range []string{"entry", "exit", "then", "else", "join"} {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i, Kind: kind})
	}
	edge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, g.Blocks[to])
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, g.Blocks[from])
	}
	edge(0, 2)
	edge(0, 3)
	edge(2, 4)
	edge(3, 4)
	edge(4, 1)
	return g
}

// loop builds entry→header; header→{body,exit-pred}; body→header.
func loopGraph() *cfg.CFG {
	g := &cfg.CFG{}
	for i, kind := range []string{"entry", "exit", "header", "body"} {
		g.Blocks = append(g.Blocks, &cfg.Block{Index: i, Kind: kind})
	}
	edge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, g.Blocks[to])
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, g.Blocks[from])
	}
	edge(0, 2)
	edge(2, 3)
	edge(2, 1)
	edge(3, 2)
	return g
}

// genKillProblem is a forward may-problem over bit 0..n-1 with explicit
// per-block gen/kill sets — the skeleton of reaching definitions.
type genKillProblem struct {
	n         int
	gen, kill map[int]BitSet
}

func (p *genKillProblem) Direction() Direction    { return Forward }
func (p *genKillProblem) Boundary() BitSet        { return NewBitSet(p.n) }
func (p *genKillProblem) Init() BitSet            { return NewBitSet(p.n) }
func (p *genKillProblem) Join(a, b BitSet) BitSet { return a.Union(b) }
func (p *genKillProblem) Equal(a, b BitSet) bool  { return a.Equal(b) }
func (p *genKillProblem) Transfer(b *cfg.Block, in BitSet) BitSet {
	out := in
	if k, ok := p.kill[b.Index]; ok {
		out = out.Diff(k)
	}
	if g, ok := p.gen[b.Index]; ok {
		out = out.Union(g)
	}
	return out
}

// TestForwardFixpointDiamond: a def generated in the then-arm (bit 0)
// and one in the else-arm (bit 1) both reach the join; a def generated
// at entry (bit 2) and killed in the else-arm reaches the join too (may
// analysis) but is gone on the else edge.
func TestForwardFixpointDiamond(t *testing.T) {
	g := diamond()
	p := &genKillProblem{
		n: 3,
		gen: map[int]BitSet{
			0: NewBitSet(3).With(2),
			2: NewBitSet(3).With(0),
			3: NewBitSet(3).With(1),
		},
		kill: map[int]BitSet{3: NewBitSet(3).With(2)},
	}
	res := Solve[BitSet](g, p)
	join := g.Blocks[4]
	in := res.In[join]
	for bit, want := range map[int]bool{0: true, 1: true, 2: true} {
		if in.Has(bit) != want {
			t.Errorf("join in-set bit %d = %v, want %v", bit, in.Has(bit), want)
		}
	}
	elseOut := res.Out[g.Blocks[3]]
	if elseOut.Has(2) {
		t.Error("bit 2 must be killed on the else edge")
	}
	if !elseOut.Has(1) {
		t.Error("bit 1 must be generated on the else edge")
	}
}

// TestForwardFixpointLoop: a def generated in the loop body must flow
// around the back edge and appear in the header's in-set — the fixpoint
// requires a second pass over the header.
func TestForwardFixpointLoop(t *testing.T) {
	g := loopGraph()
	p := &genKillProblem{
		n:   1,
		gen: map[int]BitSet{3: NewBitSet(1).With(0)},
	}
	res := Solve[BitSet](g, p)
	if !res.In[g.Blocks[2]].Has(0) {
		t.Error("loop-body def must reach the header over the back edge")
	}
	if res.In[g.Blocks[0]].Has(0) {
		t.Error("def must not flow backward to entry")
	}
	if !res.In[g.Blocks[1]].Has(0) {
		t.Error("def must reach the exit via header")
	}
}

// edgeProblem records which successor edge a state travelled over:
// EdgeTransfer sets bit succIdx. On the diamond, the then-arm must see
// only bit 0 (entry's first out-edge) and the else-arm only bit 1.
type edgeProblem struct{ genKillProblem }

func (p *edgeProblem) EdgeTransfer(from *cfg.Block, succIdx int, out BitSet) BitSet {
	return out.With(succIdx)
}

func TestEdgeTransferBranchSensitivity(t *testing.T) {
	g := diamond()
	p := &edgeProblem{genKillProblem{n: 2, gen: map[int]BitSet{}, kill: map[int]BitSet{}}}
	res := Solve[BitSet](g, p)
	thenIn := res.In[g.Blocks[2]]
	if !thenIn.Has(0) || thenIn.Has(1) {
		t.Errorf("then-arm in-state = %v, want exactly the true-edge bit 0", thenIn)
	}
	elseIn := res.In[g.Blocks[3]]
	if !elseIn.Has(1) || elseIn.Has(0) {
		t.Errorf("else-arm in-state = %v, want exactly the false-edge bit 1", elseIn)
	}
	// Both edges join at the merge block.
	joinIn := res.In[g.Blocks[4]]
	if !joinIn.Has(0) || !joinIn.Has(1) {
		t.Errorf("join in-state = %v, want both edge bits", joinIn)
	}
}

// counterProblem is a deliberately infinite-height lattice: the state is
// a counter, join is max, and the loop body increments. Without
// widening the solver would climb forever; the Widen hook must blow the
// state to the sentinel and terminate.
const widenSentinel = 1 << 30

type counterProblem struct{}

func (counterProblem) Direction() Direction { return Forward }
func (counterProblem) Boundary() int        { return 1 }
func (counterProblem) Init() int            { return 0 }
func (counterProblem) Join(a, b int) int    { return max(a, b) }
func (counterProblem) Equal(a, b int) bool  { return a == b }
func (counterProblem) Transfer(b *cfg.Block, in int) int {
	if b.Kind == "body" && in < widenSentinel {
		return in + 1
	}
	return in
}
func (counterProblem) Widen(prev, next int) int {
	if next > prev {
		return widenSentinel
	}
	return next
}

func TestWideningTerminatesInfiniteChain(t *testing.T) {
	g := loopGraph()
	res := Solve[int](g, counterProblem{})
	if got := res.In[g.Blocks[2]]; got != widenSentinel {
		t.Errorf("header in-state = %d, want the widened sentinel %d", got, widenSentinel)
	}
	// The exit still sees a finite (widened) value, proving the solver
	// reached a fixpoint rather than looping.
	if got := res.In[g.Blocks[1]]; got != widenSentinel {
		t.Errorf("exit in-state = %d, want %d", got, widenSentinel)
	}
}

// backwardProblem is liveness's skeleton: use/def per block over one
// variable (bit 0).
type useDefProblem struct {
	use, def map[int]bool
}

func (p *useDefProblem) Direction() Direction    { return Backward }
func (p *useDefProblem) Boundary() BitSet        { return NewBitSet(1) }
func (p *useDefProblem) Init() BitSet            { return NewBitSet(1) }
func (p *useDefProblem) Join(a, b BitSet) BitSet { return a.Union(b) }
func (p *useDefProblem) Equal(a, b BitSet) bool  { return a.Equal(b) }
func (p *useDefProblem) Transfer(b *cfg.Block, out BitSet) BitSet {
	in := out
	if p.def[b.Index] {
		in = in.Without(0)
	}
	if p.use[b.Index] {
		in = in.With(0)
	}
	return in
}

// TestBackwardFixpointLoop: a variable used in the loop body is live
// around the back edge — live-in at the header — but dead after its
// defining block kills it.
func TestBackwardFixpointLoop(t *testing.T) {
	g := loopGraph()
	p := &useDefProblem{
		use: map[int]bool{3: true}, // body reads x
		def: map[int]bool{0: true}, // entry writes x
	}
	res := Solve[BitSet](g, p)
	if !res.In[g.Blocks[2]].Has(0) {
		t.Error("x must be live at the loop header (body reads it)")
	}
	if !res.Out[g.Blocks[0]].Has(0) {
		t.Error("x must be live out of its defining block")
	}
	if res.In[g.Blocks[0]].Has(0) {
		t.Error("x must be dead before its definition")
	}
	if res.In[g.Blocks[1]].Has(0) {
		t.Error("x must be dead at the exit")
	}
}

// --- Real-function instances ---------------------------------------------

// typeCheck parses one self-contained function and returns everything
// the instances need.
func typeCheck(t *testing.T, src string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd, info, fset
		}
	}
	t.Fatal("no func")
	return nil, nil, nil
}

// findIdent locates the n-th identifier with the given name.
func findIdent(fd *ast.FuncDecl, name string, nth int) *ast.Ident {
	var found *ast.Ident
	count := 0
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if count == nth {
				found = id
			}
			count++
		}
		return true
	})
	return found
}

func TestReachingDefsConditionalRedefinition(t *testing.T) {
	fd, info, _ := typeCheck(t, `
func f(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}`)
	g := cfg.New(fd.Body)
	rd := NewReachingDefs(g, info, nil)

	// The x in `return x` can see both definitions.
	use := findIdent(fd, "x", 2) // x:=1 is 0, x=2 is 1, return x is 2
	if use == nil {
		t.Fatal("return-x ident not found")
	}
	xVar := varOf(info, use)
	if xVar == nil {
		t.Fatal("x did not resolve")
	}
	defs := rd.DefsAt(xVar, use.Pos())
	if len(defs) != 2 {
		t.Fatalf("DefsAt(return x) = %d defs, want 2 (both x:=1 and x=2 reach)", len(defs))
	}
}

func TestReachingDefsKillInBlock(t *testing.T) {
	fd, info, _ := typeCheck(t, `
func f() int {
	x := 1
	x = 2
	return x
}`)
	g := cfg.New(fd.Body)
	rd := NewReachingDefs(g, info, nil)
	use := findIdent(fd, "x", 2)
	xVar := varOf(info, use)
	defs := rd.DefsAt(xVar, use.Pos())
	if len(defs) != 1 {
		t.Fatalf("DefsAt(return x) = %d defs, want 1 (x=2 kills x:=1 in-block)", len(defs))
	}
	if as, ok := defs[0].Site.(*ast.AssignStmt); !ok || as.Tok != token.ASSIGN {
		t.Errorf("surviving def is %T/%v, want the plain assignment", defs[0].Site, defs[0].Site)
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	fd, info, _ := typeCheck(t, `
func f(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}`)
	g := cfg.New(fd.Body)
	lv := NewLiveness(g, info)

	sumVar := varOf(info, findIdent(fd, "sum", 0))
	if sumVar == nil {
		t.Fatal("sum did not resolve")
	}
	// sum is live out of the entry block (read in the loop and at return).
	if !lv.LiveAt(sumVar, g.Blocks[0]) {
		t.Error("sum must be live out of entry")
	}
	// i is live out of the loop header only within the loop; it is dead
	// at the exit.
	iVar := varOf(info, findIdent(fd, "i", 0))
	if lv.LiveAt(iVar, g.Blocks[1]) {
		t.Error("i must be dead at the function exit")
	}
	var header *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.header" {
			header = b
		}
	}
	if header == nil {
		t.Fatal("no for.header block")
	}
	if !lv.LiveAt(iVar, header) {
		t.Error("i must be live out of the loop header (body and post read it)")
	}
}

// TestLivenessClosureCapture: variables captured by a FuncLit count as
// uses at the closure's creation point.
func TestLivenessClosureCapture(t *testing.T) {
	fd, info, _ := typeCheck(t, `
func f(cond bool) func() int {
	captured := 42
	if cond {
		return func() int { return captured }
	}
	return nil
}`)
	g := cfg.New(fd.Body)
	lv := NewLiveness(g, info)
	capturedVar := varOf(info, findIdent(fd, "captured", 0))
	// captured is read by the closure in the then-branch, so it is live
	// out of the entry block (which ends at the condition).
	if !lv.LiveAt(capturedVar, g.Blocks[0]) {
		t.Error("captured must be live out of entry (closure in branch reads it)")
	}
}
