package dataflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/cfg"
)

// VarSet is the abstract state of the liveness problem: the set of
// variables whose current value may still be read.
type VarSet map[*types.Var]bool

func (s VarSet) clone() VarSet {
	out := make(VarSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// Liveness is the backward may-problem "which variables are live at
// this point". Live-in at a block includes every variable some path
// from that block reads before writing.
type Liveness struct {
	G   *cfg.CFG
	Res Result[VarSet]

	info *types.Info
	use  map[*cfg.Block]VarSet // read before any write in the block
	def  map[*cfg.Block]VarSet // written in the block
}

// NewLiveness computes per-block use/def sets and solves to a fixpoint.
func NewLiveness(g *cfg.CFG, info *types.Info) *Liveness {
	lv := &Liveness{G: g, info: info, use: map[*cfg.Block]VarSet{}, def: map[*cfg.Block]VarSet{}}
	for _, b := range g.Blocks {
		use, def := VarSet{}, VarSet{}
		for _, n := range b.Nodes {
			for _, v := range usesOfNode(info, n) {
				if !def[v] {
					use[v] = true
				}
			}
			for _, d := range defsOfNode(info, n) {
				def[d.Var] = true
			}
		}
		lv.use[b] = use
		lv.def[b] = def
	}
	lv.Res = Solve[VarSet](g, lv)
	return lv
}

// LiveAt reports whether v may still be read after block b completes.
func (lv *Liveness) LiveAt(v *types.Var, b *cfg.Block) bool {
	return lv.Res.Out[b][v]
}

// Problem implementation: backward may-analysis, empty-set bottom.

func (lv *Liveness) Direction() Direction { return Backward }
func (lv *Liveness) Boundary() VarSet     { return VarSet{} }
func (lv *Liveness) Init() VarSet         { return VarSet{} }
func (lv *Liveness) Join(a, b VarSet) VarSet {
	out := a.clone()
	for v := range b {
		out[v] = true
	}
	return out
}
func (lv *Liveness) Equal(a, b VarSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
func (lv *Liveness) Transfer(b *cfg.Block, out VarSet) VarSet {
	in := out.clone()
	for v := range lv.def[b] {
		delete(in, v)
	}
	for v := range lv.use[b] {
		in[v] = true
	}
	return in
}

// usesOfNode collects the variables a CFG node reads. Identifiers in
// pure store position (the x of `x = ...`) are excluded; everything
// else — including free variables captured by nested function literals
// — counts as a read.
func usesOfNode(info *types.Info, n ast.Node) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	add := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walkExpr func(e ast.Expr)
	walkExpr = func(e ast.Expr) {
		ast.Inspect(e, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.Ident:
				if v, ok := info.Uses[m].(*types.Var); ok {
					add(v)
				}
			case *ast.FuncLit:
				// Captured variables are uses; the literal's own locals
				// (declared inside its extent) are not.
				ast.Inspect(m.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							if v.Pos() < m.Pos() || v.Pos() > m.End() {
								add(v)
							}
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			walkExpr(rhs)
		}
		for _, lhs := range n.Lhs {
			if _, ok := lhs.(*ast.Ident); ok {
				continue // pure store
			}
			walkExpr(lhs) // x.f = ..., a[i] = ... read x, a, i
		}
	case *ast.RangeStmt:
		walkExpr(n.X)
	case *ast.IncDecStmt:
		walkExpr(n.X) // read-modify-write
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						walkExpr(val)
					}
				}
			}
		}
	case ast.Expr:
		walkExpr(n)
	case ast.Stmt:
		// Return, send, expr, defer, go, branch...: every contained
		// expression is a read.
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				walkExpr(e)
				return false
			}
			return true
		})
	}
	return out
}
