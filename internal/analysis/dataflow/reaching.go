package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/cfg"
)

// Def is one definition site of a local variable: an assignment, a
// short declaration, a var spec, an inc/dec, a range binding, or a
// synthetic definition at function entry for parameters and named
// results (Site == nil for those).
type Def struct {
	Var   *types.Var
	Ident *ast.Ident // the defined identifier; nil for parameter defs
	Site  ast.Node   // the defining statement; nil for parameter defs
	Block *cfg.Block
}

// ReachingDefs is the forward may-problem "which definitions of each
// variable can reach this point". Build it once per function, then
// query with DefsAt.
type ReachingDefs struct {
	G    *cfg.CFG
	Defs []Def
	Res  Result[BitSet]

	info   *types.Info
	byVar  map[*types.Var][]int // def indices per variable
	gen    map[*cfg.Block]BitSet
	kill   map[*cfg.Block]BitSet
	params BitSet // synthetic entry defs
}

// NewReachingDefs collects every definition site in g and solves the
// problem. params lists the function's parameters, receiver, and named
// results, which are defined at entry.
func NewReachingDefs(g *cfg.CFG, info *types.Info, params []*types.Var) *ReachingDefs {
	rd := &ReachingDefs{G: g, info: info, byVar: map[*types.Var][]int{}}
	for _, p := range params {
		rd.addDef(Def{Var: p, Block: g.Blocks[0]})
	}
	nparams := len(rd.Defs)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for _, d := range defsOfNode(info, n) {
				d.Block = b
				rd.addDef(d)
			}
		}
	}
	n := len(rd.Defs)
	rd.params = NewBitSet(n)
	for i := 0; i < nparams; i++ {
		rd.params = rd.params.With(i)
	}

	// gen/kill per block: a later definition of a variable in the same
	// block kills earlier ones; kill covers every other def of the
	// block's defined variables.
	rd.gen = map[*cfg.Block]BitSet{}
	rd.kill = map[*cfg.Block]BitSet{}
	for _, b := range g.Blocks {
		gen := NewBitSet(n)
		kill := NewBitSet(n)
		for i, d := range rd.Defs {
			if d.Block != b || d.Site == nil {
				continue
			}
			// Kill all defs of this variable, then gen this one.
			for _, j := range rd.byVar[d.Var] {
				if j != i {
					kill = kill.With(j)
					gen = gen.Without(j)
				}
			}
			gen = gen.With(i)
		}
		rd.gen[b] = gen
		rd.kill[b] = kill
	}
	rd.Res = Solve[BitSet](g, rd)
	return rd
}

func (rd *ReachingDefs) addDef(d Def) {
	i := len(rd.Defs)
	rd.Defs = append(rd.Defs, d)
	rd.byVar[d.Var] = append(rd.byVar[d.Var], i)
}

// Problem implementation: forward may-analysis, empty-set bottom.

func (rd *ReachingDefs) Direction() Direction { return Forward }
func (rd *ReachingDefs) Boundary() BitSet     { return rd.params.Clone() }
func (rd *ReachingDefs) Init() BitSet         { return NewBitSet(len(rd.Defs)) }
func (rd *ReachingDefs) Join(a, b BitSet) BitSet {
	return a.Union(b)
}
func (rd *ReachingDefs) Equal(a, b BitSet) bool { return a.Equal(b) }
func (rd *ReachingDefs) Transfer(b *cfg.Block, in BitSet) BitSet {
	return rd.gen[b].Union(in.Diff(rd.kill[b]))
}

// DefsAt returns the definitions of v that can reach the program point
// just before pos, walking the containing block's statements to apply
// intra-block kills. A nil result means v cannot be reached by any
// tracked definition there (e.g. pos is outside the graph).
func (rd *ReachingDefs) DefsAt(v *types.Var, pos token.Pos) []Def {
	b := rd.G.BlockOf(pos)
	if b == nil {
		return nil
	}
	state := rd.Res.In[b]
	for _, n := range b.Nodes {
		if n.Pos() <= pos && pos <= n.End() {
			break // defs of n itself take effect after it
		}
		for _, d := range defsOfNode(rd.info, n) {
			for _, i := range rd.byVar[d.Var] {
				if rd.Defs[i].Ident == d.Ident {
					for _, j := range rd.byVar[d.Var] {
						state = state.Without(j)
					}
					state = state.With(i)
					break
				}
			}
		}
	}
	var out []Def
	for _, i := range state.Elems() {
		if rd.Defs[i].Var == v {
			out = append(out, rd.Defs[i])
		}
	}
	return out
}

// defsOfNode extracts the variable definitions a single CFG node makes.
func defsOfNode(info *types.Info, n ast.Node) []Def {
	var out []Def
	add := func(id *ast.Ident, site ast.Node) {
		if id == nil || id.Name == "_" {
			return
		}
		v := varOf(info, id)
		if v == nil {
			return
		}
		out = append(out, Def{Var: v, Ident: id, Site: site})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				add(id, n)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						add(id, n)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			add(id, n)
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			add(id, n)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			add(id, n)
		}
	}
	return out
}

// varOf resolves an identifier to the local/package variable it
// denotes, or nil.
func varOf(info *types.Info, id *ast.Ident) *types.Var {
	if obj, ok := info.Defs[id]; ok {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}
