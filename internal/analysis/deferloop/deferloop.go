// Package deferloop flags defer statements whose enclosing block lies
// on a CFG cycle in internal/fascicle, internal/cart and internal/codec
// — the packages whose loops iterate per row or per fascicle. A defer
// runs at function return, not at the end of the iteration that created
// it, so a per-row `defer f.Close()` accumulates a million open
// resources before the first one is released. The fix is to hoist the
// defer out of the loop or wrap the iteration body in a function.
//
// Detection is flow-sensitive: the loop membership test is a cycle
// check on the function's control-flow graph, so irregular loops built
// from labels and gotos are caught, and a defer in an if-branch that
// merely *follows* a loop is not.
package deferloop

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer flags defers that execute once per loop iteration.
var Analyzer = &analysis.Analyzer{
	Name: "deferloop",
	Doc: "flag defer inside per-row loops in fascicle, cart and codec\n\n" +
		"A defer in a loop body releases nothing until the whole function\n" +
		"returns; over a million-row table that accumulates file handles and\n" +
		"buffers. Hoist the defer or wrap the loop body in a function.",
	Run: run,
}

var scope = []string{"fascicle", "cart", "codec"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkBody(pass, body)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: most functions have no defers at all.
	hasDefer := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate function: its own CFG, its own check
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			hasDefer = true
		}
		return !hasDefer
	})
	if !hasDefer {
		return
	}

	g := cfg.New(body)
	inLoop := g.LoopBlocks()
	for _, d := range g.Defers {
		b := g.BlockOf(d.Pos())
		if b != nil && inLoop[b.Index] {
			pass.Reportf(d.Pos(), "defer inside a loop runs only when the function returns; each iteration accumulates another pending call — hoist it out of the loop or wrap the body in a function")
		}
	}
}
