package deferloop_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/deferloop"
)

func TestDeferloop(t *testing.T) {
	analyzertest.Run(t, "../testdata", deferloop.Analyzer, "deferloop")
}
