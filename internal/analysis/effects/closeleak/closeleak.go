// Package closeleak flags an opened io.Closer that is not closed on
// every CFG exit path. The archive formats hand out long-lived handles
// — os.Open in the CLI, OpenArchive/OpenSegmented readers, net
// connections in the server — and a handle leaked on an error path
// costs a file descriptor per request until the process starves.
//
// The check is built on the effects layer: openers are the stdlib
// table (os.Open and friends, net dials and listens) plus any module
// function whose "effectsummary" fact records an open result — so
// OpenSegmented is an opener because SegReader has Close, with no
// per-function annotation. An obligation is discharged by:
//
//   - a Close call, direct or deferred (a defer only covers exits
//     after the defer statement runs — an early return before it still
//     leaks);
//   - returning the handle: ownership moves to the caller, and this
//     function's own summary gains an open result;
//   - storing it into a struct, map, slice or global — whoever holds
//     the container owns it now;
//   - passing it to a summarized closer or storer;
//   - capture by a function literal.
//
// The walk is error-path aware: on the failure edge of the open's
// paired err != nil check no resource exists, so return nil, err there
// is clean. Each diagnostic carries the open→leaking-exit path in
// Related, so the SARIF output shows both ends.
package closeleak

import (
	"fmt"
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/effects"
)

// Analyzer flags open io.Closer handles leaked on some exit path.
var Analyzer = &analysis.Analyzer{
	Name: "closeleak",
	Doc: "flag opened io.Closer handles (os.Open, archive readers, net conns) not closed on every exit path\n\n" +
		"Close the handle on every path: defer the Close right after the\n" +
		"open's error check, return the handle to transfer ownership, or\n" +
		"store it into a struct whose Close closes the field.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	imported := effects.ModuleScoped(pass.Pkg.Path(), effects.FactLookup(pass.Facts))
	local := effects.Compute(pass.Fset, pass.Files, pass.TypesInfo, imported)
	lookup := local.LookupIn(imported)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			for _, lf := range effects.LeakFindings(pass.Fset, pass.TypesInfo, decl, lookup) {
				report(pass, lf)
			}
		}
	}
	return nil
}

func report(pass *analysis.Pass, lf effects.LeakFinding) {
	related := make([]analysis.RelatedLocation, 0, len(lf.Steps))
	for _, st := range lf.Steps {
		rl := analysis.RelatedLocation{Pos: st.Pos, Message: st.Msg}
		if !st.Pos.IsValid() {
			rl.Position = st.Position.ToTokenPosition()
		}
		related = append(related, rl)
	}
	pass.Report(analysis.Diagnostic{
		Pos: lf.OpenPos,
		Message: fmt.Sprintf("%s is opened here but a path %s; defer the Close after the error check, return the handle, or store it in a closer-owning struct",
			lf.What, lf.ExitMsg),
		Related: related,
	})
}
