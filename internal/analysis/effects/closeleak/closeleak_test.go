package closeleak_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/effects/closeleak"
)

func TestCloseleak(t *testing.T) {
	analyzertest.Run(t, "../../testdata", closeleak.Analyzer, "closeleak")
}
