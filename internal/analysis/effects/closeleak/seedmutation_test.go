package closeleak_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/effects/closeleak"
)

// TestSeedMutation is the analyzer's self-test against the invariant it
// exists to protect: testdata/seedmutation/segreader.go is a faithful
// stdlib-only mirror of the segmented reader's open/close discipline.
// The guarded form must analyze clean, and mechanically deleting the
// defer-Close statements — the seed mutation a careless refactor would
// make — must reproduce the closeleak findings with the open→exit path
// attached.
func TestSeedMutation(t *testing.T) {
	const fixture = "testdata/seedmutation/segreader.go"

	if diags := analyze(t, fixture, nil); len(diags) != 0 {
		t.Fatalf("guarded reader should be clean, got %d findings: %v", len(diags), messages(diags))
	}

	var deleted int
	diags := analyze(t, fixture, func(f *ast.File) {
		deleted = deleteDeferredCloses(f)
	})
	if deleted != 2 {
		t.Fatalf("expected to delete 2 deferred Closes, deleted %d", deleted)
	}
	if len(diags) < 2 {
		t.Fatalf("deleting the Closes should reproduce >= 2 closeleak findings, got %d: %v",
			len(diags), messages(diags))
	}
	for _, d := range diags {
		if len(d.Related) < 2 {
			t.Errorf("finding %q should carry an open→exit path, got %d related locations",
				d.Message, len(d.Related))
			continue
		}
		if !strings.Contains(d.Related[0].Message, "opened here") {
			t.Errorf("finding %q path should start at the open, starts with %q",
				d.Message, d.Related[0].Message)
		}
		last := d.Related[len(d.Related)-1]
		if !strings.Contains(last.Message, "open") {
			t.Errorf("finding %q path should end at the leaking exit, ends with %q",
				d.Message, last.Message)
		}
	}
	// The interprocedural open — the handle produced by the summarized
	// openArchive helper — must be among the reproduced findings.
	var viaHelper *analysis.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "openArchive") {
			viaHelper = &diags[i]
		}
	}
	if viaHelper == nil {
		t.Fatalf("expected a finding through openArchive, got: %v", messages(diags))
	}
}

// analyze parses and type-checks the fixture, applies mutate (if any),
// and returns closeleak's diagnostics.
func analyze(t *testing.T, path string, mutate func(*ast.File)) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if mutate != nil {
		mutate(f)
	}
	files := []*ast.File{f}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("archive", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(closeleak.Analyzer, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := closeleak.Analyzer.Run(pass); err != nil {
		t.Fatalf("running closeleak: %v", err)
	}
	return diags
}

// deleteDeferredCloses removes every `defer x.Close()` statement and
// reports how many it removed.
func deleteDeferredCloses(f *ast.File) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		blk, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := blk.List[:0]
		for _, st := range blk.List {
			if ds, ok := st.(*ast.DeferStmt); ok && isCloseCall(ds.Call) {
				n++
				continue
			}
			kept = append(kept, st)
		}
		blk.List = kept
		return true
	})
	return n
}

func isCloseCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
