// Fixture mirror of the segmented reader's open/close discipline: a
// stdlib-only copy of how the CLI opens an archive, parses the footer
// trailer, and scans segment bodies, closing the handle on every exit
// path. The defer-Close guards are what the closeleak seed-mutation
// test deletes.
package archive

import "os"

// openArchive opens the archive file and transfers ownership to the
// caller — its effect summary records the open result.
func openArchive(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// readTrailer opens through the helper and must close on the success
// path and on the short-read error path alike.
func readTrailer(path string) ([]byte, error) {
	f, err := openArchive(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var trailer [16]byte
	if _, err := f.Read(trailer[:]); err != nil {
		return nil, err
	}
	return trailer[:], nil
}

// scanSegments reads segment frames until the footer offset.
func scanSegments(path string, end int64) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	segs := 0
	var frame [8]byte
	for off := int64(0); off < end; off += int64(len(frame)) {
		if _, err := f.ReadAt(frame[:], off); err != nil {
			return segs, err
		}
		segs++
	}
	return segs, nil
}
