// Package detorder flags nondeterministic values flowing into encoded
// output. SPARTAN is an archival format: the same table plus the same
// error tolerances must produce one canonical artifact, byte for byte —
// the parallel writer is promised identical to the serial one, and
// zone-map fingerprints must be stable across runs. Any map-iteration
// order, wall-clock reading, unseeded random draw, goroutine completion
// order, or address-derived value that reaches an io.Writer, a hash
// state, binary.Write, or a summarized writer helper breaks that
// promise in a way round-trip tests only catch probabilistically.
//
// The check is built on the effects layer: per-function effect
// summaries make the flow interprocedural (a helper returning
// time.Now() taints its callers' writes through the "effectsummary"
// fact, across packages), and the canonical determinism idioms are
// recognized as sanitizers, not flagged:
//
//   - sorted keys — collecting map keys and sort.Strings/slices.Sort
//     before iterating;
//   - seeded sources — rand.New(rand.NewSource(seed)) draws are a pure
//     function of the seed;
//   - commutative accumulators — integer sum/XOR/AND/OR folds (the
//     per-segment FNV XOR) are order-independent;
//   - keyed stores — m[k] = v inside a range loop lands the same state
//     regardless of visit order;
//   - tie-broken selections — argmax guarded by a strict comparison on
//     the range key picks one winner deterministically.
//
// Each diagnostic carries the full source→sink path in Related, so the
// SARIF output shows where the nondeterminism enters and where it hits
// the wire.
package detorder

import (
	"fmt"
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/effects"
)

// Analyzer flags nondeterministic values reaching encoded output.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag nondeterministic values (map order, clock, unseeded rand, completion order, addresses) flowing into encoded output\n\n" +
		"Archival bytes must be a pure function of the input table and the\n" +
		"error tolerances. Sort map keys before encoding them, seed random\n" +
		"sources from the options, fold per-segment hashes through a\n" +
		"commutative accumulator, and keep clocks and addresses out of\n" +
		"anything written, hashed, or compared in identity tests.",
	Run: run,
}

// scope: the packages that produce archival bytes. obs and server
// legitimately format clocks and counters into trace output.
var scope = []string{"codec", "archive", "core", "table", "cart", "fascicle"}

// kindNoun renders an effects kind for diagnostics.
var kindNoun = map[string]string{
	effects.KindMapOrder:  "map iteration order",
	effects.KindChanOrder: "goroutine completion order",
	effects.KindTime:      "the wall clock",
	effects.KindRand:      "an unseeded random source",
	effects.KindAddr:      "a memory address",
}

// kindFix names the sanitizer for each kind.
var kindFix = map[string]string{
	effects.KindMapOrder:  "collect and sort the keys before encoding",
	effects.KindChanOrder: "gather per-goroutine results into indexed slots and fold them in order",
	effects.KindTime:      "derive the value from the input or the options, not the clock",
	effects.KindRand:      "seed the source from the options (rand.New(rand.NewSource(seed)))",
	effects.KindAddr:      "encode a stable identifier instead of the address",
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	imported := effects.ModuleScoped(pass.Pkg.Path(), effects.FactLookup(pass.Facts))
	local := effects.Compute(pass.Fset, pass.Files, pass.TypesInfo, imported)
	lookup := local.LookupIn(imported)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			for _, fd := range effects.NondetFindings(pass.Fset, pass.TypesInfo, decl, lookup) {
				report(pass, fd)
			}
		}
	}
	return nil
}

func report(pass *analysis.Pass, fd effects.NondetFinding) {
	related := make([]analysis.RelatedLocation, 0, len(fd.Steps))
	for _, st := range fd.Steps {
		rl := analysis.RelatedLocation{Pos: st.Pos, Message: st.Msg}
		if !st.Pos.IsValid() {
			rl.Position = st.Position.ToTokenPosition()
		}
		related = append(related, rl)
	}
	pass.Report(analysis.Diagnostic{
		Pos: fd.Pos,
		Message: fmt.Sprintf("%s depends on %s and is %s; archive bytes must be deterministic — %s",
			fd.Var, kindNoun[fd.Kind], fd.Sink, kindFix[fd.Kind]),
		Related: related,
	})
}
