package detorder_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/effects/detorder"
)

func TestDetorder(t *testing.T) {
	analyzertest.Run(t, "../../testdata", detorder.Analyzer, "detorder")
}
