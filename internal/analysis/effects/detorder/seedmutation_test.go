package detorder_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/effects/detorder"
)

// TestSeedMutation is the analyzer's self-test against the invariant it
// exists to protect: testdata/seedmutation/segwriter.go is a faithful
// stdlib-only mirror of the segmented writer's dictionary path, guarded
// by the sorted-keys discipline. The guarded form must analyze clean,
// and mechanically deleting the sort.Strings call — the seed mutation a
// careless refactor would make — must reproduce the detorder finding
// with the full map-range→wire path attached.
func TestSeedMutation(t *testing.T) {
	const fixture = "testdata/seedmutation/segwriter.go"

	if diags := analyze(t, fixture, nil); len(diags) != 0 {
		t.Fatalf("sorted writer should be clean, got %d findings: %v", len(diags), messages(diags))
	}

	var deleted int
	diags := analyze(t, fixture, func(f *ast.File) {
		deleted = deleteSortCalls(f)
	})
	if deleted != 1 {
		t.Fatalf("expected to delete exactly 1 sort.Strings call, deleted %d", deleted)
	}
	if len(diags) == 0 {
		t.Fatalf("deleting the sort should reproduce a detorder finding, got none")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "map iteration order") {
			t.Errorf("finding %q should name map iteration order", d.Message)
		}
		if len(d.Related) < 2 {
			t.Errorf("finding %q should carry a source→sink path, got %d related locations",
				d.Message, len(d.Related))
			continue
		}
		if !strings.Contains(d.Related[0].Message, "map iterated") {
			t.Errorf("finding %q path should start at the map range, starts with %q",
				d.Message, d.Related[0].Message)
		}
		last := d.Related[len(d.Related)-1]
		if !strings.Contains(last.Message, "output stream") {
			t.Errorf("finding %q path should end at the wire write, ends with %q",
				d.Message, last.Message)
		}
	}
	// The interprocedural flow — the unsorted dictionary leaving
	// collectDict and hitting the stream through putString — must be
	// among the reproduced findings.
	var viaHelper *analysis.Diagnostic
	for i := range diags {
		for _, rl := range diags[i].Related {
			if strings.Contains(rl.Message, "putString") {
				viaHelper = &diags[i]
			}
		}
	}
	if viaHelper == nil {
		t.Fatalf("expected a finding through putString, got: %v", messages(diags))
	}
}

// analyze parses and type-checks the fixture, applies mutate (if any),
// and returns detorder's diagnostics.
func analyze(t *testing.T, path string, mutate func(*ast.File)) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if mutate != nil {
		mutate(f)
	}
	files := []*ast.File{f}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("archive", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(detorder.Analyzer, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := detorder.Analyzer.Run(pass); err != nil {
		t.Fatalf("running detorder: %v", err)
	}
	return diags
}

// deleteSortCalls removes every sort.Strings(...) expression statement
// and reports how many it removed.
func deleteSortCalls(f *ast.File) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		blk, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := blk.List[:0]
		for _, st := range blk.List {
			if es, ok := st.(*ast.ExprStmt); ok && isSortStrings(es.X) {
				n++
				continue
			}
			kept = append(kept, st)
		}
		blk.List = kept
		return true
	})
	return n
}

func isSortStrings(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Strings" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "sort"
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
