// Fixture mirror of the segmented writer's dictionary path: a
// stdlib-only copy of how internal/archive builds a categorical
// dictionary (collect the distinct values into a map, sort, number in
// sorted order), computes the zone-map fingerprint, and encodes both
// into the segment stream. The sorted-keys discipline is the guard the
// detorder seed-mutation test deletes.
package archive

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// collectDict numbers the distinct values of a categorical column in
// sorted order: the dictionary bytes are a pure function of the value
// set, never of map iteration order.
func collectDict(values []string) []string {
	seen := map[string]struct{}{}
	for _, v := range values {
		seen[v] = struct{}{}
	}
	dict := make([]string, 0, len(seen))
	for k := range seen {
		dict = append(dict, k)
	}
	sort.Strings(dict)
	return dict
}

// codeOf resolves a value to its dictionary code by binary search,
// valid because the dictionary is sorted.
func codeOf(dict []string, v string) int {
	return sort.SearchStrings(dict, v)
}

// fpBit hashes a dictionary value to its zone-map fingerprint bit.
func fpBit(value string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(value))
	return 1 << (h.Sum64() % 64)
}

// putString writes one length-prefixed dictionary entry.
func putString(w *bytes.Buffer, s string) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(s)))
	w.Write(b[:])
	w.WriteString(s)
}

// writeSegmentDict encodes the dictionary followed by the segment's
// fingerprint. The fingerprint OR-fold is commutative — order-free by
// construction — while the entry bytes rely on collectDict's sort.
func writeSegmentDict(w *bytes.Buffer, values []string) {
	dict := collectDict(values)
	var fp uint64
	for _, s := range dict {
		fp |= fpBit(s)
		putString(w, s)
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fp)
	w.Write(b[:])
}
