// Package effects computes per-function effect summaries — the fifth
// rung of spartanvet's interprocedural layer, on top of cfg, callgraph,
// summary (dataflow), vrange and conc. A FuncEffects answers, for one
// function, the two questions SPARTAN's archival-determinism and
// resource-lifecycle analyzers need without re-analyzing the body:
//
//   - which results carry a nondeterministic value (map-range iteration
//     order, the wall clock, the shared math/rand source, goroutine
//     completion order, %p / unsafe address values), and which
//     parameters the function writes to wire output (NondetResults,
//     WriteParams) — consumed by detorder;
//   - which results carry an open io.Closer, and whether the function
//     closes or stores a parameter, discharging the caller's obligation
//     (Opens, ClosesParams, StoresParams) — consumed by closeleak.
//
// Summaries are computed bottom-up over the SCCs of the package call
// graph (fixpoint iteration inside recursive components) and serialized
// as the "effectsummary" analyzer fact, so downstream packages reuse
// them through the unitchecker's vetx files without dependency source —
// exactly the funcsummary/concsummary/rangesummary plumbing.
package effects

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// FactName is the analyzer name effect summaries are stored under in a
// FactStore; detorder and closeleak read the fact directly.
const FactName = "effectsummary"

// Nondeterminism kinds. Each names why a value can differ between two
// runs over identical input — the property the archival format must
// exclude from encoded bytes.
const (
	KindMapOrder  = "map-order"  // map-range iteration order
	KindChanOrder = "chan-order" // goroutine completion / channel receive order
	KindTime      = "time"       // wall clock (time.Now and friends)
	KindRand      = "rand"       // shared or unseeded math/rand source
	KindAddr      = "addr"       // address-derived value (%p, unsafe.Pointer)
)

// NondetResult marks a result (by index) that may carry a
// nondeterministic value out of the function.
type NondetResult struct {
	Result int              `json:"result"`
	Kind   string           `json:"kind"`
	Pos    summary.Position `json:"pos"`
	// Via names the callee the nondeterminism was inherited from, when
	// the source lives in another function.
	Via string `json:"via,omitempty"`
}

// WriteParam marks a parameter (receiver first, funcsummary's index
// convention) whose value the function writes to wire output — an
// io.Writer, a hash state, binary.Write — directly or through a
// summarized callee. Callers treat a call to such a function as a sink
// for the corresponding argument.
type WriteParam struct {
	Param int              `json:"param"`
	Pos   summary.Position `json:"pos"`
	Via   string           `json:"via,omitempty"`
}

// OpenResult marks a result that carries an open io.Closer the caller
// becomes responsible for: the function opened it (os.Open and friends,
// or a summarized opener) and returned it, or wrapped a stored handle
// in a closer-owning struct.
type OpenResult struct {
	Result int              `json:"result"`
	What   string           `json:"what"`
	Pos    summary.Position `json:"pos"`
}

// FuncEffects is the serialized effect summary of one function, keyed
// in a package fact by types.Func.FullName.
type FuncEffects struct {
	NondetResults []NondetResult `json:"nondetResults,omitempty"`
	WriteParams   []WriteParam   `json:"writeParams,omitempty"`
	Opens         []OpenResult   `json:"opens,omitempty"`
	// ClosesParams lists parameters the function closes on some path
	// (directly, deferred, or through a summarized closer): passing an
	// open handle to it discharges the caller's obligation.
	ClosesParams []int `json:"closesParams,omitempty"`
	// StoresParams lists parameters the function stores into a struct
	// field, composite literal, map, slice or global — ownership
	// transfer: whoever holds the container is responsible now.
	StoresParams []int `json:"storesParams,omitempty"`
}

func (s *FuncEffects) empty() bool {
	return len(s.NondetResults) == 0 && len(s.WriteParams) == 0 &&
		len(s.Opens) == 0 && len(s.ClosesParams) == 0 && len(s.StoresParams) == 0
}

func (s *FuncEffects) equal(o *FuncEffects) bool {
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(o)
	return string(a) == string(b)
}

// closesParam reports whether calling the function closes param i.
func (s *FuncEffects) closesParam(i int) bool {
	for _, p := range s.ClosesParams {
		if p == i {
			return true
		}
	}
	return false
}

// storesParam reports whether calling the function stores param i.
func (s *FuncEffects) storesParam(i int) bool {
	for _, p := range s.StoresParams {
		if p == i {
			return true
		}
	}
	return false
}

// Lookup resolves the effect summary of a callee, or nil.
type Lookup func(fn *types.Func) *FuncEffects

// Result is one package's computed effect summaries.
type Result struct {
	// ByFunc holds the summary of every function declared in the
	// package (empty summaries included).
	ByFunc map[*types.Func]*FuncEffects
}

// LookupIn chains the package-local summaries with an imported-fact
// lookup, the resolution order every analyzer wants.
func (r *Result) LookupIn(imported Lookup) Lookup {
	return func(fn *types.Func) *FuncEffects {
		if s, ok := r.ByFunc[fn]; ok {
			return s
		}
		if imported != nil {
			return imported(fn)
		}
		return nil
	}
}

// Compute builds the package call graph, orders it bottom-up by SCC,
// and summarizes every function body. imported resolves cross-package
// callees (nil is fine: unknown callees are treated as effect-free).
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info, imported Lookup) *Result {
	g := callgraph.Build(files, info)
	res := &Result{ByFunc: map[*types.Func]*FuncEffects{}}
	lookup := res.LookupIn(imported)
	for _, scc := range g.SCCs() {
		// Summaries only grow (a nondet source discovered through a
		// mutually recursive callee adds an entry, never removes one), so
		// a short fixpoint converges; four rounds bound pathological
		// growth the same way funcsummary's and concsummary's do.
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				sum := computeFunc(fset, info, n.Decl, lookup)
				if old := res.ByFunc[n.Func]; old == nil || !old.equal(sum) {
					changed = true
				}
				res.ByFunc[n.Func] = sum
			}
			if !changed || round >= 3 {
				break
			}
		}
	}
	return res
}

// computeFunc summarizes one function declaration: the nondeterminism
// engine supplies NondetResults and WriteParams, the resource engine
// Opens, ClosesParams and StoresParams.
func computeFunc(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) *FuncEffects {
	sum := &FuncEffects{}
	if decl.Body == nil {
		return sum
	}
	nd := analyzeNondet(fset, info, decl, lookup)
	sum.NondetResults = nd.ResultNondet
	sum.WriteParams = nd.ParamWrites
	rs := analyzeResources(fset, info, decl, lookup)
	sum.Opens = rs.Opens
	sum.ClosesParams = rs.ClosesParams
	sum.StoresParams = rs.StoresParams
	return sum
}

// Encode serializes the non-empty summaries as the package fact body.
func (r *Result) Encode() ([]byte, error) {
	byName := map[string]*FuncEffects{}
	for fn, s := range r.ByFunc {
		if !s.empty() {
			byName[fn.FullName()] = s
		}
	}
	if len(byName) == 0 {
		return nil, nil
	}
	return json.Marshal(byName)
}

// DecodeFact parses a fact blob produced by Encode.
func DecodeFact(data []byte) (map[string]*FuncEffects, error) {
	byName := map[string]*FuncEffects{}
	if len(data) == 0 {
		return byName, nil
	}
	if err := json.Unmarshal(data, &byName); err != nil {
		return nil, err
	}
	return byName, nil
}

// ModuleScoped restricts a lookup to functions whose package shares the
// module root of pkgPath. Effect summaries of other modules — the
// standard library above all — are not computed anyway (the drivers
// only visit the module under analysis), but the filter keeps the
// contract symmetric with conc.ModuleScoped and guards against a
// future driver that widens the fact horizon.
func ModuleScoped(pkgPath string, l Lookup) Lookup {
	root := moduleRoot(pkgPath)
	return func(fn *types.Func) *FuncEffects {
		if fn == nil || fn.Pkg() == nil || moduleRoot(fn.Pkg().Path()) != root {
			return nil
		}
		return l(fn)
	}
}

// moduleRoot is the leading element of an import path: "repro" for
// "repro/internal/core", "testing" for "testing".
func moduleRoot(path string) string {
	root, _, _ := strings.Cut(path, "/")
	return root
}

// FactLookup adapts a driver FactStore into a cross-package Lookup,
// caching each dependency's decoded fact. Safe with a nil store.
func FactLookup(store *analysis.FactStore) Lookup {
	cache := map[string]map[string]*FuncEffects{}
	return func(fn *types.Func) *FuncEffects {
		if fn == nil || fn.Pkg() == nil {
			return nil
		}
		path := fn.Pkg().Path()
		pkg, ok := cache[path]
		if !ok {
			pkg, _ = DecodeFact(store.Get(path, FactName))
			cache[path] = pkg
		}
		return pkg[fn.FullName()]
	}
}

// argExpr maps a receiver-first parameter index to the call-site
// expression bound to it.
func argExpr(call *ast.CallExpr, callee *types.Func, param int) ast.Expr {
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if param == 0 {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		param--
	}
	if param < 0 || param >= len(call.Args) {
		return nil
	}
	return call.Args[param]
}

// paramVars lists the parameter objects of a declaration: receiver
// first, then parameters, matching funcsummary's index convention.
func paramVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	return out
}

func position(fset *token.FileSet, pos token.Pos) summary.Position {
	p := fset.Position(pos)
	return summary.Position{File: p.Filename, Line: p.Line, Col: p.Column}
}

// Analyzer is the fact producer: it emits no diagnostics, only the
// "effectsummary" package fact detorder and closeleak consume for
// cross-package calls. Drivers run it over dependencies because Facts
// is set.
var Analyzer = &analysis.Analyzer{
	Name:  FactName,
	Doc:   "effectsummary: compute per-function effect summaries (nondeterminism sources reaching results, parameters written to wire output, open io.Closer results, parameters closed or stored) bottom-up over call-graph SCCs and export them as a package fact for the determinism and resource-lifecycle analyzers",
	Facts: true,
	Run: func(pass *analysis.Pass) error {
		res := Compute(pass.Fset, pass.Files, pass.TypesInfo, ModuleScoped(pass.Pkg.Path(), FactLookup(pass.Facts)))
		blob, err := res.Encode()
		if err != nil {
			return err
		}
		pass.ExportFact(blob)
		return nil
	},
}
