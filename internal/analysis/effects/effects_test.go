package effects_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/effects"
)

// check type-checks one source string under package name pkg.
func check(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func compute(t *testing.T, src string) (*effects.Result, *types.Info, *ast.File) {
	t.Helper()
	fset, f, info := check(t, src)
	return effects.Compute(fset, []*ast.File{f}, info, nil), info, f
}

func summaryOf(t *testing.T, res *effects.Result, name string) *effects.FuncEffects {
	t.Helper()
	for fn, s := range res.ByFunc {
		if fn.Name() == name {
			return s
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestNondetResultSummaries(t *testing.T) {
	res, _, _ := compute(t, `package p

import (
	"math/rand"
	"sort"
	"time"
)

func clock() int64 { return time.Now().UnixNano() }

func shared() int { return rand.Int() }

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func firstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func viaClock() int64 { return clock() }
`)
	cases := []struct {
		fn   string
		kind string // "" means no nondet result expected
	}{
		{"clock", effects.KindTime},
		{"shared", effects.KindRand},
		{"seeded", ""},
		{"firstKey", effects.KindMapOrder},
		{"sortedKeys", ""},
		{"viaClock", effects.KindTime},
	}
	for _, c := range cases {
		s := summaryOf(t, res, c.fn)
		if c.kind == "" {
			if len(s.NondetResults) != 0 {
				t.Errorf("%s: want no nondet results, got %+v", c.fn, s.NondetResults)
			}
			continue
		}
		found := false
		for _, nr := range s.NondetResults {
			if nr.Kind == c.kind && nr.Result == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want result 0 nondet kind %q, got %+v", c.fn, c.kind, s.NondetResults)
		}
	}
	// The inherited summary must name the callee.
	via := summaryOf(t, res, "viaClock")
	if len(via.NondetResults) == 0 || via.NondetResults[0].Via == "" {
		t.Errorf("viaClock: want Via naming the callee, got %+v", via.NondetResults)
	}
}

func TestWriteParamSummaries(t *testing.T) {
	res, _, _ := compute(t, `package p

import (
	"bytes"
	"hash/fnv"
)

func emit(w *bytes.Buffer, b []byte) { w.Write(b) }

func fingerprint(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func emitVia(w *bytes.Buffer, b []byte) { emit(w, b) }
`)
	s := summaryOf(t, res, "emit")
	found := false
	for _, wp := range s.WriteParams {
		if wp.Param == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("emit: want param 1 as write param, got %+v", s.WriteParams)
	}
	s = summaryOf(t, res, "emitVia")
	found = false
	for _, wp := range s.WriteParams {
		if wp.Param == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("emitVia: want inherited write param 1, got %+v", s.WriteParams)
	}
}

func TestResourceSummaries(t *testing.T) {
	res, _, _ := compute(t, `package p

import (
	"io"
	"os"
)

func open(path string) (*os.File, error) {
	return os.Open(path)
}

func openVar(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func closes(c io.Closer) { c.Close() }

func closesDeferred(f *os.File) error {
	defer f.Close()
	return nil
}

type box struct{ f *os.File }

func (b *box) Close() error { return b.f.Close() }

func wrap(f *os.File) *box { return &box{f: f} }

func stores(sink map[string]io.Closer, name string, c io.Closer) {
	sink[name] = c
}
`)
	if s := summaryOf(t, res, "openVar"); len(s.Opens) != 1 || s.Opens[0].Result != 0 {
		t.Errorf("openVar: want Opens result 0, got %+v", s.Opens)
	}
	if s := summaryOf(t, res, "closes"); len(s.ClosesParams) != 1 || s.ClosesParams[0] != 0 {
		t.Errorf("closes: want ClosesParams [0], got %+v", s.ClosesParams)
	}
	if s := summaryOf(t, res, "closesDeferred"); len(s.ClosesParams) != 1 || s.ClosesParams[0] != 0 {
		t.Errorf("closesDeferred: want ClosesParams [0], got %+v", s.ClosesParams)
	}
	// wrap stores its param into a closer-owning struct and returns it:
	// both an ownership transfer and an open result.
	ws := summaryOf(t, res, "wrap")
	if len(ws.StoresParams) != 1 || ws.StoresParams[0] != 0 {
		t.Errorf("wrap: want StoresParams [0], got %+v", ws.StoresParams)
	}
	if len(ws.Opens) != 1 || ws.Opens[0].Result != 0 {
		t.Errorf("wrap: want Opens result 0, got %+v", ws.Opens)
	}
	if s := summaryOf(t, res, "stores"); len(s.StoresParams) != 1 || s.StoresParams[0] != 2 {
		t.Errorf("stores: want StoresParams [2], got %+v", s.StoresParams)
	}
}

func TestLeakFindings(t *testing.T) {
	fset, f, info := check(t, `package p

import "os"

func leaky(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var buf [8]byte
	if _, err := f.Read(buf[:]); err != nil {
		return err
	}
	return f.Close()
}

func clean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}
`)
	var leakyDecl, cleanDecl *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			switch fd.Name.Name {
			case "leaky":
				leakyDecl = fd
			case "clean":
				cleanDecl = fd
			}
		}
	}
	leaks := effects.LeakFindings(fset, info, leakyDecl, nil)
	if len(leaks) != 1 {
		t.Fatalf("leaky: want 1 leak, got %+v", leaks)
	}
	if len(leaks[0].Steps) < 2 {
		t.Errorf("leaky: want a source-to-exit path, got %+v", leaks[0].Steps)
	}
	if got := effects.LeakFindings(fset, info, cleanDecl, nil); len(got) != 0 {
		t.Errorf("clean: want no leaks, got %+v", got)
	}
}

func TestFactRoundTrip(t *testing.T) {
	res, _, _ := compute(t, `package p

import "time"

func clock() int64 { return time.Now().UnixNano() }
`)
	blob, err := res.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(blob) == 0 {
		t.Fatalf("encode: want non-empty fact blob")
	}
	decoded, err := effects.DecodeFact(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	s, ok := decoded["p.clock"]
	if !ok {
		t.Fatalf("decoded fact missing p.clock: %v", decoded)
	}
	if len(s.NondetResults) != 1 || s.NondetResults[0].Kind != effects.KindTime {
		t.Errorf("round-tripped summary: got %+v", s.NondetResults)
	}
}
