// The nondeterminism engine: a per-function value-flow analysis that
// tracks where run-to-run-unstable values (map iteration order, the
// wall clock, math/rand, goroutine completion order, addresses) come
// from and whether they reach wire output — an io.Writer, a hash
// state, binary.Write — directly or through a summarized callee.
//
// Three sanitizer families keep the canonical SPARTAN idioms clean:
//
//   - sorted keys: sort.Strings/Ints/Float64s/Slice/Sort (and the
//     slices package equivalents) erase order taint from the sorted
//     variable — collect map keys, sort, iterate is deterministic;
//   - seeded sources: rand.New(rand.NewSource(seed)) carries only the
//     seed's taint, so a fixed-seed sampler is deterministic while the
//     shared global source is not;
//   - commutative accumulators: integer +=, *=, ^=, |=, &= over a map
//     range are order-insensitive (XOR/sum of per-element hashes), as
//     is writing into a map or an element-keyed slot; string/float
//     accumulation and last-writer-wins assignments are not.
//
// An extremal-selection assignment (argmax over a map) is
// deterministic only when its guard totally orders the candidates —
// a strict comparison involving the range key breaks ties; a guard on
// the value alone picks an arbitrary winner among equals.
package effects

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/summary"
)

// Step is one hop of an effect path, rendered as a Diagnostic.Related
// location. Steps inside the analyzed package carry Pos; steps known
// only through a serialized fact carry a pre-resolved Position.
type Step struct {
	Pos      token.Pos
	Position summary.Position
	Msg      string
}

// NondetFinding is one nondeterministic value reaching a wire sink,
// with its source→sink path.
type NondetFinding struct {
	Pos   token.Pos // sink position
	Kind  string
	Sink  string // human description of the sink
	Var   string // source expression rendering, for the message
	Steps []Step
}

// nondetInfo is everything the engine learns about one function.
type nondetInfo struct {
	Findings     []NondetFinding
	ResultNondet []NondetResult
	ParamWrites  []WriteParam
}

// NondetFindings runs the nondeterminism engine over one declaration
// and returns the wire-sink findings; detorder's entry point.
func NondetFindings(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) []NondetFinding {
	return analyzeNondet(fset, info, decl, lookup).Findings
}

// taints maps a taint kind — a Kind* constant or "param:N" — to the
// path explaining how the value acquired it.
type taints map[string][]Step

func (t taints) clone() taints {
	if len(t) == 0 {
		return nil
	}
	out := make(taints, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// join merges o into t, keeping t's existing chains, and returns the
// (possibly newly allocated) result.
func (t taints) join(o taints) taints {
	if len(o) == 0 {
		return t
	}
	if t == nil {
		t = make(taints, len(o))
	}
	for k, v := range o {
		if _, ok := t[k]; !ok {
			t[k] = v
		}
	}
	return t
}

const paramKindPrefix = "param:"

func paramKind(i int) string { return paramKindPrefix + strconv.Itoa(i) }

// orderCtx is one enclosing range-over-map (or channel) loop: values
// derived from its iteration variables arrive in nondeterministic
// order.
type orderCtx struct {
	kind    string // KindMapOrder or KindChanOrder
	pos     token.Pos
	keyVar  *types.Var          // the range key (map key), nil for channels
	derived map[*types.Var]bool // loop vars + body vars derived from them
}

type nondetEngine struct {
	fset   *token.FileSet
	info   *types.Info
	lookup Lookup
	decl   *ast.FuncDecl
	params []*types.Var

	state  map[*types.Var]taints
	orders []*orderCtx

	record   bool // findings are collected only on the final pass
	findings []NondetFinding
	seen     map[string]bool // finding dedup across kinds/positions

	resultNondet map[string]NondetResult // keyed result|kind
	paramWrites  map[int]WriteParam
}

// analyzeNondet runs the engine: one warm-up pass to reach a state
// fixpoint across loop-carried flows, then a recording pass that
// collects findings, result taints and parameter write flows.
func analyzeNondet(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) *nondetInfo {
	e := &nondetEngine{
		fset:         fset,
		info:         info,
		lookup:       lookup,
		decl:         decl,
		params:       paramVars(decl, info),
		state:        map[*types.Var]taints{},
		seen:         map[string]bool{},
		resultNondet: map[string]NondetResult{},
		paramWrites:  map[int]WriteParam{},
	}
	e.seedParams()
	e.stmt(decl.Body)
	e.record = true
	e.stmt(decl.Body)

	out := &nondetInfo{Findings: e.findings}
	for _, nr := range e.resultNondet {
		out.ResultNondet = append(out.ResultNondet, nr)
	}
	sortNondetResults(out.ResultNondet)
	for _, wp := range e.paramWrites {
		out.ParamWrites = append(out.ParamWrites, wp)
	}
	sortWriteParams(out.ParamWrites)
	return out
}

// seedParams taints each data-carrying parameter with its own
// param:N kind so flows into sinks surface as WriteParams. Writer-like
// parameters are destinations, not data, and are left clean.
func (e *nondetEngine) seedParams() {
	for i, p := range e.params {
		if p == nil || isWriterLike(p.Type()) {
			continue
		}
		e.state[p] = taints{paramKind(i): {{Pos: p.Pos(), Msg: fmt.Sprintf("parameter %q enters here", p.Name())}}}
	}
}

// ---- statement walk ----

func (e *nondetEngine) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			e.stmt(st)
		}
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					v, _ := e.info.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					if i < len(vs.Values) {
						e.state[v] = e.expr(vs.Values[i]).clone()
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.expr(s.Cond)
		e.stmt(s.Body)
		if s.Else != nil {
			e.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if s.Cond != nil {
			e.expr(s.Cond)
		}
		if s.Post != nil {
			e.stmt(s.Post)
		}
		e.stmt(s.Body)
	case *ast.RangeStmt:
		e.rangeStmt(s)
	case *ast.ExprStmt:
		if e.sanitize(s.X) {
			return
		}
		e.expr(s.X)
	case *ast.ReturnStmt:
		e.returnStmt(s)
	case *ast.DeferStmt:
		if _, lit := s.Call.Fun.(*ast.FuncLit); !lit {
			e.expr(s.Call)
		}
	case *ast.GoStmt:
		if _, lit := s.Call.Fun.(*ast.FuncLit); !lit {
			e.expr(s.Call)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		if s.Tag != nil {
			e.expr(s.Tag)
		}
		e.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e.stmt(s.Init)
		}
		e.stmt(s.Assign)
		e.stmt(s.Body)
	case *ast.SelectStmt:
		e.stmt(s.Body)
	case *ast.CaseClause:
		for _, st := range s.Body {
			e.stmt(st)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			e.stmt(s.Comm)
		}
		for _, st := range s.Body {
			e.stmt(st)
		}
	case *ast.LabeledStmt:
		e.stmt(s.Stmt)
	case *ast.SendStmt:
		// Values sent on a channel surface at receives from it.
		if ch := rootVarOf(e.info, s.Chan); ch != nil {
			e.state[ch] = e.state[ch].join(e.expr(s.Value))
		}
	}
}

func (e *nondetEngine) rangeStmt(s *ast.RangeStmt) {
	xt := e.expr(s.X)
	var ctx *orderCtx
	switch e.info.TypeOf(s.X).Underlying().(type) {
	case *types.Map:
		ctx = &orderCtx{kind: KindMapOrder, pos: s.Pos(), derived: map[*types.Var]bool{}}
	case *types.Chan:
		ctx = &orderCtx{kind: KindChanOrder, pos: s.Pos(), derived: map[*types.Var]bool{}}
	}
	bind := func(expr ast.Expr, isKey bool) {
		id, ok := expr.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, _ := e.info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = e.info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		t := xt.clone()
		if ctx != nil {
			// The bound variable itself is order-dependent: observing it
			// at a sink (or returning it) exposes iteration order. The
			// assignment rules in orderTaint strip this again for the
			// keyed-store / commutative-accumulator / tie-broken idioms.
			what := "map iterated in nondeterministic order"
			if ctx.kind == KindChanOrder {
				what = "channel received in goroutine completion order"
			}
			t = t.join(taints{ctx.kind: {{Pos: s.Pos(), Msg: what}}})
			ctx.derived[v] = true
			if isKey && ctx.kind == KindMapOrder {
				ctx.keyVar = v
			}
		}
		e.state[v] = t
	}
	if s.Key != nil {
		bind(s.Key, true)
	}
	if s.Value != nil {
		bind(s.Value, false)
	}
	if ctx != nil {
		e.orders = append(e.orders, ctx)
		e.stmt(s.Body)
		e.orders = e.orders[:len(e.orders)-1]
	} else {
		e.stmt(s.Body)
	}
}

func (e *nondetEngine) returnStmt(s *ast.ReturnStmt) {
	if !e.record {
		return
	}
	exprs := s.Results
	if len(exprs) == 0 && e.decl.Type.Results != nil {
		// Naked return with named results: read the result variables.
		for _, f := range e.decl.Type.Results.List {
			for _, name := range f.Names {
				exprs = append(exprs, ast.Expr(name))
			}
		}
	}
	for i, r := range exprs {
		for kind, steps := range e.expr(r) {
			if strings.HasPrefix(kind, paramKindPrefix) {
				continue // param→result flows are funcsummary's job
			}
			key := fmt.Sprintf("%d|%s", i, kind)
			if _, ok := e.resultNondet[key]; ok {
				continue
			}
			nr := NondetResult{Result: i, Kind: kind, Pos: position(e.fset, s.Pos())}
			if len(steps) > 0 {
				if steps[0].Pos.IsValid() {
					nr.Pos = position(e.fset, steps[0].Pos)
				} else {
					nr.Pos = steps[0].Position
				}
				if via := viaOf(steps); via != "" {
					nr.Via = via
				}
			}
			e.resultNondet[key] = nr
		}
	}
}

// kindPhrase renders a nondeterminism kind as a source-step message.
func kindPhrase(kind string) string {
	switch kind {
	case KindMapOrder:
		return "map iterated in nondeterministic order here"
	case KindChanOrder:
		return "channel received in goroutine completion order here"
	case KindTime:
		return "wall clock read here"
	case KindRand:
		return "shared math/rand source drawn here"
	case KindAddr:
		return "memory address observed here"
	}
	return "nondeterministic value (" + kind + ") originates here"
}

// viaOf extracts a callee name recorded in a "returned by F" step.
func viaOf(steps []Step) string {
	for _, s := range steps {
		if name, ok := strings.CutPrefix(s.Msg, "returned by "); ok {
			return name
		}
	}
	return ""
}

// ---- assignment and order sensitivity ----

func (e *nondetEngine) assign(s *ast.AssignStmt) {
	// Multi-value form: x, y := f().
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		var per []taints
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			per = e.call(call)
		} else {
			t := e.expr(s.Rhs[0])
			per = make([]taints, len(s.Lhs))
			for i := range per {
				per[i] = t
			}
		}
		for i, lhs := range s.Lhs {
			var t taints
			if i < len(per) {
				t = per[i]
			}
			e.assignOne(s, lhs, t, nil)
		}
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		e.assignOne(s, lhs, e.expr(s.Rhs[i]), s.Rhs[i])
	}
}

// assignOne updates the state for one lhs := t and applies the
// order-sensitivity rules when the assignment happens inside a
// range-over-map (or channel) loop.
func (e *nondetEngine) assignOne(s *ast.AssignStmt, lhs ast.Expr, t taints, rhs ast.Expr) {
	v := rootVarOf(e.info, lhs)
	if v == nil {
		return
	}
	_, isIdent := ast.Unparen(lhs).(*ast.Ident)
	if ctx := e.innerOrder(); ctx != nil {
		// Judge the assignment before marking the target derived: for an
		// outer variable the first derived-value assignment is exactly
		// the one the last-writer-wins / tie-broken rules must see.
		loopLocal := ctx.derived[v] || v.Pos() > ctx.pos
		ot := e.orderTaint(s, lhs, rhs, ctx)
		if isIdent && rhs != nil && e.mentionsDerived(rhs, ctx) {
			ctx.derived[v] = true
		}
		if ot != nil {
			t = t.clone().join(ot)
		} else if !loopLocal {
			// The rule engine excused this assignment (keyed store,
			// commutative accumulator, tie-broken selection): the order
			// taint the operands carry does not escape the loop into an
			// outer variable or container.
			t = t.clone()
			delete(t, ctx.kind)
		}
	}
	// A commutative integer fold (fp |= bit, sum += n, h ^= digest) is
	// order-free even when its operands arrived in nondeterministic
	// order — e.g. iterating a slice of map-collected keys: the fold
	// over the whole set is a pure function of the set. The wall clock
	// and random kinds stay: summing clock readings is still nondet.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE && !isOrderSensitiveOp(s.Tok, e.info.TypeOf(lhs)) {
		t = t.clone()
		delete(t, KindMapOrder)
		delete(t, KindChanOrder)
	}
	switch {
	case isIdent && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE):
		e.state[v] = t.clone()
	default:
		// Compound assign or write through a selector/index: weak join.
		e.state[v] = e.state[v].join(t)
	}
}

// innerOrder returns the innermost enclosing order context, or nil.
func (e *nondetEngine) innerOrder() *orderCtx {
	if len(e.orders) == 0 {
		return nil
	}
	return e.orders[len(e.orders)-1]
}

// orderTaint decides whether this assignment makes its target depend
// on iteration order, returning the taint to add or nil for the
// recognized commutative/keyed/tie-broken idioms.
func (e *nondetEngine) orderTaint(s *ast.AssignStmt, lhs ast.Expr, rhs ast.Expr, ctx *orderCtx) taints {
	v := rootVarOf(e.info, lhs)
	if v == nil || ctx.derived[v] {
		return nil // iteration-local accumulation dies with the iteration
	}
	if v.Pos() > ctx.pos {
		return nil // declared inside the loop: per-iteration variable
	}
	mk := func(how string, pos token.Pos) taints {
		what := "map"
		if ctx.kind == KindChanOrder {
			what = "channel (goroutine completion order)"
		}
		return taints{ctx.kind: {
			{Pos: ctx.pos, Msg: fmt.Sprintf("%s iterated in nondeterministic order", what)},
			{Pos: pos, Msg: how},
		}}
	}

	// Keyed stores are order-independent: m[k] = v, slot[key] = v.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if _, isMap := e.info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
			return nil
		}
		if e.mentionsDerived(ix.Index, ctx) {
			return nil // element-keyed slot
		}
		if rhs != nil && e.mentionsDerived(rhs, ctx) {
			return mk(fmt.Sprintf("stored at an order-dependent position into %q", exprText(e.fset, ix.X)), s.Pos())
		}
		return nil
	}

	// append: order-sensitive when the appended values are derived from
	// the iteration (collecting keys); a constant per element only
	// changes the deterministic length.
	if call, ok := ast.Unparen(firstRhsCall(rhs)).(*ast.CallExpr); ok && isBuiltin(e.info, call, "append") {
		for _, arg := range call.Args[1:] {
			if e.mentionsDerived(arg, ctx) {
				return mk(fmt.Sprintf("appended in iteration order to %q", v.Name()), s.Pos())
			}
		}
		return nil
	}

	// An rhs with no iteration-derived operand (count += 1, loop-
	// invariant assignments) produces the same value every order.
	if rhs == nil || !e.mentionsDerived(rhs, ctx) {
		return nil
	}

	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.XOR_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN:
		if !isOrderSensitiveOp(s.Tok, e.info.TypeOf(lhs)) {
			return nil // commutative integer accumulator (sum/XOR of hashes)
		}
		return mk(fmt.Sprintf("accumulated order-sensitively into %q (%s on %s)", v.Name(), s.Tok, e.info.TypeOf(lhs)), s.Pos())
	case token.QUO_ASSIGN, token.REM_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return mk(fmt.Sprintf("accumulated order-sensitively into %q (%s)", v.Name(), s.Tok), s.Pos())
	}

	// Plain assignment of a derived value to an outer variable:
	// last-writer-wins unless the enclosing guard totally orders the
	// candidates via the range key.
	if e.tieBroken(s, ctx) {
		return nil
	}
	return mk(fmt.Sprintf("assigned to %q; the winning iteration depends on map order", v.Name()), s.Pos())
}

// isOrderSensitiveOp reports whether a compound accumulation of this
// token over type t depends on operand order: float and complex
// arithmetic is non-associative, string += concatenates in order;
// integer +,-,*,^,|,& are commutative and associative (mod 2ⁿ).
func isOrderSensitiveOp(tok token.Token, t types.Type) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		if t == nil {
			return true
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok {
			return true
		}
		info := b.Info()
		if info&types.IsInteger != 0 {
			return false
		}
		return true // float, complex, string
	case token.XOR_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN:
		return false
	}
	return true
}

// tieBroken reports whether the innermost if-guard around s totally
// orders the selection: a strict comparison with the range key as an
// operand breaks ties deterministically. A guard comparing only the
// value picks an arbitrary winner among equal values.
func (e *nondetEngine) tieBroken(s *ast.AssignStmt, ctx *orderCtx) bool {
	if ctx.keyVar == nil {
		return false
	}
	var guard ast.Expr
	ast.Inspect(e.decl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if ifs.Body.Pos() <= s.Pos() && s.End() <= ifs.Body.End() {
			guard = ifs.Cond // innermost wins: keep descending
		}
		return true
	})
	if guard == nil {
		return false
	}
	broken := false
	ast.Inspect(guard, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if e.usesVar(b.X, ctx.keyVar) || e.usesVar(b.Y, ctx.keyVar) {
				broken = true
			}
		}
		return !broken
	})
	return broken
}

func (e *nondetEngine) usesVar(expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && e.info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// mentionsDerived reports whether expr uses a variable whose value was
// produced by the current iteration of ctx's loop.
func (e *nondetEngine) mentionsDerived(expr ast.Expr, ctx *orderCtx) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, _ := e.info.Uses[id].(*types.Var); v != nil && ctx.derived[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

func firstRhsCall(rhs ast.Expr) ast.Expr {
	if rhs == nil {
		return &ast.BadExpr{}
	}
	return rhs
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

// ---- expression taint ----

func (e *nondetEngine) expr(x ast.Expr) taints {
	switch x := x.(type) {
	case *ast.Ident:
		if v, _ := e.info.Uses[x].(*types.Var); v != nil {
			return e.state[v]
		}
		return nil
	case *ast.BasicLit, *ast.FuncLit:
		return nil
	case *ast.ParenExpr:
		return e.expr(x.X)
	case *ast.BinaryExpr:
		return e.expr(x.X).clone().join(e.expr(x.Y))
	case *ast.UnaryExpr:
		t := e.expr(x.X)
		if x.Op == token.ARROW {
			// A plain receive yields whatever was sent; completion-order
			// nondeterminism is modelled at range-over-channel loops.
			return t
		}
		return t
	case *ast.StarExpr:
		return e.expr(x.X)
	case *ast.SelectorExpr:
		if id := unparenIdent(x.X); id != nil {
			if _, isPkg := e.info.Uses[id].(*types.PkgName); isPkg {
				return nil // qualified identifier pkg.X
			}
		}
		return e.expr(x.X)
	case *ast.IndexExpr:
		return e.expr(x.X).clone().join(e.expr(x.Index))
	case *ast.IndexListExpr:
		return e.expr(x.X)
	case *ast.SliceExpr:
		return e.expr(x.X)
	case *ast.TypeAssertExpr:
		return e.expr(x.X)
	case *ast.CompositeLit:
		var t taints
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = t.clone().join(e.expr(el))
		}
		return t
	case *ast.CallExpr:
		per := e.call(x)
		if len(per) == 1 {
			return per[0]
		}
		var t taints
		for _, p := range per {
			t = t.clone().join(p)
		}
		return t
	}
	return nil
}

func unparenIdent(x ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(x).(*ast.Ident)
	return id
}

// call computes per-result taints for a call and checks it against the
// wire sinks. This is the one place every CallExpr flows through.
func (e *nondetEngine) call(call *ast.CallExpr) []taints {
	callee, dynamic, isCall := callgraph.StaticCallee(e.info, call)
	if !isCall {
		return e.conversionOrBuiltin(call)
	}

	e.checkSink(call, callee, dynamic)

	joinArgs := func() taints {
		var t taints
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			t = t.clone().join(e.expr(sel.X))
		}
		for _, a := range call.Args {
			t = t.clone().join(e.expr(a))
		}
		return t
	}

	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "time":
			switch callee.Name() {
			case "Now", "Since", "Until":
				return []taints{{KindTime: {{Pos: call.Pos(), Msg: "reads the wall clock"}}}}
			}
		case "math/rand", "math/rand/v2":
			sig, _ := callee.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				// Method on a source or Rand value: deterministic iff the
				// source is (rand.New(rand.NewSource(seed)) carries only
				// the seed's taint).
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					return resultsOf(call, e.info, e.expr(sel.X))
				}
				return nil
			}
			switch callee.Name() {
			case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
				return resultsOf(call, e.info, joinArgs())
			default:
				return resultsOf(call, e.info, taints{KindRand: {{Pos: call.Pos(), Msg: "draws from the shared math/rand source"}}})
			}
		case "fmt":
			switch callee.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Appendf", "Append", "Appendln", "Errorf":
				t := joinArgs()
				if fmtHasAddrVerb(call, 0) {
					t = t.clone().join(taints{KindAddr: {{Pos: call.Pos(), Msg: "formats a memory address (%p)"}}})
				}
				return resultsOf(call, e.info, t)
			}
		case "sort", "slices":
			// Order-erasing helpers: handled as sanitizers at statement
			// level; their results carry only the operand's remaining
			// taints.
			return resultsOf(call, e.info, joinArgs())
		case "maps":
			switch callee.Name() {
			case "Keys", "Values":
				return resultsOf(call, e.info, joinArgs().clone().join(
					taints{KindMapOrder: {{Pos: call.Pos(), Msg: "map iterated in nondeterministic order"}}}))
			}
		case "encoding/binary":
			// ByteOrder.PutUintNN(b, v) and binary.Append encode v into
			// their destination argument: the value's taint moves into it.
			if strings.HasPrefix(callee.Name(), "Put") || strings.HasPrefix(callee.Name(), "Append") {
				if len(call.Args) >= 2 {
					if dst := e.localStream(call.Args[0]); dst != nil {
						var t taints
						for _, a := range call.Args[1:] {
							t = t.clone().join(e.expr(a))
						}
						e.state[dst] = e.state[dst].join(t)
					}
				}
				return resultsOf(call, e.info, joinArgs())
			}
		}
	}

	// Module callee with a summary: results inherit its NondetResults.
	if sum := e.lookupSummary(callee, dynamic); sum != nil {
		per := make([]taints, numResults(call, e.info))
		for _, nr := range sum.NondetResults {
			if nr.Result < 0 || nr.Result >= len(per) {
				continue
			}
			src := Step{Position: nr.Pos, Msg: kindPhrase(nr.Kind)}
			via := Step{Pos: call.Pos(), Msg: "returned by " + callee.Name()}
			per[nr.Result] = per[nr.Result].clone().join(taints{nr.Kind: {src, via}})
		}
		// Value passthrough keeps caller-side taints flowing too.
		pass := joinArgs()
		for i := range per {
			per[i] = per[i].clone().join(pass)
		}
		return per
	}

	// Unknown callee: conservative value passthrough.
	return resultsOf(call, e.info, joinArgs())
}

func (e *nondetEngine) lookupSummary(callee *types.Func, dynamic bool) *FuncEffects {
	if callee == nil || dynamic || e.lookup == nil {
		return nil
	}
	return e.lookup(callee)
}

// conversionOrBuiltin handles CallExprs that are not function calls.
func (e *nondetEngine) conversionOrBuiltin(call *ast.CallExpr) []taints {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := e.info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "make", "new":
				return nil // deterministic regardless of operand order taint
			}
			var t taints
			for _, a := range call.Args {
				t = t.clone().join(e.expr(a))
			}
			return []taints{t}
		}
	}
	// Conversion: value passthrough, plus uintptr(unsafe.Pointer(p)) is
	// an address observation.
	var t taints
	for _, a := range call.Args {
		t = t.clone().join(e.expr(a))
	}
	if tt := e.info.TypeOf(call); tt != nil && len(call.Args) == 1 {
		if b, ok := tt.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if at := e.info.TypeOf(call.Args[0]); at != nil {
				if ab, ok := at.Underlying().(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
					t = t.clone().join(taints{KindAddr: {{Pos: call.Pos(), Msg: "observes a memory address via unsafe.Pointer"}}})
				}
			}
		}
	}
	return []taints{t}
}

// resultsOf replicates one taint across every result of the call.
func resultsOf(call *ast.CallExpr, info *types.Info, t taints) []taints {
	n := numResults(call, info)
	per := make([]taints, n)
	for i := range per {
		per[i] = t
	}
	return per
}

func numResults(call *ast.CallExpr, info *types.Info) int {
	tt := info.TypeOf(call)
	if tt == nil {
		return 1
	}
	if tup, ok := tt.(*types.Tuple); ok {
		return tup.Len()
	}
	return 1
}

// ---- sanitizers ----

// sanitize recognizes order-erasing statements — sort.X(v) and the
// slices equivalents — clearing map/channel-order taint from the
// sorted variable. Returns true when the statement was consumed.
func (e *nondetEngine) sanitize(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	callee, _, isCall := callgraph.StaticCallee(e.info, call)
	if !isCall || callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "sort":
		switch callee.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
		default:
			return false
		}
	case "slices":
		switch callee.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
		default:
			return false
		}
	default:
		return false
	}
	v := rootVarOf(e.info, call.Args[0])
	if v == nil {
		return false
	}
	t := e.state[v]
	if t == nil {
		return true
	}
	nt := t.clone()
	delete(nt, KindMapOrder)
	delete(nt, KindChanOrder)
	e.state[v] = nt
	return true
}

// ---- wire sinks ----

// checkSink reports nondeterministic values reaching wire output and
// records param→writer flows for the function's own summary.
func (e *nondetEngine) checkSink(call *ast.CallExpr, callee *types.Func, dynamic bool) {
	type sinkArg struct {
		expr   ast.Expr
		desc   string
		stream ast.Expr // the writer operand; nil for summarized sinks
	}
	var args []sinkArg

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee != nil {
		switch callee.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			if rt := e.info.TypeOf(sel.X); rt != nil && isWriterLike(rt) && !isConsoleWriter(e.info, sel.X) && len(call.Args) > 0 {
				desc := "written to the output stream"
				if isHashLike(rt) {
					desc = "hashed into a fingerprint"
				}
				for _, a := range call.Args {
					args = append(args, sinkArg{a, desc, sel.X})
				}
			}
		}
	}
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "encoding/binary":
			if callee.Name() == "Write" && len(call.Args) == 3 {
				args = append(args, sinkArg{call.Args[2], "encoded by binary.Write", call.Args[0]})
			}
		case "fmt":
			switch callee.Name() {
			case "Fprintf", "Fprint", "Fprintln":
				if len(call.Args) > 0 && !isConsoleWriter(e.info, call.Args[0]) {
					for _, a := range call.Args[1:] {
						args = append(args, sinkArg{a, "formatted into the output stream", call.Args[0]})
					}
					if callee.Name() == "Fprintf" && fmtHasAddrVerb(call, 1) {
						if sv := e.localStream(call.Args[0]); sv != nil {
							e.state[sv] = e.state[sv].join(taints{KindAddr: {{Pos: call.Pos(), Msg: "formats a memory address (%p) into the buffer"}}})
						} else {
							e.report(call.Pos(), KindAddr, "formatted into the output stream", exprText(e.fset, call.Args[0]),
								[]Step{{Pos: call.Pos(), Msg: "formats a memory address (%p) into the stream"}})
						}
					}
				}
			}
		}
	}
	// Calls into summarized writer helpers: each WriteParam is a sink
	// for the corresponding argument.
	if sum := e.lookupSummary(callee, dynamic); sum != nil {
		for _, wp := range sum.WriteParams {
			a := argExpr(call, callee, wp.Param)
			if a == nil {
				continue
			}
			args = append(args, sinkArg{a, fmt.Sprintf("passed to %s, which writes it to the output stream", callee.Name()), nil})
		}
	}

	for _, sa := range args {
		t := e.expr(sa.expr)
		// Writing into a function-local buffer or hash is not wire output
		// yet: the taint moves into the stream variable and surfaces only
		// if its bytes reach a real sink (w.Write(buf.Bytes())). A local
		// digest XOR-folded into a fingerprint stays clean.
		if sv := e.localStream(sa.stream); sv != nil {
			absorbed := taints{}
			for kind, steps := range t {
				grown := make([]Step, len(steps), len(steps)+1)
				copy(grown, steps)
				grown = append(grown, Step{Pos: call.Pos(), Msg: fmt.Sprintf("written into %q here", sv.Name())})
				absorbed[kind] = grown
			}
			e.state[sv] = e.state[sv].join(absorbed)
			if ctx := e.innerOrder(); ctx != nil {
				if _, ok := absorbed[ctx.kind]; ok || e.mentionsDerived(sa.expr, ctx) {
					ctx.derived[sv] = true
				}
			}
			continue
		}
		for kind, steps := range t {
			if pi, ok := strings.CutPrefix(kind, paramKindPrefix); ok {
				if n, err := strconv.Atoi(pi); err == nil {
					if _, have := e.paramWrites[n]; !have {
						wp := WriteParam{Param: n, Pos: position(e.fset, call.Pos())}
						if callee != nil && strings.Contains(sa.desc, "passed to") {
							wp.Via = callee.Name()
						}
						e.paramWrites[n] = wp
					}
				}
				continue
			}
			e.report(call.Pos(), kind, sa.desc, exprText(e.fset, sa.expr), steps)
		}
	}
}

// localStream resolves a writer operand to a function-local variable,
// or nil when the stream is a parameter, a field reached through one,
// or a package-level writer — those carry bytes out of the function,
// so writes to them are real sinks.
func (e *nondetEngine) localStream(stream ast.Expr) *types.Var {
	if stream == nil {
		return nil
	}
	v := rootVarOf(e.info, stream)
	if v == nil {
		return nil
	}
	for _, p := range e.params {
		if p == v {
			return nil
		}
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

func (e *nondetEngine) report(pos token.Pos, kind, sinkDesc, varText string, steps []Step) {
	if !e.record {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, kind)
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	full := make([]Step, 0, len(steps)+1)
	full = append(full, steps...)
	if len(full) > 7 {
		full = full[:7]
	}
	full = append(full, Step{Pos: pos, Msg: sinkDesc})
	e.findings = append(e.findings, NondetFinding{Pos: pos, Kind: kind, Sink: sinkDesc, Var: varText, Steps: full})
}

// ---- type and expression helpers ----

// isWriterLike duck-types t (or *t) against io.Writer's Write method:
// Write([]byte) (int, error).
func isWriterLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if hasWriteMethod(t) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr && !types.IsInterface(t) {
		return hasWriteMethod(types.NewPointer(t))
	}
	return false
}

func hasWriteMethod(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if m.Obj().Name() != "Write" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if s, ok := sig.Params().At(0).Type().(*types.Slice); ok {
			if b, ok := s.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// isHashLike reports a hash-state receiver: it has both the Write
// method and a SumNN/Sum method, the hash.Hash shape.
func isHashLike(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Sum", "Sum32", "Sum64", "BlockSize":
			return true
		}
	}
	return false
}

// isConsoleWriter recognizes os.Stdout/os.Stderr destinations: console
// output (progress, stats) is allowed to be nondeterministic.
func isConsoleWriter(info *types.Info, w ast.Expr) bool {
	sel, ok := ast.Unparen(w).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	if _, isPkg := info.Uses[pkg].(*types.PkgName); !isPkg {
		return false
	}
	return pkg.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}

// fmtHasAddrVerb reports a %p verb in the constant format argument.
func fmtHasAddrVerb(call *ast.CallExpr, fmtArg int) bool {
	if fmtArg >= len(call.Args) {
		return false
	}
	lit, ok := ast.Unparen(call.Args[fmtArg]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return false
	}
	return strings.Contains(s, "%p")
}

// rootVarOf resolves the variable at the base of an lvalue-ish
// expression: x, x.f, x[i], *x, (&x).f.
func rootVarOf(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func exprText(fset *token.FileSet, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if id := unparenIdent(x.X); id != nil {
			return id.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.CallExpr:
		return exprText(fset, x.Fun) + "(…)"
	}
	return "value"
}

func sortNondetResults(nrs []NondetResult) {
	for i := 1; i < len(nrs); i++ {
		for j := i; j > 0; j-- {
			a, b := nrs[j-1], nrs[j]
			if a.Result < b.Result || (a.Result == b.Result && a.Kind <= b.Kind) {
				break
			}
			nrs[j-1], nrs[j] = b, a
		}
	}
}

func sortWriteParams(wps []WriteParam) {
	for i := 1; i < len(wps); i++ {
		for j := i; j > 0 && wps[j-1].Param > wps[j].Param; j-- {
			wps[j-1], wps[j] = wps[j], wps[j-1]
		}
	}
}
