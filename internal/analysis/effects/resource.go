// The resource-lifecycle engine: per-function tracking of open
// io.Closer obligations over the control-flow graph. An obligation is
// created by a recognized opener (os.Open and friends, net dials and
// listens, or a summarized module opener) and must be discharged on
// every CFG exit path by one of:
//
//   - a Close call on the handle, direct or deferred (a defer only
//     covers exits reached after the defer statement executes — an
//     early return before the defer still leaks);
//   - returning the handle (ownership moves to the caller, and the
//     function's summary gains an OpenResult);
//   - storing it into a closer-owning struct, map, slice or global
//     (ownership moves to the container);
//   - passing it to a summarized callee that closes or stores it;
//   - capture by a function literal (the closure owns it now —
//     conservative, but escape tracking stops at closure boundaries).
//
// The walk is error-path aware: on the failure edge of the open's
// paired `err != nil` check no resource exists, so `return nil, err`
// there is not a leak.
package effects

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
)

// LeakFinding is one open obligation with a CFG exit path that never
// discharges it; closeleak renders it as a diagnostic with the
// open→exit path attached.
type LeakFinding struct {
	OpenPos token.Pos
	What    string
	ExitPos token.Pos
	ExitMsg string
	Steps   []Step
}

// resourceInfo is everything the engine learns about one function.
type resourceInfo struct {
	Opens        []OpenResult
	ClosesParams []int
	StoresParams []int
	Leaks        []LeakFinding
}

// LeakFindings runs the resource engine over one declaration and
// returns its leaking open sites; closeleak's entry point.
func LeakFindings(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) []LeakFinding {
	return analyzeResources(fset, info, decl, lookup).Leaks
}

// openSite is one tracked obligation: the handle variable, the paired
// error variable of the opening assignment, and where it was opened.
type openSite struct {
	v      *types.Var
	errVar *types.Var
	stmt   *ast.AssignStmt
	pos    token.Pos
	what   string
}

// stdOpeners maps qualified stdlib functions to the result index that
// carries the open handle.
var stdOpeners = map[string]int{
	"os.Open":         0,
	"os.Create":       0,
	"os.OpenFile":     0,
	"os.CreateTemp":   0,
	"net.Dial":        0,
	"net.DialTimeout": 0,
	"net.DialTCP":     0,
	"net.DialUDP":     0,
	"net.Listen":      0,
	"net.ListenTCP":   0,
	"net.ListenUDP":   0,
}

func analyzeResources(fset *token.FileSet, info *types.Info, decl *ast.FuncDecl, lookup Lookup) *resourceInfo {
	e := &resourceEngine{fset: fset, info: info, lookup: lookup, decl: decl, params: paramVars(decl, info)}
	out := &resourceInfo{}
	out.ClosesParams = e.closesParams()
	out.StoresParams = e.storesParams()
	sites := e.openSites()
	g := cfg.New(decl.Body)
	for _, site := range sites {
		returned := e.track(g, site, out)
		if returned >= 0 {
			out.Opens = append(out.Opens, OpenResult{Result: returned, What: site.what, Pos: position(fset, site.pos)})
		}
	}
	out.Opens = append(out.Opens, e.wrapperOpens()...)
	out.Opens = append(out.Opens, e.directOpens()...)
	dedupOpens(out)
	return out
}

// directOpens detects opener forwarding: `return os.Open(path)` or
// `return archive.OpenSegmented(r)` hands the callee's open result
// straight to the caller without a local binding.
func (e *resourceEngine) directOpens() []OpenResult {
	var out []OpenResult
	ast.Inspect(e.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			resIdx, what, ok := e.openerOf(call)
			if !ok {
				continue
			}
			// A single multi-result call keeps the callee's indices; a
			// call in result slot i contributes its handle at i.
			idx := i
			if len(ret.Results) == 1 {
				idx = resIdx
			}
			out = append(out, OpenResult{Result: idx, What: what, Pos: position(e.fset, call.Pos())})
		}
		return true
	})
	return out
}

type resourceEngine struct {
	fset   *token.FileSet
	info   *types.Info
	lookup Lookup
	decl   *ast.FuncDecl
	params []*types.Var
}

// ---- summary extraction ----

// closesParams lists parameters the function closes on some path:
// p.Close() anywhere (deferred and closure bodies included), or p
// passed to a summarized closer.
func (e *resourceEngine) closesParams() []int {
	var out []int
	for i, p := range e.params {
		if p == nil || !hasCloseMethod(p.Type()) {
			continue
		}
		if e.bodyCloses(e.decl.Body, p) {
			out = append(out, i)
		}
	}
	return out
}

func (e *resourceEngine) bodyCloses(body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if e.isCloseOf(call, v) || e.calleeHandles(call, v, func(s *FuncEffects, i int) bool { return s.closesParam(i) }) {
			found = true
		}
		return !found
	})
	return found
}

// storesParams lists parameters stored into a composite literal,
// struct field, map, slice, global, or passed to a summarized storer —
// ownership leaves the parameter.
func (e *resourceEngine) storesParams() []int {
	var out []int
	for i, p := range e.params {
		if p == nil {
			continue
		}
		if e.bodyStores(e.decl.Body, p) {
			out = append(out, i)
		}
	}
	return out
}

func (e *resourceEngine) bodyStores(body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if e.isUseOf(el, v) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for li, lhs := range n.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				// x.f = v, m[k] = v, *p = v: stored through a container.
				if li < len(n.Rhs) && e.isUseOf(n.Rhs[li], v) {
					found = true
				}
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					break
				}
			}
		case *ast.CallExpr:
			if isBuiltin(e.info, n, "append") {
				for _, a := range n.Args[1:] {
					if e.isUseOf(a, v) {
						found = true
					}
				}
			} else if e.calleeHandles(n, v, func(s *FuncEffects, i int) bool { return s.storesParam(i) }) {
				found = true
			}
		}
		return !found
	})
	return found
}

// wrapperOpens detects the constructor shape: a returned composite
// literal of a closer-owning type that captures one of the function's
// parameters or locals — OpenSegmented wrapping the caller's reader.
// The result then carries an open handle the caller must close.
func (e *resourceEngine) wrapperOpens() []OpenResult {
	var out []OpenResult
	seen := map[int]bool{}
	ast.Inspect(e.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, res := range ret.Results {
			lit := compositeOf(res)
			if lit == nil || seen[i] {
				continue
			}
			t := e.info.TypeOf(lit)
			if t == nil || !hasCloseMethod(t) {
				continue
			}
			stores := false
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if id := unparenIdent(el); id != nil {
					// A closer-typed field is a resource outright; an
					// interface-typed one (io.ReadSeeker) may hold a file
					// at runtime — the wrapper's Close exists to release
					// it, so the caller owes that call either way.
					if v, _ := e.info.Uses[id].(*types.Var); v != nil &&
						(hasCloseMethod(v.Type()) || types.IsInterface(v.Type())) {
						stores = true
					}
				}
			}
			if stores {
				seen[i] = true
				out = append(out, OpenResult{Result: i, What: typeText(t), Pos: position(e.fset, res.Pos())})
			}
		}
		return true
	})
	return out
}

func compositeOf(res ast.Expr) *ast.CompositeLit {
	switch x := ast.Unparen(res).(type) {
	case *ast.CompositeLit:
		return x
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				return lit
			}
		}
	}
	return nil
}

// ---- open-site discovery ----

func (e *resourceEngine) openSites() []openSite {
	var sites []openSite
	ast.Inspect(e.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's opens are its own business
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		resIdx, what, ok := e.openerOf(call)
		if !ok || resIdx >= len(as.Lhs) {
			return true
		}
		id := unparenIdent(as.Lhs[resIdx])
		if id == nil || id.Name == "_" {
			return true
		}
		v := varOfIdent(e.info, id)
		if v == nil || !hasCloseMethod(v.Type()) {
			return true
		}
		site := openSite{v: v, stmt: as, pos: call.Pos(), what: what}
		for _, lhs := range as.Lhs {
			if lid := unparenIdent(lhs); lid != nil {
				if lv := varOfIdent(e.info, lid); lv != nil && isErrorType(lv.Type()) {
					site.errVar = lv
				}
			}
		}
		sites = append(sites, site)
		return true
	})
	return sites
}

// openerOf reports whether call creates an open obligation, the result
// index that carries it, and a description.
func (e *resourceEngine) openerOf(call *ast.CallExpr) (int, string, bool) {
	callee, dynamic, isCall := callgraph.StaticCallee(e.info, call)
	if !isCall || callee == nil {
		return 0, "", false
	}
	if callee.Pkg() != nil {
		key := callee.Pkg().Name() + "." + callee.Name()
		if idx, ok := stdOpeners[key]; ok && !dynamic {
			return idx, key, true
		}
	}
	if sum := e.summaryOf(callee, dynamic); sum != nil && len(sum.Opens) > 0 {
		op := sum.Opens[0]
		return op.Result, callee.Name() + " (" + baseWhat(op.What) + ")", true
	}
	return 0, "", false
}

// baseWhat unwraps a forwarding chain's description to the innermost
// resource: "OpenArchive (OpenSegmented (archive.SegReader))" names an
// archive.SegReader.
func baseWhat(what string) string {
	for {
		i := lastIndexByte(what, '(')
		if i < 0 {
			return what
		}
		what = what[i+1:]
		if j := lastIndexByte(what, ')'); j >= 0 {
			what = what[:j]
		}
	}
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func (e *resourceEngine) summaryOf(callee *types.Func, dynamic bool) *FuncEffects {
	if callee == nil || dynamic || e.lookup == nil {
		return nil
	}
	return e.lookup(callee)
}

// ---- CFG obligation walk ----

// track walks the CFG from the open site, reporting the first exit
// path that leaks. It returns the result index the handle is returned
// through when ownership moves to the caller, or -1.
func (e *resourceEngine) track(g *cfg.CFG, site openSite, out *resourceInfo) (returnedResult int) {
	returnedResult = -1
	openBlock := g.BlockOf(site.stmt.Pos())
	if openBlock == nil {
		return
	}
	startIdx := 0
	for i, n := range openBlock.Nodes {
		if n == ast.Node(site.stmt) {
			startIdx = i + 1
			break
		}
	}

	type work struct {
		b        *cfg.Block
		start    int
		errValid bool // the paired err var still holds the open's error
	}
	visited := map[*cfg.Block]bool{}
	leaked := false
	queue := []work{{openBlock, startIdx, site.errVar != nil}}
	for len(queue) > 0 && !leaked {
		w := queue[0]
		queue = queue[1:]
		if w.start == 0 {
			if visited[w.b] {
				continue
			}
			visited[w.b] = true
		}
		errValid := w.errValid
		terminated := false
		for i := w.start; i < len(w.b.Nodes); i++ {
			n := w.b.Nodes[i]
			if site.errVar != nil && i >= w.start && reassignsVar(e.info, n, site.errVar) && n != ast.Node(site.stmt) {
				errValid = false
			}
			switch ev := e.eventAt(n, site); ev.kind {
			case evDischarge:
				terminated = true
			case evReturnOwn:
				terminated = true
				if ev.result >= 0 {
					returnedResult = ev.result
				}
			case evLeakReturn:
				out.Leaks = append(out.Leaks, LeakFinding{
					OpenPos: site.pos,
					What:    site.what,
					ExitPos: n.Pos(),
					ExitMsg: "returns without closing it",
					Steps: []Step{
						{Pos: site.pos, Msg: fmt.Sprintf("%s opened here", site.what)},
						{Pos: n.Pos(), Msg: fmt.Sprintf("this return leaves %q open", site.v.Name())},
					},
				})
				leaked = true
				terminated = true
			}
			if terminated {
				break
			}
		}
		if terminated || leaked {
			continue
		}
		// Propagate to successors, skipping the error edge of the open's
		// own err check: no resource exists when the open failed.
		succs := w.b.Succs
		if len(succs) == 2 {
			if last := lastCond(w.b); last != nil {
				if eq, isNilCheck := nilCheckOf(e.info, last, site.errVar); isNilCheck && site.errVar != nil && errValid {
					if eq { // err == nil: obligation lives on the true edge
						succs = succs[:1]
					} else { // err != nil: obligation lives on the false edge
						succs = succs[1:]
					}
				} else if eq, isNilCheck := nilCheckOf(e.info, last, site.v); isNilCheck {
					// Branching on the handle itself: a nil handle carries
					// no obligation, so only the non-nil edge stays open.
					if eq { // v == nil: obligation lives on the false edge
						succs = succs[1:]
					} else { // v != nil: obligation lives on the true edge
						succs = succs[:1]
					}
				}
			}
		}
		for _, s := range succs {
			if s.Kind == "exit" {
				// Falling off the end of the body (or an edge into the
				// synthetic exit with the obligation still open).
				out.Leaks = append(out.Leaks, LeakFinding{
					OpenPos: site.pos,
					What:    site.what,
					ExitPos: e.decl.Body.Rbrace,
					ExitMsg: "function ends without closing it",
					Steps: []Step{
						{Pos: site.pos, Msg: fmt.Sprintf("%s opened here", site.what)},
						{Pos: e.decl.Body.Rbrace, Msg: fmt.Sprintf("function ends with %q open", site.v.Name())},
					},
				})
				leaked = true
				break
			}
			if !visited[s] {
				queue = append(queue, work{s, 0, errValid})
			}
		}
	}
	return
}

type eventKind int

const (
	evNone eventKind = iota
	evDischarge
	evReturnOwn
	evLeakReturn
)

type event struct {
	kind   eventKind
	result int
}

// eventAt classifies one CFG node against the tracked handle.
func (e *resourceEngine) eventAt(n ast.Node, site openSite) event {
	v := site.v
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for i, res := range n.Results {
			if e.isUseOf(res, v) {
				return event{evReturnOwn, i}
			}
		}
		// Naked return with the handle as a named result variable.
		if len(n.Results) == 0 && e.decl.Type.Results != nil {
			i := 0
			for _, f := range e.decl.Type.Results.List {
				for _, name := range f.Names {
					if varOfIdent(e.info, name) == v {
						return event{evReturnOwn, i}
					}
					i++
				}
			}
		}
		return event{evLeakReturn, -1}
	case *ast.DeferStmt:
		if e.closesIn(n.Call, v) {
			return event{evDischarge, -1}
		}
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && e.bodyCloses(lit.Body, v) {
			return event{evDischarge, -1}
		}
		return event{evNone, -1}
	}

	// Any nested close/transfer within a straight-line node discharges.
	discharged := false
	ast.Inspect(n, func(x ast.Node) bool {
		if discharged {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if e.closesIn(x, v) {
				discharged = true
			}
		case *ast.FuncLit:
			// Non-deferred closure capturing the handle: ownership is in
			// the closure's hands now.
			if e.isUseOf(x, v) {
				discharged = true
			}
			return false
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if e.isUseOf(el, v) && hasCloseMethod(e.info.TypeOf(x)) {
					discharged = true
				}
			}
		case *ast.AssignStmt:
			for li, lhs := range x.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					// v2 := v — alias; tracking moves with the alias,
					// which is beyond this engine: hand over.
					if li < len(x.Rhs) && unparenIdent(x.Rhs[li]) != nil && varOfIdent(e.info, unparenIdent(x.Rhs[li])) == v {
						discharged = true
					}
					continue
				}
				if li < len(x.Rhs) && e.isUseOf(x.Rhs[li], v) {
					discharged = true // stored through a container
				}
			}
		}
		return !discharged
	})
	if discharged {
		return event{evDischarge, -1}
	}
	return event{evNone, -1}
}

// closesIn reports whether call closes v: v.Close(), or v passed to a
// summarized closer/storer, or appended into a long-lived slice.
func (e *resourceEngine) closesIn(call *ast.CallExpr, v *types.Var) bool {
	if e.isCloseOf(call, v) {
		return true
	}
	if isBuiltin(e.info, call, "append") {
		for _, a := range call.Args[1:] {
			if e.isUseOf(a, v) {
				return true
			}
		}
		return false
	}
	return e.calleeHandles(call, v, func(s *FuncEffects, i int) bool {
		return s.closesParam(i) || s.storesParam(i)
	})
}

// isCloseOf matches v.Close() (and v.f.Close() for a field of v).
func (e *resourceEngine) isCloseOf(call *ast.CallExpr, v *types.Var) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	return rootVarOf(e.info, sel.X) == v
}

// calleeHandles reports whether v is bound to a parameter of call's
// callee for which pred holds on the callee's summary.
func (e *resourceEngine) calleeHandles(call *ast.CallExpr, v *types.Var, pred func(*FuncEffects, int) bool) bool {
	callee, dynamic, isCall := callgraph.StaticCallee(e.info, call)
	if !isCall {
		return false
	}
	sum := e.summaryOf(callee, dynamic)
	if sum == nil {
		return false
	}
	sig, _ := callee.Type().(*types.Signature)
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
		if sig.Recv() != nil {
			nparams++
		}
	}
	for i := 0; i < nparams; i++ {
		if !pred(sum, i) {
			continue
		}
		arg := argExpr(call, callee, i)
		if arg != nil && e.isUseOf(arg, v) {
			return true
		}
	}
	return false
}

// isUseOf reports whether node mentions v.
func (e *resourceEngine) isUseOf(node ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && varOfIdent(e.info, id) == v {
			found = true
		}
		return !found
	})
	return found
}

// ---- helpers ----

// lastCond returns the final node of a two-successor block when it is
// the branch condition expression.
func lastCond(b *cfg.Block) ast.Expr {
	if len(b.Nodes) == 0 {
		return nil
	}
	if cond, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr); ok {
		return cond
	}
	return nil
}

// nilCheckOf matches `v == nil` / `v != nil`; eq reports which.
func nilCheckOf(info *types.Info, cond ast.Expr, v *types.Var) (eq, ok bool) {
	b, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false, false
	}
	var side ast.Expr
	if isNilIdent(b.Y) {
		side = b.X
	} else if isNilIdent(b.X) {
		side = b.Y
	} else {
		return false, false
	}
	id := unparenIdent(side)
	if id == nil || varOfIdent(info, id) != v {
		return false, false
	}
	return b.Op == token.EQL, true
}

func isNilIdent(e ast.Expr) bool {
	id := unparenIdent(e)
	return id != nil && id.Name == "nil"
}

// reassignsVar reports whether node assigns v anew.
func reassignsVar(info *types.Info, node ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id := unparenIdent(lhs); id != nil && varOfIdent(info, id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}

func varOfIdent(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// hasCloseMethod duck-types t (or *t) against io.Closer: Close() error.
func hasCloseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if closeIn(t) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr && !types.IsInterface(t) {
		return closeIn(types.NewPointer(t))
	}
	return false
}

func closeIn(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i)
		if m.Obj().Name() != "Close" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if isErrorType(sig.Results().At(0).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

func typeText(t types.Type) string {
	s := t.String()
	if i := lastSlash(s); i >= 0 {
		s = s[i+1:]
	}
	return s
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

func dedupOpens(out *resourceInfo) {
	seen := map[int]bool{}
	kept := out.Opens[:0]
	for _, op := range out.Opens {
		if seen[op.Result] {
			continue
		}
		seen[op.Result] = true
		kept = append(kept, op)
	}
	out.Opens = kept
}
