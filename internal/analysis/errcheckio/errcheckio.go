// Package errcheckio flags discarded errors from io.Writer and
// encoding-layer calls in internal/codec and internal/archive — the two
// packages that produce SPARTAN's wire bytes. A swallowed short write
// there does not fail loudly: it silently truncates a section of the
// stream and corrupts the archive, which the reader may only notice via
// a checksum mismatch many blocks later (or, for the header, not at all).
//
// internal/server gets a narrower treatment: HTTP handlers there wrap
// response writers in buffered/compressing writers, where a dropped
// Flush or Close error means the buffered tail of the response was
// never delivered, and a dropped io.Copy error truncates a streamed
// archive mid-body. Only those shapes are flagged in server — the
// broad any-receiver Write/Encode net stays confined to the wire-format
// packages, where a handler's best-effort writes to a dead client are
// routine and not worth annotating.
//
// The check fires on statement-position calls whose final result is an
// error when the callee is a write/flush/close/encode method or a
// function from an io/encoding/compress package. Assigning the error to
// blank (`_ = w.Write(b)`) is treated as an explicit, reviewed discard
// and is not flagged; deferred calls are likewise exempt (use a named
// helper if a deferred error matters).
package errcheckio

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags dropped io/encoding errors in the wire-format packages.
var Analyzer = &analysis.Analyzer{
	Name: "errcheckio",
	Doc: "flag discarded errors on io.Writer/encoding calls in codec and archive\n\n" +
		"A swallowed short write silently corrupts the archive; check every\n" +
		"error, or assign it to _ to mark an intentional discard. In server\n" +
		"and the spartand daemon, only Flush/Close on buffered writers and\n" +
		"io-package functions are flagged: those lose the buffered tail of\n" +
		"a response.",
	Run: run,
}

// broadScope packages get the full any-receiver method net; narrowScope
// packages only the buffered-writer Flush/Close and io-function checks.
// The spartand daemon shares server's handler shapes (buffered response
// writers, streamed archive bodies) and gets the same narrow net.
var (
	broadScope  = []string{"codec", "archive"}
	narrowScope = []string{"server", "spartand"}
)

// ioMethods are method names whose dropped error is flagged.
var ioMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "ReadFrom": true, "Flush": true, "Close": true,
	"Encode": true, "Sync": true,
}

// ioPkgPrefixes are package paths whose error-returning functions are
// flagged when called at statement position (io.Copy, binary.Write, ...).
var ioPkgPrefixes = []string{"io", "encoding/", "compress/", "bufio"}

func run(pass *analysis.Pass) error {
	broad := pass.PackageBase(broadScope...)
	if !broad && !pass.PackageBase(narrowScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := st.X.(*ast.CallExpr)
			if !ok || !returnsError(pass, call) {
				return true
			}
			if broad {
				if name, isIO := ioCallee(pass, call); isIO {
					pass.Reportf(call.Pos(), "error from %s is discarded; a swallowed short write corrupts the stream — check it (or assign to _ to discard explicitly)", name)
				}
			} else if name, isIO := bufferedFlushCallee(pass, call); isIO {
				pass.Reportf(call.Pos(), "error from %s is discarded; the buffered tail of the response is silently lost — check it (or assign to _ to discard explicitly)", name)
			}
			return true
		})
	}
	return nil
}

// bufferedFlushCallee classifies a call under the narrow server rules:
// Flush/Close on a buffered or compressing writer (a named type from an
// io/encoding/compress/bufio package), or any error-returning function
// from those packages (io.Copy above all).
func bufferedFlushCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			path := obj.Imported().Path()
			if ioPkgPath(path) {
				return path + "." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	if sel.Sel.Name != "Flush" && sel.Sel.Name != "Close" {
		return "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || !ioPkgPath(named.Obj().Pkg().Path()) {
		return "", false
	}
	// Only concrete writer types carry a buffer to lose. Interface
	// receivers (io.Closer, io.ReadCloser — think resp.Body.Close())
	// are routine best-effort closes in handler code, not flush points.
	if _, isIface := named.Underlying().(*types.Interface); isIface {
		return "", false
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name, true
}

// ioPkgPath reports whether path is one of the io/encoding package
// trees this analyzer watches.
func ioPkgPath(path string) bool {
	for _, prefix := range ioPkgPrefixes {
		if path == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(path, prefix) {
			return true
		}
	}
	return false
}

// returnsError reports whether the call's only or final result is error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// ioCallee classifies the callee; it returns a display name and whether
// the call falls under this analyzer's io/encoding umbrella.
func ioCallee(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// Package-level function: io.Copy, binary.Write, gob.Register...
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if path := obj.Imported().Path(); ioPkgPath(path) {
				return path + "." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	// Method call: anything with a writeish name on any receiver.
	if ioMethods[sel.Sel.Name] {
		return sel.Sel.Name, true
	}
	return "", false
}
