package errcheckio_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/errcheckio"
)

func TestErrcheckio(t *testing.T) {
	analyzertest.Run(t, "../testdata", errcheckio.Analyzer, "codec")
}

func TestErrcheckioServerScope(t *testing.T) {
	analyzertest.Run(t, "../testdata", errcheckio.Analyzer, "server")
}

func TestErrcheckioSpartandScope(t *testing.T) {
	analyzertest.Run(t, "../testdata", errcheckio.Analyzer, "spartand")
}
