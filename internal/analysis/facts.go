package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactStore carries serialized per-package analyzer facts between
// passes. A fact is an opaque blob keyed by (package import path,
// analyzer name); only the producing analyzer understands its encoding.
// The unitchecker persists one package's facts as the JSON body of its
// .vetx file and hands dependency facts back through Config.PackageVetx;
// the standalone driver keeps the whole module's facts in one in-memory
// store, filled in `go list -deps` dependency order.
type FactStore struct {
	m map[factKey][]byte
}

type factKey struct {
	pkgPath  string
	analyzer string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey][]byte{}}
}

// Get returns the fact analyzer exported for pkgPath, or nil.
func (s *FactStore) Get(pkgPath, analyzer string) []byte {
	if s == nil {
		return nil
	}
	return s.m[factKey{pkgPath, analyzer}]
}

// Set records a fact. A nil or empty blob deletes any existing entry so
// encoders never persist vacuous facts.
func (s *FactStore) Set(pkgPath, analyzer string, data []byte) {
	k := factKey{pkgPath, analyzer}
	if len(data) == 0 {
		delete(s.m, k)
		return
	}
	s.m[k] = data
}

// ExportFact is the call analyzers make from their Run function: it
// records data as p.Analyzer's fact for the package under analysis.
// A no-op when the driver attached no store.
func (p *Pass) ExportFact(data []byte) {
	if p.Facts == nil {
		return
	}
	p.Facts.Set(p.Pkg.Path(), p.Analyzer.Name, data)
}

// EncodePackage serializes every fact recorded for pkgPath as a JSON
// object {analyzer: blob}. This is the body of a unitchecker .vetx
// file; an empty store encodes as "{}".
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	byAnalyzer := map[string]json.RawMessage{}
	for k, v := range s.m {
		if k.pkgPath != pkgPath {
			continue
		}
		if !json.Valid(v) {
			return nil, fmt.Errorf("fact %s for %s is not valid JSON", k.analyzer, pkgPath)
		}
		byAnalyzer[k.analyzer] = json.RawMessage(v)
	}
	return json.Marshal(byAnalyzer)
}

// DecodePackage merges a blob produced by EncodePackage into the store
// under pkgPath. Unknown analyzer names are kept — a newer tool may
// read an older vetx file and vice versa; consumers simply miss facts
// they cannot decode.
func (s *FactStore) DecodePackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var byAnalyzer map[string]json.RawMessage
	if err := json.Unmarshal(data, &byAnalyzer); err != nil {
		return fmt.Errorf("facts for %s: %v", pkgPath, err)
	}
	for name, blob := range byAnalyzer {
		s.Set(pkgPath, name, blob)
	}
	return nil
}

// Packages lists every package path with at least one fact, sorted.
func (s *FactStore) Packages() []string {
	seen := map[string]bool{}
	for k := range s.m {
		seen[k.pkgPath] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
