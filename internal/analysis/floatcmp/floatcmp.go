// Package floatcmp flags == and != between floating-point operands in
// the packages where SPARTAN's correctness depends on how floats are
// compared: internal/cart (split thresholds and per-attribute error
// tolerances), internal/fascicle (fascicle representative values, which
// must round-trip bit-identically through the float32 wire format, paper
// §3.4), and internal/selector (prediction-vs-materialization cost
// tie-breaking).
//
// Raw float equality in these packages is either a latent bug (an
// epsilon comparison was intended, violating a guaranteed tolerance) or
// an unstated bit-exactness requirement. Both must be spelled out via
// the helpers in internal/floats — floats.SameBits for deterministic
// bit-exact identity, floats.Within for tolerance checks — or, for a
// genuine raw comparison, suppressed with //spartanvet:ignore and a
// reason.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags raw float equality in tolerance-critical packages.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on float operands in cart, fascicle and selector\n\n" +
		"Tolerance and split-value comparisons must use the internal/floats\n" +
		"helpers (SameBits for bit-exact identity, Within for epsilon checks).",
	Run: run,
}

// scope is the set of package base names the invariant applies to.
var scope = []string{"cart", "fascicle", "selector"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			helper := "floats.SameBits"
			if be.Op == token.NEQ {
				helper = "!floats.SameBits"
			}
			pass.Reportf(be.OpPos, "%s compares floats with %s; use %s (bit-exact) or floats.Within (tolerance)",
				render(be), be.Op, helper)
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point kind
// (including complex halves is unnecessary: SPARTAN stores no complex).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// render gives a short source-ish rendering of the comparison operands
// for the diagnostic, without hauling in go/printer.
func render(be *ast.BinaryExpr) string {
	return exprString(be.X) + " " + be.Op.String() + " " + exprString(be.Y)
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	default:
		return "expr"
	}
}
