package floatcmp_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/floatcmp"
)

func TestFloatcmp(t *testing.T) {
	analyzertest.Run(t, "../testdata", floatcmp.Analyzer, "cart", "stats")
}
