// Package hotalloc flags allocation patterns inside row-count-bounded
// loops in the hot packages (fascicle, cart, codec): the loops there
// run once per row or once per value, so a slice grown by append from
// zero capacity re-allocates O(log n) times and copies O(n) elements,
// a hint-less map rehashes as it grows, and a make inside the loop
// body allocates fresh garbage every iteration.
//
// A loop counts as row-bounded when its trip count depends on data
// (the classification lives in internal/analysis/loopbound, shared with
// boundedspawn): any range loop, a for loop whose condition involves a
// non-constant bound, or an unconditional for {}. Loops with small
// constant bounds (`for i := 0; i < 8; i++`) are exempt.
//
// The growth checks are flow-sensitive: the container's creation is
// resolved through reaching definitions, so re-making a slice with
// capacity just before the loop clears the earlier hint-less
// declaration, and containers created inside the loop body or received
// as parameters are left alone.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/loopbound"
)

// Analyzer flags hint-less allocations in row-bounded loops.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag append/make/map growth without capacity hints inside row-bounded loops\n\n" +
		"In fascicle, cart, and codec the per-row loops dominate runtime;\n" +
		"growing a container there from zero capacity re-allocates and\n" +
		"copies repeatedly. Pre-size with make(T, 0, n) / make(map, n), or\n" +
		"hoist per-iteration makes out of the loop.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase("fascicle", "cart", "codec") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBody(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkBody walks one function body (nested literals get their own
// visit) tracking the stack of enclosing row-bounded loops.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	hasLoop := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		}
		return !hasLoop
	})
	if !hasLoop {
		return
	}

	var rd *dataflow.ReachingDefs // built lazily on the first growth site
	reaching := func() *dataflow.ReachingDefs {
		if rd == nil {
			rd = dataflow.NewReachingDefs(cfg.New(body), pass.TypesInfo, nil)
		}
		return rd
	}

	var loops []ast.Stmt // innermost row-bounded loop is last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if loopbound.RowBoundedFor(pass.TypesInfo, n) {
				loops = append(loops, n)
				ast.Inspect(n.Body, walk)
				loops = loops[:len(loops)-1]
				return false
			}
		case *ast.RangeStmt:
			if loopbound.RowBoundedRange(pass.TypesInfo, n) {
				loops = append(loops, n)
				ast.Inspect(n.Body, walk)
				loops = loops[:len(loops)-1]
				return false
			}
		case *ast.CallExpr:
			if len(loops) > 0 && isBuiltin(pass, n.Fun, "make") && makeLacksHint(pass, n) {
				kind := "slice"
				if _, ok := pass.TypeOf(n).Underlying().(*types.Map); ok {
					kind = "map"
				}
				pass.Reportf(n.Pos(), "make allocates a hint-less %s on every iteration of this row-bounded loop — hoist it out, or pre-size it with a capacity", kind)
			}
		case *ast.AssignStmt:
			if len(loops) > 0 {
				checkGrowth(pass, reaching, loops[len(loops)-1], n)
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkGrowth flags `s = append(s, ...)` and `m[k] = v` growth of
// containers that were created before the loop without capacity hints.
func checkGrowth(pass *analysis.Pass, reaching func() *dataflow.ReachingDefs, loop ast.Stmt, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			// s = append(s, ...) with s on both sides.
			if i >= len(assign.Rhs) {
				continue
			}
			call, ok := assign.Rhs[i].(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			arg, ok := call.Args[0].(*ast.Ident)
			if !ok || arg.Name != lhs.Name {
				continue
			}
			v := varOf(pass, arg)
			if v == nil {
				continue
			}
			if hintlessOutsideCreation(pass, reaching(), loop, v, call.Pos()) {
				pass.Reportf(call.Pos(), "append grows %s inside a row-bounded loop, but it was created without a capacity hint — pre-size it with make(len 0, cap n) before the loop", v.Name())
			}
		case *ast.IndexExpr:
			// m[k] = v on a map.
			id, ok := lhs.X.(*ast.Ident)
			if !ok {
				continue
			}
			v := varOf(pass, id)
			if v == nil {
				continue
			}
			if _, isMap := v.Type().Underlying().(*types.Map); !isMap {
				continue
			}
			if hintlessOutsideCreation(pass, reaching(), loop, v, lhs.Pos()) {
				pass.Reportf(lhs.Pos(), "%s grows inside a row-bounded loop but was created without a size hint — pass the expected element count to make", v.Name())
			}
		}
	}
}

// hintlessOutsideCreation reports whether every reaching definition of v
// at pos that originates outside the loop is a creation without a
// capacity hint. Parameter defs, unknown creations, or any hinted
// creation disqualify the site; defs inside the loop (including the
// loop-carried append itself) are ignored.
func hintlessOutsideCreation(pass *analysis.Pass, rd *dataflow.ReachingDefs, loop ast.Stmt, v *types.Var, pos token.Pos) bool {
	sawOutside := false
	for _, d := range rd.DefsAt(v, pos) {
		if d.Site == nil {
			return false // parameter or named result: caller's choice
		}
		if loop.Pos() <= d.Site.Pos() && d.Site.End() <= loop.End() {
			continue // defined inside the loop (e.g. the append itself)
		}
		sawOutside = true
		hintless, known := hintlessCreation(pass, d)
		if !known || !hintless {
			return false
		}
	}
	return sawOutside
}

// hintlessCreation classifies one definition site: known=true when the
// site is recognizably a container creation, hintless=true when that
// creation carries no capacity/size hint.
func hintlessCreation(pass *analysis.Pass, d dataflow.Def) (hintless, known bool) {
	switch site := d.Site.(type) {
	case *ast.DeclStmt:
		// var s []T — the zero value has no capacity. A var with an
		// initializer is classified by its expression.
		gd, ok := site.Decl.(*ast.GenDecl)
		if !ok {
			return false, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name != d.Ident {
					continue
				}
				if len(vs.Values) == 0 {
					return true, true
				}
				if i < len(vs.Values) {
					return classifyCreationExpr(pass, vs.Values[i])
				}
			}
		}
		return false, false
	case *ast.AssignStmt:
		for i, lhs := range site.Lhs {
			if lhs != ast.Expr(d.Ident) {
				continue
			}
			if len(site.Lhs) == len(site.Rhs) {
				return classifyCreationExpr(pass, site.Rhs[i])
			}
			return false, false // multi-value call: unknown origin
		}
		return false, false
	default:
		return false, false
	}
}

// classifyCreationExpr decides whether an initializer expression creates
// a container without a capacity hint.
func classifyCreationExpr(pass *analysis.Pass, e ast.Expr) (hintless, known bool) {
	switch e := e.(type) {
	case *ast.CallExpr:
		if isBuiltin(pass, e.Fun, "make") {
			return makeLacksHint(pass, e), true
		}
		return false, false // some constructor: trust it
	case *ast.CompositeLit:
		// []T{} and map[K]V{} have no capacity; a literal with elements
		// at least starts at its length.
		return len(e.Elts) == 0, true
	case *ast.Ident:
		if e.Name == "nil" {
			return true, true
		}
		return false, false
	default:
		return false, false
	}
}

// makeLacksHint reports whether a make call allocates a slice with no
// usable capacity or a map with no size hint. Channels never qualify.
func makeLacksHint(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	t := pass.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		if len(call.Args) >= 3 {
			return false // explicit capacity
		}
		if len(call.Args) == 2 {
			// make([]T, 0) has no room; make([]T, n) is pre-sized.
			return isZeroLiteral(pass, call.Args[1])
		}
		return false
	case *types.Map:
		return len(call.Args) == 1
	}
	return false
}

// isZeroLiteral reports whether e is the constant 0.
func isZeroLiteral(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	return loopbound.IsBuiltin(pass.TypesInfo, fun, name)
}

// varOf resolves an identifier to its variable object.
func varOf(pass *analysis.Pass, id *ast.Ident) *types.Var {
	return loopbound.VarOf(pass.TypesInfo, id)
}
