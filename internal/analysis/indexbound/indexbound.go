// Package indexbound implements the range-proved bounds check for
// decode paths: every slice index or slice-expression bound computed
// from untrusted wire input must be *provably* within the length of
// the sequence it indexes, where "provably" means the value-range
// analysis (internal/analysis/vrange) discharges the proof from the
// guards actually present — `if ix >= dlen { return err }`,
// short-circuit forms, len-equality guards, loop bounds over the same
// make, mask/modulo clamps — rather than from the syntactic presence
// of a comparison somewhere nearby.
//
// The check is interprocedural: a helper that indexes its parameter
// exports that obligation in its rangesummary fact (IndexParam), and a
// caller passing a wire-derived argument it cannot prove against the
// indexed slice inherits the finding, with the callee's site appended
// to the path. Parameter-derived unproven sites are *not* reported in
// the helper itself — they are the caller's finding, exactly like
// taintalloc's parameter taint.
//
// Scope: the hostile-input decode packages — codec, cart, archive —
// matching taintalloc/sizeoverflow.
package indexbound

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/vrange"
)

// Analyzer flags wire-derived indexes the range analysis cannot prove
// in bounds.
var Analyzer = &analysis.Analyzer{
	Name: "indexbound",
	Doc:  "indexbound: report slice indexing and slice-expression bounds on decode paths whose wire-derived value the interval analysis cannot prove within len of the indexed sequence; interprocedural via rangesummary facts",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase("codec", "cart", "archive") {
		return nil
	}
	res := vrange.Compute(pass.Fset, pass.Files, pass.TypesInfo, vrange.FactLookup(pass.Facts))

	fns := make([]*types.Func, 0, len(res.Funcs))
	for fn := range res.Funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		for _, site := range res.Funcs[fn].Sites {
			if site.Proven || !site.Deriv.FromWire() {
				continue
			}
			pass.Report(diagnose(site))
		}
	}
	return nil
}

func diagnose(site *vrange.Site) analysis.Diagnostic {
	var msg string
	if site.Callee != nil {
		via := site.Via // already the full helper chain, callee first
		if via == "" {
			via = site.Callee.Name()
		}
		msg = fmt.Sprintf(
			"wire-derived value flows into %s and is used as %s without a provable bound; check it against the length of the sequence it indexes before the call",
			via, site.Kind)
	} else {
		msg = fmt.Sprintf(
			"wire-derived value used as %s without a provable bound; compare it against the sequence length (or DecodeLimits) first",
			site.Kind)
	}
	return analysis.Diagnostic{Pos: site.Pos, Message: msg, Related: derivPath(site)}
}

// derivPath renders the site's derivation chain as related locations in
// wire-read → use order, appending the callee's site for lifted
// obligations.
func derivPath(site *vrange.Site) []analysis.RelatedLocation {
	var rel []analysis.RelatedLocation
	var lastPos token.Pos
	for _, st := range site.Deriv.Steps() {
		if st.Pos == lastPos {
			continue
		}
		rel = append(rel, analysis.RelatedLocation{Pos: st.Pos, Message: st.What})
		lastPos = st.Pos
	}
	if site.Callee != nil {
		rel = append(rel, analysis.RelatedLocation{
			Pos:      token.NoPos,
			Position: site.CalleePos.ToTokenPosition(),
			Message:  "unproven " + site.Kind + " in " + site.Callee.Name(),
		})
	}
	return rel
}
