package indexbound_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/indexbound"
)

func TestIndexbound(t *testing.T) {
	analyzertest.Run(t, "../testdata", indexbound.Analyzer, "indexbound")
}
