// Package lockbalance flags sync.Mutex / sync.RWMutex acquisitions in
// internal/obs and internal/server that are released by a non-deferred
// Unlock, or never released in the acquiring function at all. Those two
// packages sit on every request path (the metrics registry is hit by
// each middleware-wrapped handler), so a panic between Lock and a manual
// Unlock wedges the whole service — the "race-clean under load" ROADMAP
// requirement only holds if every pair is panic-safe.
//
// The fix is either `defer mu.Unlock()` right after the Lock, or hoisting
// the critical section into a small helper that does so (the snapshot
// pattern). Genuine hand-over-hand locking can be suppressed with
// //spartanvet:ignore lockbalance <reason>.
package lockbalance

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags unbalanced or non-deferred mutex pairs.
var Analyzer = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "flag Lock/Unlock pairs that are unbalanced or not deferred in obs and server\n\n" +
		"Every sync.Mutex/RWMutex Lock (and RLock) in these packages must be\n" +
		"released by a deferred Unlock so a panic cannot leak the lock.",
	Run: run,
}

var scope = []string{"obs", "server"}

// unlockFor maps an acquire method to its release method.
var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase(scope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures are their own defer scope
		}
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, acquire := mutexCall(pass, call)
		release, isAcquire := unlockFor[acquire]
		if !isAcquire {
			return true
		}
		want := recv + "." + release

		var deferredAfter, explicitAfter bool
		ast.Inspect(body, func(m ast.Node) bool {
			switch mm := m.(type) {
			case *ast.DeferStmt:
				if mm.Pos() > call.Pos() && deferReleases(pass, body, mm.Call, want) {
					deferredAfter = true
				}
			case *ast.CallExpr:
				if mm.Pos() > call.Pos() && mm != call {
					if r, name := mutexCall(pass, mm); name == release && r == recv {
						explicitAfter = true
					}
				}
			}
			return true
		})
		switch {
		case deferredAfter:
		case explicitAfter:
			pass.Reportf(call.Pos(), "%s.%s is released by a non-deferred %s; use defer %s() so a panic cannot leak the lock",
				recv, acquire, release, want)
		default:
			pass.Reportf(call.Pos(), "%s.%s is never released in this function; add defer %s()",
				recv, acquire, want)
		}
		return true
	})
}

// mutexCall reports the rendered receiver and method name if call is a
// method call on a sync.Mutex or sync.RWMutex (possibly via pointer).
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", ""
	}
	return exprString(sel.X), sel.Sel.Name
}

// deferReleases reports whether the deferred call releases want —
// directly (`defer mu.Unlock()`), inside an immediately-run closure
// (`defer func() { mu.Unlock() }()`), or through a helper closure bound
// to a local variable in this body (`cleanup := func() { mu.Unlock() };
// defer cleanup()`).
func deferReleases(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, want string) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if exprString(sel.X)+"."+sel.Sel.Name == want {
			return true
		}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			lit = closureFor(pass, body, id)
		}
		if lit == nil {
			return false
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && exprString(sel.X)+"."+sel.Sel.Name == want {
				found = true
			}
		}
		return !found
	})
	return found
}

// closureFor resolves a deferred identifier to the function literal a
// statement of this body binds it to, or nil: reassigned helpers and
// closures from elsewhere stay unresolved (and so never count as the
// required release).
func closureFor(pass *analysis.Pass, body *ast.BlockStmt, id *ast.Ident) *ast.FuncLit {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	var lit *ast.FuncLit
	bindings := 0
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if pass.TypesInfo.Defs[lid] != obj && pass.TypesInfo.Uses[lid] != obj {
				continue
			}
			bindings++
			lit, _ = assign.Rhs[i].(*ast.FuncLit)
		}
		return true
	})
	if bindings != 1 {
		return nil // unbound here, or rebound: too ambiguous to trust
	}
	return lit
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	default:
		return "mutex"
	}
}
