package lockbalance_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/lockbalance"
)

func TestLockbalance(t *testing.T) {
	analyzertest.Run(t, "../testdata", lockbalance.Analyzer, "obs")
}
