// Package loopbound classifies loops by trip count: is a loop bounded
// by a small compile-time constant, or does it run once per row, value,
// or model — i.e. proportionally to the data? The distinction drives
// two very different analyzer families: hotalloc flags per-iteration
// allocation in data-proportional loops, and boundedspawn flags
// goroutine creation there (a constant-trip loop can spawn at most a
// constant number of goroutines; a row-bounded one can spawn millions).
//
// A loop counts as row-bounded when its trip count depends on data: any
// range loop over a non-constant operand, a for loop whose condition
// involves a non-constant bound, an unconditional for {}, or a
// countdown from a non-constant start (`for i := n; i > 0; i--` — the
// condition's bound is the constant 0 but the trip count is still n).
// Loops with small constant bounds (`for i := 0; i < 8; i++`) are not.
package loopbound

import (
	"go/ast"
	"go/types"
)

// RowBoundedFor reports whether a for loop's trip count depends on
// data: no condition at all, a comparison whose bound side is
// non-constant, or a countdown from a non-constant start.
func RowBoundedFor(info *types.Info, loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true // for {} — bounded only by a break
	}
	cmp, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok {
		return true // unusual condition: assume data-dependent
	}
	iv := InductionVar(info, loop)
	var bound ast.Expr
	switch {
	case iv != nil && sameVar(info, cmp.X, iv):
		bound = cmp.Y
	case iv != nil && sameVar(info, cmp.Y, iv):
		bound = cmp.X
	default:
		// No recognizable induction variable in the comparison: the
		// loop is constant-bounded only when both operands are.
		return !IsConstant(info, cmp.X) || !IsConstant(info, cmp.Y)
	}
	if !IsConstant(info, bound) {
		return true
	}
	// Constant bound on the induction variable; the trip count is
	// constant only if the start value is too.
	return !constantStart(info, loop.Init, iv)
}

// RowBoundedRange reports whether a range loop iterates over data
// rather than a constant count (go 1.22 range-over-int).
func RowBoundedRange(info *types.Info, loop *ast.RangeStmt) bool {
	return !IsConstant(info, loop.X)
}

// RowBounded dispatches on the loop statement kind; non-loop statements
// are never row-bounded.
func RowBounded(info *types.Info, loop ast.Stmt) bool {
	switch loop := loop.(type) {
	case *ast.ForStmt:
		return RowBoundedFor(info, loop)
	case *ast.RangeStmt:
		return RowBoundedRange(info, loop)
	}
	return false
}

// InductionVar returns the variable stepped by the loop's post
// statement (i++, i--, i += k, i = i + k), or nil.
func InductionVar(info *types.Info, loop *ast.ForStmt) *types.Var {
	switch post := loop.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := post.X.(*ast.Ident); ok {
			return VarOf(info, id)
		}
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 {
			if id, ok := post.Lhs[0].(*ast.Ident); ok {
				return VarOf(info, id)
			}
		}
	}
	return nil
}

// constantStart reports whether the loop init assigns the induction
// variable a compile-time constant value. A nil or unrecognized init
// (variable initialized elsewhere) counts as non-constant.
func constantStart(info *types.Info, init ast.Stmt, iv *types.Var) bool {
	assign, ok := init.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != len(assign.Rhs) {
		return false
	}
	for i, lhs := range assign.Lhs {
		if sameVar(info, lhs, iv) {
			return IsConstant(info, assign.Rhs[i])
		}
	}
	return false
}

// sameVar reports whether e is an identifier resolving to v.
func sameVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && VarOf(info, id) == v
}

// IsConstant reports whether the expression has a compile-time constant
// value.
func IsConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// IsBuiltin reports whether fun denotes the named builtin.
func IsBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// VarOf resolves an identifier to its variable object.
func VarOf(info *types.Info, id *ast.Ident) *types.Var {
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}
