// Package metricname validates obs.Registry metric registrations at
// compile time: names and label names must be valid Prometheus
// identifiers, and every registration of a given metric name must use
// one consistent label set. The registry enforces the latter with a
// panic at runtime (obs.Registry.register); this analyzer moves both
// failure modes to `make lint`, before a bad dashboard identifier or a
// label-schema drift ever ships.
//
// Use sites are checked too: when a Counter/Gauge/Histogram value can
// be traced to its registration (a direct chain, a := binding, or a
// struct field set from a registration call), every Inc/Add/Set/Observe
// must pass exactly as many label values as the metric declared label
// names — `spartan_http_rejected_total{reason}` updated without its
// reason (or with two) panics in obs.family.child at runtime.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags invalid or inconsistent metric registrations.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "flag metric registrations with invalid Prometheus names or inconsistent label sets\n\n" +
		"Names must match [a-zA-Z_:][a-zA-Z0-9_:]*, labels must match\n" +
		"[a-zA-Z_][a-zA-Z0-9_]* and not use the reserved __ prefix or le,\n" +
		"and re-registrations must repeat the same label names. Update\n" +
		"calls (Inc/Add/Set/Observe) must pass exactly the declared number\n" +
		"of label values; the registry panics on a mismatch at runtime.",
	Run: run,
}

// registerMethods maps registration method names (on a Registry-typed
// receiver) to the argument index where label names begin.
var registerMethods = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2, // (name, help, labels...)
	"Histogram": 3, // (name, help, buckets, labels...)
}

type registration struct {
	labels []string
	pos    token.Position
}

func run(pass *analysis.Pass) error {
	seen := map[string]registration{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			labelStart, ok := registryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}

			name, isConst := constString(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name is not a constant string; spartanvet cannot verify it against the Prometheus grammar")
				return true
			}
			if !validMetricName(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not a valid Prometheus identifier (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name)
			}
			if strings.HasPrefix(name, "__") {
				pass.Reportf(call.Args[0].Pos(), "metric name %q uses the reserved __ prefix", name)
			}

			labels, allConst := labelArgs(pass, call, labelStart)
			for _, l := range labels {
				switch {
				case !validLabelName(l):
					pass.Reportf(call.Pos(), "label name %q on metric %q is not a valid Prometheus label (want [a-zA-Z_][a-zA-Z0-9_]*)", l, name)
				case strings.HasPrefix(l, "__"):
					pass.Reportf(call.Pos(), "label name %q on metric %q uses the reserved __ prefix", l, name)
				case l == "le":
					pass.Reportf(call.Pos(), "label name \"le\" on metric %q collides with the histogram bucket label", name)
				}
			}
			if !allConst {
				return true // cannot compare label schemas we cannot see
			}
			if prev, dup := seen[name]; dup {
				if !sameLabels(prev.labels, labels) {
					pass.Reportf(call.Pos(), "metric %q re-registered with labels [%s]; first registered with [%s] at %s (obs.Registry panics on this at runtime)",
						name, strings.Join(labels, " "), strings.Join(prev.labels, " "), prev.pos)
				}
			} else {
				seen[name] = registration{labels: labels, pos: pass.Fset.Position(call.Pos())}
			}
			return true
		})
	}
	checkUseSites(pass)
	return nil
}

// useMethods maps update method names (on Counter/Gauge/Histogram
// receivers) to the argument index where label values begin.
var useMethods = map[string]int{
	"Inc": 0, "Add": 1, "Set": 1, "Observe": 1,
}

// metricKinds are the named receiver types whose update calls are
// arity-checked against the registration.
var metricKinds = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// metricDecl is what a registration promises: the metric name and its
// declared label names.
type metricDecl struct {
	name   string
	labels []string
}

// checkUseSites verifies every traceable Inc/Add/Set/Observe call
// passes exactly as many label values as the metric declared labels.
func checkUseSites(pass *analysis.Pass) {
	decls, ambiguous := collectBindings(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Ellipsis.IsValid() {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			start, ok := useMethods[sel.Sel.Name]
			if !ok || !metricReceiver(pass, sel.X) {
				return true
			}
			var d metricDecl
			var known bool
			if inner, isCall := unparen(sel.X).(*ast.CallExpr); isCall {
				d, known = registrationOf(pass, inner)
			} else if obj := bindingObject(pass, sel.X); obj != nil && !ambiguous[obj] {
				d, known = decls[obj]
			}
			if !known {
				return true
			}
			if got := len(call.Args) - start; got >= 0 && got != len(d.labels) {
				pass.Reportf(call.Pos(), "metric %q declares %d label(s) [%s] but %s passes %d label value(s) (obs panics on this at runtime)",
					d.name, len(d.labels), strings.Join(d.labels, " "), sel.Sel.Name, got)
			}
			return true
		})
	}
}

// collectBindings maps variables and struct fields to the registration
// that produced them: `c := r.Counter(...)`, `var c = r.Counter(...)`,
// `m.reqs = r.Counter(...)` and `&metrics{reqs: r.Counter(...)}` all
// count. A binding fed by a non-constant registration, or by two
// registrations with different label sets, is ambiguous and exempt.
func collectBindings(pass *analysis.Pass) (map[types.Object]metricDecl, map[types.Object]bool) {
	decls := map[types.Object]metricDecl{}
	ambiguous := map[types.Object]bool{}
	record := func(target ast.Expr, call *ast.CallExpr) {
		obj := bindingObject(pass, target)
		if obj == nil {
			return
		}
		d, ok := registrationOf(pass, call)
		if !ok {
			ambiguous[obj] = true
			return
		}
		if prev, dup := decls[obj]; dup && !sameLabels(prev.labels, d.labels) {
			ambiguous[obj] = true
			return
		}
		decls[obj] = d
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, rhs := range x.Rhs {
					if call, ok := unparen(rhs).(*ast.CallExpr); ok && isRegistryCall(pass, call) {
						record(x.Lhs[i], call)
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) != len(x.Values) {
					return true
				}
				for i, v := range x.Values {
					if call, ok := unparen(v).(*ast.CallExpr); ok && isRegistryCall(pass, call) {
						record(x.Names[i], call)
					}
				}
			case *ast.KeyValueExpr:
				if call, ok := unparen(x.Value).(*ast.CallExpr); ok && isRegistryCall(pass, call) {
					if key, ok := x.Key.(*ast.Ident); ok {
						record(key, call)
					}
				}
			}
			return true
		})
	}
	return decls, ambiguous
}

// registrationOf extracts the metric name and label set of a
// registration call when both are compile-time constants.
func registrationOf(pass *analysis.Pass, call *ast.CallExpr) (metricDecl, bool) {
	start, ok := registryCall(pass, call)
	if !ok || len(call.Args) == 0 {
		return metricDecl{}, false
	}
	name, isConst := constString(pass, call.Args[0])
	if !isConst {
		return metricDecl{}, false
	}
	labels, allConst := labelArgs(pass, call, start)
	if !allConst {
		return metricDecl{}, false
	}
	return metricDecl{name: name, labels: labels}, true
}

func isRegistryCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	_, ok := registryCall(pass, call)
	return ok
}

// bindingObject resolves the object a registration is bound to: a
// variable for ident targets, the struct field for selector targets
// and composite-literal keys.
func bindingObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Defs[x]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

// metricReceiver reports whether e's type is a named Counter, Gauge or
// Histogram (possibly behind a pointer).
func metricReceiver(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && metricKinds[named.Obj().Name()]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// registryCall reports whether call is a registration method on a
// *Registry (any package defining a Registry type counts, so analyzer
// fixtures don't need to import internal/obs), and at which argument
// index label names start.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (labelStart int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	labelStart, isReg := registerMethods[sel.Sel.Name]
	if !isReg {
		return 0, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return 0, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	return labelStart, true
}

// labelArgs extracts the constant label-name arguments; allConst is
// false when any label is dynamic or passed via slice expansion.
func labelArgs(pass *analysis.Pass, call *ast.CallExpr, start int) (labels []string, allConst bool) {
	if call.Ellipsis.IsValid() {
		return nil, false
	}
	allConst = true
	for i := start; i < len(call.Args); i++ {
		s, ok := constString(pass, call.Args[i])
		if !ok {
			allConst = false
			continue
		}
		labels = append(labels, s)
	}
	return labels, allConst
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func sameLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
