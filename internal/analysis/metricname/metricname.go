// Package metricname validates obs.Registry metric registrations at
// compile time: names and label names must be valid Prometheus
// identifiers, and every registration of a given metric name must use
// one consistent label set. The registry enforces the latter with a
// panic at runtime (obs.Registry.register); this analyzer moves both
// failure modes to `make lint`, before a bad dashboard identifier or a
// label-schema drift ever ships.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags invalid or inconsistent metric registrations.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "flag metric registrations with invalid Prometheus names or inconsistent label sets\n\n" +
		"Names must match [a-zA-Z_:][a-zA-Z0-9_:]*, labels must match\n" +
		"[a-zA-Z_][a-zA-Z0-9_]* and not use the reserved __ prefix or le,\n" +
		"and re-registrations must repeat the same label names.",
	Run: run,
}

// registerMethods maps registration method names (on a Registry-typed
// receiver) to the argument index where label names begin.
var registerMethods = map[string]int{
	"Counter":   2, // (name, help, labels...)
	"Gauge":     2, // (name, help, labels...)
	"Histogram": 3, // (name, help, buckets, labels...)
}

type registration struct {
	labels []string
	pos    token.Position
}

func run(pass *analysis.Pass) error {
	seen := map[string]registration{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			labelStart, ok := registryCall(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}

			name, isConst := constString(pass, call.Args[0])
			if !isConst {
				pass.Reportf(call.Args[0].Pos(), "metric name is not a constant string; spartanvet cannot verify it against the Prometheus grammar")
				return true
			}
			if !validMetricName(name) {
				pass.Reportf(call.Args[0].Pos(), "metric name %q is not a valid Prometheus identifier (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name)
			}
			if strings.HasPrefix(name, "__") {
				pass.Reportf(call.Args[0].Pos(), "metric name %q uses the reserved __ prefix", name)
			}

			labels, allConst := labelArgs(pass, call, labelStart)
			for _, l := range labels {
				switch {
				case !validLabelName(l):
					pass.Reportf(call.Pos(), "label name %q on metric %q is not a valid Prometheus label (want [a-zA-Z_][a-zA-Z0-9_]*)", l, name)
				case strings.HasPrefix(l, "__"):
					pass.Reportf(call.Pos(), "label name %q on metric %q uses the reserved __ prefix", l, name)
				case l == "le":
					pass.Reportf(call.Pos(), "label name \"le\" on metric %q collides with the histogram bucket label", name)
				}
			}
			if !allConst {
				return true // cannot compare label schemas we cannot see
			}
			if prev, dup := seen[name]; dup {
				if !sameLabels(prev.labels, labels) {
					pass.Reportf(call.Pos(), "metric %q re-registered with labels [%s]; first registered with [%s] at %s (obs.Registry panics on this at runtime)",
						name, strings.Join(labels, " "), strings.Join(prev.labels, " "), prev.pos)
				}
			} else {
				seen[name] = registration{labels: labels, pos: pass.Fset.Position(call.Pos())}
			}
			return true
		})
	}
	return nil
}

// registryCall reports whether call is a registration method on a
// *Registry (any package defining a Registry type counts, so analyzer
// fixtures don't need to import internal/obs), and at which argument
// index label names start.
func registryCall(pass *analysis.Pass, call *ast.CallExpr) (labelStart int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, false
	}
	labelStart, isReg := registerMethods[sel.Sel.Name]
	if !isReg {
		return 0, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return 0, false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return 0, false
	}
	return labelStart, true
}

// labelArgs extracts the constant label-name arguments; allConst is
// false when any label is dynamic or passed via slice expansion.
func labelArgs(pass *analysis.Pass, call *ast.CallExpr, start int) (labels []string, allConst bool) {
	if call.Ellipsis.IsValid() {
		return nil, false
	}
	allConst = true
	for i := start; i < len(call.Args); i++ {
		s, ok := constString(pass, call.Args[i])
		if !ok {
			allConst = false
			continue
		}
		labels = append(labels, s)
	}
	return labels, allConst
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func sameLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
