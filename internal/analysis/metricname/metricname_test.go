package metricname_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analyzertest.Run(t, "../testdata", metricname.Analyzer, "metrics")
}
