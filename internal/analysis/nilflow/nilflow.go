// Package nilflow flags uses of a value on paths where the paired
// `err != nil` check already proved it invalid. The contract of
// `v, err := f()` in this codebase is that v is meaningful only when
// err is nil; the compiler cannot see that, and the two bug shapes that
// follow from it are path-sensitive:
//
//   - dereferencing v *inside* the error branch (`if err != nil {
//     v.Close() }`), where v is typically nil;
//   - an error branch that does not terminate (`if err != nil {
//     log.Print(err) }`) followed by an unconditional deref of v — the
//     error path falls through into the success path.
//
// Both checks resolve v and err through the reaching-definitions
// analysis of internal/analysis/dataflow, so a reassignment of v
// between the check and the use correctly ends the suspicion, and an
// err examined far from its defining call is still paired with the
// right value.
//
// The package also flags `return nil, nil` from functions returning
// (*T, error): callers in core and selector deref the result after a
// nil error check, so "no result, no error" must be spelled with a
// sentinel error or an ok bool instead.
package nilflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Analyzer flags values used on paths where they are provably suspect.
var Analyzer = &analysis.Analyzer{
	Name: "nilflow",
	Doc: "flag uses of a value its paired err != nil branch proved invalid, and return nil, nil\n\n" +
		"After `v, err := f()`, v must not be dereferenced inside the error\n" +
		"branch, or after an error branch that falls through; functions\n" +
		"returning (*T, error) must not return nil, nil.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var fnStack []*ast.FuncType
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fnStack = append(fnStack, n.Type)
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				ast.Inspect(n.Type, walk)
				if n.Body != nil {
					for _, st := range n.Body.List {
						ast.Inspect(st, walk)
					}
				}
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.FuncLit:
				fnStack = append(fnStack, n.Type)
				checkBody(pass, n.Body)
				for _, st := range n.Body.List {
					ast.Inspect(st, walk)
				}
				fnStack = fnStack[:len(fnStack)-1]
				return false
			case *ast.ReturnStmt:
				if len(fnStack) > 0 {
					checkNilNilReturn(pass, fnStack[len(fnStack)-1], n)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkNilNilReturn flags `return nil, nil` when the enclosing function
// returns a pointer plus an error: the caller's nil-error check then
// green-lights a nil deref.
func checkNilNilReturn(pass *analysis.Pass, fn *ast.FuncType, ret *ast.ReturnStmt) {
	if fn.Results == nil || len(ret.Results) != 2 {
		return
	}
	for _, r := range ret.Results {
		id, ok := r.(*ast.Ident)
		if !ok || id.Name != "nil" {
			return
		}
	}
	// Resolve the declared result types (a field can bind several
	// names); the shape must be exactly (pointer, error).
	var resultTypes []types.Type
	for _, field := range fn.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pass.TypeOf(field.Type)
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(resultTypes) != 2 || resultTypes[0] == nil {
		return
	}
	if _, ok := resultTypes[0].Underlying().(*types.Pointer); !ok {
		return
	}
	if !isErrorType(resultTypes[1]) {
		return
	}
	pass.Reportf(ret.Pos(), "return nil, nil from a (*T, error) function: callers that check err and deref the result get a nil pointer — return a sentinel error or add an ok result")
}

// checkBody runs the flow-sensitive err-branch checks over one function
// body.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Fast path: no `!= nil` comparison, nothing to do.
	hasNilCmp := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.NEQ && isNilIdent(b.Y) {
			hasNilCmp = true
		}
		return !hasNilCmp
	})
	if !hasNilCmp {
		return
	}

	g := cfg.New(body)
	rd := dataflow.NewReachingDefs(g, pass.TypesInfo, nil)

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // checked by its own visit
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ || !isNilIdent(cond.Y) {
			return true
		}
		errIdent, ok := cond.X.(*ast.Ident)
		if !ok || !isErrorType(pass.TypeOf(errIdent)) {
			return true
		}
		errVar := asVar(pass.TypesInfo.Uses[errIdent])
		if errVar == nil {
			return true
		}

		// Pair err with the values assigned alongside it: the single
		// reaching definition must be `v, err := call(...)`.
		defs := rd.DefsAt(errVar, errIdent.Pos())
		if len(defs) != 1 || defs[0].Site == nil {
			return true
		}
		assign, ok := defs[0].Site.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) < 2 || len(assign.Rhs) != 1 {
			return true
		}
		if _, ok := assign.Rhs[0].(*ast.CallExpr); !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			vIdent, ok := lhs.(*ast.Ident)
			if !ok || vIdent.Name == "_" {
				continue
			}
			vVar := asVar(pass.TypesInfo.Defs[vIdent])
			if vVar == nil {
				vVar = asVar(pass.TypesInfo.Uses[vIdent])
			}
			// Skip the error itself: inside the branch err is known
			// non-nil, so err.Error() is the one deref that is safe.
			if vVar == nil || vVar == errVar || !nilable(vVar.Type()) {
				continue
			}
			checkErrBranchUses(pass, rd, body, assign, ifStmt, vVar)
		}
		return true
	})
}

// checkErrBranchUses flags suspect uses of v for one `if err != nil`
// statement: derefs inside the branch, and derefs after it when the
// branch can fall through.
func checkErrBranchUses(pass *analysis.Pass, rd *dataflow.ReachingDefs, body *ast.BlockStmt, assign *ast.AssignStmt, ifStmt *ast.IfStmt, v *types.Var) {
	report := func(site ast.Node, where string) {
		// The suspicion ends where v is reassigned: only flag while the
		// paired definition still reaches the use.
		if !defReaches(rd, v, assign, site.Pos()) {
			return
		}
		pass.Reportf(site.Pos(), "%s is dereferenced %s, but the err != nil branch proved it invalid — it is nil (or stale) on this path", v.Name(), where)
	}

	for _, site := range derefSites(pass, ifStmt.Body, v) {
		report(site, "inside the err != nil branch")
	}

	// Fall-through: only meaningful without an else (the common log-and-
	// continue shape), and only when some path through the branch body
	// reaches the statements after the if.
	if ifStmt.Else != nil || !fallsThrough(ifStmt.Body) {
		return
	}
	// Scan the remainder of the enclosing syntactic block.
	encl := enclosingBlock(body, ifStmt)
	if encl == nil {
		return
	}
	afterIf := false
	for _, st := range encl.List {
		if st == ast.Stmt(ifStmt) {
			afterIf = true
			continue
		}
		if !afterIf {
			continue
		}
		for _, site := range derefSites(pass, st, v) {
			report(site, "after an err != nil branch that falls through")
		}
	}
}

// fallsThrough reports whether executing body can run off its end: its
// standalone CFG's exit keeps a predecessor that is not a return,
// branch, or panic terminator.
func fallsThrough(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	g := cfg.New(body)
	exit := g.Blocks[1]
	reach := g.Reachable()
	for _, p := range exit.Preds {
		if !reach[p.Index] {
			continue
		}
		if len(p.Nodes) == 0 {
			return true // empty join block falling into exit
		}
		last := p.Nodes[len(p.Nodes)-1]
		switch last.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			// Jumped to exit explicitly: not a fall-through. A branch
			// statement targeting a loop outside this body dead-ends in
			// the standalone CFG, which is equally "does not fall into
			// the next statement".
		default:
			return true
		}
	}
	return false
}

// enclosingBlock finds the syntactic block whose statement list
// contains ifStmt.
func enclosingBlock(body *ast.BlockStmt, ifStmt *ast.IfStmt) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if blk, ok := n.(*ast.BlockStmt); ok {
			for _, st := range blk.List {
				if st == ast.Stmt(ifStmt) {
					found = blk
					return false
				}
			}
		}
		return true
	})
	return found
}

// defReaches reports whether the given assignment is still a reaching
// definition of v at pos.
func defReaches(rd *dataflow.ReachingDefs, v *types.Var, assign *ast.AssignStmt, pos token.Pos) bool {
	for _, d := range rd.DefsAt(v, pos) {
		if d.Site == ast.Node(assign) {
			return true
		}
	}
	return false
}

// derefSites collects the expressions under root that would panic (or
// misbehave) if v were nil, skipping nested function literals and any
// region guarded by a fresh `v != nil` / `v == nil` test.
func derefSites(pass *analysis.Pass, root ast.Node, v *types.Var) []ast.Node {
	var sites []ast.Node
	isV := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && asVar(pass.TypesInfo.Uses[id]) == v
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			// A nested nil check on v re-establishes the contract;
			// don't second-guess the guarded region.
			if mentionsNilCheck(pass, n.Cond, v) {
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				return false
			}
		case *ast.SelectorExpr:
			if isV(n.X) {
				t := v.Type().Underlying()
				_, isPtr := t.(*types.Pointer)
				_, isIface := t.(*types.Interface)
				if isPtr || isIface {
					sites = append(sites, n)
				}
			}
		case *ast.StarExpr:
			if isV(n.X) {
				sites = append(sites, n)
			}
		case *ast.IndexExpr:
			if isV(n.X) {
				switch v.Type().Underlying().(type) {
				case *types.Slice, *types.Pointer:
					sites = append(sites, n)
				case *types.Map:
					// Reading a nil map is defined; only writes panic.
					// Writes are caught via AssignStmt below.
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isV(ix.X) {
					if _, isMap := v.Type().Underlying().(*types.Map); isMap {
						sites = append(sites, ix)
					}
				}
			}
		case *ast.CallExpr:
			if isV(n.Fun) {
				sites = append(sites, n)
			}
		}
		return true
	}
	ast.Inspect(root, walk)
	return sites
}

// mentionsNilCheck reports whether cond compares v against nil.
func mentionsNilCheck(pass *analysis.Pass, cond ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && (b.Op == token.NEQ || b.Op == token.EQL) {
			xIsV := func(e ast.Expr) bool {
				id, ok := e.(*ast.Ident)
				return ok && asVar(pass.TypesInfo.Uses[id]) == v
			}
			if (xIsV(b.X) && isNilIdent(b.Y)) || (xIsV(b.Y) && isNilIdent(b.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Slice, *types.Map, *types.Signature, *types.Chan:
		return true
	}
	return false
}

func asVar(obj types.Object) *types.Var {
	v, _ := obj.(*types.Var)
	return v
}
