package nilflow_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/nilflow"
)

func TestNilflow(t *testing.T) {
	analyzertest.Run(t, "../testdata", nilflow.Analyzer, "nilflow")
}
