// Package sarif models the subset of the SARIF 2.1.0 log format
// (Static Analysis Results Interchange Format, OASIS standard) that
// spartanvet emits for GitHub code scanning, plus a strict Validate
// used in tests and available to CI.
//
// The model is deliberately small: one tool driver with its rules, one
// run, results with physical locations, and inSource suppressions for
// findings silenced by //spartanvet:ignore directives. Field names and
// required-ness follow the sarif-schema-2.1.0 definitions; Validate
// enforces the required fields and enumerated values for everything the
// model can express, and rejects unknown fields so a drifting emitter
// fails loudly in tests rather than at upload time.
package sarif

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the SARIF spec version this package writes.
const Version = "2.1.0"

// SchemaURI is the canonical schema location recorded in $schema.
const SchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one invocation of one tool.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool identifies the analysis tool; Driver is its primary component.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver names the tool and declares its rules.
type Driver struct {
	Name           string `json:"name"`
	Version        string `json:"semanticVersion,omitempty"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules,omitempty"`
}

// Rule is a reportingDescriptor: one analyzer.
type Rule struct {
	ID               string         `json:"id"`
	Name             string         `json:"name,omitempty"`
	ShortDescription *Multiformat   `json:"shortDescription,omitempty"`
	FullDescription  *Multiformat   `json:"fullDescription,omitempty"`
	HelpURI          string         `json:"helpUri,omitempty"`
	DefaultConfig    *Configuration `json:"defaultConfiguration,omitempty"`
}

// Multiformat is a multiformatMessageString; Text is required.
type Multiformat struct {
	Text     string `json:"text"`
	Markdown string `json:"markdown,omitempty"`
}

// Configuration is a reportingConfiguration (default severity).
type Configuration struct {
	Level string `json:"level,omitempty"`
}

// Result is one finding. RelatedLocations carries auxiliary positions —
// spartanvet uses them for taint paths: the wire read a value entered
// through and every step it travelled to reach the sink.
type Result struct {
	RuleID           string        `json:"ruleId"`
	RuleIndex        *int          `json:"ruleIndex,omitempty"`
	Level            string        `json:"level,omitempty"`
	Message          Message       `json:"message"`
	Locations        []Location    `json:"locations,omitempty"`
	RelatedLocations []Location    `json:"relatedLocations,omitempty"`
	Suppressions     []Suppression `json:"suppressions,omitempty"`
}

// Message carries the result text.
type Message struct {
	Text string `json:"text"`
}

// Location wraps a physical location; Message annotates it (used by
// relatedLocations entries to label each taint step).
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
	Message          *Message         `json:"message,omitempty"`
}

// PhysicalLocation is a file region.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           *Region          `json:"region,omitempty"`
}

// ArtifactLocation names the file, as a relative URI.
type ArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

// Region is a sub-file range; SARIF lines and columns are 1-based.
type Region struct {
	StartLine   int `json:"startLine,omitempty"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// Suppression records why a result is not failing the build.
type Suppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// Marshal renders the log with stable two-space indentation and a
// trailing newline, ready to write to a .sarif file.
func (l *Log) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// resultLevels are the legal values of result.level per the schema.
var resultLevels = map[string]bool{"none": true, "note": true, "warning": true, "error": true}

// suppressionKinds are the legal values of suppression.kind.
var suppressionKinds = map[string]bool{"inSource": true, "external": true}

// Validate strictly decodes data as a SARIF 2.1.0 log restricted to
// this package's model and checks every required field and enumerated
// value. Unknown fields are errors: the emitter and the model must not
// drift apart silently.
func Validate(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var log Log
	if err := dec.Decode(&log); err != nil {
		return fmt.Errorf("sarif: decoding: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("sarif: trailing data after log object")
	}
	if log.Version != Version {
		return fmt.Errorf("sarif: version is %q, want %q", log.Version, Version)
	}
	if log.Runs == nil {
		return fmt.Errorf("sarif: runs is required")
	}
	for i, run := range log.Runs {
		if err := validateRun(run); err != nil {
			return fmt.Errorf("sarif: runs[%d]: %w", i, err)
		}
	}
	return nil
}

func validateRun(run Run) error {
	if run.Tool.Driver.Name == "" {
		return fmt.Errorf("tool.driver.name is required")
	}
	ruleIndex := map[string]int{}
	for i, rule := range run.Tool.Driver.Rules {
		if rule.ID == "" {
			return fmt.Errorf("tool.driver.rules[%d]: id is required", i)
		}
		if _, dup := ruleIndex[rule.ID]; dup {
			return fmt.Errorf("tool.driver.rules[%d]: duplicate rule id %q", i, rule.ID)
		}
		ruleIndex[rule.ID] = i
		if rule.ShortDescription != nil && rule.ShortDescription.Text == "" {
			return fmt.Errorf("rule %s: shortDescription.text is required", rule.ID)
		}
		if rule.FullDescription != nil && rule.FullDescription.Text == "" {
			return fmt.Errorf("rule %s: fullDescription.text is required", rule.ID)
		}
		if c := rule.DefaultConfig; c != nil && c.Level != "" && !resultLevels[c.Level] {
			return fmt.Errorf("rule %s: defaultConfiguration.level %q is not a SARIF level", rule.ID, c.Level)
		}
	}
	if run.Results == nil {
		return fmt.Errorf("results is required (use an empty array for a clean run)")
	}
	for i, r := range run.Results {
		if err := validateResult(r, ruleIndex); err != nil {
			return fmt.Errorf("results[%d]: %w", i, err)
		}
	}
	return nil
}

func validateResult(r Result, ruleIndex map[string]int) error {
	if r.Message.Text == "" {
		return fmt.Errorf("message.text is required")
	}
	if r.Level != "" && !resultLevels[r.Level] {
		return fmt.Errorf("level %q is not a SARIF level", r.Level)
	}
	if r.RuleID != "" && len(ruleIndex) > 0 {
		want, declared := ruleIndex[r.RuleID]
		if !declared {
			return fmt.Errorf("ruleId %q is not declared in tool.driver.rules", r.RuleID)
		}
		if r.RuleIndex != nil && *r.RuleIndex != want {
			return fmt.Errorf("ruleIndex %d does not match rule %q at index %d", *r.RuleIndex, r.RuleID, want)
		}
	}
	for j, loc := range r.Locations {
		if err := validateLocation(loc); err != nil {
			return fmt.Errorf("locations[%d]: %w", j, err)
		}
	}
	for j, loc := range r.RelatedLocations {
		if err := validateLocation(loc); err != nil {
			return fmt.Errorf("relatedLocations[%d]: %w", j, err)
		}
	}
	for j, s := range r.Suppressions {
		if !suppressionKinds[s.Kind] {
			return fmt.Errorf("suppressions[%d]: kind %q is not a SARIF suppression kind", j, s.Kind)
		}
	}
	return nil
}

func validateLocation(loc Location) error {
	pl := loc.PhysicalLocation
	if pl.ArtifactLocation.URI == "" {
		return fmt.Errorf("artifactLocation.uri is required")
	}
	if reg := pl.Region; reg != nil {
		if reg.StartLine < 1 {
			return fmt.Errorf("region.startLine must be >= 1")
		}
		if reg.StartColumn < 0 || reg.EndLine < 0 || reg.EndColumn < 0 {
			return fmt.Errorf("region bounds must be non-negative")
		}
	}
	if loc.Message != nil && loc.Message.Text == "" {
		return fmt.Errorf("message.text is required when message is present")
	}
	return nil
}
