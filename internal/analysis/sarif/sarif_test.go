package sarif_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/sarif"
)

func idx(i int) *int { return &i }

func sampleLog() *sarif.Log {
	return &sarif.Log{
		Schema:  sarif.SchemaURI,
		Version: sarif.Version,
		Runs: []sarif.Run{{
			Tool: sarif.Tool{Driver: sarif.Driver{
				Name: "spartanvet",
				Rules: []sarif.Rule{{
					ID:               "floatcmp",
					ShortDescription: &sarif.Multiformat{Text: "flag == on floats"},
					DefaultConfig:    &sarif.Configuration{Level: "warning"},
				}},
			}},
			Results: []sarif.Result{{
				RuleID:    "floatcmp",
				RuleIndex: idx(0),
				Level:     "warning",
				Message:   sarif.Message{Text: "== compares floats"},
				Locations: []sarif.Location{{PhysicalLocation: sarif.PhysicalLocation{
					ArtifactLocation: sarif.ArtifactLocation{URI: "internal/core/outlier.go"},
					Region:           &sarif.Region{StartLine: 42, StartColumn: 7},
				}}},
			}},
		}},
	}
}

func TestMarshalValidates(t *testing.T) {
	data, err := sampleLog().Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := sarif.Validate(data); err != nil {
		t.Fatalf("Validate rejected emitter output: %v\n%s", err, data)
	}
	for _, want := range []string{`"2.1.0"`, `"ruleId": "floatcmp"`, `"startLine": 42`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestValidateEmptyResults(t *testing.T) {
	log := sampleLog()
	log.Runs[0].Results = []sarif.Result{}
	data, _ := log.Marshal()
	// A clean run must still carry `"results": []`, which GitHub uses to
	// close previously reported alerts.
	if !strings.Contains(string(data), `"results": []`) {
		t.Fatalf("empty results array was dropped from output:\n%s", data)
	}
	if err := sarif.Validate(data); err != nil {
		t.Fatalf("Validate rejected clean run: %v", err)
	}
}

func TestValidateSuppressions(t *testing.T) {
	log := sampleLog()
	log.Runs[0].Results[0].Suppressions = []sarif.Suppression{
		{Kind: "inSource", Justification: "sentinel comparison"},
	}
	data, _ := log.Marshal()
	if err := sarif.Validate(data); err != nil {
		t.Fatalf("Validate rejected suppressed result: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*sarif.Log)
		wantErr string
	}{
		{"wrong version", func(l *sarif.Log) { l.Version = "2.0.0" }, "version"},
		{"missing driver name", func(l *sarif.Log) { l.Runs[0].Tool.Driver.Name = "" }, "driver.name"},
		{"missing message", func(l *sarif.Log) { l.Runs[0].Results[0].Message.Text = "" }, "message.text"},
		{"bad level", func(l *sarif.Log) { l.Runs[0].Results[0].Level = "severe" }, "level"},
		{"undeclared rule", func(l *sarif.Log) { l.Runs[0].Results[0].RuleID = "ghost" }, "not declared"},
		{"rule index mismatch", func(l *sarif.Log) { l.Runs[0].Results[0].RuleIndex = idx(3) }, "ruleIndex"},
		{"zero start line", func(l *sarif.Log) {
			l.Runs[0].Results[0].Locations[0].PhysicalLocation.Region.StartLine = 0
		}, "startLine"},
		{"missing uri", func(l *sarif.Log) {
			l.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI = ""
		}, "uri"},
		{"bad suppression kind", func(l *sarif.Log) {
			l.Runs[0].Results[0].Suppressions = []sarif.Suppression{{Kind: "manual"}}
		}, "suppression"},
		{"nil runs", func(l *sarif.Log) { l.Runs = nil }, "runs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			log := sampleLog()
			tc.mutate(log)
			data, err := log.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			err = sarif.Validate(data)
			if err == nil {
				t.Fatalf("Validate accepted invalid log:\n%s", data)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateUnknownField(t *testing.T) {
	data := []byte(`{"$schema":"s","version":"2.1.0","runs":[],"extra":1}`)
	if err := sarif.Validate(data); err == nil {
		t.Fatal("Validate accepted a document with an unknown field")
	}
}
