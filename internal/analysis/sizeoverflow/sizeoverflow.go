// Package sizeoverflow implements the size-arithmetic overflow check,
// the second analyzer on spartanvet's interprocedural layer. Where
// taintalloc asks "does an unbounded wire value reach an allocation?",
// sizeoverflow asks "does the arithmetic *around* wire values stay in
// range?" — two rules, both driven by the same edge-sensitive taint
// engine in internal/analysis/summary:
//
//   - narrowing: a value-changing integer conversion of a wire-tainted
//     value (uint64→int, int64→int32, any signedness flip at equal
//     width). A 2^63 wire delta converted with int(delta) wraps
//     negative, sails past `row >= nrows` checks, and panics as a
//     negative slice index. Guard the range first — the conversion of a
//     bounded value is fine.
//   - products: a multiplication or left shift with a wire-tainted
//     operand (rows*cols, n<<k). Even individually-bounded factors can
//     overflow the product; bound each factor so the product fits, or
//     cross-check with a division (`a > Max/b`) — both kill the taint.
//
// Both rules are range-aware: a narrowing whose operand interval the
// value-range analysis (internal/analysis/vrange) proves to fit the
// target type, or a product whose raw operand-interval result fits the
// expression's type, is not reported — the proof comes from the guards
// actually present, not a syntactic clamp pattern.
//
// Scope: codec, cart, archive — the hostile-input decode path.
package sizeoverflow

import (
	"fmt"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/summary"
	"repro/internal/analysis/taintalloc"
	"repro/internal/analysis/vrange"
)

// Analyzer flags overflow-prone size arithmetic on wire-tainted values.
var Analyzer = &analysis.Analyzer{
	Name: "sizeoverflow",
	Doc:  "sizeoverflow: report overflow-prone arithmetic on untrusted wire integers — value-changing narrowing conversions (uint64→int wraps a huge count negative) and unguarded products/shifts feeding size computations; bound the value first (DecodeLimits comparison or clamp)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase("codec", "cart", "archive") {
		return nil
	}
	vr := vrange.Compute(pass.Fset, pass.Files, pass.TypesInfo, vrange.FactLookup(pass.Facts))
	res := summary.Compute(pass.Fset, pass.Files, pass.TypesInfo, summary.FactLookup(pass.Facts), vr)

	fns := make([]*types.Func, 0, len(res.Flows))
	for fn := range res.Flows {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		flow := res.Flows[fn]
		for _, h := range flow.Narrowings {
			if !h.Taint.FromSource() {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: h.Pos,
				Message: fmt.Sprintf(
					"wire-tainted %s narrowed to %s without a range check; a hostile value changes meaning (wraps or flips sign) — bound it first",
					h.From, h.To),
				Related: taintalloc.StepsPath(h.Taint),
			})
		}
		for _, h := range flow.Products {
			if !h.Taint.FromSource() {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: h.Pos,
				Message: fmt.Sprintf(
					"size arithmetic (%s) on a wire-tainted operand may overflow; bound the factors (DecodeLimits comparison or clamp) before multiplying",
					h.Op),
				Related: taintalloc.StepsPath(h.Taint),
			})
		}
	}
	return nil
}
