package sizeoverflow_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/sizeoverflow"
)

func TestSizeoverflow(t *testing.T) {
	analyzertest.Run(t, "../testdata", sizeoverflow.Analyzer, "sizeoverflow")
}
