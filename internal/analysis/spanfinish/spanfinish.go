// Package spanfinish flags obs pipeline spans that are started but can
// escape unfinished. An unfinished span never stamps its End time, so the
// §4.2-style per-phase accounting under-reports, the OnSpanEnd observer
// that feeds the metrics registry never fires, and Duration() keeps
// ticking forever.
//
// The check is syntactic but path-aware in the direction that matters:
// a started span must either be finished via defer, or every return
// statement between the start and the variable's next reuse must be
// preceded by an explicit Finish call. Discarding the result of
// Start/StartChild outright is always an error — nobody can ever finish
// such a span.
package spanfinish

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags spans that are started without a Finish on all paths.
var Analyzer = &analysis.Analyzer{
	Name: "spanfinish",
	Doc: "flag obs spans started without a corresponding Finish/defer on all paths\n\n" +
		"Every *obs.Span obtained from Start/StartChild must be finished via\n" +
		"defer sp.Finish(), or explicitly before every return in its live range.",
	Run: run,
}

// startMethods are the span-producing calls the analyzer tracks.
var startMethods = map[string]bool{"Start": true, "StartChild": true, "StartSpan": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals get
// their own checkFunc visit from run's walk; here they only contribute
// Finish calls (a finish inside a helper closure still finishes the
// span) and are excluded from the return-path scan (their returns leave
// the closure, not this function).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var starts []startSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures get their own checkFunc visit
		}
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "result of %s is discarded; the span can never be finished", callName(call))
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) || i >= len(st.Lhs) {
					continue
				}
				switch lhs := st.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						pass.Reportf(call.Pos(), "result of %s is assigned to _; the span can never be finished", callName(call))
						continue
					}
					starts = append(starts, startSite{name: lhs.Name, pos: call.Pos()})
				}
			}
		}
		return true
	})
	if len(starts) == 0 {
		return
	}

	// Establish each start's live range: from the start to the next
	// reassignment of the same variable (spans are commonly reused as
	// `sp = root.StartChild(...)` per phase), else end of function.
	for i := range starts {
		starts[i].end = body.End()
		for _, other := range starts {
			if other.name == starts[i].name && other.pos > starts[i].pos && other.pos < starts[i].end {
				starts[i].end = other.pos
			}
		}
	}
	for _, s := range starts {
		checkRange(pass, body, s)
	}
}

type startSite struct {
	name string
	pos  token.Pos
	end  token.Pos
}

func checkRange(pass *analysis.Pass, body *ast.BlockStmt, s startSite) {
	inRange := func(p token.Pos) bool { return p > s.pos && p < s.end }

	var deferred bool
	var finishes []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if !inRange(st.Pos()) {
				return true
			}
			if isFinishOn(st.Call, s.name) || deferredClosureFinishes(st.Call, s.name) {
				deferred = true
			}
		case *ast.CallExpr:
			if inRange(st.Pos()) && isFinishOn(st, s.name) {
				finishes = append(finishes, st.Pos())
			}
		}
		return true
	})
	if deferred {
		return
	}
	if len(finishes) == 0 {
		pass.Reportf(s.pos, "span %s is started but never finished; add defer %s.Finish()", s.name, s.name)
		return
	}
	// Explicit finishes only: every return in the live range must come
	// after at least one Finish (position approximation of "covered").
	firstFinish := finishes[0]
	for _, f := range finishes {
		if f < firstFinish {
			firstFinish = f
		}
	}
	var uncovered []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures leave the closure only
		}
		// A return is "covered" when some Finish textually precedes its
		// end — this admits both `sp.Finish(); return` and a finish
		// inside the returned expression (handoff closures).
		if ret, ok := n.(*ast.ReturnStmt); ok && inRange(ret.Pos()) && ret.End() < firstFinish {
			uncovered = append(uncovered, ret.Pos())
		}
		return true
	})
	for _, p := range uncovered {
		pass.Reportf(p, "return may leave span %s unfinished; call %s.Finish() first or use defer", s.name, s.name)
	}
}

// isSpanStart reports whether call produces a *Span via a start method.
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !startMethods[sel.Sel.Name] {
		return false
	}
	ptr, ok := pass.TypeOf(call).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// isFinishOn reports whether call is `<name>.Finish()`.
func isFinishOn(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Finish" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == name
}

// deferredClosureFinishes reports whether call is an immediately-invoked
// closure (`defer func() { ... }()`) that finishes the span inside.
func deferredClosureFinishes(call *ast.CallExpr, name string) bool {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isFinishOn(c, name) {
			found = true
		}
		return !found
	})
	return found
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "span start"
}
