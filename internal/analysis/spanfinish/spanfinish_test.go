package spanfinish_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/spanfinish"
)

func TestSpanfinish(t *testing.T) {
	analyzertest.Run(t, "../testdata", spanfinish.Analyzer, "pipeline")
}
