// Package summary computes per-function dataflow summaries — the
// second rung of spartanvet's interprocedural layer, on top of
// internal/analysis/callgraph. A FuncSummary answers, for one function,
// the questions a caller-side taint analysis needs without re-analyzing
// the callee's body:
//
//   - which parameters flow into which results (ReturnFlows), and
//     whether an untrusted wire read flows into a result (Source);
//   - which parameters reach an allocation-shaped sink unguarded inside
//     the function or its callees (SinkParams) — a make size, the bound
//     of an allocating loop, bytes.Buffer.Grow, io.CopyN.
//
// Summaries are computed bottom-up over the SCCs of the package call
// graph (fixpoint iteration inside recursive components) by the
// edge-sensitive taint engine in taint.go, and serialized as the
// "funcsummary" analyzer fact so downstream packages reuse them through
// the unitchecker's vetx files without access to dependency source.
//
// The engine is range-aware: when the caller supplies the package's
// value-range result (internal/analysis/vrange), a sink whose size
// expression has a *proved* finite upper bound is dropped — the range
// analysis discharges clamps (minInt, builtin min with a constant),
// mask/modulo reductions and guard refinements uniformly, instead of
// the syntactic clamp-shape matching earlier revisions used.
package summary

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/vrange"
)

// FactName is the analyzer name summaries are stored under in a
// FactStore; taintalloc and sizeoverflow read the fact directly.
const FactName = "funcsummary"

// Position is a serializable source position for facts — cross-package
// sink sites cannot travel as token.Pos.
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func toPosition(p token.Position) Position {
	return Position{File: p.Filename, Line: p.Line, Col: p.Column}
}

// ToTokenPosition converts back for diagnostics.
func (p Position) ToTokenPosition() token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

// ReturnFlow describes one result of a function.
type ReturnFlow struct {
	// Params lists the parameter indices (receiver first for methods)
	// whose value may flow into this result.
	Params []int `json:"params,omitempty"`
	// Source reports that an untrusted wire read (varint decode and
	// friends) may flow into this result.
	Source bool `json:"source,omitempty"`
}

// SinkParam marks a parameter that reaches an allocation sink without a
// bounding comparison on the way.
type SinkParam struct {
	Param int      `json:"param"`
	What  string   `json:"what"` // e.g. "make size", "allocating loop bound"
	Pos   Position `json:"pos"`
	// Via names the chain of callees between this function and the sink
	// when the flow is itself interprocedural ("readNumericColumn").
	Via string `json:"via,omitempty"`
}

// FuncSummary is the serialized dataflow summary of one function,
// keyed in a package fact by types.Func.FullName.
type FuncSummary struct {
	Params      int          `json:"params"`
	ReturnFlows []ReturnFlow `json:"returns,omitempty"`
	SinkParams  []SinkParam  `json:"sinks,omitempty"`
}

func (s *FuncSummary) empty() bool {
	if len(s.SinkParams) > 0 {
		return false
	}
	for _, rf := range s.ReturnFlows {
		if rf.Source || len(rf.Params) > 0 {
			return false
		}
	}
	return true
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	a, _ := json.Marshal(s)
	b, _ := json.Marshal(o)
	return string(a) == string(b)
}

// Lookup resolves the summary of a callee, or nil when unknown.
type Lookup func(fn *types.Func) *FuncSummary

// Result is one package's computed summaries plus the per-function taint
// flows the analyzers report from.
type Result struct {
	// ByFunc holds the summary of every function declared in the
	// package (empty summaries included).
	ByFunc map[*types.Func]*FuncSummary
	// Flows holds the final taint engine output per function: sink
	// hits, narrowing conversions and overflow-prone products, for
	// taintalloc and sizeoverflow to report.
	Flows map[*types.Func]*Flow
}

// Compute builds the call graph of the package, orders it bottom-up by
// SCC, and runs the taint engine over every function body. imported
// resolves summaries of cross-package callees (nil is fine: those
// callees are treated as unknown, conservatively summary-free). ranges
// is the package's value-range result; when non-nil, sinks whose size
// the interval analysis proves bounded are dropped (nil keeps every
// taint-reachable sink).
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info, imported Lookup, ranges *vrange.Result) *Result {
	g := callgraph.Build(files, info)
	res := &Result{
		ByFunc: map[*types.Func]*FuncSummary{},
		Flows:  map[*types.Func]*Flow{},
	}
	lookup := func(fn *types.Func) *FuncSummary {
		if s, ok := res.ByFunc[fn]; ok {
			return s
		}
		if imported != nil {
			return imported(fn)
		}
		return nil
	}
	for _, scc := range g.SCCs() {
		// Inside a recursive component, callee summaries start empty
		// and the component iterates to a fixpoint; summaries only grow
		// (more flows, more sink params), so this terminates. Four
		// rounds bound pathological growth: deeper mutual recursion
		// than that stops refining, which only loses precision.
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				var fr *vrange.FuncResult
				if ranges != nil {
					fr = ranges.Funcs[n.Func]
				}
				e := &Engine{Fset: fset, Info: info, Lookup: lookup, Ranges: fr}
				flow := e.Run(n.Decl)
				sum := flow.Summary()
				if old := res.ByFunc[n.Func]; old == nil || !old.equal(sum) {
					changed = true
				}
				res.ByFunc[n.Func] = sum
				res.Flows[n.Func] = flow
			}
			if !changed || round >= 3 {
				break
			}
		}
	}
	return res
}

// Encode serializes the non-empty summaries as the package fact body.
func (r *Result) Encode() ([]byte, error) {
	byName := map[string]*FuncSummary{}
	for fn, s := range r.ByFunc {
		if !s.empty() {
			byName[fn.FullName()] = s
		}
	}
	return json.Marshal(byName)
}

// DecodeFact parses a fact blob produced by Encode.
func DecodeFact(data []byte) (map[string]*FuncSummary, error) {
	byName := map[string]*FuncSummary{}
	if len(data) == 0 {
		return byName, nil
	}
	if err := json.Unmarshal(data, &byName); err != nil {
		return nil, err
	}
	return byName, nil
}

// FactLookup adapts a driver FactStore into a cross-package Lookup,
// caching each dependency's decoded fact. Safe with a nil store (every
// lookup misses).
func FactLookup(store *analysis.FactStore) Lookup {
	cache := map[string]map[string]*FuncSummary{}
	return func(fn *types.Func) *FuncSummary {
		if fn == nil || fn.Pkg() == nil {
			return nil
		}
		path := fn.Pkg().Path()
		pkg, ok := cache[path]
		if !ok {
			pkg, _ = DecodeFact(store.Get(path, FactName))
			cache[path] = pkg
		}
		return pkg[fn.FullName()]
	}
}

// Analyzer is the fact producer: it emits no diagnostics, only the
// "funcsummary" package fact that taintalloc and sizeoverflow (and any
// future bound-checking analyzer) consume for cross-package calls.
// Drivers run it over dependencies because Facts is set.
var Analyzer = &analysis.Analyzer{
	Name:  FactName,
	Doc:   "funcsummary: compute per-function dataflow summaries (param→return flows, unguarded sink parameters, wire-source returns) bottom-up over call-graph SCCs, range-filtered through vrange, and export them as a package fact for the interprocedural analyzers",
	Facts: true,
	Run: func(pass *analysis.Pass) error {
		vr := vrange.Compute(pass.Fset, pass.Files, pass.TypesInfo, vrange.FactLookup(pass.Facts))
		res := Compute(pass.Fset, pass.Files, pass.TypesInfo, FactLookup(pass.Facts), vr)
		blob, err := res.Encode()
		if err != nil {
			return err
		}
		pass.ExportFact(blob)
		return nil
	},
}

// paramVars lists the taint-tracked parameter objects of a declaration:
// receiver first, then parameters, in declaration order. Blank and
// anonymous parameters occupy their index with a nil entry.
func paramVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	return out
}

// resultVars lists the named result objects (nil entries for unnamed),
// for taint queries at bare returns.
func resultVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	if decl.Type.Results == nil {
		return out
	}
	for _, f := range decl.Type.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}

func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
