package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/vrange"
)

func compute(t *testing.T, src string) (*Result, *types.Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	vr := vrange.Compute(fset, []*ast.File{f}, info, nil)
	return Compute(fset, []*ast.File{f}, info, nil, vr), pkg, fset
}

func summaryOf(t *testing.T, res *Result, pkg *types.Package, name string) *FuncSummary {
	t.Helper()
	for fn, s := range res.ByFunc {
		if fn.Name() == name {
			return s
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

func flowOf(t *testing.T, res *Result, name string) *Flow {
	t.Helper()
	for fn, f := range res.Flows {
		if fn.Name() == name {
			return f
		}
	}
	t.Fatalf("no flow for %q", name)
	return nil
}

func TestSinkParams(t *testing.T) {
	res, pkg, _ := compute(t, `package p

// n reaches a make size unguarded.
func alloc(n int) []byte { return make([]byte, n) }

// n is bounded before the make: not a sink param.
func allocGuarded(n int) []byte {
	if n > 1<<20 {
		n = 1 << 20
	}
	return make([]byte, n)
}

// n bounds an appending loop: sink param.
func grow(dst []byte, n int) []byte {
	for len(dst) < n {
		dst = append(dst, 0)
	}
	return dst
}

// Transitive: m flows into alloc's sink param.
func outer(m int) []byte { return alloc(m + 1) }
`)
	if s := summaryOf(t, res, pkg, "alloc"); len(s.SinkParams) != 1 ||
		s.SinkParams[0].Param != 0 || s.SinkParams[0].What != "make size" {
		t.Errorf("alloc sinks = %+v, want one make-size sink on param 0", s.SinkParams)
	}
	if s := summaryOf(t, res, pkg, "allocGuarded"); len(s.SinkParams) != 0 {
		t.Errorf("allocGuarded sinks = %+v, want none (reassigned to a constant on the hot edge, bounded on the other)", s.SinkParams)
	}
	s := summaryOf(t, res, pkg, "grow")
	found := false
	for _, sp := range s.SinkParams {
		if sp.Param == 1 && sp.What == "allocating loop bound" {
			found = true
		}
	}
	if !found {
		t.Errorf("grow sinks = %+v, want allocating-loop-bound on param 1", s.SinkParams)
	}
	so := summaryOf(t, res, pkg, "outer")
	if len(so.SinkParams) != 1 || so.SinkParams[0].Param != 0 || so.SinkParams[0].Via != "alloc" {
		t.Errorf("outer sinks = %+v, want transitive make-size sink via alloc", so.SinkParams)
	}
}

func TestGuardKillsAndPolarity(t *testing.T) {
	res, pkg, _ := compute(t, `package p

// Early-return guard: the fallthrough edge is bounded.
func earlyReturn(n int) []byte {
	if n > 4096 {
		return nil
	}
	return make([]byte, n)
}

// Inverted comparison, same meaning.
func inverted(n int) []byte {
	if 4096 < n {
		return nil
	}
	return make([]byte, n)
}

// || guard: false edge bounds n via the second disjunct.
func orGuard(n int) []byte {
	if n == 0 || n > 4096 {
		return nil
	}
	return make([]byte, n)
}

// The guard compares against another parameter — proves nothing.
func taintedBound(n, m int) []byte {
	if n > m {
		return nil
	}
	return make([]byte, n)
}

// The guard is on the wrong variable.
func wrongVar(n, m int) []byte {
	if m > 4096 {
		return nil
	}
	return make([]byte, n)
}
`)
	for name, wantSinks := range map[string]int{
		"earlyReturn":  0,
		"inverted":     0,
		"orGuard":      0,
		"taintedBound": 1, // n stays tainted: m is no bound
		"wrongVar":     1,
	} {
		s := summaryOf(t, res, pkg, name)
		if len(s.SinkParams) != wantSinks {
			t.Errorf("%s: sinks = %+v, want %d", name, s.SinkParams, wantSinks)
		}
	}
}

func TestRangeProvedClamp(t *testing.T) {
	// Clamp helpers are discharged by the value-range analysis: the
	// minInt summary's MinOfParams makes the make size provably finite,
	// while maxInt keeps the unbounded operand's upper bound.
	res, pkg, _ := compute(t, `package p

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// A clamped size is not a sink.
func clamped(n int) []byte { return make([]byte, minInt(n, 4096)) }

// max does not bound: still a sink.
func unclamped(n int) []byte { return make([]byte, maxInt(n, 4096)) }

// A mask reduction bounds too — no clamp shape anywhere in sight.
func masked(n int) []byte { return make([]byte, n&0xfff) }
`)
	if s := summaryOf(t, res, pkg, "clamped"); len(s.SinkParams) != 0 {
		t.Errorf("clamped sinks = %+v, want none", s.SinkParams)
	}
	if s := summaryOf(t, res, pkg, "unclamped"); len(s.SinkParams) == 0 {
		t.Errorf("unclamped: max-combined size must stay a sink param")
	}
	if s := summaryOf(t, res, pkg, "masked"); len(s.SinkParams) != 0 {
		t.Errorf("masked sinks = %+v, want none (interval proof)", s.SinkParams)
	}
}

func TestSourceFlows(t *testing.T) {
	res, pkg, _ := compute(t, `package p

import (
	"bufio"
	"encoding/binary"
)

// Wire read flows to the first result.
func readCount(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}

// Unguarded wire count into a make: a source-tainted sink.
func decodeBad(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}

// Guarded: clean.
func decodeGood(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, err
	}
	return make([]byte, n), nil
}

// The taint survives the in-package wrapper.
func decodeViaWrapper(br *bufio.Reader) ([]byte, error) {
	n, err := readCount(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil
}
`)
	if s := summaryOf(t, res, pkg, "readCount"); len(s.ReturnFlows) != 2 || !s.ReturnFlows[0].Source {
		t.Errorf("readCount returns = %+v, want source on result 0", s.ReturnFlows)
	}
	badHits := 0
	for _, hit := range flowOf(t, res, "decodeBad").Sinks {
		if hit.Taint.FromSource() {
			badHits++
			if len(hit.Taint.Steps()) == 0 {
				t.Errorf("decodeBad sink has no taint path steps")
			}
		}
	}
	if badHits != 1 {
		t.Errorf("decodeBad: %d source sinks, want 1", badHits)
	}
	for _, hit := range flowOf(t, res, "decodeGood").Sinks {
		if hit.Taint.FromSource() {
			t.Errorf("decodeGood: guarded wire count still flagged at %v", hit.Pos)
		}
	}
	viaHits := 0
	for _, hit := range flowOf(t, res, "decodeViaWrapper").Sinks {
		if hit.Taint.FromSource() {
			viaHits++
		}
	}
	if viaHits != 1 {
		t.Errorf("decodeViaWrapper: %d source sinks, want 1 (source through wrapper summary)", viaHits)
	}
}

func TestNarrowingAndProducts(t *testing.T) {
	res, _, _ := compute(t, `package p

import (
	"bufio"
	"encoding/binary"
)

func narrow(br *bufio.Reader) (int, error) {
	delta, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	return int(delta), nil // uint64→int wraps negative
}

func narrowGuarded(br *bufio.Reader) (int, error) {
	delta, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if delta > 1<<30 {
		return 0, err
	}
	return int(delta), nil
}

func product(br *bufio.Reader) ([]float64, error) {
	rows, _ := binary.ReadUvarint(br)
	cols, _ := binary.ReadUvarint(br)
	return make([]float64, rows*cols), nil
}
`)
	var srcNarrow int
	for _, h := range flowOf(t, res, "narrow").Narrowings {
		if h.Taint.FromSource() {
			srcNarrow++
		}
	}
	if srcNarrow != 1 {
		t.Errorf("narrow: %d source narrowings, want 1", srcNarrow)
	}
	for _, h := range flowOf(t, res, "narrowGuarded").Narrowings {
		if h.Taint.FromSource() {
			t.Errorf("narrowGuarded: guarded narrowing still flagged")
		}
	}
	if got := len(flowOf(t, res, "product").Products); got != 1 {
		t.Errorf("product: %d product hits, want 1", got)
	}
}

func TestRecursionTerminates(t *testing.T) {
	res, pkg, _ := compute(t, `package p

// Self-recursive and mutually recursive functions must reach a stable
// summary, with the sink param surviving the cycle.
func walk(depth, n int) []byte {
	if depth == 0 {
		return make([]byte, n)
	}
	return walk(depth-1, n)
}

func pingAlloc(n int) []byte { return pong(n) }
func pong(n int) []byte {
	if n < 0 {
		return pingAlloc(-n)
	}
	return make([]byte, n)
}
`)
	s := summaryOf(t, res, pkg, "walk")
	found := false
	for _, sp := range s.SinkParams {
		if sp.Param == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("walk sinks = %+v, want n (param 1) through the recursion", s.SinkParams)
	}
	if s := summaryOf(t, res, pkg, "pingAlloc"); len(s.SinkParams) == 0 {
		t.Errorf("pingAlloc: sink param lost through mutual recursion")
	}
}

func TestFactRoundTrip(t *testing.T) {
	res, _, _ := compute(t, `package p
func alloc(n int) []byte { return make([]byte, n) }
func clean(a, b int) int { return 42 }
`)
	blob, err := res.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeFact(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, ok := decoded["p.alloc"]; !ok {
		t.Errorf("p.alloc missing from fact: %v", decoded)
	}
	if _, ok := decoded["p.clean"]; ok {
		t.Errorf("empty summary p.clean should not be serialized")
	}
	if s := decoded["p.alloc"]; len(s.SinkParams) != 1 || s.SinkParams[0].Pos.Line == 0 {
		t.Errorf("p.alloc decoded sinks = %+v, want one with a position", s.SinkParams)
	}
}
