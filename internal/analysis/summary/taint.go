package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/vrange"
)

// The taint lattice: a value's taint is the set of origins that may
// flow into it — parameter i (bit i) and the untrusted wire (SourceBit).
// Joins union masks; a bounding comparison against an untainted limit
// kills the whole taint of the compared variable on the safe edge.

const sourceBit = 62

// Step is one hop of a taint path, kept as an immutable chain so
// diagnostics can replay source→sink.
type Step struct {
	prev *Step
	Pos  token.Pos
	What string
}

// Taint is the origin set of one value plus the path that produced it.
type Taint struct {
	mask  uint64
	chain *Step
}

// Tainted reports any origin at all.
func (t Taint) Tainted() bool { return t.mask != 0 }

// FromSource reports an untrusted wire read among the origins.
func (t Taint) FromSource() bool { return t.mask&(1<<sourceBit) != 0 }

// ParamBits lists the parameter indices among the origins, ascending.
func (t Taint) ParamBits() []int {
	var out []int
	for i := 0; i < sourceBit; i++ {
		if t.mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Steps returns the recorded path in source→latest order.
func (t Taint) Steps() []Step {
	var rev []Step
	for s := t.chain; s != nil; s = s.prev {
		rev = append(rev, *s)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (t Taint) step(pos token.Pos, what string) Taint {
	if t.mask == 0 {
		return t
	}
	return Taint{mask: t.mask, chain: &Step{prev: t.chain, Pos: pos, What: what}}
}

func unionT(ts ...Taint) Taint {
	var out Taint
	for _, t := range ts {
		out.mask |= t.mask
		if out.chain == nil {
			out.chain = t.chain
		}
	}
	return out
}

type state map[*types.Var]Taint

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// joinInto merges add into cur (nil cur allowed), returning the merged
// state and whether cur's masks changed. Chains of already-present
// entries are kept so paths stay stable across fixpoint rounds.
func joinInto(cur, add state) (state, bool) {
	if cur == nil {
		return add.clone(), true
	}
	changed := false
	var out state
	for v, t := range add {
		old, ok := cur[v]
		if ok && old.mask|t.mask == old.mask {
			continue
		}
		if out == nil {
			out = cur.clone()
		}
		merged := Taint{mask: old.mask | t.mask, chain: old.chain}
		if merged.chain == nil {
			merged.chain = t.chain
		}
		out[v] = merged
		changed = true
	}
	if !changed {
		return cur, false
	}
	return out, true
}

// SinkHit is one tainted value reaching an allocation-shaped sink.
type SinkHit struct {
	Pos   token.Pos
	What  string
	Taint Taint
	// Callee/CalleeSink are set when the sink is a call argument
	// feeding a summarized sink parameter of the callee.
	Callee     *types.Func
	CalleeSink *SinkParam
}

// NarrowHit is a value-changing integer conversion of a tainted value
// (uint64→int and friends) — sizeoverflow's first rule.
type NarrowHit struct {
	Pos      token.Pos
	From, To types.Type
	Taint    Taint
}

// ProductHit is a multiplication or left shift involving a
// source-tainted operand — sizeoverflow's second rule.
type ProductHit struct {
	Pos   token.Pos
	Op    token.Token
	Taint Taint
}

// Flow is the engine's output for one function.
type Flow struct {
	Decl       *ast.FuncDecl
	Sinks      []SinkHit
	Narrowings []NarrowHit
	Products   []ProductHit

	fset        *token.FileSet
	params      []*types.Var
	resultMasks []uint64
	sinkSeen    map[sinkKey]bool
}

type sinkKey struct {
	pos  token.Pos
	what string
}

// Summary distills the flow into the serializable FuncSummary.
func (f *Flow) Summary() *FuncSummary {
	sum := &FuncSummary{Params: len(f.params)}
	for _, mask := range f.resultMasks {
		rf := ReturnFlow{Source: mask&(1<<sourceBit) != 0}
		rf.Params = Taint{mask: mask}.ParamBits()
		sum.ReturnFlows = append(sum.ReturnFlows, rf)
	}
	seen := map[SinkParam]bool{}
	for _, hit := range f.Sinks {
		what, via := hit.What, ""
		pos := toPosition(f.fset.Position(hit.Pos))
		if hit.CalleeSink != nil {
			what = hit.CalleeSink.What
			via = hit.Callee.Name()
			if hit.CalleeSink.Via != "" {
				via += " → " + hit.CalleeSink.Via
			}
			pos = hit.CalleeSink.Pos
		}
		for _, p := range hit.Taint.ParamBits() {
			sp := SinkParam{Param: p, What: what, Pos: pos, Via: via}
			if !seen[sp] {
				seen[sp] = true
				sum.SinkParams = append(sum.SinkParams, sp)
			}
		}
	}
	return sum
}

// Engine runs edge-sensitive forward taint propagation over one
// function body: a worklist fixpoint over per-block entry states, with
// bounding comparisons killing taint on the guarded edge (the cfg
// builder's successor convention — Succs[0] is the true edge of an if
// condition or for header — supplies the polarity). A final
// deterministic sweep re-walks every reachable block with its fixpoint
// entry state and records sinks, narrowings, products and return flows.
type Engine struct {
	Fset   *token.FileSet
	Info   *types.Info
	Lookup Lookup
	// Ranges is this function's value-range result. A sink whose size
	// expression the interval analysis proved bounded above is not a
	// finding, whatever its taint — the proof subsumes the syntactic
	// clamp heuristics. Nil disables range filtering (the FuncResult
	// query methods are nil-safe and answer "no proof").
	Ranges *vrange.FuncResult

	flow     *Flow
	results  []*types.Var
	record   bool
	condSet  map[ast.Expr]bool // If/For condition expressions (kill sites)
	forConds map[ast.Expr]bool // For conditions whose body allocates
}

// sourceFuncs are the untrusted wire reads: FullName → tainted result
// index. Per-byte reads are excluded — a single byte is bounded by its
// type.
var sourceFuncs = map[string]int{
	"encoding/binary.ReadUvarint": 0,
	"encoding/binary.ReadVarint":  0,
	"encoding/binary.Uvarint":     0,
	"encoding/binary.Varint":      0,
}

// sinkCalls are well-known allocation-driving call arguments:
// FullName → (argument index, description).
var sinkCalls = map[string]struct {
	arg  int
	what string
}{
	"(*bytes.Buffer).Grow":    {0, "bytes.Buffer.Grow size"},
	"(*strings.Builder).Grow": {0, "strings.Builder.Grow size"},
	"io.CopyN":                {2, "io.CopyN length"},
}

// Run analyzes one declaration. Parameters are seeded with their own
// taint bit, so a single run yields both the function's summary (param
// flows) and its source-originated findings (wire taint).
func (e *Engine) Run(decl *ast.FuncDecl) *Flow {
	e.flow = &Flow{
		Decl:     decl,
		fset:     e.Fset,
		params:   paramVars(decl, e.Info),
		sinkSeen: map[sinkKey]bool{},
	}
	e.results = resultVars(decl, e.Info)
	if decl.Type.Results != nil {
		// Count flattened results: a field may declare several names.
		n := 0
		for _, f := range decl.Type.Results.List {
			if len(f.Names) == 0 {
				n++
			} else {
				n += len(f.Names)
			}
		}
		e.flow.resultMasks = make([]uint64, n)
	}
	if decl.Body == nil {
		return e.flow
	}
	e.condSet = map[ast.Expr]bool{}
	e.forConds = map[ast.Expr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			e.condSet[x.Cond] = true
		case *ast.ForStmt:
			if x.Cond != nil {
				e.condSet[x.Cond] = true
				e.forConds[x.Cond] = bodyAllocates(x.Body)
			}
		case *ast.FuncLit:
			return false // literals get their own frame; not descended
		}
		return true
	})

	g := cfg.New(decl.Body)
	seed := state{}
	for i, p := range e.flow.params {
		if p == nil || i >= sourceBit || !isIntegerKind(p.Type()) {
			continue
		}
		seed[p] = Taint{
			mask:  1 << uint(i),
			chain: &Step{Pos: p.Pos(), What: "parameter " + p.Name()},
		}
	}

	in := map[*cfg.Block]state{g.Blocks[0]: seed}
	work := []*cfg.Block{g.Blocks[0]}
	e.record = false
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		s := in[b].clone()
		for _, n := range b.Nodes {
			e.node(n, s)
		}
		cond := e.branchCond(b)
		for i, succ := range b.Succs {
			es := s
			if cond != nil {
				if killed := e.boundedVars(cond, i == 0, s); len(killed) > 0 {
					es = s.clone()
					for _, v := range killed {
						delete(es, v)
					}
				}
			}
			if merged, changed := joinInto(in[succ], es); changed {
				in[succ] = merged
				work = append(work, succ)
			}
		}
	}

	e.record = true
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue // unreachable
		}
		s = s.clone()
		for _, n := range b.Nodes {
			e.node(n, s)
		}
	}
	return e.flow
}

// branchCond returns the block's trailing If/For condition when its two
// successors are that condition's true and false edges.
func (e *Engine) branchCond(b *cfg.Block) ast.Expr {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil
	}
	expr, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok || !e.condSet[expr] {
		return nil
	}
	return expr
}

// node applies one block node to the state (and records findings when
// e.record is set).
func (e *Engine) node(n ast.Node, s state) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		e.assign(x, s)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					e.valueSpec(vs, s)
				}
			}
		}
	case *ast.ReturnStmt:
		e.returnStmt(x, s)
	case *ast.IncDecStmt:
		e.eval(x.X, s)
	case *ast.ExprStmt:
		e.eval(x.X, s)
	case *ast.GoStmt:
		e.eval(x.Call, s)
	case *ast.DeferStmt:
		e.eval(x.Call, s)
	case *ast.SendStmt:
		e.eval(x.Chan, s)
		e.eval(x.Value, s)
	case *ast.RangeStmt:
		e.eval(x.X, s)
		for _, lhs := range []ast.Expr{x.Key, x.Value} {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v := e.varOf(id); v != nil {
					delete(s, v) // fresh per-iteration binding, data not size
				}
			}
		}
	case *ast.LabeledStmt:
		e.node(x.Stmt, s)
	case ast.Expr:
		e.eval(x, s)
		if e.record && e.forConds[x] {
			e.loopBoundSink(x, s)
		}
	}
}

// loopBoundSink flags a for condition comparing against a tainted bound
// when the loop body allocates: the attacker-controlled trip count
// drives unbounded append growth.
func (e *Engine) loopBoundSink(cond ast.Expr, s state) {
	var t Taint
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparison(be.Op) {
			return true
		}
		// An operand with a proved finite upper bound caps the trip
		// count regardless of taint.
		for _, op := range []ast.Expr{be.X, be.Y} {
			if !e.Ranges.Bounded(op) {
				t = unionT(t, e.evalNoRecord(op, s))
			}
		}
		return true
	})
	e.sink(cond.Pos(), "allocating loop bound", t, nil, nil)
}

func (e *Engine) assign(x *ast.AssignStmt, s state) {
	// Evaluate non-ident targets too: arr[i] = v is an index sink.
	for _, lhs := range x.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			e.eval(lhs, s)
		}
	}
	var taints []Taint
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		taints = e.evalMulti(x.Rhs[0], len(x.Lhs), s)
	} else {
		for _, rhs := range x.Rhs {
			taints = append(taints, e.eval(rhs, s))
		}
	}
	for i, lhs := range x.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || i >= len(taints) {
			continue
		}
		v := e.varOf(id)
		if v == nil {
			continue
		}
		t := taints[i]
		if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
			t = unionT(s[v], t) // compound assignment keeps old taint
		}
		e.setVar(s, v, t, x.Pos())
	}
}

func (e *Engine) valueSpec(vs *ast.ValueSpec, s state) {
	var taints []Taint
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		taints = e.evalMulti(vs.Values[0], len(vs.Names), s)
	} else {
		for _, val := range vs.Values {
			taints = append(taints, e.eval(val, s))
		}
	}
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		v := e.varOf(name)
		if v == nil {
			continue
		}
		var t Taint
		if i < len(taints) {
			t = taints[i]
		}
		e.setVar(s, v, t, vs.Pos())
	}
}

func (e *Engine) setVar(s state, v *types.Var, t Taint, pos token.Pos) {
	if t.mask == 0 {
		delete(s, v)
		return
	}
	s[v] = t.step(pos, "flows into "+v.Name())
}

func (e *Engine) returnStmt(x *ast.ReturnStmt, s state) {
	if len(x.Results) == 0 {
		if !e.record {
			return
		}
		for i, rv := range e.results {
			if rv != nil && i < len(e.flow.resultMasks) {
				e.flow.resultMasks[i] |= s[rv].mask
			}
		}
		return
	}
	var taints []Taint
	if len(x.Results) == 1 && len(e.flow.resultMasks) > 1 {
		taints = e.evalMulti(x.Results[0], len(e.flow.resultMasks), s)
	} else {
		for _, r := range x.Results {
			taints = append(taints, e.eval(r, s))
		}
	}
	if !e.record {
		return
	}
	for i, t := range taints {
		if i < len(e.flow.resultMasks) {
			e.flow.resultMasks[i] |= t.mask
		}
	}
}

// eval computes the taint of an expression, recursing through children
// so every sink position in the expression tree is visited.
func (e *Engine) eval(x ast.Expr, s state) Taint {
	switch x := x.(type) {
	case *ast.Ident:
		if v := e.varOf(x); v != nil {
			return s[v]
		}
	case *ast.ParenExpr:
		return e.eval(x.X, s)
	case *ast.BinaryExpr:
		if x.Op == token.LAND || x.Op == token.LOR {
			// Short-circuit: y only evaluates when x is true (&&) or
			// false (||), so x's bounds are in force for y — this is what
			// makes the idiom `a >= uint64(n) || seen[a]` safe.
			e.eval(x.X, s)
			sy := s
			if killed := e.boundedVars(x.X, x.Op == token.LAND, s); len(killed) > 0 {
				sy = s.clone()
				for _, v := range killed {
					delete(sy, v)
				}
			}
			e.eval(x.Y, sy)
			return Taint{}
		}
		l := e.eval(x.X, s)
		r := e.eval(x.Y, s)
		switch x.Op {
		case token.EQL, token.NEQ,
			token.LSS, token.LEQ, token.GTR, token.GEQ:
			return Taint{}
		case token.MUL, token.SHL:
			t := unionT(l, r)
			if e.record && t.FromSource() && !e.productFits(x) {
				e.flow.Products = append(e.flow.Products, ProductHit{Pos: x.OpPos, Op: x.Op, Taint: t})
			}
			return t
		}
		return unionT(l, r)
	case *ast.UnaryExpr:
		t := e.eval(x.X, s)
		switch x.Op {
		case token.ADD, token.SUB, token.XOR:
			return t
		}
		return Taint{}
	case *ast.CallExpr:
		ts := e.evalCall(x, s)
		if len(ts) > 0 {
			return ts[0]
		}
	case *ast.IndexExpr:
		base := e.eval(x.X, s)
		_ = base
		if tv, ok := e.Info.Types[x.Index]; ok && tv.IsType() {
			return Taint{} // generic instantiation, not an index
		}
		idx := e.eval(x.Index, s)
		if e.record && idx.Tainted() && indexableSeq(e.Info.TypeOf(x.X)) &&
			!e.Ranges.SiteProven(x.Index) {
			e.sink(x.Index.Pos(), "index", idx, nil, nil)
		}
	case *ast.IndexListExpr:
		return Taint{} // generic instantiation
	case *ast.SliceExpr:
		e.eval(x.X, s)
		for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
			if bound == nil {
				continue
			}
			t := e.eval(bound, s)
			if e.record && t.Tainted() && !e.Ranges.SiteProven(bound) {
				e.sink(bound.Pos(), "slice bound", t, nil, nil)
			}
		}
	case *ast.StarExpr:
		e.eval(x.X, s)
	case *ast.SelectorExpr:
		// Field read or qualified constant: data, not a tracked size.
		if _, isSel := e.Info.Selections[x]; isSel {
			e.eval(x.X, s)
		}
	case *ast.TypeAssertExpr:
		e.eval(x.X, s)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			e.eval(elt, s)
		}
	case *ast.KeyValueExpr:
		e.eval(x.Key, s)
		e.eval(x.Value, s)
	}
	return Taint{}
}

func (e *Engine) evalNoRecord(x ast.Expr, s state) Taint {
	saved := e.record
	e.record = false
	t := e.eval(x, s)
	e.record = saved
	return t
}

// evalMulti evaluates a tuple-producing expression (call, type assert,
// map index) to n taints.
func (e *Engine) evalMulti(x ast.Expr, n int, s state) []Taint {
	if call, ok := unparen(x).(*ast.CallExpr); ok {
		ts := e.evalCall(call, s)
		for len(ts) < n {
			ts = append(ts, Taint{})
		}
		return ts
	}
	e.eval(x, s)
	return make([]Taint, n)
}

// evalCall handles conversions, builtins, known sources and sinks, and
// summarized callees. It always evaluates the arguments (nested sinks),
// then derives result taints.
func (e *Engine) evalCall(call *ast.CallExpr, s state) []Taint {
	// Builtins first: StaticCallee classifies them as non-calls, but
	// make's size arguments are sinks and min/max transfer taint.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.Info.Uses[id].(*types.Builtin); ok {
			return e.evalBuiltin(b.Name(), call, s)
		}
	}

	callee, dynamic, isCall := callgraph.StaticCallee(e.Info, call)

	if !isCall {
		// Type conversion: taint flows through; a value-changing
		// integer conversion of a tainted value is a narrowing hit.
		if len(call.Args) != 1 {
			return []Taint{{}}
		}
		t := e.eval(call.Args[0], s)
		from := e.Info.TypeOf(call.Args[0])
		to := e.Info.TypeOf(call)
		if e.record && t.Tainted() && isNarrowing(from, to) &&
			!vrange.FitsConversion(e.Ranges.IvOf(call.Args[0]), from, to) {
			e.flow.Narrowings = append(e.flow.Narrowings, NarrowHit{
				Pos: call.Pos(), From: from, To: to, Taint: t,
			})
		}
		return []Taint{t}
	}

	var argTaints []Taint
	args := call.Args
	if callee != nil && callee.Type() != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, isSel := e.Info.Selections[sel]; isSel {
					args = append([]ast.Expr{sel.X}, call.Args...)
				}
			}
		}
	}
	for _, a := range args {
		argTaints = append(argTaints, e.eval(a, s))
	}

	nres := e.resultCount(call)
	results := make([]Taint, nres)
	if callee == nil || dynamic {
		return results
	}
	full := callee.FullName()

	// Well-known allocation sinks. sk.arg indexes call.Args; argTaints
	// may be shifted by a prepended method receiver.
	if sk, ok := sinkCalls[full]; ok && sk.arg < len(call.Args) &&
		!e.Ranges.Bounded(call.Args[sk.arg]) {
		off := len(args) - len(call.Args)
		e.sink(call.Args[sk.arg].Pos(), sk.what, argTaints[sk.arg+off], nil, nil)
	}

	// Untrusted wire sources.
	if idx, ok := sourceFuncs[full]; ok && idx < nres {
		results[idx] = Taint{
			mask:  1 << sourceBit,
			chain: &Step{Pos: call.Pos(), What: "untrusted wire read (" + callee.Name() + ")"},
		}
		return results
	}

	sum := e.lookup(callee)
	if sum == nil {
		return results
	}

	// Callee sink parameters: a tainted argument reaches the callee's
	// allocation unguarded.
	for i := range sum.SinkParams {
		sp := &sum.SinkParams[i]
		if sp.Param >= len(argTaints) {
			continue
		}
		t := argTaints[sp.Param]
		if !t.Tainted() {
			continue
		}
		// A proved-bounded argument cannot drive the callee's
		// allocation unbounded, whatever its origin.
		if sp.Param < len(args) && e.Ranges.Bounded(args[sp.Param]) {
			continue
		}
		pos := call.Pos()
		if sp.Param < len(args) {
			pos = args[sp.Param].Pos()
		}
		e.sink(pos, sp.What, t.step(pos, "passed to "+callee.Name()), callee, sp)
	}

	// Param→result and source→result flows.
	for i, rf := range sum.ReturnFlows {
		if i >= nres {
			break
		}
		var t Taint
		for _, p := range rf.Params {
			if p < len(argTaints) {
				t = unionT(t, argTaints[p])
			}
		}
		if rf.Source {
			t = unionT(t, Taint{
				mask:  1 << sourceBit,
				chain: &Step{Pos: call.Pos(), What: "untrusted wire value returned by " + callee.Name()},
			})
		}
		if t.Tainted() {
			t = t.step(call.Pos(), "returned by "+callee.Name())
		}
		results[i] = t
	}
	return results
}

func (e *Engine) evalBuiltin(name string, call *ast.CallExpr, s state) []Taint {
	var argTaints []Taint
	for _, a := range call.Args {
		argTaints = append(argTaints, e.eval(a, s))
	}
	switch name {
	case "make":
		// make(T, len[, cap]): both size arguments are sinks, unless the
		// range analysis proved the size finite.
		if len(call.Args) > 1 && !e.Ranges.Bounded(call.Args[1]) {
			e.sink(call.Args[1].Pos(), "make size", argTaints[1], nil, nil)
		}
		if len(call.Args) > 2 && !e.Ranges.Bounded(call.Args[2]) {
			e.sink(call.Args[2].Pos(), "make capacity", argTaints[2], nil, nil)
		}
		return []Taint{{}}
	case "min":
		// One bounded argument bounds the result.
		for _, t := range argTaints {
			if !t.Tainted() {
				return []Taint{{}}
			}
		}
		return []Taint{unionT(argTaints...)}
	case "max":
		return []Taint{unionT(argTaints...)}
	case "len", "cap":
		return []Taint{{}}
	}
	return []Taint{{}}
}

// productFits reports that the proved operand intervals make the
// multiplication/shift overflow-free in the expression's type. The raw
// result is recomputed with vrange.BinOp from the operands: the
// engine's own ExprIv for the product is already met with the machine
// range, which would pass FitsType vacuously.
func (e *Engine) productFits(x *ast.BinaryExpr) bool {
	if e.Ranges == nil {
		return false
	}
	raw := vrange.BinOp(x.Op, e.Ranges.IvOf(x.X), e.Ranges.IvOf(x.Y))
	// A finite raw interval is required: the uint64 machine range tops
	// out at the lattice's +inf sentinel, which any unbounded product
	// would "fit" vacuously.
	return raw.BoundedBelow() && raw.BoundedAbove() &&
		vrange.FitsType(raw, e.Info.TypeOf(x))
}

func (e *Engine) lookup(fn *types.Func) *FuncSummary {
	if e.Lookup == nil {
		return nil
	}
	return e.Lookup(fn)
}

func (e *Engine) resultCount(call *ast.CallExpr) int {
	tv, ok := e.Info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len()
	default:
		if t == nil {
			return 0
		}
		return 1
	}
}

func (e *Engine) sink(pos token.Pos, what string, t Taint, callee *types.Func, sp *SinkParam) {
	if !e.record || !t.Tainted() {
		return
	}
	k := sinkKey{pos, what}
	if e.flow.sinkSeen[k] {
		return
	}
	e.flow.sinkSeen[k] = true
	hit := SinkHit{Pos: pos, What: what, Taint: t, Callee: callee}
	if sp != nil {
		cp := *sp
		hit.CalleeSink = &cp
	}
	e.flow.Sinks = append(e.flow.Sinks, hit)
}

// boundedVars returns the variables a condition proves bounded on one
// edge (polarity true = the condition held). A comparison bounds its
// variable side only when the other side is untainted in the current
// state — `if a > b` with both tainted proves nothing.
func (e *Engine) boundedVars(cond ast.Expr, polarity bool, s state) []*types.Var {
	switch x := unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if polarity {
				return append(e.boundedVars(x.X, true, s), e.boundedVars(x.Y, true, s)...)
			}
			return nil
		case token.LOR:
			if !polarity {
				return append(e.boundedVars(x.X, false, s), e.boundedVars(x.Y, false, s)...)
			}
			return nil
		case token.LSS, token.LEQ: // l < r
			if polarity {
				return e.boundSide(x.X, x.Y, s)
			}
			return e.boundSide(x.Y, x.X, s) // !(l<r) ⇒ r ≤ l
		case token.GTR, token.GEQ: // l > r
			if polarity {
				return e.boundSide(x.Y, x.X, s)
			}
			return e.boundSide(x.X, x.Y, s)
		case token.EQL:
			if polarity {
				return append(e.boundSide(x.X, x.Y, s), e.boundSide(x.Y, x.X, s)...)
			}
			return nil
		case token.NEQ:
			if !polarity {
				return append(e.boundSide(x.X, x.Y, s), e.boundSide(x.Y, x.X, s)...)
			}
			return nil
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return e.boundedVars(x.X, !polarity, s)
		}
	}
	return nil
}

// boundSide reports target's variable as bounded when the bounding side
// is untainted.
func (e *Engine) boundSide(target, bound ast.Expr, s state) []*types.Var {
	v := e.varOfExpr(target)
	if v == nil {
		return nil
	}
	if e.evalNoRecord(bound, s).Tainted() {
		return nil
	}
	return []*types.Var{v}
}

// varOfExpr unwraps parens and single-argument conversions to the
// underlying variable: `uint64(nrows) > maxRows` bounds nrows.
func (e *Engine) varOfExpr(x ast.Expr) *types.Var {
	for {
		switch cur := x.(type) {
		case *ast.ParenExpr:
			x = cur.X
		case *ast.CallExpr:
			if _, _, isCall := callgraph.StaticCallee(e.Info, cur); !isCall && len(cur.Args) == 1 {
				x = cur.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			return e.varOf(cur)
		default:
			return nil
		}
	}
}

func (e *Engine) varOf(id *ast.Ident) *types.Var {
	if v, ok := e.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := e.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// bodyAllocates reports whether a loop body grows memory per iteration:
// an append or make anywhere inside (function literals excluded).
func bodyAllocates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if id.Name == "append" || id.Name == "make" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// indexableSeq reports types where a wild index panics: slices, arrays,
// strings — not maps (a missing key is a zero value, not a crash).
func indexableSeq(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArr := u.Elem().Underlying().(*types.Array)
		return isArr
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// isNarrowing reports a value-changing integer conversion: a smaller
// target width, or a signedness flip at the same width (uint64→int
// wraps a huge wire count to a negative index).
func isNarrowing(from, to types.Type) bool {
	fb, ok := basicInt(from)
	if !ok {
		return false
	}
	tb, ok := basicInt(to)
	if !ok {
		return false
	}
	fw, fs := intWidth(fb)
	tw, ts := intWidth(tb)
	if tw < fw {
		return true
	}
	return tw == fw && fs != ts
}

func basicInt(t types.Type) (*types.Basic, bool) {
	if t == nil {
		return nil, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return b, true
}

// intWidth returns (bits, signed); int/uint/uintptr are treated as
// 64-bit, the width on every platform SPARTAN targets.
func intWidth(b *types.Basic) (int, bool) {
	switch b.Kind() {
	case types.Int8:
		return 8, true
	case types.Int16:
		return 16, true
	case types.Int32, types.UntypedRune:
		return 32, true
	case types.Int, types.Int64, types.UntypedInt:
		return 64, true
	case types.Uint8:
		return 8, false
	case types.Uint16:
		return 16, false
	case types.Uint32:
		return 32, false
	case types.Uint, types.Uint64, types.Uintptr:
		return 64, false
	}
	return 64, true
}
