package taintalloc_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/taintalloc"
)

// TestSeedMutation is the analyzer's self-test against the invariant it
// exists to protect: testdata/seedmutation/decode.go is a faithful
// stdlib-only mirror of the real codec decode path, guarded by the
// DecodeLimits discipline. The guarded form must analyze clean, and
// mechanically deleting the limit checks — the seed mutation a careless
// refactor would make — must reproduce taintalloc findings with the
// full source→sink path attached.
func TestSeedMutation(t *testing.T) {
	const fixture = "testdata/seedmutation/decode.go"

	if diags := analyze(t, fixture, nil); len(diags) != 0 {
		t.Fatalf("guarded decoder should be clean, got %d findings: %v", len(diags), messages(diags))
	}

	var deleted int
	diags := analyze(t, fixture, func(f *ast.File) {
		deleted = deleteLimitChecks(f)
	})
	if deleted < 2 {
		t.Fatalf("expected to delete >= 2 limit checks, deleted %d", deleted)
	}
	if len(diags) < 2 {
		t.Fatalf("deleting the limit checks should reproduce >= 2 taintalloc findings, got %d: %v",
			len(diags), messages(diags))
	}
	for _, d := range diags {
		if len(d.Related) < 2 {
			t.Errorf("finding %q should carry a source→sink path, got %d related locations",
				d.Message, len(d.Related))
			continue
		}
		if !strings.Contains(d.Related[0].Message, "untrusted wire read") {
			t.Errorf("finding %q path should start at the wire read, starts with %q",
				d.Message, d.Related[0].Message)
		}
	}
	// The interprocedural sink — the loop bound inside readFullGrowing —
	// must be among the reproduced findings, and its path must end at
	// the callee's allocation site.
	var viaHelper *analysis.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "flows into readFullGrowing") {
			viaHelper = &diags[i]
		}
	}
	if viaHelper == nil {
		t.Fatalf("expected a finding through readFullGrowing, got: %v", messages(diags))
	}
	last := viaHelper.Related[len(viaHelper.Related)-1]
	if !strings.Contains(last.Message, "allocation site") {
		t.Errorf("helper finding should end at the callee allocation site, ends with %q", last.Message)
	}
}

// analyze parses and type-checks the fixture, applies mutate (if any),
// and returns taintalloc's diagnostics.
func analyze(t *testing.T, path string, mutate func(*ast.File)) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if mutate != nil {
		mutate(f)
	}
	files := []*ast.File{f}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("codec", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(taintalloc.Analyzer, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := taintalloc.Analyzer.Run(pass); err != nil {
		t.Fatalf("running taintalloc: %v", err)
	}
	return diags
}

// deleteLimitChecks removes every if-statement whose condition mentions
// the identifier lim — exactly the statements the DecodeLimits
// discipline adds — and reports how many it removed.
func deleteLimitChecks(f *ast.File) int {
	n := 0
	ast.Inspect(f, func(node ast.Node) bool {
		blk, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		kept := blk.List[:0]
		for _, st := range blk.List {
			if ifs, ok := st.(*ast.IfStmt); ok && mentionsLim(ifs.Cond) {
				n++
				continue
			}
			kept = append(kept, st)
		}
		blk.List = kept
		return true
	})
	return n
}

func mentionsLim(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && id.Name == "lim" {
			found = true
		}
		return !found
	})
	return found
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}
