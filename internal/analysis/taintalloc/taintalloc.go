// Package taintalloc implements the wire-taint allocation check, the
// first production analyzer on spartanvet's interprocedural layer
// (callgraph + summary). Any integer derived from an untrusted wire
// read — binary.ReadUvarint and friends, or a function whose summary
// says a wire value flows into its result — is tainted. Taint dies when
// the value passes a bounding comparison against an untainted limit
// (the DecodeLimits discipline from PR 4: `if n > lim.MaxRows { return
// err }`) or is reassigned a trusted value; independently, a sink whose
// size the value-range analysis (internal/analysis/vrange) proves
// bounded above — a minInt/builtin-min clamp with a constant bound, a
// mask or modulo reduction, a refined guard — is not a finding at all.
// Tainted values must not reach:
//
//   - make sizes or capacities,
//   - the bound of a loop that appends or makes per iteration,
//   - bytes.Buffer.Grow / strings.Builder.Grow, io.CopyN lengths,
//   - slice/array/string indexing or slice bounds,
//   - a parameter the callee's summary marks as reaching one of the
//     above unguarded — including through helper chains and, via the
//     unitchecker fact files, across package boundaries.
//
// Findings carry the full source→sink path as related locations, so
// the SARIF report (and CI annotations) show where the value entered
// and every assignment it travelled through.
//
// Scope: the hostile-input decode packages — codec, cart, archive.
// Other wire decoders (fascicle, table, pzipref) predate the
// DecodeLimits discipline and are tracked on the ROADMAP.
package taintalloc

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/summary"
	"repro/internal/analysis/vrange"
)

// Analyzer flags unguarded wire-derived values reaching allocations.
var Analyzer = &analysis.Analyzer{
	Name: "taintalloc",
	Doc:  "taintalloc: report untrusted wire-read integers (varint/length/count decodes) that reach make, append-growing loop bounds, Buffer.Grow, io.CopyN or slice indexing without first passing a bounding comparison (DecodeLimits) or clamp; interprocedural via function summaries",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.PackageBase("codec", "cart", "archive") {
		return nil
	}
	vr := vrange.Compute(pass.Fset, pass.Files, pass.TypesInfo, vrange.FactLookup(pass.Facts))
	res := summary.Compute(pass.Fset, pass.Files, pass.TypesInfo, summary.FactLookup(pass.Facts), vr)

	// Deterministic report order: by function position.
	fns := make([]*types.Func, 0, len(res.Flows))
	for fn := range res.Flows {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		for _, hit := range res.Flows[fn].Sinks {
			if !hit.Taint.FromSource() {
				continue // parameter-only taint is the caller's finding
			}
			pass.Report(diagnose(pass, hit))
		}
	}
	return nil
}

func diagnose(pass *analysis.Pass, hit summary.SinkHit) analysis.Diagnostic {
	var msg string
	if hit.CalleeSink != nil {
		via := hit.Callee.Name()
		if hit.CalleeSink.Via != "" {
			via += " → " + hit.CalleeSink.Via
		}
		msg = fmt.Sprintf(
			"wire-tainted value flows into %s and reaches %s unguarded; compare it against DecodeLimits (or clamp) before the call",
			via, hit.CalleeSink.What)
	} else {
		msg = fmt.Sprintf(
			"wire-tainted value reaches %s unguarded; compare it against DecodeLimits (or clamp) before allocating",
			hit.What)
	}
	d := analysis.Diagnostic{Pos: hit.Pos, Message: msg, Related: TaintPath(hit)}
	return d
}

// TaintPath renders a sink hit's taint chain as related locations in
// source→sink order, appending the callee's allocation site when the
// sink lives in a summarized helper. Shared with sizeoverflow.
func TaintPath(hit summary.SinkHit) []analysis.RelatedLocation {
	rel := StepsPath(hit.Taint)
	if hit.CalleeSink != nil {
		rel = append(rel, analysis.RelatedLocation{
			Pos:      token.NoPos,
			Position: hit.CalleeSink.Pos.ToTokenPosition(),
			Message:  "allocation site (" + hit.CalleeSink.What + ") in " + hit.Callee.Name(),
		})
	}
	return rel
}

// StepsPath converts a taint's recorded steps, dropping consecutive
// duplicates of the same position so paths stay readable.
func StepsPath(t summary.Taint) []analysis.RelatedLocation {
	var rel []analysis.RelatedLocation
	var lastPos token.Pos
	var lastWhat string
	for _, st := range t.Steps() {
		if st.Pos == lastPos && strings.HasPrefix(st.What, "flows into") && strings.HasPrefix(lastWhat, "flows into") {
			continue
		}
		rel = append(rel, analysis.RelatedLocation{Pos: st.Pos, Message: st.What})
		lastPos, lastWhat = st.Pos, st.What
	}
	return rel
}
