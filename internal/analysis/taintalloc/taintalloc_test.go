package taintalloc_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/taintalloc"
)

func TestTaintalloc(t *testing.T) {
	analyzertest.Run(t, "../testdata", taintalloc.Analyzer, "taintalloc")
}
