// Package codec is a stdlib-only mirror of the real
// internal/codec hostile-input decode path, used by the seed-mutation
// self-test: the guarded form below must analyze clean, and deleting
// the DecodeLimits checks (the `if ... lim.X ...` statements) must
// reproduce taintalloc findings. If the real decoder's shape drifts far
// enough that this mirror no longer represents it, update both.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// DecodeLimits caps what a hostile stream can claim, as in the real codec.
type DecodeLimits struct {
	MaxRows       uint64
	MaxModelBytes uint64
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// readFullGrowing reads n bytes in bounded chunks, growing dst as data
// actually arrives — the loop bound n is a sink parameter.
func readFullGrowing(br *bufio.Reader, dst []byte, n int) ([]byte, error) {
	for len(dst) < n {
		chunk := minInt(n-len(dst), 1<<20)
		buf := make([]byte, chunk)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		dst = append(dst, buf...)
	}
	return dst, nil
}

// decodeHeader mirrors DecodeLimited's header reads: row count and
// models-section length, both wire varints, both checked against lim
// before they reach an allocation.
func decodeHeader(br *bufio.Reader, lim DecodeLimits) ([]float64, []byte, error) {
	nrowsU, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("reading row count: %w", err)
	}
	if nrowsU > lim.MaxRows {
		return nil, nil, fmt.Errorf("row count %d exceeds limit %d", nrowsU, lim.MaxRows)
	}
	nrows := int(nrowsU)
	modelsLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("reading models length: %w", err)
	}
	if modelsLen > lim.MaxModelBytes {
		return nil, nil, fmt.Errorf("models length %d exceeds limit %d", modelsLen, lim.MaxModelBytes)
	}
	modelBytes := make([]byte, 0, minInt(int(modelsLen), 1<<20))
	modelBytes, err = readFullGrowing(br, modelBytes, int(modelsLen))
	if err != nil {
		return nil, nil, err
	}
	vals := make([]float64, nrows)
	return vals, modelBytes, nil
}
