// Fixture for the boundedspawn analyzer: package base name "codec" puts
// it in scope, mirroring repro/internal/codec's parallel reconstruct.
package codec

import (
	"runtime"
	"sync"
)

type model struct{ id int }

func (m model) run() {}

// One goroutine per row with nothing gating creation: a WaitGroup
// counts them, it does not bound them.
func badPerRowSpawn(models []model) {
	var wg sync.WaitGroup
	for _, m := range models {
		wg.Add(1)
		go func(m model) { // want `no concurrency bound`
			defer wg.Done()
			m.run()
		}(m)
	}
	wg.Wait()
}

// The engine's idiom: acquire a GOMAXPROCS-sized semaphore before the
// spawn so at most that many goroutines exist.
func goodSemaphore(models []model) {
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, m := range models {
		wg.Add(1)
		sem <- struct{}{}
		go func(m model) {
			defer wg.Done()
			defer func() { <-sem }()
			m.run()
		}(m)
	}
	wg.Wait()
}

// Acquiring the semaphore inside the closure bounds the work, not the
// goroutines: all of them are created first and park on the send.
func badSemInsideGoroutine(models []model) {
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, m := range models {
		wg.Add(1)
		go func(m model) { // want `no concurrency bound`
			sem <- struct{}{}
			defer wg.Done()
			defer func() { <-sem }()
			m.run()
		}(m)
	}
	wg.Wait()
}

// A worker pool sized to the machine is the other sanctioned shape: the
// spawn loop's bound is the worker count, not the input.
func goodWorkerPool(models []model) {
	jobs := make(chan model)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range jobs {
				m.run()
			}
		}()
	}
	for _, m := range models {
		jobs <- m
	}
	close(jobs)
	wg.Wait()
}

// A constant-trip loop spawns a fixed number of goroutines.
func goodConstantLoop(jobs chan model) {
	for i := 0; i < 4; i++ {
		go func() {
			for m := range jobs {
				m.run()
			}
		}()
	}
}

func fireAndForget(m model) {
	go m.run()
}

// The helper's goroutine outlives the call, so calling it per row is an
// unbounded spawn even with no go statement in sight; the concsummary
// fact carries the spawn site into the report.
func badHelperSpawn(models []model) {
	for _, m := range models {
		fireAndForget(m) // want `starts a goroutine that outlives it`
	}
}

func runOneJoined(m model) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.run()
	}()
	wg.Wait()
}

// A helper that joins its goroutine before returning contributes no
// concurrency to the calling loop.
func goodJoinedHelper(models []model) {
	for _, m := range models {
		runOneJoined(m)
	}
}
