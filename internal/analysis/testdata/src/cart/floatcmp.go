// Fixture for the floatcmp analyzer: the package base name "cart" puts
// it in scope, mirroring repro/internal/cart.
package cart

type split struct {
	score float64
	attr  int
}

func tieBreak(a, b split) bool {
	if a.score == b.score { // want `compares floats with ==`
		return a.attr < b.attr
	}
	return a.score < b.score
}

func thresholds(xs []float64) bool {
	if xs[0] != xs[len(xs)-1] { // want `compares floats with !=`
		return true
	}
	var f32 float32
	return float64(f32) == xs[0] // want `compares floats with ==`
}

func mixed(tol float64, n int) bool {
	// One float operand is enough: the int is converted.
	return tol == float64(n) // want `compares floats with ==`
}

func fine(a, b float64, i, j int) bool {
	if i == j { // ints are not flagged
		return true
	}
	if a < b || a > b { // orderings are not flagged
		return false
	}
	s := "x"
	return s != "y" // strings are not flagged
}

func suppressed(a, b float64) bool {
	//spartanvet:ignore floatcmp sentinel comparison against the exact stored value
	return a == b
}
