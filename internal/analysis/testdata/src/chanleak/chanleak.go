// Fixture for the chanleak analyzer: package base name "server" puts it
// in scope — request handlers are where leaked goroutines compound.
package server

// The classic leak: an early return between the spawn and the receive
// parks the sender forever.
func badEarlyReturn(check func() error, slow func() int) (int, error) {
	ch := make(chan int)
	go func() {
		ch <- slow() // want `goroutine can block forever sending on ch`
	}()
	if err := check(); err != nil {
		return 0, err
	}
	return <-ch, nil
}

// Receiving on every path keeps the sender paired.
func goodAlwaysReceives(slow func() int) int {
	ch := make(chan int)
	go func() {
		ch <- slow()
	}()
	return <-ch
}

// A buffer sized to the number of sends lets the sender finish even
// when nobody receives.
func goodBuffered(check func() error, slow func() int) (int, error) {
	ch := make(chan int, 1)
	go func() {
		ch <- slow()
	}()
	if err := check(); err != nil {
		return 0, err
	}
	return <-ch, nil
}

// No receiver anywhere: the goroutine can never complete the send.
func badNoReceiver(slow func() int) {
	ch := make(chan int)
	go func() {
		ch <- slow() // want `no receive anywhere in the function`
	}()
}

// A receive-forever goroutine with no sender and no close.
func badForgottenDone(work func()) error {
	done := make(chan struct{})
	go func() {
		<-done // want `no send or close anywhere in the function`
	}()
	work()
	return nil
}

// A select with a default never parks the goroutine.
func goodNonblockingSend(slow func() int) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- slow():
		default:
		}
	}()
}

// Channels handed to other code are out of the local model.
func goodEscapes(sink func(chan int)) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	sink(ch)
}

// Counterpart in another goroutine: the pair outlives the function
// together.
func goodPairedGoroutines(slow func() int, use func(int)) {
	ch := make(chan int)
	go func() {
		ch <- slow()
	}()
	go func() {
		use(<-ch)
	}()
}

// Range consumer with a close on every path to the exit.
func goodRangeClose(n int, use func(int)) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			use(v)
		}
	}()
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}
