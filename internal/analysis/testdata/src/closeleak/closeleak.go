// Fixture for the closeleak analyzer: open handles must be closed on
// every CFG exit path, returned, stored, or handed to a closer.
package closeleak

import (
	"io"
	"net"
	"os"
)

// An early error return between the open and the Close leaks the
// descriptor.
func badEarlyReturn(path string) ([]byte, error) {
	f, err := os.Open(path) // want `os.Open is opened here but a path returns without closing it`
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	f.Close()
	return buf, nil
}

// The canonical shape: defer the Close right after the error check.
func goodDeferred(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// A defer placed after another early exit covers only the paths that
// reach it.
func badLateDefer(path string, skip bool) error {
	f, err := os.Open(path) // want `os.Open is opened here but a path returns without closing it`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	defer f.Close()
	return nil
}

// Returning the handle transfers ownership to the caller.
func goodReturned(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// closeQuietly is a summarized closer: passing a handle to it
// discharges the obligation.
func closeQuietly(c io.Closer) {
	_ = c.Close()
}

func goodViaCloser(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	closeQuietly(f)
	return nil
}

// reader owns its file: storing the handle in the returned struct
// moves the obligation to reader.Close.
type reader struct {
	f *os.File
}

func (r *reader) Close() error { return r.f.Close() }

func goodStored(path string) (*reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &reader{f: f}, nil
}

// goodReturned has an open result in its effect summary, so its
// callers inherit the obligation — and leak it the same way.
func badViaHelper(path string) error {
	f, err := goodReturned(path) // want `goodReturned \(os.Open\) is opened here but a path returns without closing it`
	if err != nil {
		return err
	}
	var b [4]byte
	if _, err := f.Read(b[:]); err != nil {
		return err
	}
	return f.Close()
}

// Network connections carry the same obligation.
func badConn(addr string) error {
	c, err := net.Dial("tcp", addr) // want `net.Dial is opened here but a path returns without closing it`
	if err != nil {
		return err
	}
	if _, err := c.Write([]byte("ping")); err != nil {
		return err
	}
	return c.Close()
}

// A closure capturing the handle owns it.
func goodClosure(path string) (func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return func() error { return f.Close() }, nil
}

// Falling off the end with the handle still open leaks it too.
func badFallOff(path string) {
	f, err := os.Open(path) // want `os.Open is opened here but a path function ends without closing it`
	if err != nil {
		return
	}
	var b [4]byte
	_, _ = f.Read(b[:])
}
