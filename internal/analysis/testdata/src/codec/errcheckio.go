// Fixture for the errcheckio analyzer: package base name "codec" puts it
// in scope, mirroring repro/internal/codec.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
)

func dropped(w *bufio.Writer, buf *bytes.Buffer, payload []byte) {
	w.Write(payload)                                // want `error from Write is discarded`
	w.WriteString("header")                         // want `error from WriteString is discarded`
	w.WriteByte(0)                                  // want `error from WriteByte is discarded`
	w.Flush()                                       // want `error from Flush is discarded`
	buf.Write(payload)                              // want `error from Write is discarded`
	io.Copy(w, buf)                                 // want `error from io.Copy is discarded`
	binary.Write(w, binary.LittleEndian, uint32(1)) // want `error from encoding/binary.Write is discarded`
	json.NewEncoder(w).Encode(payload)              // want `error from Encode is discarded`
}

func checked(w *bufio.Writer, payload []byte) error {
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return nil
}

func explicitDiscard(w *bufio.Writer, payload []byte) {
	// Assigning to blank is a reviewed, intentional discard.
	_, _ = w.Write(payload)
	_ = w.Flush()
}

func deferredClose(c io.Closer) {
	// Deferred calls are exempt: the error has nowhere to go.
	defer c.Close()
}

func notIO(payload []byte) {
	record(payload) // non-io callee names are not flagged
}

func record([]byte) error { return nil }

func suppressed(w *bufio.Writer) {
	w.WriteByte(0) //spartanvet:ignore errcheckio buffered writer, error surfaces at Flush
}
