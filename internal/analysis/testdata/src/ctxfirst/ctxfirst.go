// Fixture for the ctxfirst analyzer: the package base name "core" puts
// it in scope, mirroring repro/internal/core.
package core

import "context"

type options struct {
	theta float64
}

// Exported functions with a mid-signature context are flagged.
func CompressWith(w options, ctx context.Context) error { // want `takes context.Context as parameter 2`
	return ctx.Err()
}

func BuildAll(a, b int, ctx context.Context, tol float64) error { // want `takes context.Context as parameter 3`
	return ctx.Err()
}

// Context first is the required shape.
func CompressContext(ctx context.Context, w options) error {
	return ctx.Err()
}

// Unexported helpers may order parameters freely.
func runPhase(name string, ctx context.Context) error {
	return ctx.Err()
}

// Exported functions without a context are fine.
func Compress(w options) error {
	return nil
}

// Methods follow the same rule.
type pipeline struct {
	opts options
}

func (p *pipeline) RunContext(ctx context.Context, n int) error {
	return ctx.Err()
}

func (p *pipeline) Scan(n int, ctx context.Context) error { // want `takes context.Context as parameter 2`
	return ctx.Err()
}

// Storing a context in a struct is always flagged, exported or not.
type job struct {
	ctx  context.Context // want `struct field stores a context.Context`
	name string
}

type Task struct {
	Ctx context.Context // want `struct field stores a context.Context`
}

// Latching only the error (the treeBuilder pattern) is the sanctioned
// alternative and is not flagged.
type builder struct {
	ctxErr error
}

func use(j job, t Task, b builder) (context.Context, error) {
	_ = b
	return t.Ctx, j.ctx.Err()
}
