// Fixture for the deferloop analyzer: defers inside per-row loops
// accumulate until the function returns. Declares package fascicle so
// the scoped analyzer applies.
package fascicle

import "os"

// perRowDefer is the motivating bug: one open file per row, none closed
// until the whole table is processed.
func perRowDefer(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want "defer inside a loop"
	}
	return nil
}

// hoisted is the fixed shape: the loop body is its own function, so the
// defer releases per iteration.
func hoisted(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// topLevelDefer is fine: registered once, before any loop.
func topLevelDefer(path string, rows []int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	total := 0
	for _, r := range rows {
		total += r
	}
	return total, nil
}

// deferAfterLoop is fine: the block follows the loop, it is not on the
// cycle.
func deferAfterLoop(paths []string) error {
	n := 0
	for range paths {
		n++
	}
	f, err := os.Open(paths[0])
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// gotoLoop: an irregular loop built from a label and goto — invisible
// to a syntactic for-loop check, but a cycle in the CFG.
func gotoLoop(paths []string) error {
	i := 0
again:
	if i < len(paths) {
		f, err := os.Open(paths[i])
		if err != nil {
			return err
		}
		defer f.Close() // want "defer inside a loop"
		i++
		goto again
	}
	return nil
}

// whileStyle: `for {` with a conditional break is still a cycle.
func whileStyle(next func() (*os.File, bool)) {
	for {
		f, ok := next()
		if !ok {
			break
		}
		defer f.Close() // want "defer inside a loop"
	}
}
