// Fixture for the detorder analyzer: package base name "archive" puts
// it in scope, mirroring the segmented writer's encoding paths.
package archive

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Map keys written in iteration order: two runs of the same table
// produce different bytes.
func badDictOrder(w *bytes.Buffer, dict map[string]uint32) {
	for k := range dict {
		w.WriteString(k) // want `depends on map iteration order`
	}
}

// The sorted-keys idiom is the sanitizer: collect, sort, then encode.
func goodDictOrder(w *bytes.Buffer, dict map[string]uint32) {
	keys := make([]string, 0, len(dict))
	for k := range dict {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.WriteString(k)
	}
}

// Keyed stores inside a range are order-independent; encoding the
// collected state through sorted keys stays clean.
func goodKeyedCollect(w *bytes.Buffer, counts map[string]int) {
	total := 0
	for _, n := range counts {
		total += n // commutative integer accumulator
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(total))
	w.Write(b[:])
}

// A wall-clock reading encoded into the stream.
func badTimestamp(w io.Writer) error {
	now := time.Now().Unix()
	return binary.Write(w, binary.LittleEndian, now) // want `depends on the wall clock`
}

// The shared global rand source differs between runs.
func badSharedRand(w *bytes.Buffer) {
	id := rand.Uint64()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	w.Write(b[:]) // want `depends on an unseeded random source`
}

// A source seeded from the options is a pure function of the seed.
func goodSeededRand(w *bytes.Buffer, seed int64) {
	r := rand.New(rand.NewSource(seed))
	id := r.Uint64()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	w.Write(b[:])
}

// XOR of per-key FNV hashes is commutative: the canonical zone-map
// fingerprint idiom, order-independent by construction.
func goodXorFingerprint(w *bytes.Buffer, dict map[string]uint32) {
	var fp uint64
	for k := range dict {
		h := fnv.New64a()
		h.Write([]byte(k))
		fp ^= h.Sum64()
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fp)
	w.Write(b[:])
}

// A digest fed in iteration order is order-dependent; the taint rides
// the local hash state and the function's result summary, surfacing
// where the fingerprint is encoded.
func badHashedOrder(dict map[string]uint32) uint64 {
	h := fnv.New64a()
	for k := range dict {
		h.Write([]byte(k))
	}
	return h.Sum64()
}

func badFingerprintFooter(w *bytes.Buffer, dict map[string]uint32) {
	fp := badHashedOrder(dict)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], fp)
	w.Write(b[:]) // want `depends on map iteration order`
}

// nowMillis hides the clock behind a helper; the effect summary makes
// the flow visible at the caller's write.
func nowMillis() int64 {
	return time.Now().UnixMilli()
}

func badViaHelper(w io.Writer) error {
	stamp := nowMillis()
	return binary.Write(w, binary.LittleEndian, stamp) // want `depends on the wall clock`
}

// An address formatted into the stream differs per process.
func badAddrVerb(w *bytes.Buffer, v *int) {
	fmt.Fprintf(w, "%p", v) // want `formatted into the output stream`
}

// Last-writer-wins selection over a map picks an arbitrary winner...
func badLastWriter(w *bytes.Buffer, dict map[string]uint32) {
	var last string
	for k := range dict {
		last = k
	}
	w.WriteString(last) // want `depends on map iteration order`
}

// ...but a strict comparison on the range key breaks ties
// deterministically: the argmax idiom.
func goodTieBroken(w *bytes.Buffer, dict map[string]uint32) {
	var best string
	for k := range dict {
		if best == "" || k < best {
			best = k
		}
	}
	w.WriteString(best)
}

// Console output is diagnostics, not archive bytes.
func goodConsole(dict map[string]uint32) {
	for k := range dict {
		fmt.Println(k)
	}
}
