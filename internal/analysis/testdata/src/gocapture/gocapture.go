// Fixture for the gocapture analyzer: package base name "core" puts it
// in scope. Go 1.22 loop variables are per-iteration, so only state the
// loop shares across iterations should be flagged.
package core

import "sync"

func process(b []byte)        {}
func sink(i int)              {}
func sinkRow(i int, b []byte) {}

// A cursor declared outside the loop and rewritten each iteration is
// one variable every goroutine shares.
func badSharedCursor(rows [][]byte) {
	var cur []byte
	var wg sync.WaitGroup
	for i := range rows {
		cur = rows[i]
		wg.Add(1)
		go func() { // want `go closure captures cur`
			defer wg.Done()
			process(cur)
		}()
	}
	wg.Wait()
}

// Pre-1.22-style loop: the index is assigned, not declared, so all
// iterations share it.
func badLegacyIndex(n int) {
	var i int
	var wg sync.WaitGroup
	for i = 0; i < n; i++ {
		wg.Add(1)
		go func() { // want `go closure captures i`
			defer wg.Done()
			sink(i)
		}()
	}
	wg.Wait()
}

// Range with = assigns pre-declared variables: both are shared cells.
func badRangeAssign(rows [][]byte) {
	var i int
	var row []byte
	var wg sync.WaitGroup
	for i, row = range rows {
		wg.Add(1)
		go func() { // want `go closure captures i` `go closure captures row`
			defer wg.Done()
			sinkRow(i, row)
		}()
	}
	wg.Wait()
}

// Variables declared by the loop are per-iteration since Go 1.22.
func goodPerIteration(rows [][]byte) {
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(i)
		}()
	}
	wg.Wait()
}

// Passing the value as an argument snapshots it at spawn time.
func goodArgument(rows [][]byte) {
	var cur []byte
	var wg sync.WaitGroup
	for i := range rows {
		cur = rows[i]
		wg.Add(1)
		go func(cur []byte) {
			defer wg.Done()
			process(cur)
		}(cur)
	}
	wg.Wait()
}

// A goroutine joined inside the same iteration cannot observe the next
// iteration's write.
func goodJoinedEachIteration(rows [][]byte) {
	var buf []byte
	for i := range rows {
		buf = rows[i]
		done := make(chan struct{})
		go func() {
			process(buf)
			close(done)
		}()
		<-done
	}
}

// Capturing loop-invariant outer state is fine.
func goodInvariant(rows [][]byte, prefix []byte) {
	var wg sync.WaitGroup
	for range rows {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(prefix)
		}()
	}
	wg.Wait()
}
