// Fixture for the hotalloc analyzer: hint-less allocations in
// row-bounded loops. Declared as package codec so the analyzer's
// package scope applies.
package codec

func sink(...interface{}) {}

// appendNoHint grows a zero-capacity slice once per row.
func appendNoHint(rows []int) []int {
	var out []int
	for _, r := range rows {
		out = append(out, r*2) // want "created without a capacity hint"
	}
	return out
}

// appendHinted pre-sizes the slice: amortized zero reallocations.
func appendHinted(rows []int) []int {
	out := make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r*2)
	}
	return out
}

// rehinted starts hint-less but is re-made with capacity before the
// loop; only the hinted definition reaches the append.
func rehinted(rows []int) []int {
	var out []int
	out = make([]int, 0, len(rows))
	for _, r := range rows {
		out = append(out, r)
	}
	return out
}

// mapNoHint rehashes as it fills.
func mapNoHint(rows []int) map[int]bool {
	seen := make(map[int]bool)
	for _, r := range rows {
		seen[r] = true // want "created without a size hint"
	}
	return seen
}

// mapHinted passes the expected count to make.
func mapHinted(rows []int) map[int]bool {
	seen := make(map[int]bool, len(rows))
	for _, r := range rows {
		seen[r] = true
	}
	return seen
}

// makeInLoop allocates a fresh hint-less buffer every iteration.
func makeInLoop(rows []int) {
	for _, r := range rows {
		buf := make([]byte, 0) // want "hint-less slice on every iteration"
		buf = append(buf, byte(r))
		sink(buf)
	}
}

// constBound loops a fixed eight times: not row-bounded, growth is
// cheap and bounded.
func constBound() []int {
	var out []int
	for i := 0; i < 8; i++ {
		out = append(out, i)
	}
	return out
}

// dataBoundFor counts to a runtime bound: equivalent to ranging over
// the rows.
func dataBoundFor(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "created without a capacity hint"
	}
	return out
}

// countdown iterates n times even though the condition's bound is the
// constant 0: the trip count comes from the non-constant start.
func countdown(n int) []int {
	var out []int
	for i := n; i > 0; i-- {
		out = append(out, i) // want "created without a capacity hint"
	}
	return out
}

// constCountdown runs a fixed eight times: constant start against a
// constant bound is not row-bounded.
func constCountdown() []int {
	var out []int
	for i := 8; i > 0; i-- {
		out = append(out, i)
	}
	return out
}

// createdInLoop builds a small per-iteration slice; the creation is
// inside the loop, so the growth resets every pass and is not flagged.
func createdInLoop(rows []int) {
	for _, r := range rows {
		pair := []int{r}
		pair = append(pair, r*2)
		sink(pair)
	}
}

// paramSlice appends to a caller-owned slice: the caller may well have
// pre-sized it, so the analyzer stays quiet.
func paramSlice(dst []int, rows []int) []int {
	for _, r := range rows {
		dst = append(dst, r)
	}
	return dst
}
