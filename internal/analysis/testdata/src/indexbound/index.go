// Fixtures for the indexbound analyzer: wire-derived indexes and slice
// bounds must be provably within len of the sequence they index. The
// package clause says codec so the scoped analyzer runs.
package codec

import "encoding/binary"

func badIndex(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	return xs[v] // want "wire-derived value used as index"
}

func goodIndex(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	if v >= uint64(len(xs)) {
		return 0
	}
	return xs[v]
}

func badSliceBound(xs []byte, data []byte) []byte {
	n, _ := binary.Uvarint(data)
	return xs[:n] // want "wire-derived value used as slice bound"
}

func goodSliceBound(xs []byte, data []byte) []byte {
	n, _ := binary.Uvarint(data)
	if n > uint64(len(xs)) {
		return nil
	}
	return xs[:n]
}

// pick indexes its parameter: the obligation travels to callers via
// the IndexParam summary; pick itself is not a finding.
func pick(xs []int, i int) int { return xs[i] }

func guardedCaller(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	if v >= uint64(len(xs)) {
		return 0
	}
	return pick(xs, int(v))
}

func wildCaller(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	return pick(xs, int(v)) // want "flows into pick"
}

// The decoder shape the analyzer must accept: size and index both from
// the wire, validated against each other before indexing.
func dictDecode(data []byte) uint64 {
	dlenU, n := binary.Uvarint(data)
	dlen := int(dlenU)
	if dlen <= 0 || dlen > 1<<16 {
		return 0
	}
	dict := make([]uint64, dlen)
	ixU, _ := binary.Uvarint(data[n:])
	ix := int(ixU)
	if ix < 0 || ix >= dlen {
		return 0
	}
	return dict[ix]
}
