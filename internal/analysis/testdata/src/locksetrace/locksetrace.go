// Fixture for the locksetrace analyzer: package base name "core" puts
// it in scope, mirroring repro/internal/core's parallel outlier scan.
package core

import "sync"

// Loop-spawned goroutines incrementing a shared counter with no lock:
// every iteration's instance races with the others.
func badLoopCounter(rows []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			total += r // want `total is written in a spawned goroutine`
		}(r)
	}
	wg.Wait()
	return total
}

// The same shape with both sides holding one mutex is clean.
func goodGuardedCounter(rows []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mu.Lock()
			total += r
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return total
}

// Per-goroutine slots: each instance writes a disjoint element through
// its own index, the engine's sharding idiom.
func goodShardedSlots(rows []int) []int {
	out := make([]int, len(rows))
	var wg sync.WaitGroup
	for i, r := range rows {
		wg.Add(1)
		go func(i, r int) {
			defer wg.Done()
			out[i] = r * 2
		}(i, r)
	}
	wg.Wait()
	return out
}

// The spawning function reading in the window between spawn and join
// races with the goroutine's writes.
func badReadBeforeJoin(rows []int) int {
	sum := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range rows {
			sum += r // want `sum is written in a spawned goroutine`
		}
	}()
	peek := sum
	wg.Wait()
	return sum + peek
}

// Reading only after wg.Wait() is ordered after the writes.
func goodJoinFirst(rows []int) int {
	sum := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, r := range rows {
			sum += r
		}
	}()
	wg.Wait()
	return sum
}

type agg struct {
	mu sync.Mutex
	n  int
}

func (a *agg) addLocked(v int) {
	a.mu.Lock()
	a.n += v
	a.mu.Unlock()
}

func (a *agg) addUnlocked(v int) {
	a.n += v
}

// Writes through a helper whose summary shows the mutation is guarded.
func goodHelperGuarded(rows []int, a *agg) {
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a.addLocked(r)
		}(r)
	}
	wg.Wait()
}

// The same call shape where the helper's write is unguarded: the
// concsummary fact carries the write out of the helper.
func badHelperUnlocked(rows []int, a *agg) {
	var wg sync.WaitGroup
	for _, r := range rows {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a.addUnlocked(r) // want `a is written in a spawned goroutine`
		}(r)
	}
	wg.Wait()
}
