// Fixture for the metricname analyzer. The local Registry mirrors
// repro/internal/obs.Registry's registration surface; the analyzer keys
// on the receiver type name, so no import is needed.
package metrics

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string, labelNames ...string) Counter { return Counter{} }
func (r *Registry) Gauge(name, help string, labelNames ...string) Gauge     { return Gauge{} }
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) Histogram {
	return Histogram{}
}

func valid(r *Registry) {
	r.Counter("spartan_http_requests_total", "requests", "route", "code")
	r.Gauge("spartan_in_flight", "in flight")
	r.Histogram("spartan_latency_seconds", "latency", nil, "route")
	r.Counter("spartan:aggregated:rate", "recording-rule style name is legal")
}

func invalidNames(r *Registry) {
	r.Counter("spartan-http-requests", "dashes are illegal")  // want `not a valid Prometheus identifier`
	r.Gauge("0starts_with_digit", "leading digit is illegal") // want `not a valid Prometheus identifier`
	r.Counter("", "empty name")                               // want `not a valid Prometheus identifier`
	r.Counter("__reserved_total", "reserved prefix")          // want `reserved __ prefix`
	r.Histogram("spartan latency", "space is illegal", nil)   // want `not a valid Prometheus identifier`
}

func invalidLabels(r *Registry) {
	r.Counter("spartan_label_fixture_a_total", "bad label", "http-route")  // want `not a valid Prometheus label`
	r.Counter("spartan_label_fixture_b_total", "reserved", "__name")       // want `reserved __ prefix`
	r.Histogram("spartan_label_fixture_seconds", "le collides", nil, "le") // want `collides with the histogram bucket label`
}

func inconsistent(r *Registry) {
	r.Counter("spartan_dup_total", "first", "route")
	r.Counter("spartan_dup_total", "second", "route")        // same schema: fine
	r.Counter("spartan_dup_total", "third", "route", "code") // want `re-registered with labels \[route code\]`
	r.Gauge("spartan_dup_gauge", "first", "a")
	r.Gauge("spartan_dup_gauge", "second", "b") // want `re-registered with labels \[b\]`
}

func dynamic(r *Registry, name string) {
	r.Counter(name, "dynamic names cannot be verified") // want `not a constant string`
}

func dynamicLabels(r *Registry, labels []string) {
	// Slice expansion hides the schema; the name is still validated.
	r.Counter("spartan_dynamic_labels_total", "help", labels...)
}

const metricPrefix = "spartan_"

func constExpr(r *Registry) {
	// Constant expressions are resolved before validation.
	r.Counter(metricPrefix+"const_expr_total", "built from consts")
	r.Counter(metricPrefix+"bad näme", "still validated") // want `not a valid Prometheus identifier`
}

func suppressed(r *Registry) {
	//spartanvet:ignore metricname legacy dashboard name kept for continuity
	r.Counter("legacy-dashboard-name", "kept for dashboard continuity")
}
