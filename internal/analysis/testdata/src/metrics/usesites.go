// Fixture for the metricname analyzer's use-site arity check: every
// Inc/Add/Set/Observe traceable to a registration must pass exactly the
// declared number of label values. The method shapes mirror
// repro/internal/obs (Inc takes labels only; Add/Set/Observe take a
// value first).
package metrics

func (Counter) Inc(labelValues ...string)                  {}
func (Counter) Add(v float64, labelValues ...string)       {}
func (Gauge) Set(v float64, labelValues ...string)         {}
func (Gauge) Add(v float64, labelValues ...string)         {}
func (Histogram) Observe(v float64, labelValues ...string) {}

func directChain(r *Registry) {
	r.Counter("spartan_http_rejected_total", "rejections", "reason").Inc("overload")
	r.Counter("spartan_http_rejected_total", "rejections", "reason").Inc() // want `declares 1 label\(s\) \[reason\] but Inc passes 0 label value\(s\)`
}

func boundVariable(r *Registry) {
	c := r.Counter("spartan_usesite_bound_total", "bound", "reason")
	c.Inc("limits")
	c.Add(2, "limits")
	c.Inc()                     // want `declares 1 label\(s\) \[reason\] but Inc passes 0 label value\(s\)`
	c.Add(2)                    // want `declares 1 label\(s\) \[reason\] but Add passes 0 label value\(s\)`
	c.Inc("limits", "overload") // want `declares 1 label\(s\) \[reason\] but Inc passes 2 label value\(s\)`
}

func gaugeAndHistogram(r *Registry) {
	g := r.Gauge("spartan_usesite_in_flight", "no labels")
	g.Set(1)
	g.Set(1, "extra") // want `declares 0 label\(s\) \[\] but Set passes 1 label value\(s\)`
	h := r.Histogram("spartan_usesite_seconds", "latency", nil, "route")
	h.Observe(0.5, "/archive")
	h.Observe(0.5) // want `declares 1 label\(s\) \[route\] but Observe passes 0 label value\(s\)`
}

type daemonMetrics struct {
	rejected Counter
	inFlight Gauge
}

func structFields(r *Registry) {
	m := &daemonMetrics{
		rejected: r.Counter("spartan_usesite_struct_total", "rejections", "reason"),
	}
	m.inFlight = r.Gauge("spartan_usesite_struct_gauge", "in flight")
	m.rejected.Inc("overload")
	m.rejected.Inc() // want `declares 1 label\(s\) \[reason\] but Inc passes 0 label value\(s\)`
	m.inFlight.Set(3)
}

func ambiguousRebind(r *Registry, which bool) {
	// Two registrations with different schemas feed one variable; the
	// analyzer cannot know which is live, so use sites are exempt.
	c := r.Counter("spartan_usesite_rebind_a_total", "first", "reason")
	if which {
		c = r.Counter("spartan_usesite_rebind_b_total", "second")
	}
	c.Inc()
}

func untraceable(c Counter, vals []string) {
	// A parameter has no visible registration; slice expansion hides the
	// arity. Neither is checked.
	c.Inc()
	c.Inc(vals...)
}
