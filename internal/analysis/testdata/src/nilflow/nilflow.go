// Fixture for the nilflow analyzer: uses of a value on paths where the
// paired err != nil check proved it invalid.
package nilflow

import "errors"

type conn struct{ open bool }

func (c *conn) Close() error { return nil }

func dial() (*conn, error)   { return nil, errors.New("down") }
func redial() (*conn, error) { return &conn{}, nil }
func logf(...interface{})    {}

// lookup returning a nil map with a nil error is fine: reading a nil
// map is well defined, so only pointer results are held to the rule.
func lookup() (map[string]int, error) { return nil, nil }

// derefInBranch closes the connection inside the branch that just
// proved the dial failed: c is nil there.
func derefInBranch() error {
	c, err := dial()
	if err != nil {
		c.Close() // want "inside the err != nil branch"
		return err
	}
	return c.Close()
}

// fallThrough logs the error but keeps going; the deref below then runs
// on the failure path too.
func fallThrough() {
	c, err := dial()
	if err != nil {
		logf("dial failed:", err)
	}
	c.Close() // want "after an err != nil branch that falls through"
}

// earlyReturn is the idiomatic shape: the error branch leaves the
// function, so the deref below only runs on success.
func earlyReturn() error {
	c, err := dial()
	if err != nil {
		return err
	}
	return c.Close()
}

// guardedInBranch re-checks c before touching it; the analyzer trusts
// the explicit nil test.
func guardedInBranch() error {
	c, err := dial()
	if err != nil {
		if c != nil {
			c.Close()
		}
		return err
	}
	return c.Close()
}

// reassigned replaces c after the fall-through branch, so the deref
// uses the fresh value, not the one the check invalidated.
func reassigned() {
	c, err := dial()
	if err != nil {
		logf("retrying:", err)
	}
	c, err = redial()
	if err != nil {
		return
	}
	c.Close()
}

// continueInLoop: the error branch jumps to the next iteration, which
// does not fall into the deref.
func continueInLoop(n int) {
	for i := 0; i < n; i++ {
		c, err := dial()
		if err != nil {
			continue
		}
		c.Close()
	}
}

// nilNil returns no value and no error: the caller's `if err != nil`
// check passes and the subsequent deref panics.
func nilNil(ok bool) (*conn, error) {
	if !ok {
		return nil, nil // want "return nil, nil"
	}
	return dial()
}

// sentinelError is the accepted way to spell "no result": the caller
// can distinguish it from success.
var errNotFound = errors.New("not found")

func sentinelError(ok bool) (*conn, error) {
	if !ok {
		return nil, errNotFound
	}
	return dial()
}

// interfaceResult returning nil, nil is not flagged: a nil interface is
// an ordinary "absent" value in this codebase (e.g. ParsePredicate).
type predicate interface{ Eval() bool }

func interfaceResult(ok bool) (predicate, error) {
	if !ok {
		return nil, nil
	}
	return nil, errNotFound
}
