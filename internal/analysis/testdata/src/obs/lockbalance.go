// Fixture for the lockbalance analyzer: package base name "obs" puts it
// in scope, mirroring repro/internal/obs.
package obs

import "sync"

type registry struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items []int
}

func (r *registry) deferredPair() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.items = append(r.items, 1)
}

func (r *registry) manualPair() {
	r.mu.Lock() // want `released by a non-deferred Unlock`
	r.items = append(r.items, 1)
	r.mu.Unlock()
}

func (r *registry) neverReleased() {
	r.mu.Lock() // want `never released in this function`
	r.items = append(r.items, 1)
}

func (r *registry) readPath() []int {
	r.rw.RLock() // want `released by a non-deferred RUnlock`
	out := append([]int(nil), r.items...)
	r.rw.RUnlock()
	return out
}

func (r *registry) deferredRead() []int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return append([]int(nil), r.items...)
}

func (r *registry) deferredClosure() {
	r.mu.Lock()
	defer func() {
		r.items = nil
		r.mu.Unlock()
	}()
}

func (r *registry) distinctMutexes() {
	r.mu.Lock() // want `r.mu.Lock is never released`
	defer r.rw.Unlock()
}

// A release registered through a helper closure bound to a local
// variable is still deferred — the shape the analyzer used to miss.
func (r *registry) deferredHelperClosure() {
	r.mu.Lock()
	cleanup := func() {
		r.items = nil
		r.mu.Unlock()
	}
	defer cleanup()
}

// A deferred helper that never releases does not balance the acquire.
func (r *registry) helperClosureNoRelease() {
	r.mu.Lock() // want `never released in this function`
	noop := func() { r.items = nil }
	defer noop()
}

// A helper rebound between binding and defer is too ambiguous to trust
// as the deferred release.
func (r *registry) helperClosureRebound() {
	r.mu.Lock() // want `released by a non-deferred Unlock`
	cleanup := func() { r.mu.Unlock() }
	cleanup = func() { r.items = nil }
	defer cleanup()
}

func (r *registry) suppressedHandOver() {
	//spartanvet:ignore lockbalance lock is handed to release()
	r.mu.Lock()
	go r.release()
}

func (r *registry) release() {
	r.items = nil
	r.mu.Unlock()
}
