// Fixture for the spanfinish analyzer. The local Span/Trace pair mirrors
// repro/internal/obs: the analyzer keys on the *Span result type of
// Start/StartChild, so fixtures need no imports.
package pipeline

type Span struct{ done bool }

func (s *Span) Finish()                 { s.done = true }
func (s *Span) StartChild(string) *Span { return &Span{} }

type Trace struct{}

func (t *Trace) Start(string) *Span { return &Span{} }

func deferred(tr *Trace) {
	sp := tr.Start("compress")
	defer sp.Finish()
}

func neverFinished(tr *Trace) {
	sp := tr.Start("compress") // want `span sp is started but never finished`
	_ = sp
}

func discarded(tr *Trace) {
	tr.Start("compress") // want `result of Start is discarded`
}

func blankAssigned(tr *Trace) {
	_ = tr.Start("compress") // want `assigned to _`
}

func escapingReturn(tr *Trace, fail bool) error {
	sp := tr.Start("compress")
	if fail {
		return errFail // want `return may leave span sp unfinished`
	}
	sp.Finish()
	return nil
}

func finishedOnAllPaths(tr *Trace, fail bool) error {
	sp := tr.Start("compress")
	if fail {
		sp.Finish()
		return errFail
	}
	sp.Finish()
	return nil
}

func reusedVariable(tr *Trace, fail bool) {
	sp := tr.Start("phase1")
	sp.Finish()
	sp = tr.Start("phase2") // want `span sp is started but never finished`
	if fail {
		_ = sp
	}
}

func finishedInClosure(tr *Trace) func() {
	sp := tr.Start("compress")
	return func() { sp.Finish() }
}

func deferredClosure(tr *Trace) {
	sp := tr.Start("compress")
	defer func() { sp.Finish() }()
}

func childSpans(tr *Trace) {
	root := tr.Start("root")
	defer root.Finish()
	child := root.StartChild("child") // want `span child is started but never finished`
	_ = child
}

func suppressedHandoff(tr *Trace) *Span {
	//spartanvet:ignore spanfinish ownership moves to the caller
	sp := tr.Start("compress")
	return sp
}

type errString string

func (e errString) Error() string { return string(e) }

var errFail error = errString("fail")
