// Fixture for the errcheckio analyzer's narrow server mode: only
// Flush/Close on buffered writers and io-package functions are flagged
// here, not every writeish method.
package server

import (
	"bufio"
	"compress/gzip"
	"io"
)

// flushDropped loses whatever is still sitting in the bufio buffer.
func flushDropped(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("body") // best-effort write: not flagged in server
	bw.Flush()             // want `error from bufio.Writer.Flush is discarded`
}

// closeDropped: gzip.Writer.Close writes the trailer; dropping its
// error truncates the compressed stream.
func closeDropped(w io.Writer) {
	zw := gzip.NewWriter(w)
	zw.Write([]byte("body")) // best-effort write: not flagged in server
	zw.Close()               // want `error from gzip.Writer.Close is discarded`
}

// copyDropped truncates a streamed archive silently.
func copyDropped(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want `error from io.Copy is discarded`
}

// flushChecked is the expected shape.
func flushChecked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("body"); err != nil {
		return err
	}
	return bw.Flush()
}

// explicitDiscard is a reviewed decision, not an oversight.
func explicitDiscard(w io.Writer) {
	bw := bufio.NewWriter(w)
	_ = bw.Flush()
}

// localCloser is a project type, not a buffered writer from the io
// tree; its Close is out of the narrow net.
type localCloser struct{}

func (localCloser) Close() error { return nil }

func closeLocal() {
	var c localCloser
	c.Close()
}
