// Fixture for the sizeoverflow analyzer (declares package cart so the
// scoped analyzer runs). Covers the delta-accumulation bug shape from
// the real model decoder: huge wire varints narrowed to int, and
// products of wire counts.
package cart

import (
	"bufio"
	"encoding/binary"
	"errors"
)

var errRange = errors.New("out of range")

func rowDeltaUnguarded(br *bufio.Reader) (int, error) {
	delta, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	return int(delta), nil // want "wire-tainted uint64 narrowed to int without a range check"
}

func rowDeltaGuarded(br *bufio.Reader) (int, error) {
	delta, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if delta > 1<<30 {
		return 0, errRange
	}
	return int(delta), nil
}

func codeNarrow(br *bufio.Reader) (int32, error) {
	code, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	return int32(code), nil // want "wire-tainted uint64 narrowed to int32 without a range check"
}

// Widening with the same signedness is value-preserving: clean.
func widen(br *bufio.Reader) (uint64, error) {
	var b [1]byte
	if _, err := br.Read(b[:]); err != nil {
		return 0, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if n > 1<<20 {
		return 0, errRange
	}
	return n * 2, nil // bounded first: no product finding either
}

func matrixUnguarded(br *bufio.Reader) ([]float64, error) {
	rows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	cols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]float64, rows*cols), nil // want "size arithmetic \(\*\) on a wire-tainted operand may overflow"
}

func matrixGuarded(br *bufio.Reader) ([]float64, error) {
	rows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	cols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if rows > 1<<20 || cols > 1<<16 {
		return nil, errRange
	}
	return make([]float64, rows*cols), nil
}

func shiftUnguarded(br *bufio.Reader) (uint64, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	return n << 8, nil // want "size arithmetic \(<<\) on a wire-tainted operand may overflow"
}

// Masks bound both factors without any comparison: the taint survives
// the &, but the interval product provably fits uint64 — clean under
// the range-aware rules where the old clamp heuristic would flag it.
func maskedProduct(br *bufio.Reader) ([]float64, error) {
	rows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	cols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]float64, (rows&0xfff)*(cols&0xfff)), nil
}

// Same for narrowing: n&0xffff fits int, no range check needed.
func maskedNarrow(br *bufio.Reader) (int, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	return int(n & 0xffff), nil
}
