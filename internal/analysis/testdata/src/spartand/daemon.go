// Fixture for the errcheckio analyzer's spartand scope: the daemon
// shares server's narrow rules — buffered Flush/Close and io-package
// functions only. (Package clause names the scope; the real daemon is
// package main under cmd/spartand.)
package spartand

import (
	"bufio"
	"io"
	"net/http"
)

// shutdownFlush loses the buffered tail of the access log.
func shutdownFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	bw.WriteString("bye") // best-effort write: not flagged in the daemon
	bw.Flush()            // want `error from bufio.Writer.Flush is discarded`
}

// streamBody truncates a proxied archive body silently.
func streamBody(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want `error from io.Copy is discarded`
}

// bestEffortClose on an interface receiver (resp.Body) is routine
// daemon hygiene, not a flush point: clean.
func bestEffortClose(resp *http.Response) {
	resp.Body.Close()
}

// explicitDiscard is a reviewed decision, not an oversight.
func explicitDiscard(w io.Writer) {
	bw := bufio.NewWriter(w)
	_ = bw.Flush()
}
