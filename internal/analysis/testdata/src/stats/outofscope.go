// Fixture proving floatcmp stays scoped: "stats" is not a tolerance
// package, so raw float equality here is not this analyzer's business.
package stats

func mean(a, b float64) bool { return a == b }
