// Fixture for the taintalloc analyzer (declares package codec so the
// scoped analyzer runs). Mirrors the shape of the real decode path:
// varint counts, DecodeLimits guards, clamp helpers, allocation
// helpers whose parameters are summarized sinks.
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
)

type DecodeLimits struct {
	MaxRows uint64
	MaxCols uint64
}

var errTooBig = errors.New("too big")

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// zeroFill's n bounds an appending loop: a summarized sink parameter.
func zeroFill(n int) []float64 {
	out := []float64{}
	for len(out) < n {
		out = append(out, 0)
	}
	return out
}

// readCount launders the wire read through a helper: its summary says
// the wire flows into result 0.
func readCount(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}

func decodeUnguarded(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want "wire-tainted value reaches make size unguarded"
}

func decodeGuarded(br *bufio.Reader, lim DecodeLimits) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > lim.MaxRows {
		return nil, errTooBig
	}
	return make([]byte, n), nil
}

func decodeClamped(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, 0, minInt(int(n), 1<<12)), nil
}

// The taint survives the readCount wrapper (interprocedural source).
func decodeViaWrapper(br *bufio.Reader) ([]byte, error) {
	n, err := readCount(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want "wire-tainted value reaches make size unguarded"
}

// The sink lives inside the helper (interprocedural sink).
func decodeViaHelper(br *bufio.Reader, lim DecodeLimits) ([]float64, []float64, error) {
	rows, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, err
	}
	bad := zeroFill(int(rows)) // want "wire-tainted value flows into zeroFill and reaches allocating loop bound unguarded"
	if rows > lim.MaxRows {
		return nil, nil, errTooBig
	}
	good := zeroFill(int(rows))
	return bad, good, nil
}

func decodeLoop(br *bufio.Reader) ([]int32, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	out := []int32{}
	for i := uint64(0); i < count; i++ { // want "wire-tainted value reaches allocating loop bound unguarded"
		out = append(out, int32(i))
	}
	return out, nil
}

func decodeGrow(br *bufio.Reader, buf *bytes.Buffer) error {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	buf.Grow(int(n)) // want "wire-tainted value reaches bytes.Buffer.Grow size unguarded"
	return nil
}

func decodeIndex(br *bufio.Reader, dict []string) (string, error) {
	ix, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	return dict[ix], nil // want "wire-tainted value reaches index unguarded"
}

func decodeIndexGuarded(br *bufio.Reader, dict []string) (string, error) {
	ix, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if ix >= uint64(len(dict)) {
		return "", errTooBig
	}
	return dict[ix], nil
}

// Short-circuit guard inside one condition: seen[a] only evaluates
// when the left disjunct is false, i.e. a is in range — the matIdx
// idiom from the real codec.
func decodeShortCircuit(br *bufio.Reader, seen []bool) error {
	a, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if a >= uint64(len(seen)) || seen[a] {
		return errTooBig
	}
	seen[a] = true
	return nil
}

// A mask reduction proves the size finite with no comparison and no
// clamp helper anywhere — only the interval analysis clears this.
func decodeMasked(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return make([]byte, n&0xffff), nil
}

// Reassignment to a trusted value ends suspicion.
func decodeReassigned(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	return make([]byte, n), nil
}
