// Fixture for the wgbalance analyzer: WaitGroup discipline around
// `go func` spawn sites.
package wgbalance

import "sync"

func work(int) {}

// fanOut is the correct shape: Add dominates the spawn, Done is a
// deferred first statement.
func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// addInBranch under-counts: on the even path the goroutine starts
// without a matching Add, so Wait can return early.
func addInBranch(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			wg.Add(1)
		}
		go func(i int) { // want "Add does not dominate"
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// addInBranchRange puts the branch-guarded Add and the spawn in the
// same range body: the even path still spawns uncounted. (Regression:
// a BlockOf that resolved range-body statements to the range header
// made the Add look same-block and earlier, masking this.)
func addInBranchRange(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		if it%2 == 1 {
			wg.Add(1)
		}
		go func(it int) { // want "Add does not dominate"
			defer wg.Done()
			work(it)
		}(it)
	}
	wg.Wait()
}

// fanOutRange is the correct range-loop shape: the unconditional Add
// precedes the spawn in the same body block.
func fanOutRange(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			work(it)
		}(it)
	}
	wg.Wait()
}

// noDeferDone loses the Done whenever work panics: Wait deadlocks.
func noDeferDone(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "Done is not deferred"
			work(i)
			wg.Done()
		}(i)
	}
	wg.Wait()
}

// lateDefer registers the Done after a conditional return: the early
// exit never posts it.
func lateDefer(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			if it < 0 {
				return
			}
			defer wg.Done() // want "registered after a branch"
			work(it)
		}(it)
	}
	wg.Wait()
}

// missingAdd: the WaitGroup is local and no Add exists anywhere, so
// Wait returns immediately while the goroutine still runs.
func missingAdd() {
	var wg sync.WaitGroup
	go func() { // want "no wg.Add precedes the spawn"
		defer wg.Done()
		work(0)
	}()
	wg.Wait()
}

// callerCounted takes the WaitGroup from its caller: the Add
// legitimately lives there, so the spawn is not flagged.
func callerCounted(wg *sync.WaitGroup, i int) {
	go func() {
		defer wg.Done()
		work(i)
	}()
}

// channelBased goroutines without a WaitGroup are out of scope.
func channelBased(c chan error) {
	go func() {
		c <- nil
	}()
}
