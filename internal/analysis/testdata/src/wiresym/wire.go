// Fixtures for the wiresym analyzer: writer/reader pairs must agree on
// the widths, order and endianness of the fields they put on the wire.
// The package clause says codec so the scoped analyzer runs.
package codec

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Symmetric pair: uvarint then a 4-byte little-endian field. Clean.
func writeTrailer(bw *bufio.Writer, n uint32) error {
	if err := putUvarint(bw, uint64(n)); err != nil {
		return err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], n)
	_, err := bw.Write(buf[:4])
	return err
}

func readTrailer(br *bufio.Reader) (uint32, error) {
	if _, err := binary.ReadUvarint(br); err != nil {
		return 0, err
	}
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:4]), nil
}

// Width asymmetry: the writer emits 4 bytes, the reader consumes 2.
func writeHeader(bw *bufio.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := bw.Write(buf[:4])
	return err
}

func readHeader(br *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:2]); err != nil { // want "wire-format asymmetry"
		return 0, err
	}
	return uint32(binary.LittleEndian.Uint16(buf[:2])), nil
}

// Order asymmetry: count then flag on the way out, flag then count on
// the way back.
func writeFrame(bw *bufio.Writer, count uint64, flag byte) error {
	if err := putUvarint(bw, count); err != nil {
		return err
	}
	return bw.WriteByte(flag)
}

func readFrame(br *bufio.Reader) (uint64, byte, error) {
	flag, err := br.ReadByte() // want "wire-format asymmetry"
	if err != nil {
		return 0, 0, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, err
	}
	return count, flag, nil
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}
