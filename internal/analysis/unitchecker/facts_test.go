package unitchecker_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/sarif"
)

// writeCrossPackageModule seeds a scratch module whose hostile-input
// bug spans a package boundary: codec reads a varint from the wire and
// passes it, unguarded, to wire.AllocN — whose make sink only a
// function summary travelling through the fact channel can reveal.
func writeCrossPackageModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("wire/wire.go", `package wire

// AllocN allocates a buffer for n items.
func AllocN(n int) []byte { return make([]byte, n) }
`)
	write("codec/codec.go", `package codec

import (
	"bufio"
	"encoding/binary"

	"fixture/wire"
)

// Decode reads a length then allocates for it without any limit check:
// the finding spartanvet must produce through the cross-package facts.
func Decode(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	return wire.AllocN(int(n)), nil
}
`)
	return dir
}

// TestGoVetCrossPackageFacts proves the vetx fact path end to end: the
// real `go vet -vettool` pipeline runs funcsummary over the wire
// dependency (VetxOnly), hands its .vetx to the codec unit through
// PackageVetx, and taintalloc reports the flow into wire.AllocN with
// the callee's allocation site in the path.
func TestGoVetCrossPackageFacts(t *testing.T) {
	tool := buildTool(t)
	dir := writeCrossPackageModule(t)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet should fail on the seeded cross-package flow; output:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "flows into AllocN") || !strings.Contains(text, "taintalloc") {
		t.Fatalf("expected a taintalloc finding through wire.AllocN, got:\n%s", text)
	}
	// The text report must render the path, ending at the allocation
	// site inside the other package.
	if !strings.Contains(text, "untrusted wire read") {
		t.Errorf("finding should show the wire-read source step, got:\n%s", text)
	}
	if !strings.Contains(text, "allocation site (make size) in AllocN") ||
		!strings.Contains(text, "wire/wire.go") {
		t.Errorf("finding should point at the allocation site in wire/wire.go, got:\n%s", text)
	}
}

// TestStandaloneCrossPackageSARIF runs the aggregated standalone mode
// over the same module and checks the SARIF log carries the taint path
// as relatedLocations, each step labelled and the last one landing in
// the dependency's source file.
func TestStandaloneCrossPackageSARIF(t *testing.T) {
	tool := buildTool(t)
	dir := writeCrossPackageModule(t)

	cmd := exec.Command(tool, "-sarif", "./codec")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("standalone -sarif: %v", err)
	}
	if err := sarif.Validate(out); err != nil {
		t.Fatalf("emitted SARIF does not validate: %v\n%s", err, out)
	}
	var log sarif.Log
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	var hit *sarif.Result
	for i, r := range log.Runs[0].Results {
		if r.RuleID == "taintalloc" {
			hit = &log.Runs[0].Results[i]
		}
	}
	if hit == nil {
		t.Fatalf("no taintalloc result in SARIF log:\n%s", out)
	}
	if len(hit.RelatedLocations) < 2 {
		t.Fatalf("taintalloc result should carry the source→sink path, got %d relatedLocations", len(hit.RelatedLocations))
	}
	first := hit.RelatedLocations[0]
	if first.Message == nil || !strings.Contains(first.Message.Text, "untrusted wire read") {
		t.Errorf("path should start at the wire read, got %+v", first)
	}
	last := hit.RelatedLocations[len(hit.RelatedLocations)-1]
	if last.Message == nil || !strings.Contains(last.Message.Text, "allocation site") {
		t.Errorf("path should end at the allocation site, got %+v", last)
	}
	if !strings.HasSuffix(last.PhysicalLocation.ArtifactLocation.URI, "wire/wire.go") {
		t.Errorf("allocation site should be in wire/wire.go, got %q", last.PhysicalLocation.ArtifactLocation.URI)
	}
}
