package unitchecker

// The machine-readable output formats: a flat JSON diagnostic array for
// scripting, and a SARIF 2.1.0 log for GitHub code scanning. Both carry
// suppressed findings explicitly (SARIF as result suppressions, JSON as
// a boolean) so a dashboard can distinguish "clean" from "silenced".

import (
	"encoding/json"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/sarif"
)

// jsonDiag is the -json output element.
type jsonDiag struct {
	File          string    `json:"file"`
	Line          int       `json:"line"`
	Column        int       `json:"column"`
	Analyzer      string    `json:"analyzer"`
	Message       string    `json:"message"`
	Suppressed    bool      `json:"suppressed,omitempty"`
	Justification string    `json:"justification,omitempty"`
	Related       []jsonRel `json:"related,omitempty"`
}

// jsonRel is one step of a finding's source→sink path.
type jsonRel struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// marshalJSON renders the diagnostics as an indented JSON array with a
// trailing newline. An empty run prints [] rather than null.
func marshalJSON(diags []Diag) ([]byte, error) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		jd := jsonDiag{
			File:          filepath.ToSlash(d.Position.Filename),
			Line:          d.Position.Line,
			Column:        d.Position.Column,
			Analyzer:      d.Analyzer,
			Message:       d.Message,
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
		}
		for _, rel := range d.Related {
			jd.Related = append(jd.Related, jsonRel{
				File:    filepath.ToSlash(rel.Position.Filename),
				Line:    rel.Position.Line,
				Column:  rel.Position.Column,
				Message: rel.Message,
			})
		}
		out = append(out, jd)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// buildSARIF assembles one single-run SARIF log: a rule per registered
// analyzer (plus the synthetic staleignore rule), a result per
// diagnostic, and inSource suppressions for silenced findings.
func buildSARIF(progname string, analyzers []*analysis.Analyzer, diags []Diag) *sarif.Log {
	var rules []sarif.Rule
	index := map[string]int{}
	addRule := func(name, short, full string) {
		if _, ok := index[name]; ok {
			return
		}
		index[name] = len(rules)
		r := sarif.Rule{
			ID:            name,
			Name:          name,
			DefaultConfig: &sarif.Configuration{Level: "warning"},
		}
		if short != "" {
			r.ShortDescription = &sarif.Multiformat{Text: short}
		}
		if full != "" && full != short {
			r.FullDescription = &sarif.Multiformat{Text: full}
		}
		rules = append(rules, r)
	}
	for _, a := range analyzers {
		short, _, _ := strings.Cut(a.Doc, "\n")
		addRule(a.Name, short, a.Doc)
	}
	addRule(analysis.StaleIgnoreName,
		"flag //spartanvet:ignore directives that no longer suppress anything",
		"An ignore directive whose finding has been fixed is a latent hole:\nit silences the next real finding on that line. Delete it.")

	results := make([]sarif.Result, 0, len(diags))
	for _, d := range diags {
		// Diagnostics can only come from registered analyzers or the
		// stale-directive check, but keep the log valid regardless.
		addRule(d.Analyzer, "", "")
		i := index[d.Analyzer]
		res := sarif.Result{
			RuleID:    d.Analyzer,
			RuleIndex: &i,
			Level:     "warning",
			Message:   sarif.Message{Text: d.Message},
		}
		if d.Position.Filename != "" && d.Position.Line >= 1 {
			res.Locations = []sarif.Location{{PhysicalLocation: sarif.PhysicalLocation{
				ArtifactLocation: sarif.ArtifactLocation{URI: filepath.ToSlash(d.Position.Filename)},
				Region:           &sarif.Region{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}}
		}
		// The taint analyzers attach the source→sink path; each step
		// becomes a labelled related location so code-scanning UIs can
		// render the flow.
		for _, rel := range d.Related {
			if rel.Position.Filename == "" || rel.Position.Line < 1 {
				continue
			}
			res.RelatedLocations = append(res.RelatedLocations, sarif.Location{
				PhysicalLocation: sarif.PhysicalLocation{
					ArtifactLocation: sarif.ArtifactLocation{URI: filepath.ToSlash(rel.Position.Filename)},
					Region:           &sarif.Region{StartLine: rel.Position.Line, StartColumn: rel.Position.Column},
				},
				Message: &sarif.Message{Text: rel.Message},
			})
		}
		if d.Suppressed {
			res.Suppressions = []sarif.Suppression{{Kind: "inSource", Justification: d.Justification}}
		}
		results = append(results, res)
	}

	return &sarif.Log{
		Schema:  sarif.SchemaURI,
		Version: sarif.Version,
		Runs: []sarif.Run{{
			Tool:    sarif.Tool{Driver: sarif.Driver{Name: progname, Rules: rules}},
			Results: results,
		}},
	}
}
