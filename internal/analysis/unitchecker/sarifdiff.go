// SARIF diff mode: `spartanvet -sarifdiff base.sarif head.sarif`
// compares two aggregated reports and fails (exit 2) when head contains
// findings absent from base. CI builds base.sarif from the PR's merge
// base in a worktree and head.sarif from the checkout, so a PR can only
// land findings it also fixes — pre-existing ones don't block, new ones
// do.
//
// Results are keyed by (ruleId, artifact URI, message text), not line
// numbers: unrelated edits above a pre-existing finding move its line
// but must not make it "new". Suppressed results (//spartanvet:ignore)
// are ignored on both sides — a justified suppression is not a finding.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/analysis/sarif"
)

// diffKey identifies a finding across runs of the tool.
type diffKey struct {
	rule    string
	uri     string
	message string
}

// runSarifDiff implements the -sarifdiff mode. Exit codes: 0 when head
// introduces nothing, 2 when it does, 1 on malformed input.
func runSarifDiff(progname string, paths []string, stdout, stderr io.Writer) int {
	if len(paths) != 2 {
		fmt.Fprintf(stderr, "%s: -sarifdiff wants exactly two arguments: base.sarif head.sarif\n", progname)
		return 1
	}
	base, err := loadSarifResults(paths[0])
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}
	head, err := loadSarifResults(paths[1])
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}

	baseline := map[diffKey]bool{}
	for _, r := range base {
		baseline[keyOf(r)] = true
	}
	var fresh []sarif.Result
	for _, r := range head {
		if !baseline[keyOf(r)] {
			fresh = append(fresh, r)
		}
	}
	if len(fresh) == 0 {
		fmt.Fprintf(stdout, "%s: no new findings (%d in head, all present in base)\n", progname, len(head))
		return 0
	}
	sort.Slice(fresh, func(i, j int) bool {
		ki, kj := keyOf(fresh[i]), keyOf(fresh[j])
		if ki.uri != kj.uri {
			return ki.uri < kj.uri
		}
		if ki.rule != kj.rule {
			return ki.rule < kj.rule
		}
		return ki.message < kj.message
	})
	fmt.Fprintf(stdout, "%s: %d new finding(s) not present in base:\n", progname, len(fresh))
	for _, r := range fresh {
		fmt.Fprintf(stdout, "  %s: [%s] %s\n", position(r), r.RuleID, r.Message.Text)
	}
	return 2
}

// loadSarifResults reads one SARIF log and returns its unsuppressed
// results. Decoding is lenient (no DisallowUnknownFields): the base log
// may come from a different revision of the tool with a richer or
// poorer model, and the diff only needs the keying fields.
func loadSarifResults(path string) ([]sarif.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var log sarif.Log
	if err := json.Unmarshal(data, &log); err != nil {
		return nil, fmt.Errorf("%s: not a SARIF log: %v", path, err)
	}
	var out []sarif.Result
	for _, run := range log.Runs {
		for _, r := range run.Results {
			if len(r.Suppressions) > 0 {
				continue
			}
			out = append(out, r)
		}
	}
	return out, nil
}

func keyOf(r sarif.Result) diffKey {
	k := diffKey{rule: r.RuleID, message: r.Message.Text}
	if len(r.Locations) > 0 {
		k.uri = r.Locations[0].PhysicalLocation.ArtifactLocation.URI
	}
	return k
}

// position renders a human-readable file:line for a result, best effort.
func position(r sarif.Result) string {
	if len(r.Locations) == 0 {
		return "<no location>"
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.Region != nil && loc.Region.StartLine > 0 {
		return fmt.Sprintf("%s:%d", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
	return loc.ArtifactLocation.URI
}
