package unitchecker

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/sarif"
)

// writeSarifLog marshals a minimal log holding the given results.
func writeSarifLog(t *testing.T, path string, results []sarif.Result) {
	t.Helper()
	log := sarif.Log{
		Schema:  sarif.SchemaURI,
		Version: sarif.Version,
		Runs: []sarif.Run{{
			Tool:    sarif.Tool{Driver: sarif.Driver{Name: "spartanvet"}},
			Results: results,
		}},
	}
	data, err := log.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

func result(rule, uri, msg string, line int) sarif.Result {
	return sarif.Result{
		RuleID:  rule,
		Message: sarif.Message{Text: msg},
		Locations: []sarif.Location{{PhysicalLocation: sarif.PhysicalLocation{
			ArtifactLocation: sarif.ArtifactLocation{URI: uri},
			Region:           &sarif.Region{StartLine: line, StartColumn: 1},
		}}},
	}
}

// TestSarifDiff drives the -sarifdiff mode through the same entry point
// the CLI uses: unchanged findings pass even when their line moved,
// new findings fail with exit 2, and suppressed results never count.
func TestSarifDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.sarif")
	head := filepath.Join(dir, "head.sarif")

	preexisting := result("floatcmp", "cart/split.go", "raw float equality on a tolerance", 10)
	writeSarifLog(t, base, []sarif.Result{preexisting})

	t.Run("no new findings", func(t *testing.T) {
		moved := preexisting
		moved.Locations[0].PhysicalLocation.Region = &sarif.Region{StartLine: 99, StartColumn: 1}
		writeSarifLog(t, head, []sarif.Result{moved})
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifdiff", base, head}, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
		if !strings.Contains(stdout.String(), "no new findings") {
			t.Errorf("stdout missing summary: %s", stdout.String())
		}
	})

	t.Run("new finding fails", func(t *testing.T) {
		fresh := result("taintalloc", "codec/decode.go", "wire-read value flows into make", 42)
		writeSarifLog(t, head, []sarif.Result{preexisting, fresh})
		var stdout, stderr bytes.Buffer
		code := run("spartanvet", []string{"-sarifdiff", base, head}, nil, &stdout, &stderr)
		if code != 2 {
			t.Fatalf("exit %d, want 2\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
		out := stdout.String()
		if !strings.Contains(out, "1 new finding(s)") ||
			!strings.Contains(out, "codec/decode.go:42") ||
			!strings.Contains(out, "[taintalloc]") {
			t.Errorf("diff output missing the new finding: %s", out)
		}
		if strings.Contains(out, "cart/split.go") {
			t.Errorf("pre-existing finding listed as new: %s", out)
		}
	})

	t.Run("suppressed results do not count", func(t *testing.T) {
		suppressed := result("errcheckio", "archive/write.go", "error from Flush is discarded", 7)
		suppressed.Suppressions = []sarif.Suppression{{Kind: "inSource", Justification: "best effort"}}
		writeSarifLog(t, head, []sarif.Result{preexisting, suppressed})
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifdiff", base, head}, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, want 0 (suppressed finding must not gate)\nstdout: %s", code, stdout.String())
		}
	})

	t.Run("usage and IO errors", func(t *testing.T) {
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifdiff", base}, nil, &stdout, &stderr); code != 1 {
			t.Errorf("one argument: exit %d, want 1", code)
		}
		if code := run("spartanvet", []string{"-sarifdiff", base, filepath.Join(dir, "missing.sarif")}, nil, &stdout, &stderr); code != 1 {
			t.Errorf("missing head file: exit %d, want 1", code)
		}
	})
}
