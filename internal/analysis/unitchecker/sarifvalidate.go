// SARIF validate mode: `spartanvet -sarifvalidate report.sarif ...`
// runs every named file through the strict sarif.Validate decoder (no
// unknown fields, required fields and enumerations checked) and fails
// on the first malformed log. CI runs it on the report it is about to
// upload to code scanning, so a drift between the emitter and the
// SARIF 2.1.0 model breaks the build instead of silently producing a
// log GitHub rejects or misrenders.
package unitchecker

import (
	"fmt"
	"io"
	"os"

	"repro/internal/analysis/sarif"
)

// runSarifValidate implements the -sarifvalidate mode. Exit codes: 0
// when every file is a valid SARIF 2.1.0 log, 1 otherwise.
func runSarifValidate(progname string, paths []string, stdout, stderr io.Writer) int {
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "%s: -sarifvalidate wants at least one report file\n", progname)
		return 1
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", progname, err)
			return 1
		}
		if err := sarif.Validate(data); err != nil {
			fmt.Fprintf(stderr, "%s: %s: %v\n", progname, path, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %s is a valid SARIF %s log\n", progname, path, sarif.Version)
	}
	return 0
}
