package unitchecker

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/sarif"
)

// TestSarifValidate drives the -sarifvalidate mode through the CLI
// entry point: a well-formed emitted log passes, a log with fields
// outside the model fails, and usage errors exit 1.
func TestSarifValidate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.sarif")
	writeSarifLog(t, good, []sarif.Result{
		result("locksetrace", "core/core.go", "total is written in a spawned goroutine", 12),
	})

	t.Run("valid log passes", func(t *testing.T) {
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifvalidate", good}, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "valid SARIF") {
			t.Errorf("stdout missing confirmation: %s", stdout.String())
		}
	})

	t.Run("unknown field fails", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.sarif")
		data, err := os.ReadFile(good)
		if err != nil {
			t.Fatal(err)
		}
		drifted := bytes.Replace(data, []byte(`"version"`), []byte(`"futureField": 1, "version"`), 1)
		if err := os.WriteFile(bad, drifted, 0o666); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifvalidate", bad}, nil, &stdout, &stderr); code != 1 {
			t.Fatalf("exit %d, want 1\nstdout: %s", code, stdout.String())
		}
		if !strings.Contains(stderr.String(), "bad.sarif") {
			t.Errorf("stderr should name the failing file: %s", stderr.String())
		}
	})

	t.Run("usage and IO errors", func(t *testing.T) {
		var stdout, stderr bytes.Buffer
		if code := run("spartanvet", []string{"-sarifvalidate"}, nil, &stdout, &stderr); code != 1 {
			t.Errorf("no arguments: exit %d, want 1", code)
		}
		if code := run("spartanvet", []string{"-sarifvalidate", filepath.Join(dir, "missing.sarif")}, nil, &stdout, &stderr); code != 1 {
			t.Errorf("missing file: exit %d, want 1", code)
		}
	})
}
