package unitchecker

// Standalone mode: instead of one vet.cfg unit per invocation, resolve
// package patterns through `go list -json -deps -export` — which
// compiles what it must and hands back export data for every dependency
// — and analyze all matched packages in one process. This is what lets
// `spartanvet -sarif ./...` aggregate the whole module into a single
// SARIF log for upload, something the per-unit vet protocol cannot do.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output standalone mode
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// runStandalone analyzes every package matched by patterns and reports
// in the selected format. Test files are not loaded (they belong to the
// vet protocol's test variants); the mode covers the shipped sources.
//
// All packages share one in-memory fact store. `go list -deps` streams
// dependencies before their importers, so by the time a package is
// analyzed every module dependency's facts are already present:
// matched packages export facts as part of their full run, and
// dependency-only module packages get a facts-only pass first.
func runStandalone(progname string, patterns []string, analyzers []*analysis.Analyzer, opts *options, stdout, stderr io.Writer) int {
	pkgs, exports, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}

	cwd, _ := os.Getwd()
	facts := analysis.NewFactStore()
	producers := factProducers(analyzers)
	var all []Diag
	broken := 0
	for _, p := range pkgs {
		files := make([]string, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, name))
		}
		cfg := &Config{
			ImportPath:  p.ImportPath,
			Dir:         cwd,
			GoFiles:     files,
			PackageFile: exports,
		}
		if p.DepOnly {
			// Not matched by the patterns: only its facts matter. A broken
			// dependency costs downstream precision, not the run.
			if len(producers) > 0 {
				if err := checkFactsOnly(cfg, producers, opts, facts); err != nil {
					fmt.Fprintf(stderr, "%s: %s (facts skipped): %v\n", progname, p.ImportPath, err)
				}
			}
			continue
		}
		diags, err := checkPackage(cfg, analyzers, opts, facts)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %s: %v\n", progname, p.ImportPath, err)
			broken++
			continue
		}
		all = append(all, diags...)
	}
	if broken > 0 {
		return 1
	}
	return report(progname, analyzers, all, opts, stdout, stderr)
}

// loadPackages shells out to the go command for pattern expansion and
// export data, returning every non-standard package in the dependency
// closure — dependencies before importers, matched packages flagged by
// DepOnly=false — plus an import-path → export-file map covering the
// whole closure.
func loadPackages(patterns []string) (pkgs []*listPackage, exports map[string]string, err error) {
	args := append([]string{"list", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) > 0 {
			return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, msg)
		}
		return nil, nil, fmt.Errorf("go list %v: %v", patterns, err)
	}

	exports = map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && len(p.GoFiles) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, exports, nil
}
