package unitchecker

// Standalone mode: instead of one vet.cfg unit per invocation, resolve
// package patterns through `go list -json -deps -export` — which
// compiles what it must and hands back export data for every dependency
// — and analyze all matched packages in one process. This is what lets
// `spartanvet -sarif ./...` aggregate the whole module into a single
// SARIF log for upload, something the per-unit vet protocol cannot do.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/internal/analysis"
)

// listPackage is the subset of `go list -json` output standalone mode
// consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// runStandalone analyzes every package matched by patterns and reports
// in the selected format. Test files are not loaded (they belong to the
// vet protocol's test variants); the mode covers the shipped sources.
func runStandalone(progname string, patterns []string, analyzers []*analysis.Analyzer, opts *options, stdout, stderr io.Writer) int {
	targets, exports, err := loadPackages(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}

	cwd, _ := os.Getwd()
	var all []Diag
	broken := 0
	for _, p := range targets {
		files := make([]string, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, name))
		}
		cfg := &Config{
			ImportPath:  p.ImportPath,
			Dir:         cwd,
			GoFiles:     files,
			PackageFile: exports,
		}
		diags, err := checkPackage(cfg, analyzers, opts)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %s: %v\n", progname, p.ImportPath, err)
			broken++
			continue
		}
		all = append(all, diags...)
	}
	if broken > 0 {
		return 1
	}
	return report(progname, analyzers, all, opts, stdout, stderr)
}

// loadPackages shells out to the go command for pattern expansion and
// export data, returning the matched packages plus an import-path →
// export-file map covering their whole dependency closure.
func loadPackages(patterns []string) (targets []*listPackage, exports map[string]string, err error) {
	args := append([]string{"list", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := bytes.TrimSpace(stderr.Bytes())
		if len(msg) > 0 {
			return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, msg)
		}
		return nil, nil, fmt.Errorf("go list %v: %v", patterns, err)
	}

	exports = map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}
