// Package unitchecker implements the command-line protocol that `go vet`
// speaks to an external analysis tool (`go vet -vettool=...`). It is a
// standard-library-only equivalent of
// golang.org/x/tools/go/analysis/unitchecker, providing exactly what
// cmd/spartanvet needs:
//
//   - `tool -V=full` prints a content-addressed version line the go
//     command uses for build caching;
//   - `tool -flags` prints the supported flags as JSON;
//   - `tool [flags] $dir/vet.cfg` type-checks one package unit described
//     by the JSON config (source files plus export data for every
//     dependency) and runs the analyzers over it.
//
// Diagnostics are printed to stderr as "file:line:col: message [name]"
// and make the process exit non-zero, which `go vet` reports as failure.
//
// Beyond the vet protocol, the tool also runs standalone over package
// patterns (`tool -sarif ./...`): it resolves the patterns and their
// export data through `go list`, analyzes every matched package, and
// emits one aggregated report. Output formats:
//
//   - default: the vet-style text lines on stderr, exit 2 on findings;
//   - -json: a JSON array of diagnostics on stdout, exit 0;
//   - -sarif: a SARIF 2.1.0 log on stdout (GitHub code scanning), exit 0.
//
// The data formats exit zero on findings because they exist to report,
// not to gate; the text mode remains the CI tripwire. A third mode,
// `tool -sarifdiff base.sarif head.sarif`, compares two such logs and
// exits 2 when head has findings absent from base — the PR gate that
// blocks new findings without penalizing pre-existing ones. A fourth,
// `tool -sarifvalidate report.sarif`, strictly validates an emitted log
// against the SARIF 2.1.0 model before it is uploaded. In all modes a
// //spartanvet:ignore directive that no longer suppresses anything is
// itself reported as a finding under the name "staleignore" (the
// "ignore all" form is only judged when the full suite runs, since a
// partial run cannot tell whether the directive still earns its keep).
// -debug.cfg=<func> dumps the control-flow graph of every function with
// that name to stderr while checking, for analyzer debugging.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Config is the package-unit description the go command writes to
// $objdir/vet.cfg. Field names follow cmd/go/internal/work.vetConfig;
// fields the checker does not need are accepted and ignored.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string

	// PackageVetx maps each dependency's import path to the .vetx file a
	// previous VetxOnly run of this tool produced for it — the facts the
	// interprocedural analyzers consume for cross-package calls.
	PackageVetx map[string]string

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// Run is the entry point for a vettool main: it interprets the protocol
// arguments in args (typically os.Args[1:]) and never returns.
func Run(progname string, args []string, analyzers []*analysis.Analyzer) {
	exit(run(progname, args, analyzers, os.Stdout, os.Stderr))
}

func exit(code int) { os.Exit(code) }

// options carries the output and debugging switches shared by the
// protocol and standalone modes.
type options struct {
	format   string // "" (vet text), "json", or "sarif"
	debugCFG string // function name whose CFG is dumped to stderr
	judgeAll bool   // full suite ran: "ignore all" directives are judged
	stderr   io.Writer
}

func run(progname string, args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	enabled := map[string]*bool{}
	opts := &options{stderr: stderr}
	var positional []string
	sarifDiff := false
	sarifValidate := false
	for _, arg := range args {
		switch {
		case arg == "-sarifdiff" || arg == "--sarifdiff":
			sarifDiff = true
		case arg == "-sarifvalidate" || arg == "--sarifvalidate":
			sarifValidate = true
		case arg == "-V=full" || arg == "--V=full":
			fmt.Fprintln(stdout, versionLine(progname))
			return 0
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			// Plain -V: a short version is enough.
			fmt.Fprintf(stdout, "%s version devel\n", progname)
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Fprintln(stdout, flagsJSON(analyzers))
			return 0
		case arg == "-json" || arg == "--json":
			opts.format = "json"
		case arg == "-sarif" || arg == "--sarif":
			opts.format = "sarif"
		case strings.HasPrefix(arg, "-debug.cfg="), strings.HasPrefix(arg, "--debug.cfg="):
			_, opts.debugCFG, _ = strings.Cut(arg, "=")
		case strings.HasPrefix(arg, "-"):
			name, val, ok := parseBoolFlag(arg)
			if !ok {
				fmt.Fprintf(stderr, "%s: unrecognized flag %s\n", progname, arg)
				return 2
			}
			enabled[name] = &val
		default:
			positional = append(positional, arg)
		}
	}

	// Honor per-analyzer -name=true/false flags the way `go vet` does: if
	// any analyzer is explicitly enabled, only the enabled set runs.
	selected := analyzers
	if anyExplicitTrue(enabled) {
		selected = nil
		for _, a := range analyzers {
			if v := enabled[a.Name]; v != nil && *v {
				selected = append(selected, a)
			}
		}
	} else {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if v := enabled[a.Name]; v != nil && !*v {
				continue
			}
			keep = append(keep, a)
		}
		selected = keep
	}
	// Unused "ignore all" directives can only be judged when nothing was
	// deselected: a partial run cannot prove a directive useless.
	opts.judgeAll = len(enabled) == 0

	if sarifDiff {
		return runSarifDiff(progname, positional, stdout, stderr)
	}
	if sarifValidate {
		return runSarifValidate(progname, positional, stdout, stderr)
	}

	if len(positional) != 1 || !strings.HasSuffix(positional[0], ".cfg") {
		if len(positional) > 0 {
			return runStandalone(progname, positional, selected, opts, stdout, stderr)
		}
		fmt.Fprintf(stderr, "%s: this tool speaks the `go vet` protocol; invoke it as:\n"+
			"  go vet -vettool=%s ./...       (per-unit, build-cached)\n"+
			"  %s [-json|-sarif] ./...        (standalone, aggregated report)\n"+
			"  %s -sarifdiff base.sarif head.sarif  (fail on findings new in head)\n"+
			"  %s -sarifvalidate report.sarif       (strict SARIF 2.1.0 check)\n",
			progname, progname, progname, progname, progname)
		return 1
	}
	cfgFile := positional[0]

	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}

	facts := loadFacts(cfg)

	// The go command runs the tool over every dependency with
	// VetxOnly=true so that fact-producing analyzers (funcsummary) can
	// hand their results downstream. Only the producers run on such
	// units; their exports become the body of the unit's .vetx file. A
	// dependency that fails to analyze writes an empty vetx instead of
	// failing the whole vet run — missing facts only cost downstream
	// precision, never correctness.
	if cfg.VetxOnly {
		if producers := factProducers(selected); len(producers) > 0 {
			if err := checkFactsOnly(cfg, producers, opts, facts); err != nil {
				fmt.Fprintf(stderr, "%s: %s (facts skipped): %v\n", progname, cfg.ImportPath, err)
			}
		}
		if err := writeVetx(cfg, facts); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", progname, err)
			return 1
		}
		return 0
	}

	diags, err := checkPackage(cfg, selected, opts, facts)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "%s: %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(cfg, facts); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}
	return report(progname, selected, diags, opts, stdout, stderr)
}

// factProducers filters the analyzers that export package facts.
func factProducers(analyzers []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if a.Facts {
			out = append(out, a)
		}
	}
	return out
}

// checkFactsOnly runs the fact producers over a dependency unit. Fact
// runs cover every dependency — the standard library included — so a
// producer tripping over code the module never shaped is contained
// here: the panic becomes an error, the unit just exports no facts.
func checkFactsOnly(cfg *Config, producers []*analysis.Analyzer, opts *options, facts *analysis.FactStore) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fact producer panicked: %v", r)
		}
	}()
	_, err = checkPackage(cfg, producers, opts, facts)
	return err
}

// report renders diagnostics in the selected format and returns the
// process exit code. The vet-style text mode prints unsuppressed
// findings to stderr and fails; the data formats print everything —
// suppressed results included, marked as such — to stdout and succeed,
// because they feed dashboards rather than gate merges.
func report(progname string, analyzers []*analysis.Analyzer, diags []Diag, opts *options, stdout, stderr io.Writer) int {
	switch opts.format {
	case "json":
		out, err := marshalJSON(diags)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", progname, err)
			return 1
		}
		stdout.Write(out)
		return 0
	case "sarif":
		out, err := buildSARIF(progname, analyzers, diags).Marshal()
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", progname, err)
			return 1
		}
		stdout.Write(out)
		return 0
	default:
		failed := false
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Fprintln(stderr, d)
			for _, rel := range d.Related {
				fmt.Fprintf(stderr, "\t%s: %s\n", rel.Position, rel.Message)
			}
			failed = true
		}
		if failed {
			return 2
		}
		return 0
	}
}

func parseBoolFlag(arg string) (name string, val bool, ok bool) {
	arg = strings.TrimPrefix(arg, "-")
	arg = strings.TrimPrefix(arg, "-") // tolerate --name
	name, s, hasVal := strings.Cut(arg, "=")
	if !hasVal {
		return name, true, true
	}
	switch s {
	case "true", "1":
		return name, true, true
	case "false", "0":
		return name, false, true
	}
	return "", false, false
}

func anyExplicitTrue(m map[string]*bool) bool {
	for _, v := range m {
		if v != nil && *v {
			return true
		}
	}
	return false
}

// versionLine matches the format cmd/go's toolID parser accepts for a
// development tool: "name version devel ... buildID=<content-id>". The
// content ID hashes the executable so rebuilding the tool (new or changed
// analyzers) invalidates `go vet`'s result cache.
func versionLine(progname string) string {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	return fmt.Sprintf("%s version devel buildID=%s", progname, id)
}

// flagsJSON describes the tool's flags in the JSON shape `go vet`
// expects from `tool -flags`: one boolean flag per analyzer.
func flagsJSON(analyzers []*analysis.Analyzer) string {
	type flagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	descs := make([]flagDesc, 0, len(analyzers))
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: summary})
	}
	out, err := json.Marshal(descs)
	if err != nil {
		return "[]"
	}
	return string(out)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if cfg.ImportPath == "" {
		cfg.ImportPath = cfg.ID
	}
	return cfg, nil
}

// loadFacts reads the .vetx file of every dependency named in
// cfg.PackageVetx into a fresh store. Unreadable or malformed files are
// skipped — the downstream analyzers just see fewer facts.
func loadFacts(cfg *Config) *analysis.FactStore {
	store := analysis.NewFactStore()
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		if err := store.DecodePackage(path, data); err != nil {
			continue
		}
	}
	return store
}

// writeVetx persists this unit's exported facts as its .vetx body.
func writeVetx(cfg *Config, facts *analysis.FactStore) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	body, err := facts.EncodePackage(cfg.ImportPath)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, body, 0o666)
}

// Diag is one rendered diagnostic. Suppressed diagnostics (silenced by
// a //spartanvet:ignore directive) are carried along for the data
// formats, which report them as SARIF suppressions instead of dropping
// them.
type Diag struct {
	Position   token.Position
	Message    string
	Analyzer   string
	Suppressed bool
	// Justification is the directive's free-text reason, set only when
	// Suppressed.
	Justification string
	// Related carries auxiliary positions — for the taint analyzers, the
	// source→sink path: where the wire value entered and every step it
	// travelled before reaching the sink.
	Related []RelDiag
}

// RelDiag is one related location of a diagnostic.
type RelDiag struct {
	Position token.Position
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// checkPackage parses and type-checks the unit and runs the analyzers.
// Dependency facts arrive through facts; fact-producing analyzers
// export this package's facts into the same store.
func checkPackage(cfg *Config, analyzers []*analysis.Analyzer, opts *options, facts *analysis.FactStore) ([]Diag, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := &types.Config{
		Importer:  mappedImporter{m: cfg.ImportMap, next: base},
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, buildArch()),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	if opts.debugCFG != "" {
		dumpCFGs(opts.stderr, fset, files, opts.debugCFG)
	}

	// One suppression index shared by every analyzer, so that after the
	// runs it knows which directives earned their keep.
	sup := analysis.IndexSuppressions(fset, files)
	toDiag := func(d analysis.Diagnostic) Diag {
		pos := fset.Position(d.Pos)
		pos.Filename = relativeTo(pos.Filename, cfg.Dir)
		out := Diag{Position: pos, Message: d.Message, Analyzer: d.Analyzer}
		for _, rel := range d.Related {
			// In-package steps carry a token.Pos; cross-package sites (a
			// summarized callee's allocation) arrive pre-resolved.
			rp := rel.Position
			if rel.Pos.IsValid() {
				rp = fset.Position(rel.Pos)
			}
			rp.Filename = relativeTo(rp.Filename, cfg.Dir)
			out.Related = append(out.Related, RelDiag{Position: rp, Message: rel.Message})
		}
		return out
	}
	var diags []Diag
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := analysis.NewPassShared(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			diags = append(diags, toDiag(d))
		}, sup)
		pass.Facts = facts
		pass.SuppressedSink = func(d analysis.Diagnostic, dir *analysis.Directive) {
			sd := toDiag(d)
			sd.Suppressed = true
			sd.Justification = dir.Reason
			diags = append(diags, sd)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	for _, d := range sup.Stale(known, opts.judgeAll) {
		diags = append(diags, toDiag(d))
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// dumpCFGs prints the control-flow graph of every function declaration
// named name, for analyzer debugging (-debug.cfg=<func>).
func dumpCFGs(w io.Writer, fset *token.FileSet, files []*ast.File, name string) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			fmt.Fprintf(w, "# CFG %s (%s)\n%s", name, fset.Position(fd.Pos()), cfg.New(fd.Body).Format(fset))
		}
	}
}

// relativeTo shortens absolute file names to be relative to the working
// directory `go vet` launched the tool in, matching cmd/vet output.
func relativeTo(filename, dir string) string {
	if dir == "" {
		return filename
	}
	if rel, err := filepath.Rel(dir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// mappedImporter resolves source-level import paths through the unit's
// ImportMap (vendoring, test variants) before loading export data.
type mappedImporter struct {
	m    map[string]string
	next types.Importer
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.next.Import(path)
}
