// Package unitchecker implements the command-line protocol that `go vet`
// speaks to an external analysis tool (`go vet -vettool=...`). It is a
// standard-library-only equivalent of
// golang.org/x/tools/go/analysis/unitchecker, providing exactly what
// cmd/spartanvet needs:
//
//   - `tool -V=full` prints a content-addressed version line the go
//     command uses for build caching;
//   - `tool -flags` prints the supported flags as JSON;
//   - `tool [flags] $dir/vet.cfg` type-checks one package unit described
//     by the JSON config (source files plus export data for every
//     dependency) and runs the analyzers over it.
//
// Diagnostics are printed to stderr as "file:line:col: message [name]"
// and make the process exit non-zero, which `go vet` reports as failure.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config is the package-unit description the go command writes to
// $objdir/vet.cfg. Field names follow cmd/go/internal/work.vetConfig;
// fields the checker does not need are accepted and ignored.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// Run is the entry point for a vettool main: it interprets the protocol
// arguments in args (typically os.Args[1:]) and never returns.
func Run(progname string, args []string, analyzers []*analysis.Analyzer) {
	exit(run(progname, args, analyzers, os.Stdout, os.Stderr))
}

func exit(code int) { os.Exit(code) }

func run(progname string, args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	enabled := map[string]*bool{}
	var cfgFile string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Fprintln(stdout, versionLine(progname))
			return 0
		case arg == "-V" || strings.HasPrefix(arg, "-V="):
			// Plain -V: a short version is enough.
			fmt.Fprintf(stdout, "%s version devel\n", progname)
			return 0
		case arg == "-flags" || arg == "--flags":
			fmt.Fprintln(stdout, flagsJSON(analyzers))
			return 0
		case strings.HasPrefix(arg, "-"):
			name, val, ok := parseBoolFlag(arg)
			if !ok {
				fmt.Fprintf(stderr, "%s: unrecognized flag %s\n", progname, arg)
				return 2
			}
			enabled[name] = &val
		default:
			if cfgFile != "" {
				fmt.Fprintf(stderr, "%s: unexpected argument %s (want a single *.cfg file)\n", progname, arg)
				return 2
			}
			cfgFile = arg
		}
	}
	if cfgFile == "" || !strings.HasSuffix(cfgFile, ".cfg") {
		fmt.Fprintf(stderr, "%s: this tool speaks the `go vet` protocol; invoke it as: go vet -vettool=%s ./...\n", progname, progname)
		return 1
	}

	// Honor per-analyzer -name=true/false flags the way `go vet` does: if
	// any analyzer is explicitly enabled, only the enabled set runs.
	selected := analyzers
	if anyExplicitTrue(enabled) {
		selected = nil
		for _, a := range analyzers {
			if v := enabled[a.Name]; v != nil && *v {
				selected = append(selected, a)
			}
		}
	} else {
		var keep []*analysis.Analyzer
		for _, a := range analyzers {
			if v := enabled[a.Name]; v != nil && !*v {
				continue
			}
			keep = append(keep, a)
		}
		selected = keep
	}

	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}

	// The go command runs the tool over every dependency with
	// VetxOnly=true so that fact-producing analyzers can see upstream
	// packages. These analyzers produce no facts, so dependencies only
	// need the (empty) vetx file.
	if err := writeVetx(cfg); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", progname, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := checkPackage(cfg, selected)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "%s: %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	return 2
}

func parseBoolFlag(arg string) (name string, val bool, ok bool) {
	arg = strings.TrimPrefix(arg, "-")
	arg = strings.TrimPrefix(arg, "-") // tolerate --name
	name, s, hasVal := strings.Cut(arg, "=")
	if !hasVal {
		return name, true, true
	}
	switch s {
	case "true", "1":
		return name, true, true
	case "false", "0":
		return name, false, true
	}
	return "", false, false
}

func anyExplicitTrue(m map[string]*bool) bool {
	for _, v := range m {
		if v != nil && *v {
			return true
		}
	}
	return false
}

// versionLine matches the format cmd/go's toolID parser accepts for a
// development tool: "name version devel ... buildID=<content-id>". The
// content ID hashes the executable so rebuilding the tool (new or changed
// analyzers) invalidates `go vet`'s result cache.
func versionLine(progname string) string {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	return fmt.Sprintf("%s version devel buildID=%s", progname, id)
}

// flagsJSON describes the tool's flags in the JSON shape `go vet`
// expects from `tool -flags`: one boolean flag per analyzer.
func flagsJSON(analyzers []*analysis.Analyzer) string {
	type flagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	descs := make([]flagDesc, 0, len(analyzers))
	for _, a := range analyzers {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		descs = append(descs, flagDesc{Name: a.Name, Bool: true, Usage: summary})
	}
	out, err := json.Marshal(descs)
	if err != nil {
		return "[]"
	}
	return string(out)
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	if cfg.ImportPath == "" {
		cfg.ImportPath = cfg.ID
	}
	return cfg, nil
}

func writeVetx(cfg *Config) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	// No facts: an empty file is a complete serialization.
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}

// Diag is one rendered diagnostic.
type Diag struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// checkPackage parses and type-checks the unit and runs the analyzers.
func checkPackage(cfg *Config, analyzers []*analysis.Analyzer) ([]Diag, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tcfg := &types.Config{
		Importer:  mappedImporter{m: cfg.ImportMap, next: base},
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, buildArch()),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []Diag
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			pos.Filename = relativeTo(pos.Filename, cfg.Dir)
			diags = append(diags, Diag{Position: pos, Message: d.Message, Analyzer: d.Analyzer})
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Position, diags[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// relativeTo shortens absolute file names to be relative to the working
// directory `go vet` launched the tool in, matching cmd/vet output.
func relativeTo(filename, dir string) string {
	if dir == "" {
		return filename
	}
	if rel, err := filepath.Rel(dir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// mappedImporter resolves source-level import paths through the unit's
// ImportMap (vendoring, test variants) before loading export data.
type mappedImporter struct {
	m    map[string]string
	next types.Importer
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.next.Import(path)
}
