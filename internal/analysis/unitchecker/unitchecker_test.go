package unitchecker_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles cmd/spartanvet into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "spartanvet")
	cmd := exec.Command("go", "build", "-o", tool, "repro/cmd/spartanvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spartanvet: %v\n%s", err, out)
	}
	return tool
}

func repoRoot(t *testing.T) string {
	t.Helper()
	// This test file lives at internal/analysis/unitchecker.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(wd)))
}

// TestVersionProtocol checks the -V=full handshake cmd/go performs for
// build caching: "name version devel ... buildID=<content-id>".
func TestVersionProtocol(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if !regexp.MustCompile(`^spartanvet version devel .*buildID=[0-9a-f]+$`).MatchString(line) {
		t.Fatalf("-V=full output %q does not match the cmd/go toolID grammar", line)
	}
}

// TestFlagsProtocol checks `tool -flags` prints the JSON flag catalogue
// cmd/go parses before constructing the vet command line.
func TestFlagsProtocol(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the JSON shape cmd/go expects: %v\n%s", err, out)
	}
	want := map[string]bool{"floatcmp": true, "spanfinish": true, "lockbalance": true, "errcheckio": true, "metricname": true}
	for _, f := range flags {
		delete(want, f.Name)
		if !f.Bool {
			t.Errorf("flag %s must be boolean", f.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing analyzer flags: %v", want)
	}
}

// TestGoVetFindsSeededViolations runs the real `go vet -vettool` pipeline
// over a scratch module seeded with one violation per analyzer and
// checks each one surfaces — the end-to-end proof that the suite fails
// on seed-style code.
func TestGoVetFindsSeededViolations(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("cart/cart.go", `package cart

func Same(a, b float64) bool { return a == b }
`)
	write("obs/obs.go", `package obs

import "sync"

type R struct{ mu sync.Mutex }

func (r *R) Touch() { r.mu.Lock() }
`)
	write("codec/codec.go", `package codec

import "bufio"

func Emit(w *bufio.Writer) { w.WriteByte(0) }
`)
	write("pipeline/pipeline.go", `package pipeline

type Span struct{}

func (s *Span) Finish() {}

type Trace struct{}

func (t *Trace) Start(string) *Span { return &Span{} }

func Leak(tr *Trace) { tr.Start("compress") }
`)
	write("metrics/metrics.go", `package metrics

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) int { return 0 }

func Register(r *Registry) { _ = r.Counter("bad-name", "help") }
`)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet succeeded on seeded violations; stderr:\n%s", stderr.String())
	}
	got := stderr.String()
	for _, wantFrag := range []string{
		"[floatcmp]", "[lockbalance]", "[errcheckio]", "[spanfinish]", "[metricname]",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("go vet output missing a %s finding:\n%s", wantFrag, got)
		}
	}
}

// TestGoVetCleanModule checks the other half of the contract: a module
// with no violations passes `go vet -vettool` with exit status 0.
func TestGoVetCleanModule(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module clean\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "cart"), 0o777); err != nil {
		t.Fatal(err)
	}
	src := `package cart

import "math"

func Same(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
`
	if err := os.WriteFile(filepath.Join(dir, "cart", "cart.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, stderr.String())
	}
}
