package unitchecker_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/sarif"
)

// buildTool compiles cmd/spartanvet into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "spartanvet")
	cmd := exec.Command("go", "build", "-o", tool, "repro/cmd/spartanvet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spartanvet: %v\n%s", err, out)
	}
	return tool
}

func repoRoot(t *testing.T) string {
	t.Helper()
	// This test file lives at internal/analysis/unitchecker.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(wd)))
}

// TestVersionProtocol checks the -V=full handshake cmd/go performs for
// build caching: "name version devel ... buildID=<content-id>".
func TestVersionProtocol(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if !regexp.MustCompile(`^spartanvet version devel .*buildID=[0-9a-f]+$`).MatchString(line) {
		t.Fatalf("-V=full output %q does not match the cmd/go toolID grammar", line)
	}
}

// TestFlagsProtocol checks `tool -flags` prints the JSON flag catalogue
// cmd/go parses before constructing the vet command line.
func TestFlagsProtocol(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the JSON shape cmd/go expects: %v\n%s", err, out)
	}
	want := map[string]bool{
		"floatcmp": true, "spanfinish": true, "lockbalance": true, "errcheckio": true, "metricname": true,
		"nilflow": true, "deferloop": true, "wgbalance": true, "hotalloc": true,
	}
	for _, f := range flags {
		delete(want, f.Name)
		if !f.Bool {
			t.Errorf("flag %s must be boolean", f.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing analyzer flags: %v", want)
	}
}

// TestGoVetFindsSeededViolations runs the real `go vet -vettool` pipeline
// over a scratch module seeded with one violation per analyzer and
// checks each one surfaces — the end-to-end proof that the suite fails
// on seed-style code.
func TestGoVetFindsSeededViolations(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("cart/cart.go", `package cart

func Same(a, b float64) bool { return a == b }
`)
	write("obs/obs.go", `package obs

import "sync"

type R struct{ mu sync.Mutex }

func (r *R) Touch() { r.mu.Lock() }
`)
	write("codec/codec.go", `package codec

import "bufio"

func Emit(w *bufio.Writer) { w.WriteByte(0) }
`)
	write("pipeline/pipeline.go", `package pipeline

type Span struct{}

func (s *Span) Finish() {}

type Trace struct{}

func (t *Trace) Start(string) *Span { return &Span{} }

func Leak(tr *Trace) { tr.Start("compress") }
`)
	write("metrics/metrics.go", `package metrics

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) int { return 0 }

func Register(r *Registry) { _ = r.Counter("bad-name", "help") }
`)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet succeeded on seeded violations; stderr:\n%s", stderr.String())
	}
	got := stderr.String()
	for _, wantFrag := range []string{
		"[floatcmp]", "[lockbalance]", "[errcheckio]", "[spanfinish]", "[metricname]",
	} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("go vet output missing a %s finding:\n%s", wantFrag, got)
		}
	}
}

// TestGoVetCleanModule checks the other half of the contract: a module
// with no violations passes `go vet -vettool` with exit status 0.
func TestGoVetCleanModule(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module clean\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "cart"), 0o777); err != nil {
		t.Fatal(err)
	}
	src := `package cart

import "math"

func Same(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
`
	if err := os.WriteFile(filepath.Join(dir, "cart", "cart.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, stderr.String())
	}
}

// seedModule writes a scratch module with one floatcmp violation, one
// suppressed errcheckio violation, and one stale ignore directive, and
// returns its directory.
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.22\n")
	write("cart/cart.go", `package cart

func Same(a, b float64) bool { return a == b }
`)
	write("codec/codec.go", `package codec

import "bufio"

//spartanvet:ignore errcheckio best-effort trailer write
func Emit(w *bufio.Writer) { w.WriteByte(0) }

//spartanvet:ignore floatcmp nothing here compares floats
func Noop() {}
`)
	return dir
}

// runTool executes the built tool in dir and returns stdout, stderr,
// and the exit code.
func runTool(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(buildTool(t), args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running tool: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

// TestStandaloneSarif checks the aggregated `spartanvet -sarif ./...`
// mode: the output must be a valid SARIF 2.1.0 log containing the
// seeded finding, the suppressed finding (as a suppression), and the
// stale-directive finding.
func TestStandaloneSarif(t *testing.T) {
	dir := seedModule(t)
	stdout, stderr, code := runTool(t, dir, "-sarif", "./...")
	if code != 0 {
		t.Fatalf("-sarif exited %d (data formats must not gate)\nstderr: %s", code, stderr)
	}
	if err := sarif.Validate([]byte(stdout)); err != nil {
		t.Fatalf("output is not valid SARIF 2.1.0: %v\n%s", err, stdout)
	}
	for _, want := range []string{
		`"ruleId": "floatcmp"`,
		`"ruleId": "errcheckio"`,
		`"ruleId": "staleignore"`,
		`"kind": "inSource"`,
		`"justification": "best-effort trailer write"`,
		`"uri": "cart/cart.go"`,
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("SARIF output missing %s\n%s", want, stdout)
		}
	}
}

// TestStandaloneJSON checks the -json format: a flat array with the
// suppressed flag carried through.
func TestStandaloneJSON(t *testing.T) {
	dir := seedModule(t)
	stdout, stderr, code := runTool(t, dir, "-json", "./...")
	if code != 0 {
		t.Fatalf("-json exited %d\nstderr: %s", code, stderr)
	}
	var diags []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Analyzer   string `json:"analyzer"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout)
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = true
		if d.Analyzer == "errcheckio" && !d.Suppressed {
			t.Errorf("suppressed errcheckio finding lost its flag: %+v", d)
		}
	}
	for _, want := range []string{"floatcmp", "errcheckio", "staleignore"} {
		if !byAnalyzer[want] {
			t.Errorf("-json output missing %s diagnostics\n%s", want, stdout)
		}
	}
}

// TestStandaloneText checks the default standalone mode still gates:
// findings print to stderr and the exit code is non-zero, with the
// suppressed finding excluded.
func TestStandaloneText(t *testing.T) {
	dir := seedModule(t)
	_, stderr, code := runTool(t, dir, "./...")
	if code != 2 {
		t.Fatalf("text mode exited %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[floatcmp]") {
		t.Errorf("stderr missing the floatcmp finding:\n%s", stderr)
	}
	if !strings.Contains(stderr, "[staleignore]") {
		t.Errorf("stderr missing the stale-directive finding:\n%s", stderr)
	}
	if strings.Contains(stderr, "[errcheckio]") {
		t.Errorf("suppressed errcheckio finding leaked into text output:\n%s", stderr)
	}
}

// TestStaleDirectiveFailsGoVet proves the satellite contract: an ignore
// directive that suppresses nothing fails the ordinary `go vet
// -vettool` pipeline that `make lint` runs.
func TestStaleDirectiveFailsGoVet(t *testing.T) {
	tool := buildTool(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module stale\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "cart"), 0o777); err != nil {
		t.Fatal(err)
	}
	src := `package cart

//spartanvet:ignore floatcmp this function no longer compares floats
func Same(a, b int) bool { return a == b }
`
	if err := os.WriteFile(filepath.Join(dir, "cart", "cart.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("go vet passed a module with a stale ignore directive")
	}
	if !strings.Contains(stderr.String(), "[staleignore]") {
		t.Fatalf("go vet output missing the staleignore finding:\n%s", stderr.String())
	}
}

// TestDebugCFGDump checks -debug.cfg=<func> prints the function's
// control-flow graph to stderr while checking.
func TestDebugCFGDump(t *testing.T) {
	dir := seedModule(t)
	_, stderr, _ := runTool(t, dir, "-debug.cfg=Same", "-json", "./...")
	if !strings.Contains(stderr, "# CFG Same") {
		t.Fatalf("-debug.cfg=Same produced no CFG dump:\n%s", stderr)
	}
	if !strings.Contains(stderr, "entry") {
		t.Fatalf("CFG dump has no entry block:\n%s", stderr)
	}
}
