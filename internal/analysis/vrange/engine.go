package vrange

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/dataflow"
)

// Site is one slice index or slice-expression bound the engine
// examined: either proved in bounds or left for the analyzers to
// judge by the value's derivation.
type Site struct {
	// Kind is "index" or "slice bound" for local sites, or the
	// callee's What when lifted from a callee IndexParam.
	Kind string
	// Expr is the index/bound expression (the call argument for lifted
	// sites); Base the indexed expression (nil for lifted sites).
	Expr ast.Expr
	Base ast.Expr
	Pos  token.Pos
	// AllowEq: the site tolerates index == len (slice bounds do,
	// element indexing does not).
	AllowEq bool
	// Proven: the range analysis discharged the bounds proof.
	Proven bool
	// Deriv is the origin of the index value (wire / parameters).
	Deriv Deriv
	// Callee is set when the site was lifted from a callee's
	// IndexParam; CalleePos locates the site inside the callee.
	Callee    *types.Func
	CalleePos Position
	Via       string

	// baseParam/idxParam record pristine parameter indices of the
	// indexed slice and the index value (-1 when not parameters), for
	// the function's own IndexParam summary entries.
	baseParam, idxParam int
}

// FuncResult is the engine's full output for one function.
type FuncResult struct {
	Decl *ast.FuncDecl
	// ExprIv holds the proved interval of every integer-valued
	// expression visited during the recording sweep.
	ExprIv map[ast.Expr]Interval
	// Sites lists every index/slice-bound site in body order.
	Sites []*Site
	// Range is the function's serializable summary.
	Range *FuncRange

	siteByExpr map[ast.Expr]*Site
	params     []*types.Var
}

// IvOf returns the proved interval of an expression, or Top. Nil-safe,
// like Bounded and SiteProven, so range-aware clients degrade to
// no-proof when no result is available.
func (fr *FuncResult) IvOf(x ast.Expr) Interval {
	if fr == nil {
		return Top()
	}
	if i, ok := fr.ExprIv[x]; ok {
		return i
	}
	return Top()
}

// Bounded reports a proved finite upper bound for an expression — the
// filter that retires a taint sink: a bounded size cannot drive an
// unbounded allocation no matter where it came from.
func (fr *FuncResult) Bounded(x ast.Expr) bool {
	if fr == nil {
		return false
	}
	return fr.IvOf(x).BoundedAbove()
}

// SiteProven reports that the index/bound expression belongs to a site
// the engine proved in bounds.
func (fr *FuncResult) SiteProven(x ast.Expr) bool {
	if fr == nil {
		return false
	}
	s, ok := fr.siteByExpr[x]
	return ok && s.Proven
}

// val is an expression's abstract value: interval plus derivation.
type val struct {
	iv Interval
	dv Deriv
}

// Engine runs the interval analysis over one function body as a
// forward dataflow.Problem with edge refinement and widening, then
// sweeps the fixpoint deterministically to record expression
// intervals, index sites and the function's range summary.
type Engine struct {
	Fset   *token.FileSet
	Info   *types.Info
	Lookup RLookup

	fr         *FuncResult
	params     []*types.Var
	results    []*types.Var
	resultIvs  []Interval
	resultMin  []map[int]bool // nil until the first return is seen
	resultDv   []Deriv
	resultLen  []map[int]bool // SameLenAs accumulator, nil until first return
	condSet    map[ast.Expr]bool
	record     bool
	pristineIn map[*types.Var]int // param var → index, for summary checks
}

// sourceFuncs are the untrusted wire reads (FullName → wire-derived
// result index), matching the taint engine's set.
var sourceFuncs = map[string]int{
	"encoding/binary.ReadUvarint": 0,
	"encoding/binary.ReadVarint":  0,
	"encoding/binary.Uvarint":     0,
	"encoding/binary.Varint":      0,
}

// Run analyzes one declaration.
func (e *Engine) Run(decl *ast.FuncDecl) *FuncResult {
	e.fr = &FuncResult{
		Decl:       decl,
		ExprIv:     map[ast.Expr]Interval{},
		siteByExpr: map[ast.Expr]*Site{},
	}
	e.params = paramVars(decl, e.Info)
	e.fr.params = e.params
	e.results = resultVars(decl, e.Info)
	nres := 0
	if decl.Type.Results != nil {
		for _, f := range decl.Type.Results.List {
			if len(f.Names) == 0 {
				nres++
			} else {
				nres += len(f.Names)
			}
		}
	}
	e.resultIvs = make([]Interval, nres)
	e.resultMin = make([]map[int]bool, nres)
	e.resultDv = make([]Deriv, nres)
	e.resultLen = make([]map[int]bool, nres)
	for i := range e.resultIvs {
		e.resultIvs[i] = Empty()
	}
	e.pristineIn = map[*types.Var]int{}
	for i, p := range e.params {
		if p != nil {
			e.pristineIn[p] = i
		}
	}
	if decl.Body == nil {
		e.fr.Range = e.makeRange(decl)
		return e.fr
	}

	e.condSet = map[ast.Expr]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			e.condSet[x.Cond] = true
		case *ast.ForStmt:
			if x.Cond != nil {
				e.condSet[x.Cond] = true
			}
		case *ast.FuncLit:
			return false // literals get their own frame; not descended
		}
		return true
	})

	g := cfg.New(decl.Body)
	e.record = false
	res := dataflow.Solve[*VState](g, vproblem{e})
	e.record = true
	for _, b := range g.Blocks {
		s := res.In[b]
		if s == nil {
			continue // unreachable
		}
		s = s.clone()
		for _, n := range b.Nodes {
			e.node(n, s)
		}
	}
	e.fr.Range = e.makeRange(decl)
	return e.fr
}

// seed is the entry state: parameters carry their own derivation bit;
// intervals default to the machine type range.
func (e *Engine) seed() *VState {
	s := newVState()
	for i, p := range e.params {
		if p == nil {
			continue
		}
		s.pristine[p] = true
		if i >= sourceBit || !isIntegerKind(p.Type()) {
			continue
		}
		s.dv[p] = Deriv{
			mask:  1 << uint(i),
			chain: &Step{Pos: p.Pos(), What: "parameter " + p.Name()},
		}
	}
	return s
}

// vproblem adapts the engine to the dataflow solver.
type vproblem struct{ e *Engine }

func (p vproblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p vproblem) Boundary() *VState             { return p.e.seed() }
func (p vproblem) Init() *VState                 { return nil }

func (p vproblem) Join(a, b *VState) *VState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return joinState(a, b)
}

func (p vproblem) Equal(a, b *VState) bool { return equalState(a, b) }

func (p vproblem) Transfer(b *cfg.Block, in *VState) *VState {
	if in == nil {
		return nil
	}
	s := in.clone()
	for _, n := range b.Nodes {
		p.e.node(n, s)
	}
	return s
}

func (p vproblem) EdgeTransfer(from *cfg.Block, succIdx int, out *VState) *VState {
	if out == nil {
		return nil
	}
	if n := len(from.Nodes); n > 0 && len(from.Succs) == 2 {
		if rs, ok := from.Nodes[n-1].(*ast.RangeStmt); ok {
			if succIdx == 0 {
				return p.e.rangeBind(rs, out)
			}
			return out
		}
	}
	cond := p.e.branchCond(from)
	if cond == nil {
		return out
	}
	return p.e.refine(out.clone(), cond, succIdx == 0)
}

func (p vproblem) Widen(prev, next *VState) *VState {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return widenState(prev, next)
}

// branchCond returns the block's trailing If/For condition when its
// two successors are that condition's true and false edges.
func (e *Engine) branchCond(b *cfg.Block) ast.Expr {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return nil
	}
	expr, ok := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !ok || !e.condSet[expr] {
		return nil
	}
	return expr
}

// --- statement transfer ---------------------------------------------------

func (e *Engine) node(n ast.Node, s *VState) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		e.assign(x, s)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					e.valueSpec(vs, s)
				}
			}
		}
	case *ast.ReturnStmt:
		e.returnStmt(x, s)
	case *ast.IncDecStmt:
		e.incDec(x, s)
	case *ast.ExprStmt:
		e.eval(x.X, s)
	case *ast.GoStmt:
		e.eval(x.Call, s)
	case *ast.DeferStmt:
		e.eval(x.Call, s)
	case *ast.SendStmt:
		e.eval(x.Chan, s)
		e.eval(x.Value, s)
	case *ast.RangeStmt:
		// The header node: evaluate the ranged expression and kill the
		// iteration variables; the body edge re-binds them with their
		// per-iteration facts (rangeBind).
		e.eval(x.X, s)
		for _, lhs := range []ast.Expr{x.Key, x.Value} {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if v := e.varOf(id); v != nil {
					e.killByType(v, s)
				}
			}
		}
	case *ast.LabeledStmt:
		e.node(x.Stmt, s)
	case ast.Expr:
		e.eval(x, s)
	}
}

func (e *Engine) incDec(x *ast.IncDecStmt, s *VState) {
	id, ok := x.X.(*ast.Ident)
	if !ok {
		e.eval(x.X, s)
		return
	}
	v := e.varOf(id)
	if v == nil || !isIntegerKind(v.Type()) {
		return
	}
	old := s.get(v)
	d := s.dv[v]
	s.killInt(v)
	var iv Interval
	if x.Tok == token.INC {
		iv = old.Add(Const(1))
	} else {
		iv = old.Sub(Const(1))
	}
	s.setIv(v, meetType(iv, v.Type()))
	if d.mask != 0 {
		s.dv[v] = d
	}
}

func (e *Engine) assign(x *ast.AssignStmt, s *VState) {
	for _, lhs := range x.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			e.eval(lhs, s) // arr[i] = v: the index is a site
		}
	}
	var vals []val
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		vals = e.evalMulti(x.Rhs[0], len(x.Lhs), s)
	} else {
		for _, rhs := range x.Rhs {
			vals = append(vals, e.eval(rhs, s))
		}
	}
	single := len(x.Lhs) == 1 && len(x.Rhs) == 1
	for i, lhs := range x.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" || i >= len(vals) {
			continue
		}
		v := e.varOf(id)
		if v == nil {
			continue
		}
		var rhs ast.Expr
		if single {
			rhs = x.Rhs[0]
		} else if len(x.Rhs) == len(x.Lhs) {
			rhs = x.Rhs[i]
		}
		t := vals[i]
		if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
			// Compound assignment: v op= rhs; the rhs shape carries no
			// binding (v += len(s) does not make v a length of s).
			t = e.compound(x.Tok, v, t, s)
			rhs = nil
		}
		e.assignVar(v, t, rhs, x.Pos(), s)
	}
	// Cross-result length equalities from a summarized call.
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		e.bindSameLen(x, s)
	}
}

// compound folds v op= rhs into a plain value.
func (e *Engine) compound(tok token.Token, v *types.Var, rhs val, s *VState) val {
	old := val{iv: s.get(v), dv: s.dv[v]}
	var op token.Token
	switch tok {
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.SUB_ASSIGN:
		op = token.SUB
	case token.MUL_ASSIGN:
		op = token.MUL
	case token.QUO_ASSIGN:
		op = token.QUO
	case token.REM_ASSIGN:
		op = token.REM
	case token.AND_ASSIGN:
		op = token.AND
	case token.OR_ASSIGN:
		op = token.OR
	case token.XOR_ASSIGN:
		op = token.XOR
	case token.SHL_ASSIGN:
		op = token.SHL
	case token.SHR_ASSIGN:
		op = token.SHR
	case token.AND_NOT_ASSIGN:
		op = token.AND_NOT
	default:
		return val{iv: Top()}
	}
	return val{
		iv: meetType(binOp(op, old.iv, rhs.iv), v.Type()),
		dv: unionD(old.dv, rhs.dv),
	}
}

// assignVar binds abstract value t to variable v. rhs is the source
// expression when the assignment is a plain 1:1 binding (nil for
// compound assignments and multi-value unpacking), used for the
// relational bindings a bare value cannot carry.
func (e *Engine) assignVar(v *types.Var, t val, rhs ast.Expr, pos token.Pos, s *VState) {
	if isIntegerKind(v.Type()) {
		var w, lenOf *types.Var
		if rhs != nil {
			w = e.wrapFreeVar(rhs, s)
			lenOf = e.lenOperand(rhs, s)
		}
		s.killInt(v)
		s.setIv(v, meetType(t.iv, v.Type()))
		if t.dv.mask != 0 {
			s.dv[v] = t.dv.step(pos, "flows into "+v.Name())
		}
		if w != nil && w != v {
			// Wrap-free copy: v inherits w's ordering facts, v ≤ w ≤ v.
			s.copyRels(v, w)
		}
		if lenOf != nil {
			// v := len(sl): v is a length symbol of sl and v ≤ len(sl).
			s.addLenSym(lenOf, v)
			s.addRel(s.leLen, v, lenOf)
		}
		return
	}
	if isLenTracked(v.Type()) {
		e.assignSlice(v, rhs, s)
	}
}

// assignSlice tracks length facts through slice assignments: make
// binds the size symbol, self-append grows, plain copies share length.
func (e *Engine) assignSlice(v *types.Var, rhs ast.Expr, s *VState) {
	if rhs == nil {
		s.killSlice(v)
		return
	}
	rhs = unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := e.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					if len(call.Args) > 0 && e.plainVar(call.Args[0]) == v {
						s.growLen(v) // len only grew; < len facts survive
						return
					}
					s.killSlice(v)
					if len(call.Args) > 0 {
						if src := e.plainVar(call.Args[0]); src != nil && src != v {
							s.setLenIv(v, Interval{s.getLen(src).Lo, PosInf})
						}
					}
					return
				case "make":
					if len(call.Args) >= 2 {
						sizeIv := e.evalIvQuiet(call.Args[1], s)
						sizeVar := e.wrapFreeVar(call.Args[1], s)
						s.killSlice(v)
						s.setLenIv(v, sizeIv.Meet(Interval{0, PosInf}))
						if sizeVar != nil {
							s.addLenSym(v, sizeVar)
						}
						return
					}
				}
			}
		}
	}
	if w := e.plainVar(rhs); w != nil && w != v && isLenTracked(w.Type()) {
		li := s.getLen(w)
		s.killSlice(v)
		s.setLenIv(v, li)
		s.shareLen(v, w, rhs)
		return
	}
	s.killSlice(v)
}

// bindSameLen links the left-hand slices of a multi-assign from a
// summarized call whose results have SameLenAs entries (twin makes in
// the callee), minting one token per equality class keyed by the call
// node so the binding is stable across solver iterations.
func (e *Engine) bindSameLen(x *ast.AssignStmt, s *VState) {
	call, ok := unparen(x.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := e.calleeOf(call)
	if fn == nil {
		return
	}
	rr := e.lookup(fn)
	if rr == nil || len(rr.Results) == 0 {
		return
	}
	class := make([]int, len(rr.Results))
	for i := range class {
		class[i] = i
	}
	for j, r := range rr.Results {
		for _, i := range r.SameLenAs {
			if i < 0 || i >= j {
				continue
			}
			ci, cj := class[i], class[j]
			if ci > cj {
				ci, cj = cj, ci
			}
			for k := range class {
				if class[k] == cj {
					class[k] = ci
				}
			}
		}
	}
	members := map[int][]int{}
	for j, c := range class {
		members[c] = append(members[c], j)
	}
	for rep, ms := range members {
		if len(ms) < 2 {
			continue
		}
		tok := lenTokenKey{node: call, idx: rep}
		for _, j := range ms {
			if j >= len(x.Lhs) {
				continue
			}
			if v := e.plainVar(x.Lhs[j]); v != nil && isLenTracked(v.Type()) {
				s.addLenSym(v, tok)
			}
		}
	}
}

func (e *Engine) valueSpec(vs *ast.ValueSpec, s *VState) {
	var vals []val
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		vals = e.evalMulti(vs.Values[0], len(vs.Names), s)
	} else {
		for _, rhs := range vs.Values {
			vals = append(vals, e.eval(rhs, s))
		}
	}
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		v := e.varOf(name)
		if v == nil {
			continue
		}
		if len(vs.Values) == 0 {
			// Zero value: 0 for integers, nil (length 0) for slices.
			if isIntegerKind(v.Type()) {
				s.killInt(v)
				s.setIv(v, meetType(Const(0), v.Type()))
			} else if isLenTracked(v.Type()) {
				s.killSlice(v)
				s.setLenIv(v, Const(0))
			}
			continue
		}
		if i >= len(vals) {
			continue
		}
		var rhs ast.Expr
		if len(vs.Values) == len(vs.Names) {
			rhs = vs.Values[i]
		}
		e.assignVar(v, vals[i], rhs, vs.Pos(), s)
	}
}

func (e *Engine) returnStmt(x *ast.ReturnStmt, s *VState) {
	if len(x.Results) == 0 {
		// Naked return: named results carry the values.
		for i, rv := range e.results {
			if i >= len(e.resultIvs) {
				break
			}
			v := val{iv: Top()}
			if rv != nil && isIntegerKind(rv.Type()) {
				v = val{iv: s.get(rv), dv: s.dv[rv]}
			}
			e.joinResult(i, v, rv, s)
		}
		e.recordSameLenVars(e.results, s)
		return
	}
	if len(x.Results) == 1 && len(e.resultIvs) > 1 {
		vals := e.evalMulti(x.Results[0], len(e.resultIvs), s)
		for i := range vals {
			e.joinResult(i, vals[i], nil, s)
		}
		e.recordSameLenExprs(nil, s) // no per-result expressions to compare
		return
	}
	var vals []val
	for _, r := range x.Results {
		vals = append(vals, e.eval(r, s))
	}
	for i := range vals {
		if i >= len(e.resultIvs) {
			break
		}
		e.joinResult(i, vals[i], e.wrapFreeVar(x.Results[i], s), s)
	}
	e.recordSameLenExprs(x.Results, s)
}

// joinResult accumulates one return site's contribution to result i.
// rv, when non-nil, is a wrap-free variable holding the returned value
// (for min-of-params proofs against pristine parameters).
func (e *Engine) joinResult(i int, v val, rv *types.Var, s *VState) {
	e.resultIvs[i] = e.resultIvs[i].Join(v.iv)
	e.resultDv[i] = unionD(e.resultDv[i], v.dv)
	minset := map[int]bool{}
	if rv != nil {
		for p, pv := range e.params {
			if pv == nil || !s.pristine[pv] || !isIntegerKind(pv.Type()) {
				continue
			}
			if pv == rv || s.le[rv][pv] || s.lt[rv][pv] {
				minset[p] = true
			}
		}
	}
	if e.resultMin[i] == nil {
		e.resultMin[i] = minset
	} else {
		for p := range e.resultMin[i] {
			if !minset[p] {
				delete(e.resultMin[i], p)
			}
		}
	}
}

// recordSameLenExprs intersects, across return sites, which earlier
// results each slice result provably shares a length with (both nil,
// or variables in one length class).
func (e *Engine) recordSameLenExprs(exprs []ast.Expr, s *VState) {
	for j := range e.resultIvs {
		set := map[int]bool{}
		if j < len(exprs) {
			for i := 0; i < j && i < len(exprs); i++ {
				if e.sameLenExprs(exprs[i], exprs[j], s) {
					set[i] = true
				}
			}
		}
		if e.resultLen[j] == nil {
			e.resultLen[j] = set
		} else {
			for i := range e.resultLen[j] {
				if !set[i] {
					delete(e.resultLen[j], i)
				}
			}
		}
	}
}

func (e *Engine) recordSameLenVars(rvs []*types.Var, s *VState) {
	for j := range e.resultIvs {
		set := map[int]bool{}
		if j < len(rvs) && rvs[j] != nil && isLenTracked(rvs[j].Type()) {
			for i := 0; i < j && i < len(rvs); i++ {
				if rvs[i] != nil && isLenTracked(rvs[i].Type()) && s.sameLen(rvs[i], rvs[j]) {
					set[i] = true
				}
			}
		}
		if e.resultLen[j] == nil {
			e.resultLen[j] = set
		} else {
			for i := range e.resultLen[j] {
				if !set[i] {
					delete(e.resultLen[j], i)
				}
			}
		}
	}
}

func (e *Engine) sameLenExprs(a, b ast.Expr, s *VState) bool {
	ta, tb := e.Info.TypeOf(a), e.Info.TypeOf(b)
	if ta == nil || tb == nil {
		return false
	}
	if _, ok := ta.Underlying().(*types.Slice); !ok {
		if tva, ok2 := e.Info.Types[a]; !ok2 || !tva.IsNil() {
			return false
		}
	}
	if _, ok := tb.Underlying().(*types.Slice); !ok {
		if tvb, ok2 := e.Info.Types[b]; !ok2 || !tvb.IsNil() {
			return false
		}
	}
	if e.isNilExpr(a) && e.isNilExpr(b) {
		return true
	}
	va, vb := e.plainVar(a), e.plainVar(b)
	return va != nil && vb != nil && s.sameLen(va, vb)
}

func (e *Engine) isNilExpr(x ast.Expr) bool {
	tv, ok := e.Info.Types[x]
	return ok && tv.IsNil()
}

// makeRange assembles the function's serializable summary from the
// accumulated return facts and the unproven sites.
func (e *Engine) makeRange(decl *ast.FuncDecl) *FuncRange {
	fr := &FuncRange{Params: len(e.params)}
	if len(e.resultIvs) > 0 {
		fr.Results = make([]ResultRange, len(e.resultIvs))
		for i, iv := range e.resultIvs {
			if iv.IsEmpty() {
				iv = Top() // no return reached (panic-only path)
			}
			rr := ResultRange{Lo: iv.Lo, Hi: iv.Hi}
			for p := range e.resultMin[i] {
				rr.MinOfParams = append(rr.MinOfParams, p)
			}
			sort.Ints(rr.MinOfParams)
			rr.Params = e.resultDv[i].ParamBits()
			rr.Wire = e.resultDv[i].FromWire()
			for p := range e.resultLen[i] {
				rr.SameLenAs = append(rr.SameLenAs, p)
			}
			sort.Ints(rr.SameLenAs)
			fr.Results[i] = rr
		}
	}
	// Unproven sites whose index derives from a parameter surface as
	// IndexParams for callers to prove or report.
	seen := map[string]bool{}
	for _, site := range e.fr.Sites {
		if site.Proven {
			continue
		}
		for _, p := range site.Deriv.ParamBits() {
			ip := IndexParam{
				Param:     p,
				BaseParam: -1,
				Le:        site.AllowEq,
				What:      site.Kind,
				Pos:       toPosition(e.Fset.Position(site.Pos)),
				Via:       site.Via,
			}
			if site.idxParam == p {
				ip.BaseParam = site.baseParam
			}
			key := fmt.Sprintf("%d|%d|%v|%s|%v", ip.Param, ip.BaseParam, ip.Le, ip.What, ip.Pos)
			if seen[key] {
				continue
			}
			seen[key] = true
			fr.IndexParams = append(fr.IndexParams, ip)
		}
	}
	return fr
}

// --- expression evaluation ------------------------------------------------

// eval computes an expression's abstract value, recording proved
// intervals during the recording sweep.
func (e *Engine) eval(x ast.Expr, s *VState) val {
	v := e.eval1(x, s)
	if e.record {
		if t := e.Info.TypeOf(x); t != nil && isIntegerKind(t) && !v.iv.IsTop() {
			e.fr.ExprIv[x] = v.iv
		}
	}
	return v
}

func (e *Engine) eval1(x ast.Expr, s *VState) val {
	if tv, ok := e.Info.Types[x]; ok {
		if iv, isConst := constIv(tv); isConst {
			return val{iv: iv}
		}
	}
	switch x := x.(type) {
	case *ast.Ident:
		v := e.varOf(x)
		if v != nil && isIntegerKind(v.Type()) {
			return val{iv: s.get(v), dv: s.dv[v]}
		}
		return val{iv: Top()}
	case *ast.ParenExpr:
		return e.eval1(x.X, s)
	case *ast.UnaryExpr:
		in := e.eval(x.X, s)
		if x.Op == token.SUB {
			iv := in.iv.Neg()
			if t := e.Info.TypeOf(x); t != nil && isIntegerKind(t) {
				iv = meetType(iv, t)
			} else {
				iv = Top()
			}
			return val{iv: iv, dv: in.dv}
		}
		if x.Op == token.ADD {
			return in
		}
		return val{iv: Top(), dv: in.dv}
	case *ast.BinaryExpr:
		if x.Op == token.LAND || x.Op == token.LOR {
			// Short-circuit: the right operand only runs under the
			// left's refinement.
			e.eval(x.X, s)
			rs := e.refine(s.clone(), x.X, x.Op == token.LAND)
			e.eval(x.Y, rs)
			return val{iv: Top()}
		}
		a := e.eval(x.X, s)
		b := e.eval(x.Y, s)
		if isComparison(x.Op) {
			return val{iv: Top(), dv: unionD(a.dv, b.dv)}
		}
		iv := binOp(x.Op, a.iv, b.iv)
		if t := e.Info.TypeOf(x); t != nil && isIntegerKind(t) {
			iv = meetType(iv, t)
		} else {
			iv = Top()
		}
		return val{iv: iv, dv: unionD(a.dv, b.dv)}
	case *ast.CallExpr:
		vs := e.evalCall(x, s)
		if len(vs) == 1 {
			return vs[0]
		}
		return val{iv: Top()}
	case *ast.IndexExpr:
		if tv, ok := e.Info.Types[x.X]; ok && tv.IsType() {
			return val{iv: Top()} // generic instantiation, not indexing
		}
		e.eval(x.X, s)
		idx := e.eval(x.Index, s)
		if bt := e.Info.TypeOf(x.X); bt != nil && indexableSeq(bt) {
			e.addLocalSite("index", x.Index, x.X, idx, false, s)
		}
		if t := e.Info.TypeOf(x); t != nil && isIntegerKind(t) {
			return val{iv: MachineRange(t)}
		}
		return val{iv: Top()}
	case *ast.IndexListExpr:
		return val{iv: Top()}
	case *ast.SliceExpr:
		e.eval(x.X, s)
		bt := e.Info.TypeOf(x.X)
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b == nil {
				continue
			}
			bv := e.eval(b, s)
			if bt != nil && indexableSeq(bt) {
				e.addLocalSite("slice bound", b, x.X, bv, true, s)
			}
		}
		return val{iv: Top()}
	case *ast.SelectorExpr:
		e.eval1(x.X, s)
		return val{iv: Top()}
	case *ast.StarExpr:
		e.eval(x.X, s)
		return val{iv: Top()}
	case *ast.TypeAssertExpr:
		e.eval(x.X, s)
		return val{iv: Top()}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			e.eval(el, s)
		}
		return val{iv: Top()}
	case *ast.KeyValueExpr:
		e.eval(x.Value, s)
		return val{iv: Top()}
	}
	return val{iv: Top()}
}

// evalIvQuiet evaluates an expression's interval without recording
// sites or expression intervals (for re-evaluation inside refinements
// and proofs).
func (e *Engine) evalIvQuiet(x ast.Expr, s *VState) Interval {
	saved := e.record
	e.record = false
	v := e.eval1(x, s)
	e.record = saved
	return v.iv
}

// addLocalSite registers one index/slice-bound occurrence, attempting
// the bounds proof against the current state.
func (e *Engine) addLocalSite(kind string, expr, base ast.Expr, v val, allowEq bool, s *VState) {
	if !e.record {
		return
	}
	site := &Site{
		Kind:      kind,
		Expr:      expr,
		Base:      base,
		Pos:       expr.Pos(),
		AllowEq:   allowEq,
		Deriv:     v.dv,
		baseParam: -1,
		idxParam:  -1,
	}
	site.Proven = e.provenBound(expr, base, v.iv, allowEq, s)
	if bv := e.plainVar(base); bv != nil {
		site.baseParam = e.pristineParam(bv, s)
	}
	if w := e.wrapFreeVar(expr, s); w != nil {
		site.idxParam = e.pristineParam(w, s)
	}
	e.fr.Sites = append(e.fr.Sites, site)
	e.fr.siteByExpr[expr] = site
}

// pristineParam returns v's parameter index when v is a parameter the
// function has not reassigned, else -1.
func (e *Engine) pristineParam(v *types.Var, s *VState) int {
	if v == nil || !s.pristine[v] {
		return -1
	}
	if i, ok := e.pristineIn[v]; ok {
		return i
	}
	return -1
}

// provenBound discharges idx ∈ [0, len(base)) (or [0, len] for slice
// bounds): numerically against the length interval, relationally via
// the <len/≤len facts (directly or through a same-length slice), or
// through a length-symbol variable the index is ordered against.
func (e *Engine) provenBound(expr, base ast.Expr, idxIv Interval, allowEq bool, s *VState) bool {
	if idxIv.IsEmpty() {
		return true // unreachable
	}
	if !idxIv.NonNegative() {
		return false
	}
	ltOK := func(hi, lo int64) bool {
		if hi == PosInf || lo == NegInf {
			return false
		}
		if allowEq {
			return hi <= lo
		}
		return hi < lo
	}
	if n, ok := arrayLen(e.Info.TypeOf(base)); ok {
		return ltOK(idxIv.Hi, n)
	}
	bv := e.plainVar(base)
	if bv == nil {
		return false
	}
	if ltOK(idxIv.Hi, s.getLen(bv).Lo) {
		return true
	}
	iv0 := e.wrapFreeVar(expr, s)
	if iv0 == nil {
		return false
	}
	if s.ltLen[iv0][bv] || (allowEq && s.leLen[iv0][bv]) {
		return true
	}
	for other := range s.ltLen[iv0] {
		if s.sameLen(other, bv) {
			return true
		}
	}
	if allowEq {
		for other := range s.leLen[iv0] {
			if s.sameLen(other, bv) {
				return true
			}
		}
	}
	for sym := range s.lenSyms[bv] {
		w, ok := sym.(*types.Var)
		if !ok {
			continue
		}
		if w == iv0 {
			if allowEq {
				return true // idx == len(base) exactly
			}
			continue
		}
		if s.lt[iv0][w] || (allowEq && s.le[iv0][w]) {
			return true
		}
		if ltOK(idxIv.Hi, s.get(w).Lo) {
			return true
		}
	}
	return false
}

// --- calls ----------------------------------------------------------------

func (e *Engine) calleeOf(call *ast.CallExpr) *types.Func {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := e.Info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := e.Info.Selections[f]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := e.Info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// evalCall evaluates a call (or conversion, or builtin), returning one
// val per result. Summarized callees contribute result intervals,
// min-of-params clamping against the actual arguments, derivations,
// and lifted unproven index sites.
func (e *Engine) evalCall(call *ast.CallExpr, s *VState) []val {
	if tv, ok := e.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		in := e.eval(call.Args[0], s)
		from := e.Info.TypeOf(call.Args[0])
		to := tv.Type
		if from != nil && isIntegerKind(from) && isIntegerKind(to) {
			iv := convertIv(in.iv, from, to)
			if e.lenBoundedConv(call.Args[0], from, to, s) {
				iv = in.iv // value-preserving: operand sits under a length
			}
			return []val{{
				iv: iv,
				dv: in.dv.step(call.Pos(), "converted to "+types.TypeString(to, nil)),
			}}
		}
		return []val{{iv: Top(), dv: in.dv}}
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.Info.Uses[id].(*types.Builtin); ok {
			return e.evalBuiltin(b, call, s)
		}
	}

	var argVals []val
	var argExprs []ast.Expr
	var fn *types.Func
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = e.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := e.Info.Selections[f]; ok {
			fn, _ = sel.Obj().(*types.Func)
			// Method call: the receiver occupies parameter slot 0 in
			// the callee's summary.
			e.eval1(f.X, s)
			argVals = append(argVals, val{iv: Top()})
			argExprs = append(argExprs, f.X)
		} else {
			fn, _ = e.Info.Uses[f.Sel].(*types.Func)
		}
	default:
		e.eval(call.Fun, s)
	}
	for _, a := range call.Args {
		argVals = append(argVals, e.eval(a, s))
		argExprs = append(argExprs, a)
	}

	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	nres := 1
	if sig != nil {
		nres = sig.Results().Len()
	} else if t := e.Info.TypeOf(call); t != nil {
		if tu, ok := t.(*types.Tuple); ok {
			nres = tu.Len()
		}
	}
	if nres == 0 {
		nres = 1 // keep single-value shape for expression contexts
	}
	out := make([]val, nres)
	for i := range out {
		out[i] = val{iv: Top()}
	}
	if fn == nil {
		return out
	}
	if ridx, ok := sourceFuncs[fn.FullName()]; ok && ridx < nres {
		iv := Top()
		if sig != nil && ridx < sig.Results().Len() {
			iv = MachineRange(sig.Results().At(ridx).Type())
		}
		out[ridx] = val{
			iv: iv,
			dv: Deriv{
				mask:  1 << sourceBit,
				chain: &Step{Pos: call.Pos(), What: "read from wire by " + fn.Name()},
			},
		}
		return out
	}
	rr := e.lookup(fn)
	if rr == nil {
		return out
	}
	for i := range out {
		if i >= len(rr.Results) {
			break
		}
		r := rr.Results[i]
		iv := Interval{r.Lo, r.Hi}
		var dv Deriv
		for _, p := range r.MinOfParams {
			if p < len(argVals) {
				if ah := argVals[p].iv.Hi; ah != PosInf && (iv.Hi == PosInf || ah < iv.Hi) {
					iv.Hi = ah
					if iv.Lo > iv.Hi {
						iv.Lo = iv.Hi
					}
				}
			}
		}
		for _, p := range r.Params {
			if p < len(argVals) {
				dv = unionD(dv, argVals[p].dv)
			}
		}
		if r.Wire {
			dv.mask |= 1 << sourceBit
		}
		dv = dv.step(call.Pos(), "returned by "+fn.Name())
		if sig != nil && i < sig.Results().Len() {
			if rt := sig.Results().At(i).Type(); isIntegerKind(rt) {
				iv = meetType(iv, rt)
			} else {
				iv = Top()
			}
		}
		out[i] = val{iv: iv, dv: dv}
	}
	if e.record {
		e.liftSites(call, fn, rr, argVals, argExprs, s)
	}
	return out
}

// liftSites imports a callee's unproven param-indexed sites at this
// call: proved here when the argument is ordered against the matching
// slice argument, otherwise re-exposed with the argument's derivation.
func (e *Engine) liftSites(call *ast.CallExpr, fn *types.Func, rr *FuncRange, argVals []val, argExprs []ast.Expr, s *VState) {
	for _, ip := range rr.IndexParams {
		p := ip.Param
		if p < 0 || p >= len(argVals) {
			continue
		}
		av := argVals[p]
		var ax ast.Expr
		if p < len(argExprs) {
			ax = argExprs[p]
		}
		site := &Site{
			Kind:      ip.What,
			Expr:      ax,
			Pos:       call.Pos(),
			AllowEq:   ip.Le,
			Deriv:     av.dv,
			Callee:    fn,
			CalleePos: ip.Pos,
			Via:       fn.Name(),
			baseParam: -1,
			idxParam:  -1,
		}
		if ax != nil {
			site.Pos = ax.Pos()
		}
		if ip.Via != "" {
			site.Via = fn.Name() + " → " + ip.Via
		}
		if ip.BaseParam >= 0 && ip.BaseParam < len(argExprs) && ax != nil {
			bx := argExprs[ip.BaseParam]
			site.Base = bx
			site.Proven = e.provenBound(ax, bx, av.iv, ip.Le, s)
			if bw := e.plainVar(bx); bw != nil {
				site.baseParam = e.pristineParam(bw, s)
			}
		}
		if ax != nil {
			if w := e.wrapFreeVar(ax, s); w != nil {
				site.idxParam = e.pristineParam(w, s)
			}
		}
		e.fr.Sites = append(e.fr.Sites, site)
		if ax != nil {
			if _, taken := e.fr.siteByExpr[ax]; !taken {
				e.fr.siteByExpr[ax] = site
			}
		}
	}
}

func (e *Engine) evalBuiltin(b *types.Builtin, call *ast.CallExpr, s *VState) []val {
	switch b.Name() {
	case "len", "cap":
		if len(call.Args) == 1 {
			e.eval(call.Args[0], s)
			return []val{{iv: e.lenIvOf(call.Args[0], b.Name() == "cap", s)}}
		}
	case "min", "max":
		var out val
		for i, a := range call.Args {
			v := e.eval(a, s)
			if i == 0 {
				out = v
				continue
			}
			if b.Name() == "min" {
				out.iv = out.iv.MinI(v.iv)
			} else {
				out.iv = out.iv.MaxI(v.iv)
			}
			out.dv = unionD(out.dv, v.dv)
		}
		if len(call.Args) > 0 {
			return []val{out}
		}
	}
	for _, a := range call.Args {
		e.eval(a, s)
	}
	return []val{{iv: Top()}}
}

// lenIvOf is the interval of len(arg) (or cap, which only adds slack
// above).
func (e *Engine) lenIvOf(arg ast.Expr, isCap bool, s *VState) Interval {
	t := e.Info.TypeOf(arg)
	if t == nil {
		return Interval{0, PosInf}
	}
	if n, ok := arrayLen(t); ok {
		return Const(n)
	}
	if v := e.plainVar(arg); v != nil && isLenTracked(v.Type()) {
		li := s.getLen(v)
		if isCap {
			return Interval{li.Lo, PosInf}
		}
		return li
	}
	return Interval{0, PosInf}
}

func (e *Engine) evalMulti(x ast.Expr, n int, s *VState) []val {
	if call, ok := unparen(x).(*ast.CallExpr); ok {
		vs := e.evalCall(call, s)
		for len(vs) < n {
			vs = append(vs, val{iv: Top()})
		}
		return vs[:n]
	}
	e.eval(x, s)
	out := make([]val, n)
	for i := range out {
		out[i] = val{iv: Top()}
	}
	return out
}

// --- branch refinement ----------------------------------------------------

// refine sharpens a state clone under cond having the given truth
// value. It may return the state unchanged (but never nil).
func (e *Engine) refine(s *VState, cond ast.Expr, polarity bool) *VState {
	cond = unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return e.refine(s, x.X, !polarity)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if polarity {
				s = e.refine(s, x.X, true)
				return e.refine(s, x.Y, true)
			}
			return s
		case token.LOR:
			if !polarity {
				s = e.refine(s, x.X, false)
				return e.refine(s, x.Y, false)
			}
			return s
		}
		if isComparison(x.Op) {
			op := x.Op
			if !polarity {
				op = negateCmp(op)
			}
			e.refineCmp(s, op, x)
		}
	}
	return s
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

func (e *Engine) refineCmp(s *VState, op token.Token, x *ast.BinaryExpr) {
	switch op {
	case token.LSS:
		e.refineLess(s, x.X, x.Y, true)
	case token.LEQ:
		e.refineLess(s, x.X, x.Y, false)
	case token.GTR:
		e.refineLess(s, x.Y, x.X, true)
	case token.GEQ:
		e.refineLess(s, x.Y, x.X, false)
	case token.EQL:
		e.refineEq(s, x)
	case token.NEQ:
		e.refineNeq(s, x.X, x.Y)
	}
}

// refineLess installs a < b (strict) or a ≤ b: numeric tightening on
// both sides, ordering relations between wrap-free variables, <len
// facts when one side is len(slice), and length-interval tightening.
func (e *Engine) refineLess(s *VState, a, b ast.Expr, strict bool) {
	av := e.evalIvQuiet(a, s)
	bv := e.evalIvQuiet(b, s)
	if av.IsEmpty() || bv.IsEmpty() {
		return
	}
	va := e.wrapFreeVar(a, s)
	vb := e.wrapFreeVar(b, s)
	hi := bv.Hi
	if strict && hi != PosInf && hi != NegInf {
		hi--
	}
	lo := av.Lo
	if strict && lo != NegInf && lo != PosInf {
		lo++
	}
	if va != nil {
		if ni := s.get(va).Meet(Interval{NegInf, hi}); !ni.IsEmpty() {
			s.setIv(va, ni)
		}
	}
	if vb != nil {
		if ni := s.get(vb).Meet(Interval{lo, PosInf}); !ni.IsEmpty() {
			s.setIv(vb, ni)
		}
	}
	if va != nil && vb != nil && va != vb {
		if strict {
			s.addRel(s.lt, va, vb)
		} else {
			s.addRel(s.le, va, vb)
		}
	}
	if va != nil {
		if ls := e.lenOperand(b, s); ls != nil {
			if strict {
				s.addRel(s.ltLen, va, ls)
			} else {
				s.addRel(s.leLen, va, ls)
			}
		}
	}
	if ls := e.lenOperand(a, s); ls != nil {
		if ni := s.getLen(ls).Meet(Interval{0, hi}); !ni.IsEmpty() {
			s.setLenIv(ls, ni)
		}
	}
	if ls := e.lenOperand(b, s); ls != nil && lo > 0 {
		if ni := s.getLen(ls).Meet(Interval{lo, PosInf}); !ni.IsEmpty() {
			s.setLenIv(ls, ni)
		}
	}
}

func (e *Engine) refineEq(s *VState, x *ast.BinaryExpr) {
	a, b := x.X, x.Y
	av := e.evalIvQuiet(a, s)
	bv := e.evalIvQuiet(b, s)
	m := av.Meet(bv)
	va := e.wrapFreeVar(a, s)
	vb := e.wrapFreeVar(b, s)
	if !m.IsEmpty() {
		if va != nil {
			s.setIv(va, meetType(m, va.Type()))
		}
		if vb != nil {
			s.setIv(vb, meetType(m, vb.Type()))
		}
	}
	if va != nil && vb != nil && va != vb {
		s.addRel(s.le, va, vb)
		s.addRel(s.le, vb, va)
	}
	la := e.lenOperand(a, s)
	lb := e.lenOperand(b, s)
	if la != nil {
		if ni := s.getLen(la).Meet(bv); !ni.IsEmpty() {
			s.setLenIv(la, ni)
		}
		if vb != nil {
			s.addLenSym(la, vb)
			s.addRel(s.leLen, vb, la)
		}
	}
	if lb != nil {
		if ni := s.getLen(lb).Meet(av); !ni.IsEmpty() {
			s.setLenIv(lb, ni)
		}
		if va != nil {
			s.addLenSym(lb, va)
			s.addRel(s.leLen, va, lb)
		}
	}
	if la != nil && lb != nil && la != lb {
		s.mergeLen(la, lb, lenTokenKey{node: x})
	}
}

// refineNeq nudges a closed endpoint off an excluded constant:
// n ≥ 0 ∧ n ≠ 0 ⇒ n ≥ 1.
func (e *Engine) refineNeq(s *VState, a, b ast.Expr) {
	e.neqSide(s, a, b)
	e.neqSide(s, b, a)
}

func (e *Engine) neqSide(s *VState, x, c ast.Expr) {
	cv := e.evalIvQuiet(c, s)
	if cv.IsEmpty() || cv.Lo != cv.Hi || cv.Lo == NegInf || cv.Lo == PosInf {
		return
	}
	v := e.wrapFreeVar(x, s)
	if v == nil {
		return
	}
	iv := s.get(v)
	if iv.IsEmpty() || iv.Lo == iv.Hi {
		return
	}
	if iv.Lo == cv.Lo {
		s.setIv(v, Interval{iv.Lo + 1, iv.Hi})
	} else if iv.Hi == cv.Lo {
		s.setIv(v, Interval{iv.Lo, iv.Hi - 1})
	}
}

// rangeBind is the body-edge binding for a range statement: the key
// variable gets its per-iteration facts (0 ≤ key < len(X), or < n for
// range-over-int).
func (e *Engine) rangeBind(rs *ast.RangeStmt, out *VState) *VState {
	s := out.clone()
	var keyVar *types.Var
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		keyVar = e.varOf(id)
	}
	if keyVar != nil {
		e.killByType(keyVar, s)
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		if v := e.varOf(id); v != nil {
			e.killByType(v, s)
		}
	}
	if keyVar == nil || !isIntegerKind(keyVar.Type()) {
		return s
	}
	t := e.Info.TypeOf(rs.X)
	if t == nil {
		return s
	}
	boundKey := func(hi int64) {
		s.setIv(keyVar, meetType(Interval{0, hi}, keyVar.Type()))
	}
	if n, ok := arrayLen(t); ok {
		boundKey(n - 1)
		return s
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		e.bindSeqKey(keyVar, rs.X, s)
	case *types.Basic:
		switch {
		case u.Info()&types.IsString != 0:
			e.bindSeqKey(keyVar, rs.X, s)
		case u.Info()&types.IsInteger != 0:
			nIv := e.evalIvQuiet(rs.X, s)
			hi := nIv.Hi
			if hi != PosInf && hi != NegInf {
				hi--
			}
			boundKey(hi)
			if w := e.wrapFreeVar(rs.X, s); w != nil && w != keyVar {
				s.addRel(s.lt, keyVar, w)
			}
		}
	}
	return s
}

// bindSeqKey installs 0 ≤ key < len(seq) for a slice/string range.
func (e *Engine) bindSeqKey(keyVar *types.Var, seq ast.Expr, s *VState) {
	var hi int64 = PosInf
	if bv := e.plainVar(seq); bv != nil {
		if l := s.getLen(bv); l.Hi != PosInf {
			hi = l.Hi - 1
		}
		s.addRel(s.ltLen, keyVar, bv)
	}
	s.setIv(keyVar, meetType(Interval{0, hi}, keyVar.Type()))
}

// --- helpers --------------------------------------------------------------

func (e *Engine) lookup(fn *types.Func) *FuncRange {
	if e.Lookup == nil {
		return nil
	}
	return e.Lookup(fn)
}

func (e *Engine) varOf(id *ast.Ident) *types.Var {
	if obj, ok := e.Info.Defs[id]; ok {
		v, _ := obj.(*types.Var)
		return v
	}
	v, _ := e.Info.Uses[id].(*types.Var)
	return v
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// plainVar is the variable named by a (possibly parenthesized) ident.
func (e *Engine) plainVar(x ast.Expr) *types.Var {
	if id, ok := unparen(x).(*ast.Ident); ok {
		return e.varOf(id)
	}
	return nil
}

// unwrapConv strips parens and integer conversions proved
// value-preserving for the operand's current interval — the wrap-free
// check that lets `a >= uint64(ncols)` bound a by ncols only when
// uint64(ncols) cannot wrap.
func (e *Engine) unwrapConv(x ast.Expr, s *VState) ast.Expr {
	for {
		x = unparen(x)
		call, ok := x.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return x
		}
		tv, ok := e.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return x
		}
		from := e.Info.TypeOf(call.Args[0])
		if from == nil || !isIntegerKind(from) || !isIntegerKind(tv.Type) {
			return x
		}
		if !FitsConversion(e.evalIvQuiet(call.Args[0], s), from, tv.Type) &&
			!e.lenBoundedConv(call.Args[0], from, tv.Type, s) {
			return x
		}
		x = call.Args[0]
	}
}

// lenBoundedConv reports whether a conversion the interval alone cannot
// prove wrap-free is still value-preserving because the operand is
// relationally below (or at) some tracked length: a Go length is at
// most MaxInt, so an unsigned value under one fits any 64-bit target —
// the `dict[int(v)]` after `if v >= uint64(len(dict))` idiom.
func (e *Engine) lenBoundedConv(arg ast.Expr, from, to types.Type, s *VState) bool {
	b, ok := from.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsUnsigned == 0 {
		return false
	}
	if MachineRange(to).Hi != PosInf {
		return false
	}
	v := e.plainVar(unparen(arg))
	if v == nil {
		return false
	}
	return len(s.ltLen[v]) > 0 || len(s.leLen[v]) > 0
}

// wrapFreeVar is the integer variable an expression reads through
// wrap-free conversions only, or nil.
func (e *Engine) wrapFreeVar(x ast.Expr, s *VState) *types.Var {
	if x == nil {
		return nil
	}
	if v := e.plainVar(e.unwrapConv(x, s)); v != nil && isIntegerKind(v.Type()) {
		return v
	}
	return nil
}

// lenOperand matches len(sl) for a tracked slice/string variable,
// through wrap-free conversions (uint64(len(sl)) and the like).
func (e *Engine) lenOperand(x ast.Expr, s *VState) *types.Var {
	if x == nil {
		return nil
	}
	call, ok := e.unwrapConv(x, s).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := e.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return nil
	}
	if v := e.plainVar(call.Args[0]); v != nil && isLenTracked(v.Type()) {
		return v
	}
	return nil
}

func (e *Engine) killByType(v *types.Var, s *VState) {
	if isIntegerKind(v.Type()) {
		s.killInt(v)
	} else if isLenTracked(v.Type()) {
		s.killSlice(v)
	}
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isIntegerKind(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isLenTracked limits length tracking to slices and strings — types
// whose length changes only through reassignment (maps and channels
// mutate in place).
func isLenTracked(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// indexableSeq reports a sequence type whose indexing is bounds-checked
// against len (maps excluded).
func indexableSeq(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func arrayLen(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return u.Len(), true
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			return a.Len(), true
		}
	}
	return 0, false
}

// constIv extracts the interval of a typed or untyped integer
// constant; values beyond int64 saturate to a sentinel singleton.
func constIv(tv types.TypeAndValue) (Interval, bool) {
	if tv.Value == nil {
		return Interval{}, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return Interval{}, false
	}
	if n, exact := constant.Int64Val(v); exact && n != NegInf && n != PosInf {
		return Const(n), true
	}
	if constant.Sign(v) > 0 {
		return Interval{PosInf, PosInf}, true
	}
	return Interval{NegInf, NegInf}, true
}

// convertIv converts an interval across an integer conversion: value-
// preserving when it fits, else the full target range.
func convertIv(iv Interval, from, to types.Type) Interval {
	if FitsConversion(iv, from, to) {
		return meetType(iv, to)
	}
	return MachineRange(to)
}

// BinOp applies an arithmetic operator to operand intervals without
// the engine's machine-range meet — ExprIv stores post-meet intervals,
// so overflow clients (sizeoverflow's product rule) must recompute the
// raw result from the operands to see whether it actually fits.
func BinOp(op token.Token, a, b Interval) Interval { return binOp(op, a, b) }

func binOp(op token.Token, a, b Interval) Interval {
	switch op {
	case token.ADD:
		return a.Add(b)
	case token.SUB:
		return a.Sub(b)
	case token.MUL:
		return a.Mul(b)
	case token.QUO:
		return a.Div(b)
	case token.REM:
		return a.Rem(b)
	case token.AND:
		return a.And(b)
	case token.OR:
		return a.Or(b)
	case token.XOR:
		return a.Xor(b)
	case token.SHL:
		return a.Shl(b)
	case token.SHR:
		return a.Shr(b)
	case token.AND_NOT:
		return a.AndNot(b)
	}
	return Top()
}

func paramVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	return out
}

func resultVars(decl *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	if decl.Type.Results == nil {
		return out
	}
	for _, f := range decl.Type.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			v, _ := info.Defs[name].(*types.Var)
			out = append(out, v)
		}
	}
	return out
}
