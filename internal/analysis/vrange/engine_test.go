package vrange

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func computeSrc(t *testing.T, src string) *Result {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := cfg.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return Compute(fset, []*ast.File{f}, info, nil)
}

func funcResult(t *testing.T, res *Result, name string) *FuncResult {
	t.Helper()
	for fn, fr := range res.Funcs {
		if fn.Name() == name {
			return fr
		}
	}
	t.Fatalf("no engine result for %q", name)
	return nil
}

func rangeOf(t *testing.T, res *Result, name string) *FuncRange {
	t.Helper()
	for fn, r := range res.ByFunc {
		if fn.Name() == name {
			return r
		}
	}
	t.Fatalf("no range summary for %q", name)
	return nil
}

// sitesOf partitions a function's sites by proof status.
func sitesOf(fr *FuncResult) (proven, unproven []*Site) {
	for _, s := range fr.Sites {
		if s.Proven {
			proven = append(proven, s)
		} else {
			unproven = append(unproven, s)
		}
	}
	return
}

func wantAllProven(t *testing.T, res *Result, name string) {
	t.Helper()
	fr := funcResult(t, res, name)
	if _, unproven := sitesOf(fr); len(unproven) != 0 {
		for _, s := range unproven {
			t.Errorf("%s: unproven %s (deriv wire=%v params=%v)", name, s.Kind, s.Deriv.FromWire(), s.Deriv.ParamBits())
		}
	}
}

func TestGuardRefinementBoundsResult(t *testing.T) {
	res := computeSrc(t, `package p

func clampHi(n int) int {
	if n > 4096 {
		return 4096
	}
	if n < 0 {
		return 0
	}
	return n
}
`)
	r := rangeOf(t, res, "clampHi")
	if len(r.Results) != 1 || r.Results[0].Lo != 0 || r.Results[0].Hi != 4096 {
		t.Errorf("clampHi range = %+v, want [0,4096]", r.Results)
	}
}

func TestDynamicGuardProvesIndex(t *testing.T) {
	res := computeSrc(t, `package p

import "encoding/binary"

// The decoder shape: dictionary size and index both read from the
// wire, validated against each other, then indexed.
func decodeDict(data []byte) uint64 {
	dlenU, _ := binary.Uvarint(data)
	dlen := int(dlenU)
	if dlen <= 0 || dlen > 1<<16 {
		return 0
	}
	dict := make([]uint64, dlen)
	ixU, _ := binary.Uvarint(data)
	ix := int(ixU)
	if ix < 0 || ix >= dlen {
		return 0
	}
	return dict[ix]
}
`)
	wantAllProven(t, res, "decodeDict")
}

func TestShortCircuitUnsignedGuard(t *testing.T) {
	res := computeSrc(t, `package p

import "encoding/binary"

// Two wire-read column ids checked in one short-circuit guard against
// uint64(ncols), where ncols is len(schema): the || refinement and
// the wrap-free conversion unwrap must both fire.
func readPair(data []byte, schema []int) int {
	ncols := len(schema)
	cols := make([]int, ncols)
	aU, _ := binary.Uvarint(data)
	bU, _ := binary.Uvarint(data)
	if aU >= uint64(ncols) || bU >= uint64(ncols) {
		return 0
	}
	return cols[aU] + cols[bU] + schema[aU]
}
`)
	wantAllProven(t, res, "readPair")
}

func TestRangeLoopAndCounterLoop(t *testing.T) {
	res := computeSrc(t, `package p

func sumRange(xs []int) int {
	s := 0
	for i := range xs {
		s += xs[i]
	}
	return s
}

func sumCounter(n int) int {
	xs := make([]int, n)
	s := 0
	for i := 0; i < n; i++ {
		s += xs[i]
	}
	return s
}

func rangeOverInt(n int) int {
	xs := make([]int, n)
	s := 0
	for i := range n {
		s += xs[i]
	}
	return s
}
`)
	wantAllProven(t, res, "sumRange")
	wantAllProven(t, res, "sumCounter")
	wantAllProven(t, res, "rangeOverInt")
}

func TestSelfAppendPreservesStartOffset(t *testing.T) {
	res := computeSrc(t, `package p

// start := len(dst) then self-append: dst[start:] stays in bounds
// because the length only grew.
func pack(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	_ = dst[start:]
	return dst
}
`)
	wantAllProven(t, res, "pack")
}

func TestLenEqualityGuard(t *testing.T) {
	res := computeSrc(t, `package p

func dot(a, b []int) int {
	if len(a) != len(b) {
		return 0
	}
	s := 0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
`)
	wantAllProven(t, res, "dot")
}

func TestMinOfParamsSummary(t *testing.T) {
	res := computeSrc(t, `package p

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// A caller with one constant argument gets a bounded result.
func use(n int) []byte {
	return make([]byte, minInt(n, 4096))
}
`)
	r := rangeOf(t, res, "minInt")
	if len(r.Results) != 1 || len(r.Results[0].MinOfParams) != 2 ||
		r.Results[0].MinOfParams[0] != 0 || r.Results[0].MinOfParams[1] != 1 {
		t.Fatalf("minInt summary = %+v, want MinOfParams [0 1]", r.Results)
	}
	// The call-site clamp: minInt(n, 4096) ≤ 4096.
	fr := funcResult(t, res, "use")
	bounded := false
	for x, iv := range fr.ExprIv {
		if call, ok := x.(*ast.CallExpr); ok && iv.BoundedAbove() && iv.Hi == 4096 {
			_ = call
			bounded = true
		}
	}
	if !bounded {
		t.Errorf("use: no expression proved ≤ 4096; intervals = %v", fr.ExprIv)
	}
}

func TestSameLenAsTwinMakes(t *testing.T) {
	res := computeSrc(t, `package p

func twins(n int) ([]int, []uint64) {
	if n < 0 {
		n = 0
	}
	xs := make([]int, n)
	ys := make([]uint64, n)
	return xs, ys
}

// The caller proves an index into one twin from a bound on the other.
func caller(n, i int) int {
	xs, ys := twins(n)
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i] + int(ys[i])
}
`)
	r := rangeOf(t, res, "twins")
	if len(r.Results) != 2 || len(r.Results[1].SameLenAs) != 1 || r.Results[1].SameLenAs[0] != 0 {
		t.Fatalf("twins summary = %+v, want result 1 SameLenAs [0]", r.Results)
	}
	wantAllProven(t, res, "caller")
}

func TestInterproceduralIndexParam(t *testing.T) {
	res := computeSrc(t, `package p

import "encoding/binary"

func pick(xs []int, i int) int { return xs[i] }

func guarded(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return pick(xs, i)
}

func wild(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	return pick(xs, int(v))
}
`)
	r := rangeOf(t, res, "pick")
	found := false
	for _, ip := range r.IndexParams {
		if ip.Param == 1 && ip.BaseParam == 0 && ip.What == "index" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pick IndexParams = %+v, want param 1 indexing base param 0", r.IndexParams)
	}
	wantAllProven(t, res, "guarded")

	fr := funcResult(t, res, "wild")
	_, unproven := sitesOf(fr)
	if len(unproven) != 1 || !unproven[0].Deriv.FromWire() || unproven[0].Callee == nil {
		t.Fatalf("wild sites = %d unproven (want 1 wire-derived lifted site)", len(unproven))
	}
	if steps := unproven[0].Deriv.Steps(); len(steps) == 0 {
		t.Error("wild: lifted site has no derivation path")
	}
}

func TestWireIndexUnproven(t *testing.T) {
	res := computeSrc(t, `package p

import "encoding/binary"

func bad(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	return xs[v]
}

// The same read, guarded: no finding material.
func good(xs []int, data []byte) int {
	v, _ := binary.Uvarint(data)
	if v >= uint64(len(xs)) {
		return 0
	}
	return xs[v]
}
`)
	fr := funcResult(t, res, "bad")
	_, unproven := sitesOf(fr)
	if len(unproven) != 1 || !unproven[0].Deriv.FromWire() {
		t.Fatalf("bad: want exactly one wire-derived unproven site, got %d", len(unproven))
	}
	wantAllProven(t, res, "good")
}

func TestWideningTerminatesAndStaysSound(t *testing.T) {
	// An up-counting loop with no bound would cycle forever without
	// widening; with it, i's interval must still contain every concrete
	// iterate (lower bound 0 survives, upper blows to +inf).
	res := computeSrc(t, `package p

func count(n int) int {
	s := 0
	for i := 0; i != n; i++ {
		s += i
	}
	return s
}
`)
	fr := funcResult(t, res, "count")
	for x, iv := range fr.ExprIv {
		if id, ok := x.(*ast.Ident); ok && id.Name == "i" {
			if iv.IsEmpty() || iv.Lo < 0 {
				t.Errorf("i interval %v lost the non-negative lower bound", iv)
			}
		}
	}
}

func TestMaskAndModClamps(t *testing.T) {
	res := computeSrc(t, `package p

import "encoding/binary"

// The clamps the old syntactic detection missed: mask and modulo.
func masked(data []byte) []byte {
	v, _ := binary.Uvarint(data)
	return make([]byte, v&0xffff)
}

func modded(data []byte) []byte {
	v, _ := binary.Uvarint(data)
	return make([]byte, v%1024)
}
`)
	for _, name := range []string{"masked", "modded"} {
		fr := funcResult(t, res, name)
		bounded := false
		for _, iv := range fr.ExprIv {
			if iv.BoundedAbove() && iv.NonNegative() && iv.Hi <= 0xffff {
				bounded = true
			}
		}
		if !bounded {
			t.Errorf("%s: make size not proved bounded", name)
		}
	}
}

func TestSliceCopySharesLength(t *testing.T) {
	res := computeSrc(t, `package p

func alias(xs []int, i int) int {
	ys := xs
	if i < 0 || i >= len(xs) {
		return 0
	}
	return ys[i]
}
`)
	wantAllProven(t, res, "alias")
}

func TestPristineGateOnReassignedParam(t *testing.T) {
	// A reassigned parameter must not yield a min-of-params claim.
	res := computeSrc(t, `package p

func sneaky(a int) int {
	a = 1 << 30
	return a
}
`)
	r := rangeOf(t, res, "sneaky")
	if len(r.Results) != 1 || len(r.Results[0].MinOfParams) != 0 {
		t.Errorf("sneaky summary = %+v, want no MinOfParams", r.Results)
	}
	if r.Results[0].Lo != 1<<30 || r.Results[0].Hi != 1<<30 {
		t.Errorf("sneaky result = %+v, want exactly 1<<30", r.Results[0])
	}
}
