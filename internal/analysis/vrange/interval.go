// Package vrange is spartanvet's value-range layer: an interval
// abstract domain over Go integer expressions, run as a forward
// dataflow.Problem on the CFGs of package cfg with branch refinement
// (via the solver's EdgeTransfer hook) and loop widening (via Widen).
//
// The engine tracks, per program point:
//
//   - an interval [Lo, Hi] for every integer variable, sharpened by
//     constants, arithmetic, conversions, len/cap, and comparison
//     guards (`if n > lim.MaxRows { return err }` leaves n ≤ MaxRows
//     on the fall-through edge);
//   - a small relational layer: v < w, v ≤ w, v < len(s), v ≤ len(s),
//     and len-equality classes (`len(a) == len(b)` guards, twin
//     `make`s with the same size), which is what actually discharges
//     the decoder's index proofs — the bounds there are dynamic
//     (`ix >= dlen`, `a >= uint64(ncols)`), not constant;
//   - a wire-derivation mark per variable: whether the value may
//     originate from an untrusted wire read (binary.ReadUvarint and
//     friends), tracked through assignments with no guard kills —
//     unlike taint, a guard does not launder a value's origin, it only
//     (maybe) bounds it.
//
// Per-function results feed three consumers: the indexbound analyzer
// (wire-derived indexes must carry a range proof), the range-aware
// taintalloc/sizeoverflow upgrade in package summary (proved intervals
// replace syntactic clamp detection), and the "rangesummary" package
// fact, which propagates result ranges, min-of-params clamp shapes and
// unproven param-indexed sites bottom-up over call-graph SCCs, across
// package boundaries through the unitchecker's vetx files.
package vrange

import (
	"fmt"
	"go/types"
	"math"
	"math/bits"
)

// NegInf and PosInf are the sentinel endpoint values: an interval with
// Lo == NegInf is unbounded below, Hi == PosInf unbounded above. The
// domain saturates at these sentinels, so a proved bound is always a
// real bound but values beyond ±(2⁶³-1) (e.g. uint64 counts above
// MaxInt64) are simply "unbounded" — conservative, never wrong.
const (
	NegInf = math.MinInt64
	PosInf = math.MaxInt64
)

// Interval is a closed integer interval [Lo, Hi] over mathematical
// integers, with the sentinel endpoints above. Lo > Hi encodes the
// empty interval (unreachable refinement).
type Interval struct {
	Lo, Hi int64
}

// Top is the unbounded interval.
func Top() Interval { return Interval{NegInf, PosInf} }

// Empty is the canonical empty interval.
func Empty() Interval { return Interval{PosInf, NegInf} }

// Const is the singleton interval.
func Const(v int64) Interval { return Interval{v, v} }

// Range builds [lo, hi].
func Range(lo, hi int64) Interval { return Interval{lo, hi} }

// IsEmpty reports the empty interval.
func (i Interval) IsEmpty() bool { return i.Lo > i.Hi }

// IsTop reports full unboundedness.
func (i Interval) IsTop() bool { return i.Lo == NegInf && i.Hi == PosInf }

// BoundedAbove reports a real (non-sentinel) upper bound.
func (i Interval) BoundedAbove() bool { return !i.IsEmpty() && i.Hi != PosInf }

// BoundedBelow reports a real (non-sentinel) lower bound.
func (i Interval) BoundedBelow() bool { return !i.IsEmpty() && i.Lo != NegInf }

// NonNegative reports a proved Lo ≥ 0.
func (i Interval) NonNegative() bool { return !i.IsEmpty() && i.Lo >= 0 }

// Contains reports v ∈ i.
func (i Interval) Contains(v int64) bool { return i.Lo <= v && v <= i.Hi }

// ContainsInterval reports j ⊆ i (the empty interval is in everything).
func (i Interval) ContainsInterval(j Interval) bool {
	if j.IsEmpty() {
		return true
	}
	return i.Lo <= j.Lo && j.Hi <= i.Hi
}

// Join is the interval hull (lattice join).
func (i Interval) Join(j Interval) Interval {
	if i.IsEmpty() {
		return j
	}
	if j.IsEmpty() {
		return i
	}
	return Interval{min(i.Lo, j.Lo), max(i.Hi, j.Hi)}
}

// Meet is the intersection (lattice meet); may be empty.
func (i Interval) Meet(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	m := Interval{max(i.Lo, j.Lo), min(i.Hi, j.Hi)}
	if m.IsEmpty() {
		return Empty()
	}
	return m
}

// Widen is the classic interval widening: any bound that grew since
// prev is blown to its sentinel, so fixpoint chains stabilize in one
// step per direction.
func (i Interval) Widen(next Interval) Interval {
	if i.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return i
	}
	w := next.Join(i)
	if w.Lo < i.Lo {
		w.Lo = NegInf
	}
	if w.Hi > i.Hi {
		w.Hi = PosInf
	}
	return w
}

func (i Interval) String() string {
	if i.IsEmpty() {
		return "[]"
	}
	lo, hi := "-inf", "+inf"
	if i.Lo != NegInf {
		lo = fmt.Sprint(i.Lo)
	}
	if i.Hi != PosInf {
		hi = fmt.Sprint(i.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// --- checked int64 arithmetic on endpoints -------------------------------

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subChecked(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) {
		return 0, false
	}
	v := a * b
	if v/b != a {
		return 0, false
	}
	return v, true
}

// endpoint is one bound during corner evaluation: a finite value or a
// signed infinity.
type endpoint struct {
	v   int64
	inf int // -1 below, +1 above, 0 finite
}

func ep(v int64) endpoint {
	switch v {
	case NegInf:
		return endpoint{inf: -1}
	case PosInf:
		return endpoint{inf: +1}
	}
	return endpoint{v: v}
}

func (e endpoint) sign() int {
	if e.inf != 0 {
		return e.inf
	}
	switch {
	case e.v > 0:
		return 1
	case e.v < 0:
		return -1
	}
	return 0
}

// fromCorners builds the hull of corner results, mapping infinities and
// overflows to sentinel endpoints.
func fromCorners(cs []endpoint) Interval {
	lo, hi := int64(PosInf), int64(NegInf)
	loInf, hiInf := false, false
	for _, c := range cs {
		switch c.inf {
		case -1:
			loInf = true
		case +1:
			hiInf = true
		default:
			lo = min(lo, c.v)
			hi = max(hi, c.v)
		}
	}
	out := Interval{lo, hi}
	if loInf {
		out.Lo = NegInf
	}
	if hiInf {
		out.Hi = PosInf
	}
	if !loInf && !hiInf && out.IsEmpty() {
		return Empty()
	}
	return out
}

func mulCorner(a, b endpoint) endpoint {
	if a.sign() == 0 || b.sign() == 0 {
		// 0 × anything (even unbounded) is 0 for corner purposes: the
		// extreme at this corner is 0.
		if a.inf == 0 && b.inf == 0 {
			if v, ok := mulChecked(a.v, b.v); ok && v != NegInf && v != PosInf {
				return endpoint{v: v}
			}
		}
		return endpoint{v: 0}
	}
	if a.inf != 0 || b.inf != 0 {
		return endpoint{inf: a.sign() * b.sign()}
	}
	if v, ok := mulChecked(a.v, b.v); ok && v != NegInf && v != PosInf {
		return endpoint{v: v}
	}
	return endpoint{inf: a.sign() * b.sign()}
}

// Sentinel semantics are positional: Lo == NegInf and Hi == PosInf are
// genuine unboundedness on their own side, but a sentinel on the
// opposite side (Lo == PosInf from saturation, Hi == NegInf) is the
// numeric boundary value — "the value is at least MaxInt64" — and must
// be computed with, not absorbed, or a negative addend could not pull
// a lower bound back down (the unsoundness the differential test
// catches).

// addLo is the lower-bound sum: NegInf absorbs, everything else adds
// with saturation outward.
func addLo(a, b int64) int64 {
	if a == NegInf || b == NegInf {
		return NegInf
	}
	if v, ok := addChecked(a, b); ok {
		return v // v == PosInf is fine: a true sum ≥ MaxInt64
	}
	if a > 0 || b > 0 {
		return PosInf
	}
	return NegInf
}

// addHi is the upper-bound sum: PosInf absorbs.
func addHi(a, b int64) int64 {
	if a == PosInf || b == PosInf {
		return PosInf
	}
	if v, ok := addChecked(a, b); ok {
		return v
	}
	if a > 0 || b > 0 {
		return PosInf
	}
	return NegInf
}

// Add is mathematical interval addition (no wraparound; callers clamp
// to the machine type separately).
func (i Interval) Add(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	return Interval{addLo(i.Lo, j.Lo), addHi(i.Hi, j.Hi)}
}

// Neg negates: [-Hi, -Lo], with positional sentinel handling (an
// unbounded side flips to the other side; a saturated boundary value
// negates numerically, rounding outward).
func (i Interval) Neg() Interval {
	if i.IsEmpty() {
		return Empty()
	}
	var lo, hi int64
	switch i.Hi {
	case PosInf:
		lo = NegInf // unbounded above → unbounded below
	case NegInf:
		lo = PosInf // value ≤ MinInt64 → negation ≥ MaxInt64(+1)
	default:
		lo = -i.Hi
	}
	switch i.Lo {
	case NegInf:
		hi = PosInf
	case PosInf:
		hi = -math.MaxInt64 // value ≥ MaxInt64 → negation ≤ −MaxInt64
	default:
		hi = -i.Lo
	}
	return Interval{lo, hi}
}

// Sub is i − j.
func (i Interval) Sub(j Interval) Interval { return i.Add(j.Neg()) }

// Mul is mathematical interval multiplication.
func (i Interval) Mul(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	return fromCorners([]endpoint{
		mulCorner(ep(i.Lo), ep(j.Lo)),
		mulCorner(ep(i.Lo), ep(j.Hi)),
		mulCorner(ep(i.Hi), ep(j.Lo)),
		mulCorner(ep(i.Hi), ep(j.Hi)),
	})
}

// Div is Go's truncated division, precise only for a provably positive
// divisor (the decoder's case: sizes over constant ratios); anything
// else is Top, as division by zero panics rather than wraps.
func (i Interval) Div(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	if j.Lo < 1 {
		return Top()
	}
	// Positional sentinels: an unbounded dividend side stays unbounded;
	// a saturated boundary divides numerically (quotients of values
	// beyond ±2⁶³ only move further out, and division by a positive
	// divisor is monotone in the dividend).
	div := func(a endpoint, d int64) endpoint {
		if a.inf != 0 {
			return a
		}
		if d == PosInf {
			return endpoint{v: 0} // a / huge truncates toward zero
		}
		return endpoint{v: a.v / d}
	}
	epLo, epHi := ep(i.Lo), ep(i.Hi)
	if i.Lo == PosInf {
		epLo = endpoint{v: math.MaxInt64}
	}
	if i.Hi == NegInf {
		epHi = endpoint{v: math.MinInt64}
	}
	return fromCorners([]endpoint{
		div(epLo, j.Lo), div(epLo, j.Hi),
		div(epHi, j.Lo), div(epHi, j.Hi),
	})
}

// Rem is Go's a % b for a provably positive divisor: |a%b| < b and
// |a%b| ≤ |a|, with the sign of a.
func (i Interval) Rem(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	if j.Lo < 1 {
		return Top()
	}
	// |a % b| < b, so the result lies in ±(b.Hi−1); each side further
	// clamps by a's own reach on that side (a % b has a's sign).
	bound := int64(PosInf)
	if j.Hi != PosInf {
		bound = j.Hi - 1
	}
	hi := bound
	switch {
	case i.Hi < 0:
		hi = 0
	case i.Hi != PosInf && i.Hi < hi:
		hi = i.Hi
	}
	lo := int64(NegInf)
	if bound != PosInf {
		lo = -bound
	}
	switch {
	case i.Lo >= 0:
		lo = 0
	case i.Lo != NegInf && i.Lo > lo:
		lo = i.Lo
	}
	return Interval{lo, hi}
}

// And is bitwise a & b: when either side is proved non-negative the
// result is within [0, that side's Hi] — this is the mask-clamp
// (`n & 0xffff`) the old syntactic detection missed.
func (i Interval) And(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	switch {
	case j.NonNegative():
		return Interval{0, j.Hi}
	case i.NonNegative():
		return Interval{0, i.Hi}
	}
	return Top()
}

// AndNot is bitwise a &^ b: clearing bits cannot grow a non-negative
// value, so the result stays within [0, a.Hi].
func (i Interval) AndNot(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	if i.NonNegative() {
		return Interval{0, i.Hi}
	}
	return Top()
}

// Or is bitwise a | b; for non-negative operands the result stays
// below the next power of two above both.
func (i Interval) Or(j Interval) Interval { return i.orXor(j) }

// Xor is bitwise a ^ b, same bound as Or.
func (i Interval) Xor(j Interval) Interval { return i.orXor(j) }

func (i Interval) orXor(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	if !i.NonNegative() || !j.NonNegative() {
		return Top()
	}
	h := max(i.Hi, j.Hi)
	if h == PosInf {
		return Interval{0, PosInf}
	}
	n := bits.Len64(uint64(h))
	if n >= 63 {
		return Interval{0, PosInf}
	}
	return Interval{0, int64(1)<<n - 1}
}

// Shl is a << k (mathematical ×2ᵏ; machine wrap handled by the type
// clamp in the engine). Shift counts are non-negative in Go.
func (i Interval) Shl(k Interval) Interval {
	if i.IsEmpty() || k.IsEmpty() {
		return Empty()
	}
	if k.Hi < 0 {
		return Empty() // a negative shift count panics at run time
	}
	kl, kh := max(k.Lo, 0), k.Hi
	pow := func(n int64) int64 {
		if n == PosInf || n >= 63 {
			return PosInf // ≥ 2⁶³: beyond the domain, saturates
		}
		return int64(1) << n
	}
	return i.Mul(Interval{pow(kl), pow(kh)})
}

// Shr is a >> k for non-negative a; shifting possibly-negative values
// is Top.
func (i Interval) Shr(k Interval) Interval {
	if i.IsEmpty() || k.IsEmpty() {
		return Empty()
	}
	if !i.NonNegative() {
		return Top()
	}
	kl, kh := max(k.Lo, 0), min(k.Hi, 63)
	if kh < 0 {
		kh = 0
	}
	lo := i.Lo >> uint(kh)
	hi := i.Hi
	if hi != PosInf {
		hi = hi >> uint(kl)
	}
	return Interval{lo, hi}
}

// MinI is the interval of the builtin min: the numeric min of each
// endpoint pair (sentinels compare numerically, which is exactly the
// unbounded semantics).
func (i Interval) MinI(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	return Interval{min(i.Lo, j.Lo), min(i.Hi, j.Hi)}
}

// MaxI is the interval of the builtin max.
func (i Interval) MaxI(j Interval) Interval {
	if i.IsEmpty() || j.IsEmpty() {
		return Empty()
	}
	return Interval{max(i.Lo, j.Lo), max(i.Hi, j.Hi)}
}

// --- machine types --------------------------------------------------------

// typeRange describes the value set of an integer type: [lo, hi], with
// hiUnbounded for 64-bit unsigned types whose maximum (2⁶⁴−1) is
// beyond the domain.
type typeRange struct {
	lo, hi      int64
	hiUnbounded bool
}

func rangeOfType(t types.Type) (typeRange, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return typeRange{}, false
	}
	switch b.Kind() {
	case types.Int8:
		return typeRange{math.MinInt8, math.MaxInt8, false}, true
	case types.Int16:
		return typeRange{math.MinInt16, math.MaxInt16, false}, true
	case types.Int32, types.UntypedRune:
		return typeRange{math.MinInt32, math.MaxInt32, false}, true
	case types.Int, types.Int64, types.UntypedInt:
		return typeRange{math.MinInt64, math.MaxInt64, false}, true
	case types.Uint8:
		return typeRange{0, math.MaxUint8, false}, true
	case types.Uint16:
		return typeRange{0, math.MaxUint16, false}, true
	case types.Uint32:
		return typeRange{0, math.MaxUint32, false}, true
	case types.Uint, types.Uint64, types.Uintptr:
		return typeRange{0, PosInf, true}, true
	}
	return typeRange{}, false
}

// MachineRange is the interval every value of integer type t lies in
// (with 2⁶⁴−1 saturating to PosInf). Non-integer types get Top.
func MachineRange(t types.Type) Interval {
	r, ok := rangeOfType(t)
	if !ok {
		return Top()
	}
	return Interval{r.lo, r.hi}
}

// meetType intersects a value interval with the possible values of its
// machine type — every stored value satisfies this regardless of how
// the mathematical result wrapped.
func meetType(i Interval, t types.Type) Interval {
	m := i.Meet(MachineRange(t))
	if m.IsEmpty() && !i.IsEmpty() {
		// The mathematical value wrapped: fall back to the type range.
		return MachineRange(t)
	}
	return m
}

// FitsConversion reports that converting a value known to lie in i
// from type `from` to type `to` is value-preserving — i.e. every
// possible value of i (clipped to from's own range) is representable
// in to. This is the proof obligation that retires a sizeoverflow
// narrowing hit, and the wrap-free check for unwrapping conversions
// inside comparisons (`a >= uint64(ncols)` only bounds a by ncols if
// uint64(ncols) cannot wrap).
func FitsConversion(i Interval, from, to types.Type) bool {
	fr, ok := rangeOfType(from)
	if !ok {
		return false
	}
	tr, ok := rangeOfType(to)
	if !ok {
		return false
	}
	if i.IsEmpty() {
		return true
	}
	lo := max(i.Lo, fr.lo)
	hi := min(i.Hi, fr.hi)
	hiUnbounded := fr.hiUnbounded && i.Hi == PosInf
	if lo < tr.lo {
		return false
	}
	if tr.hiUnbounded {
		// Unsigned 64-bit target holds every non-negative value; an
		// unbounded-above source still fits as long as it is one of
		// the 64-bit unsigned types (values < 2⁶⁴).
		return true
	}
	return !hiUnbounded && hi <= tr.hi
}

// FitsType reports that every value of i is representable in t (for
// values whose current static type already constrains them, e.g.
// products). An unbounded interval never fits a bounded type.
func FitsType(i Interval, t types.Type) bool {
	tr, ok := rangeOfType(t)
	if !ok {
		return false
	}
	if i.IsEmpty() {
		return true
	}
	if i.Lo == NegInf || i.Lo < tr.lo {
		return false
	}
	if tr.hiUnbounded {
		return true
	}
	return i.Hi != PosInf && i.Hi <= tr.hi
}
