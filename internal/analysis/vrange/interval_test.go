package vrange

import (
	"go/token"
	"go/types"
	"math"
	"math/rand"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	if !Empty().IsEmpty() || Top().IsEmpty() || Const(3).IsEmpty() {
		t.Fatal("emptiness misclassified")
	}
	if got := Range(1, 5).Join(Range(3, 9)); got != (Interval{1, 9}) {
		t.Errorf("join = %v", got)
	}
	if got := Range(1, 5).Meet(Range(3, 9)); got != (Interval{3, 5}) {
		t.Errorf("meet = %v", got)
	}
	if got := Range(1, 5).Meet(Range(6, 9)); !got.IsEmpty() {
		t.Errorf("disjoint meet = %v, want empty", got)
	}
	if got := Range(0, 10).Widen(Range(0, 11)); got != (Interval{0, PosInf}) {
		t.Errorf("widen grew-above = %v", got)
	}
	if got := Range(0, 10).Widen(Range(-1, 10)); got != (Interval{NegInf, 10}) {
		t.Errorf("widen grew-below = %v", got)
	}
	if got := Range(0, 10).Widen(Range(2, 8)); got != (Interval{0, 10}) {
		t.Errorf("widen shrink = %v, want stable", got)
	}
}

func TestIntervalArithmeticCorners(t *testing.T) {
	cases := []struct {
		name string
		got  Interval
		want Interval
	}{
		{"add", Range(1, 2).Add(Range(10, 20)), Interval{11, 22}},
		{"add-sat", Range(math.MaxInt64-1, math.MaxInt64-1).Add(Const(5)), Interval{PosInf, PosInf}},
		{"sub", Range(10, 20).Sub(Range(1, 2)), Interval{8, 19}},
		{"neg", Range(-3, 7).Neg(), Interval{-7, 3}},
		{"mul-sign", Range(-2, 3).Mul(Range(-5, 4)), Interval{-15, 12}},
		{"mul-inf", Interval{0, PosInf}.Mul(Const(8)), Interval{0, PosInf}},
		{"div", Range(10, 21).Div(Const(2)), Interval{5, 10}},
		{"div-zero", Range(10, 21).Div(Range(0, 2)), Top()},
		{"rem", Interval{NegInf, PosInf}.Rem(Const(16)), Interval{-15, 15}},
		{"rem-nonneg", Interval{0, PosInf}.Rem(Const(16)), Interval{0, 15}},
		{"and-mask", Top().And(Const(0xffff)), Interval{0, 0xffff}},
		{"andnot", Range(0, 100).AndNot(Top()), Interval{0, 100}},
		{"or-pow2", Range(0, 5).Or(Range(0, 9)), Interval{0, 15}},
		{"shl", Range(1, 3).Shl(Const(4)), Interval{16, 48}},
		{"shl-sat", Const(1).Shl(Const(63)), Interval{PosInf, PosInf}},
		{"shr", Range(16, 48).Shr(Const(4)), Interval{1, 3}},
		{"min", Range(0, 100).MinI(Const(10)), Interval{0, 10}},
		{"max", Range(0, 100).MaxI(Const(10)), Interval{10, 100}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestMachineRangeAndFits(t *testing.T) {
	u8 := types.Typ[types.Uint8]
	i32 := types.Typ[types.Int32]
	u64 := types.Typ[types.Uint64]
	i64 := types.Typ[types.Int64]
	if got := MachineRange(u8); got != (Interval{0, 255}) {
		t.Errorf("uint8 range = %v", got)
	}
	if got := MachineRange(u64); got != (Interval{0, PosInf}) {
		t.Errorf("uint64 range = %v", got)
	}
	if !FitsConversion(Range(0, 200), i64, u8) || FitsConversion(Range(0, 300), i64, u8) {
		t.Error("FitsConversion uint8 boundary wrong")
	}
	if !FitsConversion(Range(0, 10), i64, u64) || FitsConversion(Range(-1, 10), i64, u64) {
		t.Error("FitsConversion signed→uint64 must require non-negative")
	}
	if FitsConversion(Interval{0, PosInf}, u64, i64) {
		t.Error("unbounded uint64 fits int64: wrap possible above MaxInt64")
	}
	if !FitsType(Range(0, 255), u8) || FitsType(Range(0, 256), u8) {
		t.Error("FitsType boundary wrong")
	}
	// meetType: a wrapped value falls back to the full machine range.
	if got := meetType(Range(300, 400), u8); got != (Interval{0, 255}) {
		t.Errorf("meetType wrap fallback = %v", got)
	}
	if got := meetType(Range(3, 400), i32); got != (Interval{3, 400}) {
		t.Errorf("meetType in-range = %v", got)
	}
	_ = token.ADD
}

// --- randomized differential: interval ops vs concrete execution ----------
//
// The reference model is direct execution on int64 sample points: for
// every randomly generated op and operand pair, each concrete result
// of concrete operands drawn from the operand intervals must lie in
// the abstract result. This is the same discipline as the BitSet-vs-
// map differential test: any divergence is an interval-domain
// soundness bug (corner selection, saturation, sign handling).

var diffOps = []token.Token{
	token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
	token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT,
}

// concreteOp mirrors Go's evaluation on mathematical int64s, reporting
// ok=false where the operation is undefined (division by zero,
// negative or huge shift) or where int64 arithmetic would overflow —
// the abstract domain treats overflow via type meets, which this test
// exercises separately.
func concreteOp(op token.Token, a, b int64) (int64, bool) {
	switch op {
	case token.ADD:
		return addChecked(a, b)
	case token.SUB:
		return subChecked(a, b)
	case token.MUL:
		return mulChecked(a, b)
	case token.QUO:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return 0, false
		}
		return a / b, true
	case token.REM:
		if b == 0 {
			return 0, false
		}
		if a == math.MinInt64 && b == -1 {
			return 0, false
		}
		return a % b, true
	case token.AND:
		return a & b, true
	case token.OR:
		return a | b, true
	case token.XOR:
		return a ^ b, true
	case token.AND_NOT:
		return a &^ b, true
	case token.SHL:
		if b < 0 || b > 62 {
			return 0, false
		}
		return mulChecked(a, int64(1)<<uint(b))
	case token.SHR:
		if b < 0 || b > 63 {
			return 0, false
		}
		return a >> uint(b), true
	}
	return 0, false
}

// randInterval draws a small-ish interval, occasionally unbounded on
// either side, biased toward boundaries where corner bugs live.
func randInterval(rng *rand.Rand) Interval {
	pick := func() int64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return int64(rng.Intn(3)) - 1
		case 2:
			return int64(rng.Intn(65)) // shift-relevant
		case 3:
			return math.MaxInt64 - int64(rng.Intn(3)) - 1
		case 4:
			return math.MinInt64 + int64(rng.Intn(3)) + 1
		default:
			return rng.Int63n(1<<20) - 1<<19
		}
	}
	lo, hi := pick(), pick()
	if lo > hi {
		lo, hi = hi, lo
	}
	switch rng.Intn(10) {
	case 0:
		lo = NegInf
	case 1:
		hi = PosInf
	}
	return Interval{lo, hi}
}

// sample draws a concrete member of i.
func sample(rng *rand.Rand, i Interval) int64 {
	lo, hi := i.Lo, i.Hi
	if lo == NegInf {
		lo = math.MinInt64 + 1
	}
	if hi == PosInf {
		hi = math.MaxInt64 - 1
	}
	if lo >= hi {
		return lo
	}
	// Pick endpoints often; corner bugs hide there.
	switch rng.Intn(4) {
	case 0:
		return lo
	case 1:
		return hi
	}
	span := uint64(hi - lo)
	if span == math.MaxUint64 {
		return int64(rng.Uint64())
	}
	return lo + int64(rng.Uint64()%(span+1))
}

func TestDifferentialStraightLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		op := diffOps[rng.Intn(len(diffOps))]
		ia, ib := randInterval(rng), randInterval(rng)
		abs := binOp(op, ia, ib)
		for k := 0; k < 8; k++ {
			a, b := sample(rng, ia), sample(rng, ib)
			c, ok := concreteOp(op, a, b)
			if !ok {
				continue
			}
			if c == NegInf || c == PosInf {
				continue // sentinel collision: domain treats as unbounded
			}
			if !abs.Contains(c) {
				t.Fatalf("trial %d: %v %s %v: concrete %d(%d,%d) ∉ abstract %v",
					trial, ia, op, ib, c, a, b, abs)
			}
		}
	}
}

// TestDifferentialChain runs short random straight-line programs — a
// register file of intervals updated by random ops — checking a
// concretely executed trace stays inside every abstract register.
func TestDifferentialChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		const nregs = 4
		abs := make([]Interval, nregs)
		conc := make([]int64, nregs)
		okc := make([]bool, nregs)
		for i := range abs {
			abs[i] = randInterval(rng)
			conc[i] = sample(rng, abs[i])
			okc[i] = conc[i] != NegInf && conc[i] != PosInf
		}
		for step := 0; step < 12; step++ {
			op := diffOps[rng.Intn(len(diffOps))]
			d, a, b := rng.Intn(nregs), rng.Intn(nregs), rng.Intn(nregs)
			abs[d] = binOp(op, abs[a], abs[b])
			if okc[a] && okc[b] {
				c, ok := concreteOp(op, conc[a], conc[b])
				okc[d] = ok && c != NegInf && c != PosInf
				conc[d] = c
			} else {
				okc[d] = false
			}
			if okc[d] && !abs[d].Contains(conc[d]) {
				t.Fatalf("trial %d step %d: %d ∉ %v after %s", trial, step, conc[d], abs[d], op)
			}
		}
	}
}

// TestDifferentialLoop mirrors single-loop programs: a register is
// repeatedly updated by a fixed random op with a fixed operand, the
// abstract side widening after a few iterations (exactly the solver's
// policy); every concrete iterate must stay inside the stabilized
// interval.
func TestDifferentialLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4000; trial++ {
		op := diffOps[rng.Intn(len(diffOps))]
		init := randInterval(rng)
		step := randInterval(rng)
		stepConc := sample(rng, step)
		if stepConc == NegInf || stepConc == PosInf {
			continue
		}
		// Abstract fixpoint with widening after 4 joins.
		cur := init
		for i := 0; ; i++ {
			next := cur.Join(binOp(op, cur, step))
			if next == cur {
				break
			}
			if i >= 4 {
				next = cur.Widen(next)
			}
			if next == cur {
				break
			}
			cur = next
			if i > 200 {
				t.Fatalf("trial %d: loop fixpoint did not stabilize: %v", trial, cur)
			}
		}
		// Concrete trace.
		x := sample(rng, init)
		if x == NegInf || x == PosInf {
			continue
		}
		for i := 0; i < 64; i++ {
			if !cur.Contains(x) {
				t.Fatalf("trial %d iter %d: %d ∉ %v (op %s, step %d, init %v)",
					trial, i, x, cur, op, stepConc, init)
			}
			nx, ok := concreteOp(op, x, stepConc)
			if !ok || nx == NegInf || nx == PosInf {
				break
			}
			x = nx
		}
	}
}
