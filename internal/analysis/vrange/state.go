package vrange

import (
	"go/ast"
	"go/token"
	"go/types"
)

// sourceBit marks wire-derived values in a Deriv mask; lower bits mark
// parameter origins (the same convention as the taint engine's masks).
const sourceBit = 62

// Step is one hop of a derivation path, an immutable chain so
// diagnostics can replay wire-read → index.
type Step struct {
	prev *Step
	Pos  token.Pos
	What string
}

// Deriv is the origin set of a value — which parameters and whether
// the untrusted wire may have produced it — tracked through
// assignments with no guard kills: a bounds check changes what a value
// can be, never where it came from.
type Deriv struct {
	mask  uint64
	chain *Step
}

// FromWire reports an untrusted wire read among the origins.
func (d Deriv) FromWire() bool { return d.mask&(1<<sourceBit) != 0 }

// ParamBits lists parameter-index origins, ascending.
func (d Deriv) ParamBits() []int {
	var out []int
	for i := 0; i < sourceBit; i++ {
		if d.mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Steps returns the recorded path in origin→latest order.
func (d Deriv) Steps() []Step {
	var rev []Step
	for s := d.chain; s != nil; s = s.prev {
		rev = append(rev, *s)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (d Deriv) step(pos token.Pos, what string) Deriv {
	if d.mask == 0 {
		return d
	}
	return Deriv{mask: d.mask, chain: &Step{prev: d.chain, Pos: pos, What: what}}
}

func unionD(ds ...Deriv) Deriv {
	var out Deriv
	for _, d := range ds {
		out.mask |= d.mask
		if out.chain == nil {
			out.chain = d.chain
		}
	}
	return out
}

type varSet map[*types.Var]bool

func (s varSet) clone() varSet {
	if s == nil {
		return nil
	}
	out := make(varSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectSet(a, b varSet) varSet {
	var out varSet
	for v := range a {
		if b[v] {
			if out == nil {
				out = varSet{}
			}
			out[v] = true
		}
	}
	return out
}

func equalSet(a, b varSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// lenTokenKey is an opaque length symbol minted from a stable AST
// anchor (a guard condition, a multi-result call) — deterministic
// across solver iterations, which the fixpoint's state equality needs.
type lenTokenKey struct {
	node ast.Node
	idx  int
}

// symSet is a set of length symbols: *types.Var entries (len(s) equals
// that variable's value) and lenTokenKey entries (opaque equality
// classes). Two slices with intersecting sets have provably equal
// lengths.
type symSet map[any]bool

func (s symSet) clone() symSet {
	if s == nil {
		return nil
	}
	out := make(symSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectSyms(a, b symSet) symSet {
	var out symSet
	for k := range a {
		if b[k] {
			if out == nil {
				out = symSet{}
			}
			out[k] = true
		}
	}
	return out
}

func intersectsSyms(a, b symSet) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func equalSyms(a, b symSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// VState is the per-program-point abstract state. All maps are sparse:
// an absent interval entry means the variable's machine type range, an
// absent relation means "unknown", an absent length interval means
// [0, +inf]. nil *VState is the solver's bottom (unreachable).
type VState struct {
	// iv: proved interval per integer variable.
	iv map[*types.Var]Interval
	// lt, le: v < w / v ≤ w over mathematical values, valid while
	// neither side is reassigned.
	lt, le map[*types.Var]varSet
	// ltLen, leLen: v < len(s) / v ≤ len(s) for slice/string variable
	// s; killed when v or s is reassigned, preserved when s only grows
	// (self-append).
	ltLen, leLen map[*types.Var]varSet
	// lenSyms: the length-symbol set of each slice/string variable,
	// kept transitively closed — any two slices whose sets intersect
	// share all symbols, so len-equality is plain set intersection.
	lenSyms map[*types.Var]symSet
	// lenIv: proved interval of len(s).
	lenIv map[*types.Var]Interval
	// dv: derivation (wire/param origin) per integer variable.
	dv map[*types.Var]Deriv
	// pristine: parameters not reassigned since entry — the soundness
	// gate for "result ≤ param(p)" summaries and param-indexed sites.
	pristine varSet
}

func newVState() *VState {
	return &VState{
		iv:       map[*types.Var]Interval{},
		lt:       map[*types.Var]varSet{},
		le:       map[*types.Var]varSet{},
		ltLen:    map[*types.Var]varSet{},
		leLen:    map[*types.Var]varSet{},
		lenSyms:  map[*types.Var]symSet{},
		lenIv:    map[*types.Var]Interval{},
		dv:       map[*types.Var]Deriv{},
		pristine: varSet{},
	}
}

func (s *VState) clone() *VState {
	out := &VState{
		iv:       make(map[*types.Var]Interval, len(s.iv)),
		lt:       make(map[*types.Var]varSet, len(s.lt)),
		le:       make(map[*types.Var]varSet, len(s.le)),
		ltLen:    make(map[*types.Var]varSet, len(s.ltLen)),
		leLen:    make(map[*types.Var]varSet, len(s.leLen)),
		lenSyms:  make(map[*types.Var]symSet, len(s.lenSyms)),
		lenIv:    make(map[*types.Var]Interval, len(s.lenIv)),
		dv:       make(map[*types.Var]Deriv, len(s.dv)),
		pristine: s.pristine.clone(),
	}
	if out.pristine == nil {
		out.pristine = varSet{}
	}
	for k, v := range s.iv {
		out.iv[k] = v
	}
	for k, v := range s.lt {
		out.lt[k] = v.clone()
	}
	for k, v := range s.le {
		out.le[k] = v.clone()
	}
	for k, v := range s.ltLen {
		out.ltLen[k] = v.clone()
	}
	for k, v := range s.leLen {
		out.leLen[k] = v.clone()
	}
	for k, v := range s.lenSyms {
		out.lenSyms[k] = v.clone()
	}
	for k, v := range s.lenIv {
		out.lenIv[k] = v
	}
	for k, v := range s.dv {
		out.dv[k] = v
	}
	return out
}

// get is the effective interval of an integer variable.
func (s *VState) get(v *types.Var) Interval {
	if i, ok := s.iv[v]; ok {
		return i
	}
	return MachineRange(v.Type())
}

// getLen is the effective interval of len(sl).
func (s *VState) getLen(sl *types.Var) Interval {
	if i, ok := s.lenIv[sl]; ok {
		return i
	}
	return Interval{0, PosInf}
}

// setIv stores an interval, dropping entries at the machine default.
func (s *VState) setIv(v *types.Var, i Interval) {
	if i == MachineRange(v.Type()) {
		delete(s.iv, v)
		return
	}
	s.iv[v] = i
}

// setLenIv stores a length interval, dropping entries at the default.
func (s *VState) setLenIv(sl *types.Var, i Interval) {
	if i == (Interval{0, PosInf}) {
		delete(s.lenIv, sl)
		return
	}
	s.lenIv[sl] = i
}

func (s *VState) addRel(m map[*types.Var]varSet, a, b *types.Var) {
	set := m[a]
	if set == nil {
		set = varSet{}
		m[a] = set
	}
	set[b] = true
}

// addLenSym records that len(sl) equals sym (a variable or an opaque
// token) and re-closes the equality classes: every slice whose set
// intersects sl's new set absorbs the union, so sameLen stays a plain
// intersection test under transitivity (make(n)+make(σ) twins chained
// through a shared symbol).
func (s *VState) addLenSym(sl *types.Var, sym any) {
	set := s.lenSyms[sl].clone()
	if set == nil {
		set = symSet{}
	}
	set[sym] = true
	for changed := true; changed; {
		changed = false
		for other, os := range s.lenSyms {
			if other == sl || !intersectsSyms(os, set) {
				continue
			}
			for k := range os {
				if !set[k] {
					set[k] = true
					changed = true
				}
			}
		}
	}
	for other, os := range s.lenSyms {
		if other != sl && intersectsSyms(os, set) && !equalSyms(os, set) {
			s.lenSyms[other] = set.clone()
		}
	}
	s.lenSyms[sl] = set
}

// mergeLen records a len(a) == len(b) guard via a shared token minted
// from the guard's AST node (stable across solver iterations).
func (s *VState) mergeLen(a, b *types.Var, tok lenTokenKey) {
	s.addLenSym(a, tok)
	s.addLenSym(b, tok)
}

// shareLen records a slice copy v = w: identical lengths. When w has
// no symbols yet, a token minted from the assignment's AST node links
// the two.
func (s *VState) shareLen(v, w *types.Var, anchor ast.Node) {
	if len(s.lenSyms[w]) == 0 {
		s.addLenSym(w, lenTokenKey{node: anchor})
	}
	for sym := range s.lenSyms[w] {
		s.addLenSym(v, sym)
		break // sets are closed; one shared symbol pulls in the rest
	}
}

// sameLen reports provably equal lengths.
func (s *VState) sameLen(a, b *types.Var) bool {
	if a == b {
		return true
	}
	return intersectsSyms(s.lenSyms[a], s.lenSyms[b])
}

// copyRels duplicates w's ordering facts onto v after a wrap-free copy
// v := w, and records v ≤ w ∧ w ≤ v.
func (s *VState) copyRels(v, w *types.Var) {
	if set := s.lt[w]; len(set) > 0 {
		s.lt[v] = set.clone()
	}
	le := s.le[w].clone()
	if le == nil {
		le = varSet{}
	}
	le[w] = true
	s.le[v] = le
	s.addRel(s.le, w, v)
	if set := s.ltLen[w]; len(set) > 0 {
		s.ltLen[v] = set.clone()
	}
	if set := s.leLen[w]; len(set) > 0 {
		s.leLen[v] = set.clone()
	}
}

// killInt drops every fact about an integer variable being reassigned:
// its interval, its derivation, relations on either side, its pristine
// mark, and its appearances as a length symbol.
func (s *VState) killInt(v *types.Var) {
	delete(s.iv, v)
	delete(s.dv, v)
	delete(s.lt, v)
	delete(s.le, v)
	delete(s.ltLen, v)
	delete(s.leLen, v)
	delete(s.pristine, v)
	for a, set := range s.lt {
		if set[v] {
			set = set.clone()
			delete(set, v)
			s.lt[a] = set
		}
	}
	for a, set := range s.le {
		if set[v] {
			set = set.clone()
			delete(set, v)
			s.le[a] = set
		}
	}
	for sl, set := range s.lenSyms {
		if set[v] {
			set = set.clone()
			delete(set, v)
			if len(set) == 0 {
				delete(s.lenSyms, sl)
			} else {
				s.lenSyms[sl] = set
			}
		}
	}
}

// killSlice drops every fact about a slice variable being reassigned.
func (s *VState) killSlice(sl *types.Var) {
	delete(s.lenIv, sl)
	delete(s.lenSyms, sl)
	delete(s.pristine, sl)
	for a, set := range s.ltLen {
		if set[sl] {
			set = set.clone()
			delete(set, sl)
			s.ltLen[a] = set
		}
	}
	for a, set := range s.leLen {
		if set[sl] {
			set = set.clone()
			delete(set, sl)
			s.leLen[a] = set
		}
	}
}

// growLen records a self-append: len(sl) only grew, so v < len(sl) and
// v ≤ len(sl) facts survive, but exact length bindings do not.
func (s *VState) growLen(sl *types.Var) {
	delete(s.lenSyms, sl)
	delete(s.pristine, sl)
	if i, ok := s.lenIv[sl]; ok {
		s.setLenIv(sl, Interval{i.Lo, PosInf})
	}
}

// join merges two reachable states (nil handled by the problem).
func joinState(a, b *VState) *VState {
	out := newVState()
	// Intervals: hull of effective values, stored sparsely.
	for v := range a.iv {
		j := a.get(v).Join(b.get(v))
		if j != MachineRange(v.Type()) {
			out.iv[v] = j
		}
	}
	for v := range b.iv {
		if _, done := out.iv[v]; done {
			continue
		}
		j := a.get(v).Join(b.get(v))
		if j != MachineRange(v.Type()) {
			out.iv[v] = j
		}
	}
	// Relations hold only if proved on both paths.
	joinRel := func(ra, rb map[*types.Var]varSet, dst map[*types.Var]varSet) {
		for v, set := range ra {
			if o := intersectSet(set, rb[v]); o != nil {
				dst[v] = o
			}
		}
	}
	joinRel(a.lt, b.lt, out.lt)
	joinRel(a.le, b.le, out.le)
	joinRel(a.ltLen, b.ltLen, out.ltLen)
	joinRel(a.leLen, b.leLen, out.leLen)
	for sl, set := range a.lenSyms {
		if o := intersectSyms(set, b.lenSyms[sl]); o != nil {
			out.lenSyms[sl] = o
		}
	}
	for sl := range a.lenIv {
		if _, ok := b.lenIv[sl]; !ok {
			continue
		}
		j := a.getLen(sl).Join(b.getLen(sl))
		if j != (Interval{0, PosInf}) {
			out.lenIv[sl] = j
		}
	}
	// Derivations are a may-property: union.
	for v, d := range a.dv {
		out.dv[v] = d
	}
	for v, d := range b.dv {
		out.dv[v] = unionD(out.dv[v], d)
	}
	out.pristine = intersectSet(a.pristine, b.pristine)
	if out.pristine == nil {
		out.pristine = varSet{}
	}
	return out
}

func equalState(a, b *VState) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.iv) != len(b.iv) || len(a.lenIv) != len(b.lenIv) ||
		len(a.dv) != len(b.dv) || !equalSet(a.pristine, b.pristine) {
		return false
	}
	for v, i := range a.iv {
		if b.iv[v] != i {
			return false
		}
	}
	for sl, i := range a.lenIv {
		if b.lenIv[sl] != i {
			return false
		}
	}
	for v, d := range a.dv {
		if b.dv[v].mask != d.mask {
			return false
		}
	}
	// Sparse maps may hold empty sets after kills; compare effective
	// contents.
	for sl, set := range a.lenSyms {
		if len(set) > 0 && !equalSyms(set, b.lenSyms[sl]) {
			return false
		}
	}
	for sl, set := range b.lenSyms {
		if len(set) > 0 && !equalSyms(set, a.lenSyms[sl]) {
			return false
		}
	}
	equalRel := func(ra, rb map[*types.Var]varSet) bool {
		for v, set := range ra {
			if len(set) > 0 && !equalSet(set, rb[v]) {
				return false
			}
		}
		for v, set := range rb {
			if len(set) > 0 && !equalSet(set, ra[v]) {
				return false
			}
		}
		return true
	}
	return equalRel(a.lt, b.lt) && equalRel(a.le, b.le) &&
		equalRel(a.ltLen, b.ltLen) && equalRel(a.leLen, b.leLen)
}

// widenState applies interval widening entry-wise; relations and
// symbol sets pass through intersection (they shrink monotonically, no
// widening needed), derivations through union.
func widenState(prev, next *VState) *VState {
	out := next.clone()
	// Widen over the union of both sparse maps: an entry present only
	// in prev must still be widened against next's (machine-range)
	// default — dropping it would let the bound re-sharpen on the next
	// visit and the fixpoint oscillate forever. The widened interval is
	// met with the machine range so states stay canonical: for 64-bit
	// types the machine bounds are the lattice sentinels, so the meet
	// never undoes a blown bound.
	for v := range prev.iv {
		if _, ok := out.iv[v]; !ok {
			out.iv[v] = Top() // placeholder; overwritten below
		}
	}
	for v := range out.iv {
		w := prev.get(v).Widen(next.get(v))
		out.setIv(v, meetType(w, v.Type()))
	}
	for sl := range prev.lenIv {
		if _, ok := out.lenIv[sl]; !ok {
			out.lenIv[sl] = Top()
		}
	}
	for sl := range out.lenIv {
		w := prev.getLen(sl).Widen(next.getLen(sl))
		if w == (Interval{0, PosInf}) {
			delete(out.lenIv, sl)
		} else {
			out.lenIv[sl] = w
		}
	}
	joinRelInto := func(rp, rn map[*types.Var]varSet, dst map[*types.Var]varSet) {
		for v := range dst {
			if o := intersectSet(rn[v], rp[v]); o != nil {
				dst[v] = o
			} else {
				delete(dst, v)
			}
		}
	}
	joinRelInto(prev.lt, next.lt, out.lt)
	joinRelInto(prev.le, next.le, out.le)
	joinRelInto(prev.ltLen, next.ltLen, out.ltLen)
	joinRelInto(prev.leLen, next.leLen, out.leLen)
	for sl := range out.lenSyms {
		if o := intersectSyms(next.lenSyms[sl], prev.lenSyms[sl]); o != nil {
			out.lenSyms[sl] = o
		} else {
			delete(out.lenSyms, sl)
		}
	}
	for v, d := range prev.dv {
		out.dv[v] = unionD(out.dv[v], d)
	}
	if o := intersectSet(out.pristine, prev.pristine); o != nil {
		out.pristine = o
	} else {
		out.pristine = varSet{}
	}
	return out
}
