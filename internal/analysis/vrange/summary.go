package vrange

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// FactName is the analyzer name range summaries are stored under in a
// FactStore; indexbound and the range-aware summary engine read it.
const FactName = "rangesummary"

// Position is a serializable source position for facts — cross-package
// sites cannot travel as token.Pos.
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func toPosition(p token.Position) Position {
	return Position{File: p.Filename, Line: p.Line, Col: p.Column}
}

// ToTokenPosition converts back for diagnostics.
func (p Position) ToTokenPosition() token.Position {
	return token.Position{Filename: p.File, Line: p.Line, Column: p.Col}
}

// ResultRange describes one result of a function, joined over every
// return site.
type ResultRange struct {
	// Lo and Hi bound the result value (sentinels NegInf/PosInf for
	// unbounded directions).
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	// MinOfParams lists parameters p with result ≤ value(p) proved at
	// every return — the clamp generalization: minInt(a, b) has both
	// parameters here, so a constant argument bounds the result.
	MinOfParams []int `json:"minOf,omitempty"`
	// Params lists parameters whose value may flow into this result
	// (derivation, not taint: guards do not remove entries).
	Params []int `json:"params,omitempty"`
	// Wire reports an untrusted wire read among the result's origins.
	Wire bool `json:"wire,omitempty"`
	// SameLenAs lists earlier result indices whose len provably equals
	// this result's len at every return (twin makes) — what lets a
	// caller prove dicts[a] from a < len(schema).
	SameLenAs []int `json:"sameLenAs,omitempty"`
}

// IndexParam marks a parameter used (possibly via callees) as a slice
// index or slice bound at a site the range analysis could not prove in
// bounds. Callers either prove their argument against the indexed
// slice (BaseParam) or, when the argument is wire-derived, report.
type IndexParam struct {
	Param int `json:"param"`
	// BaseParam is the parameter index of the indexed slice when the
	// site indexes a parameter directly (else -1): the caller can then
	// discharge the proof with arg < len(baseArg).
	BaseParam int      `json:"base"`
	Le        bool     `json:"le,omitempty"` // site allows index == len (slice bound)
	What      string   `json:"what"`
	Pos       Position `json:"pos"`
	Via       string   `json:"via,omitempty"`
}

// FuncRange is the serialized value-range summary of one function,
// keyed in a package fact by types.Func.FullName.
type FuncRange struct {
	Params      int           `json:"params"`
	Results     []ResultRange `json:"results,omitempty"`
	IndexParams []IndexParam  `json:"indexParams,omitempty"`
}

func (f *FuncRange) empty() bool {
	if len(f.IndexParams) > 0 {
		return false
	}
	for _, r := range f.Results {
		if r.Lo != NegInf || r.Hi != PosInf || r.Wire ||
			len(r.MinOfParams) > 0 || len(r.Params) > 0 || len(r.SameLenAs) > 0 {
			return false
		}
	}
	return true
}

func (f *FuncRange) equal(o *FuncRange) bool {
	a, _ := json.Marshal(f)
	b, _ := json.Marshal(o)
	return string(a) == string(b)
}

// RLookup resolves the range summary of a callee, or nil when unknown.
type RLookup func(fn *types.Func) *FuncRange

// Result is one package's computed range summaries plus the
// per-function engine output the analyzers query.
type Result struct {
	// ByFunc holds the range summary of every function declared in the
	// package (empty summaries included).
	ByFunc map[*types.Func]*FuncRange
	// Funcs holds the full engine output per function: expression
	// intervals, index/slice-bound sites with proofs and derivations.
	Funcs map[*types.Func]*FuncResult
}

// Compute builds the package call graph, orders it bottom-up by SCC,
// and runs the range engine over every function body. imported
// resolves summaries of cross-package callees (nil is fine).
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info, imported RLookup) *Result {
	g := callgraph.Build(files, info)
	res := &Result{
		ByFunc: map[*types.Func]*FuncRange{},
		Funcs:  map[*types.Func]*FuncResult{},
	}
	lookup := func(fn *types.Func) *FuncRange {
		if s, ok := res.ByFunc[fn]; ok {
			return s
		}
		if imported != nil {
			return imported(fn)
		}
		return nil
	}
	for _, scc := range g.SCCs() {
		// Same fixpoint discipline as funcsummary: recursive components
		// iterate until summaries stop changing, bounded at four rounds.
		for round := 0; ; round++ {
			changed := false
			for _, n := range scc {
				e := &Engine{Fset: fset, Info: info, Lookup: lookup}
				fr := e.Run(n.Decl)
				if old := res.ByFunc[n.Func]; old == nil || !old.equal(fr.Range) {
					changed = true
				}
				res.ByFunc[n.Func] = fr.Range
				res.Funcs[n.Func] = fr
			}
			if !changed || round >= 3 {
				break
			}
		}
	}
	return res
}

// Encode serializes the non-empty summaries as the package fact body.
func (r *Result) Encode() ([]byte, error) {
	byName := map[string]*FuncRange{}
	for fn, s := range r.ByFunc {
		if !s.empty() {
			byName[fn.FullName()] = s
		}
	}
	return json.Marshal(byName)
}

// DecodeFact parses a fact blob produced by Encode.
func DecodeFact(data []byte) (map[string]*FuncRange, error) {
	byName := map[string]*FuncRange{}
	if len(data) == 0 {
		return byName, nil
	}
	if err := json.Unmarshal(data, &byName); err != nil {
		return nil, err
	}
	return byName, nil
}

// FactLookup adapts a driver FactStore into a cross-package RLookup,
// caching each dependency's decoded fact. Safe with a nil store.
func FactLookup(store *analysis.FactStore) RLookup {
	cache := map[string]map[string]*FuncRange{}
	return func(fn *types.Func) *FuncRange {
		if fn == nil || fn.Pkg() == nil {
			return nil
		}
		path := fn.Pkg().Path()
		pkg, ok := cache[path]
		if !ok {
			pkg, _ = DecodeFact(store.Get(path, FactName))
			cache[path] = pkg
		}
		return pkg[fn.FullName()]
	}
}

// Analyzer is the fact producer: it emits no diagnostics, only the
// "rangesummary" package fact that indexbound and the range-aware
// taintalloc/sizeoverflow upgrade consume for cross-package calls.
var Analyzer = &analysis.Analyzer{
	Name:  FactName,
	Doc:   "rangesummary: compute per-function value-range summaries (result intervals, min-of-params clamp shapes, wire-derived results, unproven param-indexed sites) bottom-up over call-graph SCCs and export them as a package fact for the range-aware analyzers",
	Facts: true,
	Run: func(pass *analysis.Pass) error {
		res := Compute(pass.Fset, pass.Files, pass.TypesInfo, FactLookup(pass.Facts))
		blob, err := res.Encode()
		if err != nil {
			return err
		}
		pass.ExportFact(blob)
		return nil
	},
}
