// Package wgbalance checks the sync.WaitGroup discipline around every
// `go func` spawn site: the matching wg.Add must dominate the spawn in
// the spawning function's control-flow graph (an Add inside a branch
// can under-count, and Wait returns early), and the goroutine's wg.Done
// must be a deferred first statement so it posts on every exit —
// including panic and early-return paths. A goroutine that skips Done
// deadlocks the pipeline's Wait; one that can run before Add is counted
// races the Wait itself.
//
// The motivating sites are SPARTAN's parallel sections: the outlier
// scan fan-out in internal/core, the per-attribute CaRT builds in
// internal/selector, the model reconstruction in internal/codec, and
// the serve loop in cmd/spartand.
package wgbalance

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
)

// Analyzer checks Add-dominates-spawn and Done-posts-on-every-exit.
var Analyzer = &analysis.Analyzer{
	Name: "wgbalance",
	Doc: "flag WaitGroup goroutines whose Add does not dominate the spawn or whose Done can be skipped\n\n" +
		"wg.Add must execute on every path before `go func`, and the goroutine\n" +
		"must `defer wg.Done()` first thing, so panics and early returns still\n" +
		"post the Done.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkBody(pass, body)
			return true
		})
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect the go statements of this function (not of nested
	// literals, which get their own visit).
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			spawns = append(spawns, n)
		}
		return true
	})
	if len(spawns) == 0 {
		return
	}

	var g *cfg.CFG // built lazily: most spawn sites are channel-based
	var idom []int
	for _, spawn := range spawns {
		lit, ok := spawn.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue // can't see into a named function's Done
		}
		wg := doneReceiver(pass, lit.Body)
		if wg == "" {
			continue // not a WaitGroup-managed goroutine
		}
		checkDone(pass, lit, wg)

		if g == nil {
			g = cfg.New(body)
			idom = g.Dominators()
		}
		checkAdd(pass, body, g, idom, spawn, wg)
	}
}

// doneReceiver returns the rendered receiver of a wg.Done() call in the
// goroutine body ("" if none), e.g. "wg" or "c.wg".
func doneReceiver(pass *analysis.Pass, body *ast.BlockStmt) string {
	recv := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if recv != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if r, method := waitGroupCall(pass, call); method == "Done" {
				recv = r
			}
		}
		return true
	})
	return recv
}

// checkDone enforces that the goroutine's Done is a deferred first
// statement: the only placement that posts on every exit, panics
// included.
func checkDone(pass *analysis.Pass, lit *ast.FuncLit, wg string) {
	g := cfg.New(lit.Body)
	var deferred *ast.DeferStmt
	for _, d := range g.Defers {
		if r, method := waitGroupCall(pass, d.Call); method == "Done" && r == wg {
			deferred = d
			break
		}
	}
	if deferred == nil {
		// Done exists (doneReceiver saw it) but is not deferred.
		pass.Reportf(lit.Pos(), "%s.Done is not deferred in this goroutine; a panic or early return skips it and %s.Wait deadlocks — make `defer %s.Done()` the first statement", wg, wg, wg)
		return
	}
	if b := g.BlockOf(deferred.Pos()); b != nil && b.Index != 0 {
		pass.Reportf(deferred.Pos(), "defer %s.Done() is registered after a branch; an exit before this line never posts Done — move it to the top of the goroutine", wg)
	}
}

// checkAdd enforces that some wg.Add executes on every path to the
// spawn (dominates it in the CFG).
func checkAdd(pass *analysis.Pass, body *ast.BlockStmt, g *cfg.CFG, idom []int, spawn *ast.GoStmt, wg string) {
	spawnBlock := g.BlockOf(spawn.Pos())
	if spawnBlock == nil {
		return
	}
	found := false
	dominates := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if r, method := waitGroupCall(pass, call); method == "Add" && r == wg {
			found = true
			if b := g.BlockOf(call.Pos()); b != nil {
				if b == spawnBlock && call.Pos() < spawn.Pos() {
					dominates = true
				} else if b != spawnBlock && cfg.Dominates(idom, b.Index, spawnBlock.Index) {
					dominates = true
				}
			}
		}
		return true
	})
	switch {
	case found && !dominates:
		pass.Reportf(spawn.Pos(), "%s.Add does not dominate this goroutine spawn: on some path the goroutine starts uncounted and %s.Wait returns early — move the Add before the spawn on every path", wg, wg)
	case !found && localWaitGroup(pass, body, wg):
		pass.Reportf(spawn.Pos(), "goroutine calls %s.Done but no %s.Add precedes the spawn in this function — Wait can return before this goroutine runs", wg, wg)
	}
}

// localWaitGroup reports whether the named WaitGroup is declared inside
// body — if it came in as a parameter or field, Add may legitimately
// live at the caller.
func localWaitGroup(pass *analysis.Pass, body *ast.BlockStmt, wg string) bool {
	local := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == wg {
			if obj, ok := pass.TypesInfo.Defs[id]; ok && obj != nil {
				if body.Pos() <= obj.Pos() && obj.Pos() <= body.End() {
					local = true
				}
			}
		}
		return true
	})
	return local
}

// waitGroupCall reports the rendered receiver and method name if call
// is a method call on a sync.WaitGroup (possibly via pointer).
func waitGroupCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "WaitGroup" {
		return "", ""
	}
	return exprString(sel.X), sel.Sel.Name
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	default:
		return "wg"
	}
}
