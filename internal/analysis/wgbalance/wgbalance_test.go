package wgbalance_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/wgbalance"
)

func TestWgbalance(t *testing.T) {
	analyzertest.Run(t, "../testdata", wgbalance.Analyzer, "wgbalance")
}
