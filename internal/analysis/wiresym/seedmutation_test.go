package wiresym_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/wiresym"
)

// TestSeedMutation is the analyzer's self-test against the invariant it
// exists to protect: testdata/seedmutation/column.go is a faithful
// stdlib-only mirror of the real writeColumn/readColumn pair — count
// uvarint, 4-byte little-endian checksum, per-cell uvarints — and must
// analyze clean. Mechanically narrowing the reader's fixed-width read
// from 4 bytes to 2 (the seed mutation a careless field-width change
// would make) must reproduce the wiresym finding with the writer's
// side attached as a related path.
func TestSeedMutation(t *testing.T) {
	const fixture = "testdata/seedmutation/column.go"

	if diags := analyze(t, fixture, nil); len(diags) != 0 {
		t.Fatalf("symmetric pair should be clean, got %d findings: %v", len(diags), messages(diags))
	}

	diags := analyze(t, fixture, narrowReaderWidth)
	if len(diags) != 1 {
		t.Fatalf("narrowing the reader read should reproduce exactly 1 finding, got %d: %v",
			len(diags), messages(diags))
	}
	d := diags[0]
	if !strings.Contains(d.Message, "writeColumn") || !strings.Contains(d.Message, "readColumn") {
		t.Errorf("finding should name both sides of the pair, got %q", d.Message)
	}
	if !strings.Contains(d.Message, "4-byte") || !strings.Contains(d.Message, "2-byte") {
		t.Errorf("finding should describe the width divergence, got %q", d.Message)
	}
	if len(d.Related) < 2 {
		t.Fatalf("finding should carry a writer-side related path, got %d locations", len(d.Related))
	}
	if !strings.Contains(d.Related[0].Message, "writer writeColumn") {
		t.Errorf("related path should start at the writer declaration, starts with %q", d.Related[0].Message)
	}
	foundEmit := false
	for _, r := range d.Related {
		if strings.Contains(r.Message, "writer emits a 4-byte") {
			foundEmit = true
		}
	}
	if !foundEmit {
		t.Errorf("related path should point at the writer's 4-byte emit, got %v", relatedMessages(d))
	}
}

// TestSeedMutationEndianness flips the reader's decode to big-endian:
// same widths, wrong byte order — the asymmetry a copy-paste from a
// big-endian format would introduce.
func TestSeedMutationEndianness(t *testing.T) {
	diags := analyze(t, "testdata/seedmutation/column.go", flipReaderEndianness)
	if len(diags) != 1 {
		t.Fatalf("flipping reader endianness should reproduce exactly 1 finding, got %d: %v",
			len(diags), messages(diags))
	}
	d := diags[0]
	if !strings.Contains(d.Message, "little-endian") || !strings.Contains(d.Message, "big-endian") {
		t.Errorf("finding should describe the endianness divergence, got %q", d.Message)
	}
}

// analyze parses and type-checks the fixture, applies mutate (if any),
// and returns wiresym's diagnostics.
func analyze(t *testing.T, path string, mutate func(*ast.File)) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	if mutate != nil {
		mutate(f)
	}
	files := []*ast.File{f}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("codec", fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := analysis.NewPass(wiresym.Analyzer, fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := wiresym.Analyzer.Run(pass); err != nil {
		t.Fatalf("running wiresym: %v", err)
	}
	return diags
}

// narrowReaderWidth rewrites readColumn's buf[:4] bounds to buf[:2] and
// the Uint32 decode to Uint16 — a 4-byte field read back as 2.
func narrowReaderWidth(f *ast.File) {
	inFunc(f, "readColumn", func(n ast.Node) {
		switch x := n.(type) {
		case *ast.BasicLit:
			if x.Kind == token.INT && x.Value == "4" {
				x.Value = "2"
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Uint32" {
				x.Sel.Name = "Uint16"
			}
		}
	})
}

// flipReaderEndianness rewrites readColumn's LittleEndian decode to
// BigEndian, leaving widths intact.
func flipReaderEndianness(f *ast.File) {
	inFunc(f, "readColumn", func(n ast.Node) {
		if x, ok := n.(*ast.SelectorExpr); ok && x.Sel.Name == "LittleEndian" {
			x.Sel.Name = "BigEndian"
		}
	})
}

func inFunc(f *ast.File, name string, visit func(ast.Node)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n != nil {
				visit(n)
			}
			return true
		})
	}
}

func messages(diags []analysis.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}

func relatedMessages(d analysis.Diagnostic) []string {
	out := make([]string, len(d.Related))
	for i, r := range d.Related {
		out[i] = r.Message
	}
	return out
}
