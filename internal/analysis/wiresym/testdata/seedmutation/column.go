// Package codec is a stdlib-only mirror of the real column wire format
// for the wiresym seed-mutation self-test: count(uvarint), a 4-byte
// little-endian checksum, then per-cell uvarints. The writer and reader
// are symmetric; the self-test mutates the reader's fixed-width read to
// a narrower (or wrong-endian) form and requires the analyzer to flag
// exactly that asymmetry.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

func writeColumn(bw *bufio.Writer, vals []uint32) error {
	if err := putUvarint(bw, uint64(len(vals))); err != nil {
		return err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:4], checksum(vals))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for _, v := range vals {
		if err := putUvarint(bw, uint64(v)); err != nil {
			return err
		}
	}
	return nil
}

func readColumn(br *bufio.Reader) ([]uint32, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("implausible cell count %d", n)
	}
	var buf [4]byte
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, err
	}
	want := uint64(binary.LittleEndian.Uint32(buf[:4]))
	out := make([]uint32, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		out = append(out, uint32(v))
	}
	if uint64(checksum(out)) != want {
		return nil, fmt.Errorf("column checksum mismatch")
	}
	return out, nil
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func checksum(vals []uint32) uint32 {
	var s uint32
	for _, v := range vals {
		s = s*31 + v
	}
	return s
}
