// Package wiresym implements the wire-format symmetry check: every
// field the encoder emits must be read back with the same width, order
// and endianness. The analyzer pairs writer and reader functions inside
// the wire-format packages (codec, cart, archive) by name — writeX/
// readX, putX/getX, encodeX/decodeX, and Encode/Decode methods paired
// through their receiver type — and compares the *shape* of each pair:
// the sequence of primitive stream operations (byte, uvarint, varint,
// fixed-width field with endianness, raw bytes) the function performs,
// with loops grouped and branches expanded into the set of alternative
// op sequences.
//
// Shapes are extracted syntactically but type-directed: only operations
// on stream-typed values (bufio.Reader/Writer, io.Reader/Writer and
// values derived from them) count, buffer-fill idioms are recognized
// (binary.LittleEndian.PutUint32 into a local array followed by a
// stream Write of that array is one 4-byte little-endian field, as is
// io.ReadFull into a [4]byte decoded by binary.LittleEndian.Uint32),
// unpaired same-package helpers are inlined, and calls to *paired*
// helpers match each other as single tokens — which is also what makes
// mutually recursive encodeNode/decodeNode comparable without
// unbounded expansion. Error-exit paths (early `return err` /
// fmt.Errorf returns) are pruned, so a reader's validation branches do
// not count as format alternatives.
//
// A pair is reported when the writer can emit an op sequence no reader
// path accepts, or the reader accepts a sequence the writer never
// emits. Findings anchor on the reader (the hostile-input side) and
// carry the writer's position plus the first diverging operations as
// related locations. Pairs whose shape cannot be classified (dynamic
// stream calls, gzip layering, too many branches) are skipped rather
// than guessed at.
//
// Scope: codec, cart, archive — the packages that define the SPARTAN
// stream formats (PAPER.md §2.2, docs/FORMAT.md).
package wiresym

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer flags asymmetric writer/reader pairs in wire-format packages.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc:  "wiresym: pair writer/reader functions (writeX/readX, putX/getX, Encode*/Decode*) in the wire-format packages and compare their sequences of stream operations; report width, order or endianness asymmetries between what the encoder emits and what the decoder expects",
	Run:  run,
}

// Token kinds, ordered so a shape encodes deterministically.
const (
	kByte    = 'y' // one byte
	kUvarint = 'u' // binary uvarint
	kVarint  = 'v' // binary varint
	kFixed   = 'f' // fixed-width field (width, endian)
	kBlob    = 'B' // raw byte run (length known out of band)
	kCall    = 'c' // call to a paired helper, matched by pair key
	kLoop    = 'L' // repeated group
)

// tok is one wire operation in a linearized shape.
type tok struct {
	kind   byte
	width  int    // kFixed
	endian byte   // kFixed: 'l', 'b', or 0 when undetermined
	key    string // kCall
	pos    token.Pos
	loop   *shape // kLoop
}

// shape is the set of alternative success linearizations of a function
// (or loop body): one entry per branch combination that completes
// without an error exit.
type shape struct {
	lins [][]tok
}

func (s *shape) empty() bool {
	for _, lin := range s.lins {
		if len(lin) > 0 {
			return false
		}
	}
	return true
}

func tokEq(a, b tok) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case kFixed:
		if a.width != b.width {
			return false
		}
		return a.endian == 0 || b.endian == 0 || a.endian == b.endian
	case kCall:
		return a.key == b.key
	case kLoop:
		return shapeEq(a.loop, b.loop)
	}
	return true
}

func linEq(a, b []tok) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !tokEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// shapeEq: every linearization of each side has an equal counterpart on
// the other — the symmetric format-equivalence the check enforces.
func shapeEq(a, b *shape) bool {
	return coveredBy(a, b) && coveredBy(b, a)
}

func coveredBy(a, b *shape) bool {
	for _, la := range a.lins {
		if matchLin(la, b) == nil {
			continue
		}
		return false
	}
	return true
}

// matchLin returns nil when some linearization of s equals lin, or the
// closest mismatch (longest shared prefix) for diagnosis.
func matchLin(lin []tok, s *shape) *divergence {
	var best *divergence
	for _, other := range s.lins {
		if linEq(lin, other) {
			return nil
		}
		d := diverge(lin, other)
		if best == nil || d.at > best.at {
			best = d
		}
	}
	if best == nil {
		best = &divergence{at: 0, want: lin, got: nil}
	}
	return best
}

// divergence locates the first differing op between a linearization and
// its closest counterpart.
type divergence struct {
	at        int
	want, got []tok
}

func diverge(want, got []tok) *divergence {
	i := 0
	for i < len(want) && i < len(got) && tokEq(want[i], got[i]) {
		i++
	}
	return &divergence{at: i, want: want, got: got}
}

func describe(t *tok) string {
	if t == nil {
		return "end of stream"
	}
	switch t.kind {
	case kByte:
		return "a single byte"
	case kUvarint:
		return "a uvarint"
	case kVarint:
		return "a varint"
	case kFixed:
		e := ""
		switch t.endian {
		case 'l':
			e = " little-endian"
		case 'b':
			e = " big-endian"
		}
		return fmt.Sprintf("a %d-byte%s field", t.width, e)
	case kBlob:
		return "a raw byte run"
	case kCall:
		return "the " + t.key + " sub-format"
	case kLoop:
		return "a repeated group"
	}
	return "an unknown operation"
}

func at(d *divergence) (want, got *tok) {
	if d.at < len(d.want) {
		want = &d.want[d.at]
	}
	if d.at < len(d.got) {
		got = &d.got[d.at]
	}
	return
}

// --- pair discovery -------------------------------------------------------

const (
	sideNone = iota
	sideWriter
	sideReader
)

var writerPrefixes = []string{"write", "put", "encode"}
var readerPrefixes = []string{"read", "get", "decode"}

// pairKey classifies a function as a writer or reader candidate and
// derives the name both sides share: writeColumn/readColumn → "column",
// putString/getString → "string", readSchemaLimited sheds the Limited
// suffix, and bare Encode/Decode methods key on their receiver type
// ((*Model).Encode / DecodeModel → "model").
func pairKey(fn *types.Func) (string, int) {
	name := fn.Name()
	lower := strings.ToLower(name)
	recvName := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recvName = strings.ToLower(n.Obj().Name())
		}
	}
	side := sideNone
	rest := ""
	for _, p := range writerPrefixes {
		if strings.HasPrefix(lower, p) {
			side, rest = sideWriter, lower[len(p):]
			break
		}
	}
	if side == sideNone {
		for _, p := range readerPrefixes {
			if strings.HasPrefix(lower, p) {
				side, rest = sideReader, lower[len(p):]
				break
			}
		}
	}
	if side == sideNone {
		return "", sideNone
	}
	rest = strings.TrimSuffix(rest, "limited")
	if rest == "" {
		// Bare Encode/Decode: only methods pair, through their receiver.
		if (lower == "encode" || lower == "decode") && recvName != "" {
			return recvName, side
		}
		return "", sideNone
	}
	return rest, side
}

// --- shape extraction -----------------------------------------------------

const (
	maxAlive = 48 // alternative linearizations alive at any point
	maxDone  = 96 // completed linearizations per function
)

type extractor struct {
	pass   *analysis.Pass
	decls  map[*types.Func]*ast.FuncDecl
	paired map[string]bool // keys with both a writer and a reader

	shapes     map[*types.Func]*shape // nil entry = incomparable
	inProgress map[*types.Func]bool
}

// env is one alive linearization under construction.
type env struct {
	toks []tok
	// pend is the trailing buffer-fill (binary.PutUvarint /
	// binary.<E>.PutUintN into a local array) not yet flushed by a
	// stream Write.
	pend *pending
}

type pending struct {
	buf    *types.Var
	kind   byte
	width  int
	endian byte
}

func (e *env) clone() *env {
	c := &env{toks: append([]tok(nil), e.toks...), pend: e.pend}
	return c
}

// walker linearizes one function body.
type walker struct {
	ex       *extractor
	info     *types.Info
	pkg      *types.Package
	overflow bool
	done     [][]tok
	// bufEndian records, per local buffer variable, the endianness any
	// binary.<E>.UintN / PutUintN usage implies for its fixed fields.
	bufEndian map[*types.Var]byte
	// loopExit collects envs that leave the current loop body early via
	// break/continue; nil outside loops.
	loopExit *[]*env
	// lastStmt is the function's final top-level statement: a `return
	// err` there is tail propagation, not an error exit.
	lastStmt ast.Stmt
}

// shapeOf extracts (and memoizes) fn's shape; nil means incomparable.
func (ex *extractor) shapeOf(fn *types.Func) *shape {
	if s, ok := ex.shapes[fn]; ok {
		return s
	}
	if ex.inProgress[fn] {
		return nil // unpaired recursion: cannot inline
	}
	decl := ex.decls[fn]
	if decl == nil || decl.Body == nil {
		ex.shapes[fn] = nil
		return nil
	}
	ex.inProgress[fn] = true
	defer delete(ex.inProgress, fn)

	w := &walker{
		ex:        ex,
		info:      ex.pass.TypesInfo,
		pkg:       ex.pass.Pkg,
		bufEndian: map[*types.Var]byte{},
	}
	w.scanEndian(decl.Body)
	if n := len(decl.Body.List); n > 0 {
		w.lastStmt = decl.Body.List[n-1]
	}
	alive := w.block(decl.Body.List, []*env{{}})
	for _, e := range alive {
		w.done = append(w.done, e.toks)
	}
	if w.overflow || len(w.done) == 0 {
		ex.shapes[fn] = nil
		return nil
	}
	s := &shape{lins: dedupLins(w.done)}
	ex.shapes[fn] = s
	return s
}

func dedupLins(lins [][]tok) [][]tok {
	var out [][]tok
	for _, lin := range lins {
		dup := false
		for _, have := range out {
			if linEq(lin, have) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, lin)
		}
	}
	return out
}

// scanEndian pre-scans for binary.<Endian>.(Put)?UintN(buf, ...) so
// fixed reads through io.ReadFull know their decode endianness.
func (w *walker) scanEndian(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		_, ok = endianWidth(sel.Sel.Name)
		if !ok || len(call.Args) == 0 {
			return true
		}
		e := endianOf(w.info, sel.X)
		if e == 0 {
			return true
		}
		if v := bufVarOf(w.info, call.Args[0]); v != nil {
			w.bufEndian[v] = e
		}
		return true
	})
}

// endianWidth maps Uint16/PutUint32-style method names to field widths.
func endianWidth(name string) (int, bool) {
	name = strings.TrimPrefix(name, "Put")
	switch name {
	case "Uint16":
		return 2, true
	case "Uint32":
		return 4, true
	case "Uint64":
		return 8, true
	}
	return 0, false
}

// endianOf resolves binary.LittleEndian / binary.BigEndian receivers.
func endianOf(info *types.Info, x ast.Expr) byte {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	switch sel.Sel.Name {
	case "LittleEndian":
		return 'l'
	case "BigEndian":
		return 'b'
	}
	return 0
}

// bufVarOf unwraps buf[:], buf[:n], &buf and plain idents to the
// underlying buffer variable.
func bufVarOf(info *types.Info, x ast.Expr) *types.Var {
	for {
		switch cur := x.(type) {
		case *ast.ParenExpr:
			x = cur.X
		case *ast.SliceExpr:
			x = cur.X
		case *ast.UnaryExpr:
			if cur.Op != token.AND {
				return nil
			}
			x = cur.X
		case *ast.Ident:
			if v, ok := info.Uses[cur].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[cur].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// --- statement walk -------------------------------------------------------

func (w *walker) block(stmts []ast.Stmt, envs []*env) []*env {
	for _, st := range stmts {
		if len(envs) == 0 || w.overflow {
			return nil
		}
		envs = w.stmt(st, envs)
	}
	return envs
}

func cloneEnvs(envs []*env) []*env {
	out := make([]*env, len(envs))
	for i, e := range envs {
		out[i] = e.clone()
	}
	return out
}

func (w *walker) cap(envs []*env) []*env {
	envs = dedupEnvs(envs)
	if len(envs) > maxAlive {
		w.overflow = true
		return nil
	}
	return envs
}

func dedupEnvs(envs []*env) []*env {
	var out []*env
	for _, e := range envs {
		dup := false
		for _, have := range out {
			if have.pend == e.pend && linEq(have.toks, e.toks) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, e)
		}
	}
	return out
}

func (w *walker) stmt(st ast.Stmt, envs []*env) []*env {
	switch x := st.(type) {
	case *ast.ExprStmt:
		w.scanExpr(x.X, envs)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.scanExpr(r, envs)
		}
		for _, l := range x.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				w.scanExpr(l, envs)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, envs)
					}
				}
			}
		}
	case *ast.IncDecStmt, *ast.EmptyStmt:
	case *ast.SendStmt:
		w.scanExpr(x.Value, envs)
	case *ast.GoStmt:
		w.scanExpr(x.Call, envs)
	case *ast.DeferStmt:
		w.scanExpr(x.Call, envs)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, envs)
	case *ast.ReturnStmt:
		w.returnStmt(x, envs)
		return nil
	case *ast.BranchStmt:
		if x.Tok == token.GOTO {
			w.overflow = true
			return nil
		}
		if w.loopExit != nil {
			*w.loopExit = append(*w.loopExit, envs...)
		}
		return nil
	case *ast.IfStmt:
		return w.ifStmt(x, envs)
	case *ast.SwitchStmt:
		return w.switchStmt(x, envs)
	case *ast.TypeSwitchStmt:
		return w.typeSwitchStmt(x, envs)
	case *ast.ForStmt:
		if x.Init != nil {
			envs = w.stmt(x.Init, envs)
		}
		if x.Cond != nil {
			w.scanExpr(x.Cond, envs)
		}
		return w.loop(x.Body, x.Pos(), envs)
	case *ast.RangeStmt:
		w.scanExpr(x.X, envs)
		return w.loop(x.Body, x.Pos(), envs)
	case *ast.BlockStmt:
		return w.block(x.List, envs)
	case *ast.SelectStmt:
		w.overflow = true
		return nil
	}
	return envs
}

func (w *walker) ifStmt(x *ast.IfStmt, envs []*env) []*env {
	if x.Init != nil {
		envs = w.stmt(x.Init, envs)
	}
	w.scanExpr(x.Cond, envs)
	thenEnvs := w.block(x.Body.List, cloneEnvs(envs))
	var elseEnvs []*env
	switch e := x.Else.(type) {
	case nil:
		elseEnvs = envs
	case *ast.BlockStmt:
		elseEnvs = w.block(e.List, envs)
	case *ast.IfStmt:
		elseEnvs = w.ifStmt(e, envs)
	}
	return w.cap(append(thenEnvs, elseEnvs...))
}

func (w *walker) switchStmt(x *ast.SwitchStmt, envs []*env) []*env {
	if x.Init != nil {
		envs = w.stmt(x.Init, envs)
	}
	if x.Tag != nil {
		w.scanExpr(x.Tag, envs)
	}
	var out []*env
	hasDefault := false
	for _, cc := range x.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		out = append(out, w.block(clause.Body, cloneEnvs(envs))...)
	}
	if !hasDefault {
		out = append(out, envs...)
	}
	return w.cap(out)
}

func (w *walker) typeSwitchStmt(x *ast.TypeSwitchStmt, envs []*env) []*env {
	if x.Init != nil {
		envs = w.stmt(x.Init, envs)
	}
	var out []*env
	hasDefault := false
	for _, cc := range x.Body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			hasDefault = true
		}
		out = append(out, w.block(clause.Body, cloneEnvs(envs))...)
	}
	if !hasDefault {
		out = append(out, envs...)
	}
	return w.cap(out)
}

// loop linearizes a loop body from a fresh environment and appends one
// repeated-group token holding the body's alternatives. Loops with no
// wire operations contribute nothing.
func (w *walker) loop(body *ast.BlockStmt, pos token.Pos, envs []*env) []*env {
	var exited []*env
	savedExit := w.loopExit
	savedLast := w.lastStmt
	w.loopExit = &exited
	w.lastStmt = nil // a `return err` inside a loop body is an error exit
	alive := w.block(body.List, []*env{{}})
	w.loopExit = savedExit
	w.lastStmt = savedLast
	if w.overflow {
		return nil
	}
	alive = append(alive, exited...)
	var lins [][]tok
	for _, e := range alive {
		if len(e.toks) > 0 {
			lins = append(lins, e.toks)
		}
	}
	if len(lins) == 0 {
		return envs
	}
	t := tok{kind: kLoop, pos: pos, loop: &shape{lins: dedupLins(lins)}}
	for _, e := range envs {
		e.toks = append(e.toks, t)
	}
	return envs
}

// returnStmt completes or aborts the alive linearizations: a return
// carrying a non-nil error expression (an err identifier or a direct
// fmt.Errorf / errors.New call) anywhere but the function's final
// statement is an error exit and its linearizations are pruned.
func (w *walker) returnStmt(x *ast.ReturnStmt, envs []*env) {
	for _, r := range x.Results {
		w.scanExpr(r, envs)
	}
	if w.isErrorExit(x) {
		return
	}
	if len(w.done)+len(envs) > maxDone {
		w.overflow = true
		return
	}
	for _, e := range envs {
		w.done = append(w.done, e.toks)
	}
}

func (w *walker) isErrorExit(x *ast.ReturnStmt) bool {
	if ast.Stmt(x) == w.lastStmt {
		return false
	}
	for _, r := range x.Results {
		t := w.info.TypeOf(r)
		if t == nil || !isErrorType(t) {
			continue
		}
		switch e := unparen(r).(type) {
		case *ast.Ident:
			if e.Name != "nil" {
				return true
			}
		case *ast.SelectorExpr:
			return true // sentinel (io.EOF, pkg.ErrX) or stored error field
		case *ast.CallExpr:
			if callee, _, ok := callgraph.StaticCallee(w.info, e); ok && callee != nil {
				full := callee.FullName()
				if full == "fmt.Errorf" || full == "errors.New" {
					return true
				}
			}
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// --- expression scan: wire-op recognition ---------------------------------

// scanExpr walks an expression in evaluation-ish order, applying every
// recognized stream operation to the alive linearizations.
func (w *walker) scanExpr(x ast.Expr, envs []*env) {
	ast.Inspect(x, func(n ast.Node) bool {
		if w.overflow {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		return w.call(call, envs)
	})
}

// call classifies one call; the return value tells ast.Inspect whether
// to descend into the call's children.
func (w *walker) call(call *ast.CallExpr, envs []*env) bool {
	callee, dynamic, isCall := callgraph.StaticCallee(w.info, call)
	if !isCall {
		return true // conversion: scan the operand
	}
	// Stream method calls — concrete (bufio.Reader.ReadByte) or
	// interface dispatch (io.ByteReader.ReadByte): the receiver type
	// decides, not the dispatch kind.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := w.info.Selections[sel]; isSel && isStreamType(w.info.TypeOf(sel.X)) {
			return w.streamMethod(sel.Sel.Name, call, envs)
		}
	}
	if callee == nil || dynamic {
		if w.streamArg(call, nil) != nil {
			w.overflow = true // dynamic call consuming the stream
			return false
		}
		return true
	}
	full := callee.FullName()

	switch full {
	case "encoding/binary.ReadUvarint":
		w.emit(envs, tok{kind: kUvarint, pos: call.Pos()})
		return false
	case "encoding/binary.ReadVarint":
		w.emit(envs, tok{kind: kVarint, pos: call.Pos()})
		return false
	case "encoding/binary.PutUvarint":
		w.setPending(call, envs, kUvarint, 0, 0)
		return false
	case "encoding/binary.PutVarint":
		w.setPending(call, envs, kVarint, 0, 0)
		return false
	case "io.ReadFull":
		if len(call.Args) == 2 && isStreamType(w.info.TypeOf(call.Args[0])) {
			w.emit(envs, w.fixedReadTok(call.Args[1], call.Pos()))
			return false
		}
		return true
	}

	// binary.LittleEndian.PutUint32(buf, v) and friends: buffer fill.
	if callee.Pkg() != nil && callee.Pkg().Path() == "encoding/binary" {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if width, ok := endianWidth(sel.Sel.Name); ok {
				if strings.HasPrefix(sel.Sel.Name, "Put") {
					w.setPending(call, envs, kFixed, width, endianOf(w.info, sel.X))
				}
				return false // plain UintN decodes a buffer, not the stream
			}
		}
	}

	// Same-package helpers: paired ones match as tokens, pure unpaired
	// ones are inlined, anything else consuming the stream is opaque.
	if callee.Pkg() == w.pkg {
		if key, side := pairKey(callee); side != sideNone && key != "" && w.ex.paired[key] {
			if w.streamArg(call, callee) != nil {
				w.emit(envs, tok{kind: kCall, key: key, pos: call.Pos()})
				return false
			}
			return true
		}
		if w.streamArg(call, callee) != nil {
			sub := w.ex.shapeOf(callee)
			if sub == nil {
				w.overflow = true
				return false
			}
			w.splice(envs, sub)
			return false
		}
		return true
	}

	// Any other call that consumes the stream defeats shape extraction.
	if w.streamArg(call, callee) != nil {
		switch callee.Name() {
		case "Flush", "Close", "NewReader", "NewWriter", "NewReaderSize",
			"NewWriterSize", "LimitReader", "MultiReader", "MultiWriter":
			return true // stream plumbing, no bytes of its own
		}
		w.overflow = true
		return false
	}
	return true
}

// streamMethod recognizes the bufio/io method vocabulary on a
// stream-typed receiver; returns false to stop descending.
func (w *walker) streamMethod(name string, call *ast.CallExpr, envs []*env) bool {
	switch name {
	case "ReadByte", "WriteByte":
		w.emit(envs, tok{kind: kByte, pos: call.Pos()})
		return false
	case "Write":
		if len(call.Args) == 1 {
			w.flushOrBlob(call.Args[0], call.Pos(), envs)
			return false
		}
	case "WriteString", "ReadString", "ReadBytes", "Read":
		w.emit(envs, tok{kind: kBlob, pos: call.Pos()})
		return false
	case "Flush", "Close", "Reset", "Buffered", "Available":
		return true
	}
	// Unknown stream method (UnreadByte, Seek, …): opaque.
	w.overflow = true
	return false
}

// flushOrBlob resolves a stream Write: if the written buffer is the one
// a pending PutUvarint/PutUintN filled, the write is that field;
// otherwise it is a raw byte run. A fixed pending flushed through a
// constant-width slice takes the slice's width — writing buf[:2] after
// PutUint32 puts 2 bytes on the wire, not 4.
func (w *walker) flushOrBlob(arg ast.Expr, pos token.Pos, envs []*env) {
	v := bufVarOf(w.info, arg)
	for _, e := range envs {
		if v != nil && e.pend != nil && e.pend.buf == v {
			t := tok{kind: e.pend.kind, width: e.pend.width, endian: e.pend.endian, pos: pos}
			if t.kind == kFixed {
				if width, ok := w.constWidth(arg, v); ok {
					t.width = width
				}
			}
			e.toks = append(e.toks, t)
			e.pend = nil
			continue
		}
		e.toks = append(e.toks, tok{kind: kBlob, pos: pos})
	}
}

func (w *walker) setPending(call *ast.CallExpr, envs []*env, kind byte, width int, endian byte) {
	if len(call.Args) == 0 {
		return
	}
	v := bufVarOf(w.info, call.Args[0])
	if v == nil {
		return
	}
	p := &pending{buf: v, kind: kind, width: width, endian: endian}
	for _, e := range envs {
		e.pend = p
	}
}

// fixedReadTok classifies io.ReadFull's destination: a slice of a
// [N]byte local with constant bounds is a fixed field of that many
// bytes (endianness from the pre-scan), any other destination is a raw
// byte run.
func (w *walker) fixedReadTok(dst ast.Expr, pos token.Pos) tok {
	v := bufVarOf(w.info, dst)
	if v != nil {
		if _, ok := v.Type().Underlying().(*types.Array); ok {
			if width, ok := w.constWidth(dst, v); ok {
				return tok{kind: kFixed, width: width, endian: w.bufEndian[v], pos: pos}
			}
		}
	}
	return tok{kind: kBlob, pos: pos}
}

// constWidth computes the byte count a slice of a fixed-size array
// denotes: buf[:] is the array length, buf[lo:hi] with constant bounds
// is hi-lo. Variable bounds yield no width.
func (w *walker) constWidth(x ast.Expr, v *types.Var) (int, bool) {
	se, ok := unparen(x).(*ast.SliceExpr)
	if !ok {
		arr, ok := v.Type().Underlying().(*types.Array)
		return int(arr.Len()), ok
	}
	lo := int64(0)
	if se.Low != nil {
		c, ok := w.intConst(se.Low)
		if !ok {
			return 0, false
		}
		lo = c
	}
	if se.High == nil {
		arr, ok := v.Type().Underlying().(*types.Array)
		if !ok {
			return 0, false
		}
		return int(arr.Len() - lo), true
	}
	hi, ok := w.intConst(se.High)
	if !ok || hi < lo {
		return 0, false
	}
	return int(hi - lo), true
}

func (w *walker) intConst(x ast.Expr) (int64, bool) {
	tv, ok := w.info.Types[x]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

func (w *walker) emit(envs []*env, t tok) {
	for _, e := range envs {
		e.toks = append(e.toks, t)
	}
}

// splice inlines a straight-line helper's shape into every alive
// linearization. A branchy helper would have to fork the caller's env
// set in place, which the shared slice cannot express; no such helper
// exists in the wire packages, so those pairs go incomparable instead
// of risking a wrong merge.
func (w *walker) splice(envs []*env, sub *shape) {
	if sub.empty() {
		return
	}
	if len(sub.lins) > 1 {
		w.overflow = true
		return
	}
	for _, e := range envs {
		e.toks = append(e.toks, sub.lins[0]...)
	}
}

// streamArg returns the first stream-typed argument (or method
// receiver) of a call, or nil.
func (w *walker) streamArg(call *ast.CallExpr, callee *types.Func) ast.Expr {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := w.info.Selections[sel]; isSel && isStreamType(w.info.TypeOf(sel.X)) {
			return sel.X
		}
	}
	for _, a := range call.Args {
		if isStreamType(w.info.TypeOf(a)) {
			return a
		}
	}
	return nil
}

// isStreamType reports the types the analyzer treats as the wire
// stream: bufio readers/writers and the io reader/writer interfaces.
func isStreamType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "bufio":
		switch n.Obj().Name() {
		case "Reader", "Writer", "ReadWriter":
			return true
		}
	case "io":
		switch n.Obj().Name() {
		case "Reader", "Writer", "ReadWriter", "ByteReader", "ByteWriter", "ReadCloser", "WriteCloser":
			return true
		}
	}
	return false
}

func unparen(x ast.Expr) ast.Expr {
	for {
		p, ok := x.(*ast.ParenExpr)
		if !ok {
			return x
		}
		x = p.X
	}
}

// --- driver ---------------------------------------------------------------

func run(pass *analysis.Pass) error {
	if !pass.PackageBase("codec", "cart", "archive") {
		return nil
	}
	ex := &extractor{
		pass:       pass,
		decls:      map[*types.Func]*ast.FuncDecl{},
		paired:     map[string]bool{},
		shapes:     map[*types.Func]*shape{},
		inProgress: map[*types.Func]bool{},
	}
	writers := map[string][]candidate{}
	readers := map[string][]candidate{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ex.decls[fn] = fd
			key, side := pairKey(fn)
			if key == "" {
				continue
			}
			switch side {
			case sideWriter:
				writers[key] = append(writers[key], candidate{fn, fd})
			case sideReader:
				readers[key] = append(readers[key], candidate{fn, fd})
			}
		}
	}
	type pair struct {
		key            string
		writer, reader candidate
	}
	var pairs []pair
	for key, ws := range writers {
		rs := readers[key]
		// Ambiguous pairings (several writers or readers sharing a key)
		// are skipped: guessing which counterpart to compare against
		// produces noise, not findings.
		if len(ws) != 1 || len(rs) != 1 {
			continue
		}
		ex.paired[key] = true
		pairs = append(pairs, pair{key, ws[0], rs[0]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].reader.decl.Pos() < pairs[j].reader.decl.Pos() })

	for _, p := range pairs {
		ws := ex.shapeOf(p.writer.fn)
		rs := ex.shapeOf(p.reader.fn)
		if ws == nil || rs == nil {
			continue // incomparable: dynamic stream use or too branchy
		}
		report(pass, p.writer, p.reader, ws, rs)
	}
	return nil
}

// candidate is one side of a prospective writer/reader pair.
type candidate struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

func report(pass *analysis.Pass, writer, reader candidate, ws, rs *shape) {
	// Writer emits a sequence no reader path accepts.
	for _, lin := range ws.lins {
		if d := matchLin(lin, rs); d != nil {
			diagnose(pass, writer, reader, d, true)
			return // one finding per pair: the first divergence
		}
	}
	// Reader accepts a sequence the writer never emits.
	for _, lin := range rs.lins {
		if d := matchLin(lin, ws); d != nil {
			diagnose(pass, writer, reader, d, false)
			return
		}
	}
}

func diagnose(pass *analysis.Pass, writer, reader candidate, d *divergence, writerSide bool) {
	want, got := at(d)
	var msg string
	if writerSide {
		msg = fmt.Sprintf(
			"wire-format asymmetry between %s and %s: after %d matching operations the writer emits %s but the reader expects %s",
			writer.fn.Name(), reader.fn.Name(), d.at, describe(want), describe(got))
	} else {
		msg = fmt.Sprintf(
			"wire-format asymmetry between %s and %s: after %d matching operations the reader expects %s but the writer emits %s",
			writer.fn.Name(), reader.fn.Name(), d.at, describe(want), describe(got))
	}
	related := []analysis.RelatedLocation{
		{Pos: writer.decl.Pos(), Message: "writer " + writer.fn.Name() + " declared here"},
	}
	wantTok, gotTok := want, got
	if !writerSide {
		wantTok, gotTok = got, want // related steps stay writer-first
	}
	if writerSide && wantTok != nil {
		related = append(related, analysis.RelatedLocation{Pos: wantTok.pos, Message: "writer emits " + describe(wantTok) + " here"})
	} else if !writerSide && gotTok != nil {
		related = append(related, analysis.RelatedLocation{Pos: gotTok.pos, Message: "writer emits " + describe(gotTok) + " here"})
	}
	if writerSide && gotTok != nil {
		related = append(related, analysis.RelatedLocation{Pos: gotTok.pos, Message: "reader reads " + describe(gotTok) + " here"})
	} else if !writerSide && wantTok != nil {
		related = append(related, analysis.RelatedLocation{Pos: wantTok.pos, Message: "reader reads " + describe(wantTok) + " here"})
	}
	pos := reader.decl.Pos()
	if writerSide {
		if got != nil {
			pos = got.pos
		}
	} else if want != nil {
		pos = want.pos
	}
	pass.Report(analysis.Diagnostic{Pos: pos, Message: msg, Related: related})
}
