package wiresym_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/wiresym"
)

func TestWiresym(t *testing.T) {
	analyzertest.Run(t, "../testdata", wiresym.Analyzer, "wiresym")
}
