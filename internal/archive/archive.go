// Package archive provides a multi-block container for SPARTAN streams,
// so tables far larger than memory compress in bounded space: rows arrive
// in blocks, each block is independently semantically compressed (its own
// sample, models and outliers), and decompression concatenates blocks.
//
// Format: magic, then for each block a uvarint byte length followed by a
// standard codec stream; a zero length terminates the archive. All blocks
// must share one schema (attribute names and kinds); categorical
// dictionaries may differ per block and are re-unified on read.
package archive

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/table"
)

const magic = "SPARC1\n"

// Writer appends independently compressed blocks to an archive stream.
type Writer struct {
	w      *bufio.Writer
	opts   core.Options
	schema table.Schema
	blocks int
	closed bool
}

// NewWriter starts an archive on w. The options apply to every block;
// quantile-form tolerances are resolved per block against that block's
// value ranges, so prefer absolute tolerances for cross-block consistency.
func NewWriter(w io.Writer, opts core.Options) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opts: opts}, nil
}

// WriteBlock compresses one block of rows. Every block must carry the
// same schema.
func (aw *Writer) WriteBlock(t *table.Table) (*core.Stats, error) {
	if aw.closed {
		return nil, fmt.Errorf("archive: writer is closed")
	}
	if aw.schema == nil {
		aw.schema = t.Schema().Clone()
	} else if err := sameSchema(aw.schema, t.Schema()); err != nil {
		return nil, err
	}
	// Vary the sampling seed per block so pathological block orderings
	// don't resample identical row offsets; determinism is preserved.
	opts := aw.opts
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Seed += int64(aw.blocks)

	var block countBuffer
	stats, err := core.Compress(&block, t, opts)
	if err != nil {
		return nil, err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(block.data)))
	if _, err := aw.w.Write(lenBuf[:n]); err != nil {
		return nil, err
	}
	if _, err := aw.w.Write(block.data); err != nil {
		return nil, err
	}
	aw.blocks++
	return stats, nil
}

// Blocks returns how many blocks have been written.
func (aw *Writer) Blocks() int { return aw.blocks }

// Close writes the terminator and flushes. The writer cannot be reused.
func (aw *Writer) Close() error {
	if aw.closed {
		return nil
	}
	aw.closed = true
	if err := aw.w.WriteByte(0); err != nil { // uvarint(0) terminator
		return err
	}
	return aw.w.Flush()
}

type countBuffer struct{ data []byte }

func (b *countBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func sameSchema(a, b table.Schema) error {
	if len(a) != len(b) {
		return fmt.Errorf("archive: block has %d attributes, archive has %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("archive: block attribute %d is %v, archive has %v", i, b[i], a[i])
		}
	}
	return nil
}

// Reader iterates the blocks of an archive.
type Reader struct {
	r      *bufio.Reader
	schema table.Schema
	done   bool
}

// NewReader opens an archive stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("archive: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("archive: bad magic %q", got)
	}
	return &Reader{r: br}, nil
}

// Next decompresses the next block, or returns io.EOF after the
// terminator.
func (ar *Reader) Next() (*table.Table, error) {
	if ar.done {
		return nil, io.EOF
	}
	blockLen, err := binary.ReadUvarint(ar.r)
	if err != nil {
		return nil, fmt.Errorf("archive: reading block length: %w", err)
	}
	if blockLen == 0 {
		ar.done = true
		return nil, io.EOF
	}
	if blockLen > math.MaxInt64 {
		return nil, fmt.Errorf("archive: implausible block length %d", blockLen)
	}
	t, err := codec.Decode(io.LimitReader(ar.r, int64(blockLen)))
	if err != nil {
		return nil, fmt.Errorf("archive: decoding block: %w", err)
	}
	if ar.schema == nil {
		ar.schema = t.Schema().Clone()
	} else if err := sameSchema(ar.schema, t.Schema()); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadAll decompresses every block and concatenates the rows in block
// order (categorical dictionaries are re-unified).
func ReadAll(r io.Reader) (*table.Table, error) {
	ar, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var builder *table.Builder
	appendBlock := func(t *table.Table) error {
		if builder == nil {
			builder, err = table.NewBuilder(t.Schema())
			if err != nil {
				return err
			}
		}
		row := make([]any, t.NumCols())
		for r := 0; r < t.NumRows(); r++ {
			for c := 0; c < t.NumCols(); c++ {
				if t.Attr(c).Kind == table.Numeric {
					row[c] = t.Float(r, c)
				} else {
					row[c] = t.CatString(r, c)
				}
			}
			if err := builder.AppendRow(row...); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		t, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := appendBlock(t); err != nil {
			return nil, err
		}
	}
	if builder == nil {
		return nil, fmt.Errorf("archive: no blocks")
	}
	return builder.Build()
}
