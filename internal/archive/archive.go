// Package archive provides a segmented ("row-group") container for
// SPARTAN streams, so tables far larger than memory compress in bounded
// space and decode with seek-and-prune access: rows arrive in segments,
// each segment is independently semantically compressed (its own sample,
// models and outliers), and the archive ends in a footer of per-segment
// metadata — byte offset, length, row count and per-column zone maps —
// that lets readers skip segments a predicate provably excludes without
// touching their bodies.
//
// Format v2 ("SPARC2\n"): magic, then for each segment a uvarint byte
// length followed by a standard codec stream; a zero length terminates
// the segment region; then the footer and a fixed-size trailer (see
// docs/FORMAT.md). The body framing is identical to format v1
// ("SPARC1\n"), which had no footer, so the streaming Reader accepts
// both versions. All segments must share one schema (attribute names and
// kinds); categorical dictionaries may differ per segment and are
// re-unified on read.
package archive

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/table"
)

const (
	magicV1 = "SPARC1\n"
	magicV2 = "SPARC2\n"
)

// maxArchiveBytes caps every wire-declared byte extent (1 TiB): an
// offset or length past it is a lie, and bounding the values up front
// keeps later arithmetic on them overflow-free.
const maxArchiveBytes = 1 << 40

// ErrEmptyArchive is returned when reading a structurally valid archive
// that contains zero segments. Writing one is legal (NewWriter + Close,
// or WriteTable on a zero-row table), but no schema was ever recorded,
// so no table can be reconstructed; callers that accept empty archives
// must test for this error with errors.Is.
var ErrEmptyArchive = errors.New("archive: empty archive (no segments)")

// FramingError reports a segment whose codec stream did not fill its
// declared frame length. The trailing slack would desync every later
// frame in a streaming read, so the mismatch is fatal rather than
// skippable.
type FramingError struct {
	Segment  int   // zero-based segment index
	Declared int64 // frame length from the uvarint prefix
	Consumed int64 // bytes the codec stream actually occupied
}

func (e *FramingError) Error() string {
	return fmt.Sprintf("archive: segment %d: codec stream ends after %d of %d declared bytes",
		e.Segment, e.Consumed, e.Declared)
}

// Writer appends independently compressed segments to a v2 archive
// stream, accumulating the footer's per-segment metadata as it goes.
//
// The first write error latches: a frame torn mid-write leaves the
// stream structurally corrupt, so every later WriteBlock and Close
// refuses with the original error instead of appending to garbage.
type Writer struct {
	w      *bufio.Writer
	opts   core.Options
	schema table.Schema
	segs   []SegmentInfo
	off    int64 // stream offset where the next frame's prefix lands
	blocks int
	total  int64 // final archive size, set by Close
	err    error // first write error; sticky
	closed bool
}

// NewWriter starts an archive on w. The options apply to every segment;
// quantile-form tolerances are resolved per segment against that
// segment's value ranges, so prefer absolute tolerances for
// cross-segment consistency.
func NewWriter(w io.Writer, opts core.Options) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opts: opts, off: int64(len(magicV2))}, nil
}

// WriteBlock compresses one segment of rows. Every segment must carry
// the same schema.
func (aw *Writer) WriteBlock(t *table.Table) (*core.Stats, error) {
	if aw.err != nil {
		return nil, aw.err
	}
	if aw.closed {
		return nil, fmt.Errorf("archive: writer is closed")
	}
	if err := aw.noteSchema(t.Schema()); err != nil {
		return nil, err
	}
	// Vary the sampling seed per segment so pathological segment orderings
	// don't resample identical row offsets; determinism is preserved.
	opts := aw.opts
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Seed += int64(aw.blocks)

	var block countBuffer
	stats, err := core.Compress(&block, t, opts)
	if err != nil {
		return nil, err // nothing reached the stream; the writer stays usable
	}
	zones, err := computeZones(t, aw.opts.Tolerances)
	if err != nil {
		return nil, err
	}
	if err := aw.appendFrame(block.data, t.NumRows(), zones); err != nil {
		return nil, err
	}
	return stats, nil
}

// noteSchema records the archive schema from the first segment and
// rejects drift on later ones.
func (aw *Writer) noteSchema(s table.Schema) error {
	if aw.schema == nil {
		aw.schema = s.Clone()
		return nil
	}
	return sameSchema(aw.schema, s)
}

// appendFrame writes one length-prefixed frame and records its footer
// entry. Any write failure latches into aw.err: the length prefix may
// already be on the wire, so the stream is unrecoverable.
func (aw *Writer) appendFrame(frame []byte, rows int, zones []ZoneMap) error {
	if aw.err != nil {
		return aw.err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(frame)))
	if _, err := aw.w.Write(lenBuf[:n]); err != nil {
		aw.err = fmt.Errorf("archive: writing frame prefix: %w", err)
		return aw.err
	}
	if _, err := aw.w.Write(frame); err != nil {
		aw.err = fmt.Errorf("archive: writing frame: %w", err)
		return aw.err
	}
	aw.segs = append(aw.segs, SegmentInfo{
		Offset: aw.off + int64(n),
		Length: int64(len(frame)),
		Rows:   rows,
		Zones:  zones,
	})
	aw.off += int64(n) + int64(len(frame))
	aw.blocks++
	return nil
}

// Blocks returns how many segments have been written.
func (aw *Writer) Blocks() int { return aw.blocks }

// Close writes the terminator, footer and trailer, then flushes. The
// writer cannot be reused. After a latched write error Close performs no
// further writes and surfaces that error instead.
func (aw *Writer) Close() error {
	if aw.closed {
		return aw.err
	}
	aw.closed = true
	if aw.err != nil {
		return aw.err
	}
	if err := aw.w.WriteByte(0); err != nil { // uvarint(0) terminator
		aw.err = err
		return err
	}
	// Serialize the footer to memory first: the trailer needs its CRC and
	// length, and a footer encoding error must not leave a partial footer
	// on the wire.
	var fbuf bytes.Buffer
	fbw := bufio.NewWriter(&fbuf)
	if err := writeFooter(fbw, aw.schema, aw.segs); err != nil {
		aw.err = err
		return err
	}
	if err := fbw.Flush(); err != nil {
		aw.err = err
		return err
	}
	foot := fbuf.Bytes()
	trailer, err := makeTrailer(foot)
	if err != nil {
		aw.err = err
		return err
	}
	if _, err := aw.w.Write(foot); err != nil {
		aw.err = err
		return err
	}
	if _, err := aw.w.Write(trailer[:]); err != nil {
		aw.err = err
		return err
	}
	if err := aw.w.Flush(); err != nil {
		aw.err = err
		return err
	}
	aw.total = aw.off + 1 + int64(len(foot)) + int64(len(trailer))
	return nil
}

type countBuffer struct{ data []byte }

func (b *countBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func sameSchema(a, b table.Schema) error {
	if len(a) != len(b) {
		return fmt.Errorf("archive: segment has %d attributes, archive has %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("archive: segment attribute %d is %v, archive has %v", i, b[i], a[i])
		}
	}
	return nil
}

// Reader iterates the segments of an archive as a forward-only stream.
// It accepts both format versions: v1 has no footer, and a v2 footer
// simply follows the terminator the reader stops at.
type Reader struct {
	r      *bufio.Reader
	lim    codec.DecodeLimits
	schema table.Schema
	read   int // frames consumed so far
	done   bool
}

// NewReader opens an archive stream with default decode limits.
func NewReader(r io.Reader) (*Reader, error) {
	return NewReaderLimited(r, codec.DecodeLimits{})
}

// NewReaderLimited is NewReader with explicit codec decode limits, which
// every segment decode applies.
func NewReaderLimited(r io.Reader, lim codec.DecodeLimits) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("archive: reading magic: %w", err)
	}
	if string(got) != magicV1 && string(got) != magicV2 {
		return nil, fmt.Errorf("archive: bad magic %q", got)
	}
	return &Reader{r: br, lim: lim}, nil
}

// NextFrame returns the next segment's raw compressed bytes, or io.EOF
// after the terminator.
func (ar *Reader) NextFrame() ([]byte, error) {
	if ar.done {
		return nil, io.EOF
	}
	frameLen, err := binary.ReadUvarint(ar.r)
	if err != nil {
		return nil, fmt.Errorf("archive: reading segment length: %w", err)
	}
	if frameLen == 0 {
		ar.done = true
		return nil, io.EOF
	}
	frame, err := readFrameBytes(ar.r, frameLen)
	if err != nil {
		return nil, fmt.Errorf("archive: reading segment %d: %w", ar.read, err)
	}
	ar.read++
	return frame, nil
}

// Next decompresses the next segment, or returns io.EOF after the
// terminator. A frame whose codec stream is shorter than its declared
// length fails with *FramingError.
func (ar *Reader) Next() (*table.Table, error) {
	frame, err := ar.NextFrame()
	if err != nil {
		return nil, err
	}
	t, err := decodeFrame(frame, ar.read-1, ar.lim)
	if err != nil {
		return nil, err
	}
	if err := ar.noteSchema(t.Schema()); err != nil {
		return nil, err
	}
	return t, nil
}

func (ar *Reader) noteSchema(s table.Schema) error {
	if ar.schema == nil {
		ar.schema = s.Clone()
		return nil
	}
	return sameSchema(ar.schema, s)
}

// decodeFrame decodes one in-memory frame and verifies the codec stream
// fills it exactly: a shorter stream means trailing garbage inside the
// frame (the drain-and-count framing check).
func decodeFrame(frame []byte, idx int, lim codec.DecodeLimits) (*table.Table, error) {
	t, consumed, err := codec.DecodeCounted(bytes.NewReader(frame), lim)
	if err != nil {
		return nil, fmt.Errorf("archive: decoding segment %d: %w", idx, err)
	}
	if consumed < int64(len(frame)) {
		return nil, &FramingError{Segment: idx, Declared: int64(len(frame)), Consumed: consumed}
	}
	return t, nil
}

// readFrameBytes reads exactly n frame bytes, growing the buffer in
// bounded chunks so a lying length prefix cannot force a huge upfront
// allocation: a truncated stream fails after at most one chunk of slack.
func readFrameBytes(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	if n > maxArchiveBytes {
		return nil, fmt.Errorf("implausible segment length %d", n)
	}
	dst := make([]byte, 0, minInt(int(n), chunk))
	for uint64(len(dst)) < n {
		want := n - uint64(len(dst))
		if want > chunk {
			want = chunk
		}
		start := len(dst)
		dst = append(dst, make([]byte, want)...)
		if _, err := io.ReadFull(r, dst[start:]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// decodeFrames decodes every frame concurrently and in order. The
// semaphore caps live goroutines at GOMAXPROCS: each decode holds a
// whole decompressed segment, so one goroutine per frame on a
// thousand-segment archive would hold the entire table at once.
func decodeFrames(frames [][]byte, lim codec.DecodeLimits) ([]*table.Table, error) {
	tables := make([]*table.Table, len(frames))
	errs := make([]error, len(frames))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range frames {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			tables[i], errs[i] = decodeFrame(frames[i], i, lim)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// mergeTables concatenates the rows of equal-schema tables in order,
// re-unifying categorical dictionaries.
func mergeTables(tables []*table.Table) (*table.Table, error) {
	var builder *table.Builder
	var schema table.Schema
	for _, t := range tables {
		if builder == nil {
			schema = t.Schema().Clone()
			var err error
			builder, err = table.NewBuilder(schema)
			if err != nil {
				return nil, err
			}
		} else if err := sameSchema(schema, t.Schema()); err != nil {
			return nil, err
		}
		row := make([]any, t.NumCols())
		for r := 0; r < t.NumRows(); r++ {
			for c := 0; c < t.NumCols(); c++ {
				if t.Attr(c).Kind == table.Numeric {
					row[c] = t.Float(r, c)
				} else {
					row[c] = t.CatString(r, c)
				}
			}
			if err := builder.AppendRow(row...); err != nil {
				return nil, err
			}
		}
	}
	if builder == nil {
		return nil, ErrEmptyArchive
	}
	return builder.Build()
}

// ReadAll decompresses every segment (concurrently, bounded at
// GOMAXPROCS) and concatenates the rows in segment order. A structurally
// valid archive with zero segments returns ErrEmptyArchive.
func ReadAll(r io.Reader) (*table.Table, error) {
	return ReadAllLimited(r, codec.DecodeLimits{})
}

// ReadAllLimited is ReadAll with explicit codec decode limits.
func ReadAllLimited(r io.Reader, lim codec.DecodeLimits) (*table.Table, error) {
	ar, err := NewReaderLimited(r, lim)
	if err != nil {
		return nil, err
	}
	var frames [][]byte
	for {
		frame, err := ar.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
	tables, err := decodeFrames(frames, lim)
	if err != nil {
		return nil, err
	}
	return mergeTables(tables)
}
