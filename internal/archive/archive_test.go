package archive

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/table"
)

// splitBlocks slices a table into contiguous row blocks.
func splitBlocks(t *testing.T, tb *table.Table, blockRows int) []*table.Table {
	t.Helper()
	var out []*table.Table
	for lo := 0; lo < tb.NumRows(); lo += blockRows {
		hi := lo + blockRows
		if hi > tb.NumRows() {
			hi = tb.NumRows()
		}
		rows := make([]int, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, r)
		}
		block, err := tb.SelectRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, block)
	}
	return out
}

func TestArchiveRoundTripLossless(t *testing.T) {
	tb := datagen.CDR(3000, 1)
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range splitBlocks(t, tb, 700) {
		if _, err := aw.WriteBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	if aw.Blocks() != 5 {
		t.Fatalf("blocks = %d, want 5", aw.Blocks())
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("lossless archive round trip changed the table")
	}
}

func TestArchiveRoundTripLossy(t *testing.T) {
	tb := datagen.CDR(4000, 2)
	// Absolute tolerances so every block enforces the same bound.
	tol := make(table.Tolerances, tb.NumCols())
	for i := 0; i < tb.NumCols(); i++ {
		if tb.Attr(i).Kind == table.Numeric {
			tol[i] = table.Tolerance{Value: 0.01 * tb.Col(i).Range()}
		}
	}
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{Tolerances: tol})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range splitBlocks(t, tb, 1000) {
		if _, err := aw.WriteBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := table.MaxAbsDiff(tb, back)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range diffs {
		if d > tol[i].Value+1e-9 {
			t.Errorf("attribute %d error %g > %g", i, d, tol[i].Value)
		}
	}
}

func TestArchiveIteratesBlocks(t *testing.T) {
	tb := datagen.CDR(1500, 3)
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := splitBlocks(t, tb, 500)
	for _, b := range blocks {
		if _, err := aw.WriteBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	ar, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		blk, err := ar.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !table.Equal(blocks[count], blk) {
			t.Errorf("block %d changed", count)
		}
		count++
	}
	if count != len(blocks) {
		t.Errorf("iterated %d blocks, want %d", count, len(blocks))
	}
	// Next after EOF stays EOF.
	if _, err := ar.Next(); err != io.EOF {
		t.Errorf("Next after EOF = %v", err)
	}
}

func TestArchiveRejectsSchemaDrift(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.WriteBlock(datagen.CDR(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.WriteBlock(datagen.Census(100, 1)); err == nil {
		t.Error("WriteBlock accepted a different schema")
	}
}

func TestArchiveWriterClosed(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := aw.WriteBlock(datagen.CDR(10, 1)); err == nil {
		t.Error("WriteBlock accepted rows after Close")
	}
}

func TestArchiveErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("NewReader accepted bad magic")
	}
	if _, err := ReadAll(bytes.NewReader([]byte(magicV2))); err == nil {
		t.Error("ReadAll accepted missing terminator")
	}
	// Empty archive (just terminator): no blocks is an error for ReadAll.
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("ReadAll accepted empty archive")
	}
	// Truncated block payload.
	var buf2 bytes.Buffer
	aw2, err := NewWriter(&buf2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw2.WriteBlock(datagen.CDR(50, 1)); err != nil {
		t.Fatal(err)
	}
	if err := aw2.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf2.Bytes()
	if _, err := ReadAll(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("ReadAll accepted truncated archive")
	}
}
