package archive

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
)

// TestSegReaderCloseIdempotent: Close is safe to call any number of
// times, on nil receivers included, and reads after Close fail with
// the typed error instead of touching a dead stream.
func TestSegReaderCloseIdempotent(t *testing.T) {
	tb := prunableTable(t, 300)
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 300}); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Segment(0); err != nil {
		t.Fatalf("Segment before Close: %v", err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("second Close should be a no-op, got %v", err)
	}

	if _, err := sr.Segment(0); !errors.Is(err, ErrReaderClosed) {
		t.Errorf("Segment after Close: want ErrReaderClosed, got %v", err)
	}
	if _, err := sr.ReadAll(); !errors.Is(err, ErrReaderClosed) {
		t.Errorf("ReadAll after Close: want ErrReaderClosed, got %v", err)
	}
	if _, _, err := sr.Query(nil, query.Query{Agg: query.Count}); !errors.Is(err, ErrReaderClosed) {
		t.Errorf("Query after Close: want ErrReaderClosed, got %v", err)
	}

	// Footer metadata needs no stream and stays readable after Close.
	if sr.NumSegments() == 0 || sr.Schema() == nil {
		t.Error("footer metadata should survive Close")
	}
}

func TestSegReaderCloseNilReceiver(t *testing.T) {
	var sr *SegReader
	if err := sr.Close(); err != nil {
		t.Fatalf("nil receiver Close: want nil, got %v", err)
	}
}

// TestSegReaderCloseFile: a file-backed reader closes the underlying
// *os.File exactly once — the second reader Close must not surface the
// file's double-close error.
func TestSegReaderCloseFile(t *testing.T) {
	tb := prunableTable(t, 200)
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 200}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "close.spn")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSegmented(f)
	if err != nil {
		_ = f.Close()
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The underlying descriptor is gone: the file rejects reads.
	if _, err := f.Read(make([]byte, 1)); err == nil {
		t.Error("underlying file should be closed")
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("second Close on file-backed reader: want nil, got %v", err)
	}
}

// TestSegReaderCloseNonCloser: an in-memory stream has nothing to
// close; Close just severs the reference.
func TestSegReaderCloseNonCloser(t *testing.T) {
	tb := prunableTable(t, 100)
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{}); err != nil {
		t.Fatal(err)
	}
	var rs io.ReadSeeker = bytes.NewReader(buf.Bytes())
	sr, err := OpenSegmented(rs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Close(); err != nil {
		t.Fatalf("Close over a non-Closer stream: %v", err)
	}
}
