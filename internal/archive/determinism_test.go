package archive

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// TestDoubleCompressByteIdentity: compressing the same table twice must
// produce byte-identical archives — zone maps, dictionaries, sampling
// seeds and footer included. Any wall-clock, shared-rand or map-order
// dependence in the encode path shows up as a diff between the runs.
// Runs with parallel segment compression so goroutine completion order
// is exercised too (meaningful under -race).
func TestDoubleCompressByteIdentity(t *testing.T) {
	tb := datagen.CDR(3000, 7)
	compress := func() []byte {
		var buf bytes.Buffer
		if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 400, Workers: 4}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := compress()
	second := compress()
	if !bytes.Equal(first, second) {
		i := 0
		for i < len(first) && i < len(second) && first[i] == second[i] {
			i++
		}
		t.Fatalf("double compress diverges: %d vs %d bytes, first difference at offset %d",
			len(first), len(second), i)
	}

	// The divergence check must also hold for the pruning metadata the
	// query planner trusts: identical bytes imply identical footers, but
	// decode one to make sure the archive round-trips at all.
	sr, err := OpenSegmented(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if got := sr.NumSegments(); got != 8 {
		t.Fatalf("NumSegments = %d, want 8", got)
	}
}
