// Archive v2 footer: per-segment metadata (byte extents, row counts,
// zone maps) serialized after the segment region's terminator, followed
// by a fixed-size trailer that locates and checksums it. Readers with a
// seekable stream parse the footer alone to plan which segment bodies to
// decode; the body framing never references the footer, so streaming
// readers can ignore it entirely.
package archive

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/table"
)

// Trailer layout: crc32(footer) uint32 LE, footer length uint32 LE, end
// magic. Fixed size so a reader finds it at EOF−16 without scanning.
const (
	endMagic    = "SPARC2E\n"
	trailerSize = 4 + 4 + len(endMagic)
)

// maxFooterBytes caps the trailer's declared footer length (256 MiB —
// far above any real footer, which costs tens of bytes per segment).
const maxFooterBytes = 1 << 28

// ZoneMap summarizes one column of one segment for predicate pruning.
type ZoneMap struct {
	// Min and Max bound every value the segment can decode to for a
	// numeric column: the observed range widened by the segment's
	// resolved compression tolerance, so lossy reconstruction stays
	// inside the zone. Zero for categorical columns.
	Min, Max float64
	// Fingerprint is a 64-bit membership filter for a categorical
	// column: bit fpBit(v) is set for every dictionary value v present
	// in the segment. A clear bit proves absence; a set bit proves
	// nothing (collisions). Zero for numeric columns.
	Fingerprint uint64
}

// MayContain reports whether the categorical value could be present in
// the zone's segment. False is definite absence.
func (z ZoneMap) MayContain(value string) bool {
	return z.Fingerprint&fpBit(value) != 0
}

// fpBit hashes a categorical value to its fingerprint bit.
func fpBit(value string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(value)) // fnv never fails
	return 1 << (h.Sum64() % 64)
}

// SegmentInfo is one footer entry: where a segment's codec stream lives
// and what its rows can contain.
type SegmentInfo struct {
	// Offset is the stream position of the segment's codec bytes (after
	// the uvarint length prefix); Length is their byte count.
	Offset, Length int64
	// Rows is the segment's row count.
	Rows int
	// Zones holds one ZoneMap per schema column.
	Zones []ZoneMap
}

// computeZones builds the per-column zone maps for one segment. Numeric
// zones are widened by the segment's resolved tolerance so decoded
// (lossy) values provably stay inside them; tol may be nil for lossless.
func computeZones(t *table.Table, tol table.Tolerances) ([]ZoneMap, error) {
	if tol == nil {
		tol = table.ZeroTolerances(t)
	}
	resolved, err := tol.Resolve(t)
	if err != nil {
		return nil, err
	}
	zones := make([]ZoneMap, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		col := t.Col(i)
		if t.Attr(i).Kind == table.Numeric {
			lo, hi := col.MinMax()
			e := resolved[i].Value
			zones[i] = ZoneMap{Min: lo - e, Max: hi + e}
			continue
		}
		// One pass over codes, hashing each dictionary entry at most once.
		seen := make([]bool, len(col.Dict))
		var fp uint64
		for _, code := range col.Codes {
			if !seen[code] {
				seen[code] = true
				fp |= fpBit(col.Dict[code])
			}
		}
		zones[i] = ZoneMap{Fingerprint: fp}
	}
	return zones, nil
}

// writeFooter serializes the footer: schema (names and kinds), then the
// segment directory with zone maps. Dictionaries are not repeated here —
// each segment's codec stream carries its own.
func writeFooter(bw *bufio.Writer, schema table.Schema, segs []SegmentInfo) error {
	if err := putUvarint(bw, uint64(len(schema))); err != nil {
		return err
	}
	for _, a := range schema {
		if err := putString(bw, a.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(a.Kind)); err != nil {
			return err
		}
	}
	if err := putUvarint(bw, uint64(len(segs))); err != nil {
		return err
	}
	for _, seg := range segs {
		if err := putUvarint(bw, uint64(seg.Offset)); err != nil {
			return err
		}
		if err := putUvarint(bw, uint64(seg.Length)); err != nil {
			return err
		}
		if err := putUvarint(bw, uint64(seg.Rows)); err != nil {
			return err
		}
		if len(seg.Zones) != len(schema) {
			return fmt.Errorf("archive: segment has %d zones for %d attributes", len(seg.Zones), len(schema))
		}
		for i, z := range seg.Zones {
			var b [8]byte
			if schema[i].Kind == table.Numeric {
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(z.Min))
				if _, err := bw.Write(b[:]); err != nil {
					return err
				}
				binary.LittleEndian.PutUint64(b[:], math.Float64bits(z.Max))
				if _, err := bw.Write(b[:]); err != nil {
					return err
				}
			} else {
				binary.LittleEndian.PutUint64(b[:], z.Fingerprint)
				if _, err := bw.Write(b[:]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// readFooter parses a footer. size is the total archive byte size, used
// to reject segment extents pointing outside the file; lim bounds the
// allocations a hostile footer could otherwise demand.
func readFooter(br *bufio.Reader, size int64, lim codec.DecodeLimits) (table.Schema, []SegmentInfo, error) {
	lim = lim.WithDefaults()
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: reading footer column count: %w", err)
	}
	if ncols > lim.MaxCols {
		return nil, nil, fmt.Errorf("archive: footer column count %d exceeds limit %d", ncols, lim.MaxCols)
	}
	schema := make(table.Schema, ncols)
	for i := range schema {
		name, err := getString(br)
		if err != nil {
			return nil, nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		kind := table.Kind(kb)
		if kind != table.Numeric && kind != table.Categorical {
			return nil, nil, fmt.Errorf("archive: footer has unknown kind %d", kb)
		}
		schema[i] = table.Attribute{Name: name, Kind: kind}
	}
	nsegs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: reading footer segment count: %w", err)
	}
	if nsegs > maxFooterBytes || nsegs > uint64(size) {
		// Every segment costs at least one stream byte (and several footer
		// bytes), so a count past either size is a lie regardless of limits.
		return nil, nil, fmt.Errorf("archive: footer claims %d segments in a %d-byte archive", nsegs, size)
	}
	// Grow incrementally so a lying count cannot force a huge allocation
	// before the footer bytes run out.
	segs := make([]SegmentInfo, 0, minInt(int(nsegs), 1<<12))
	for s := uint64(0); s < nsegs; s++ {
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		if off > maxArchiveBytes || off > uint64(size) || off < uint64(len(magicV2)) {
			return nil, nil, fmt.Errorf("archive: footer segment %d offset %d outside archive of %d bytes", s, off, size)
		}
		if length > maxArchiveBytes || length > uint64(size)-off {
			return nil, nil, fmt.Errorf("archive: footer segment %d length %d overruns archive of %d bytes", s, length, size)
		}
		rows, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, err
		}
		if rows > lim.MaxRows {
			return nil, nil, fmt.Errorf("archive: footer segment %d row count %d exceeds limit %d", s, rows, lim.MaxRows)
		}
		zones := make([]ZoneMap, ncols)
		for i := range zones {
			var b [8]byte
			if schema[i].Kind == table.Numeric {
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, nil, err
				}
				zones[i].Min = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, nil, err
				}
				zones[i].Max = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
			} else {
				if _, err := io.ReadFull(br, b[:]); err != nil {
					return nil, nil, err
				}
				zones[i].Fingerprint = binary.LittleEndian.Uint64(b[:])
			}
		}
		segs = append(segs, SegmentInfo{
			Offset: int64(off),
			Length: int64(length),
			Rows:   int(rows),
			Zones:  zones,
		})
	}
	return schema, segs, nil
}

// makeTrailer builds the fixed-size trailer for the serialized footer.
func makeTrailer(footer []byte) ([trailerSize]byte, error) {
	var tr [trailerSize]byte
	if len(footer) > maxFooterBytes {
		return tr, fmt.Errorf("archive: footer of %d bytes exceeds format limit %d", len(footer), maxFooterBytes)
	}
	binary.LittleEndian.PutUint32(tr[0:4], crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint32(tr[4:8], uint32(len(footer)))
	copy(tr[8:], endMagic)
	return tr, nil
}

func putUvarint(bw *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := bw.Write(buf[:n])
	return err
}

func putString(bw *bufio.Writer, s string) error {
	if err := putUvarint(bw, uint64(len(s))); err != nil {
		return err
	}
	_, err := bw.WriteString(s)
	return err
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("archive: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", err
	}
	return string(b), nil
}
