package archive

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

// FuzzDecodeArchive asserts the archive reader never panics on corrupted
// bytes: every input must either decode to a valid table or fail with an
// error. Run with `go test -fuzz=FuzzDecodeArchive ./internal/archive`
// for real fuzzing; the seed corpus runs as a normal test.
func FuzzDecodeArchive(f *testing.F) {
	// Seed with a valid two-block archive plus targeted corruptions.
	tb := datagen.CDR(600, 1)
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	for lo := 0; lo < tb.NumRows(); lo += 300 {
		rows := make([]int, 0, 300)
		for r := lo; r < lo+300 && r < tb.NumRows(); r++ {
			rows = append(rows, r)
		}
		block, err := tb.SelectRows(rows)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := aw.WriteBlock(block); err != nil {
			f.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))               // header only, no terminator
	f.Add(valid[:len(valid)/2])        // truncated mid-block
	f.Add(valid[:len(valid)-1])        // missing terminator byte
	f.Add(append([]byte(nil), 'X', 0)) // wrong magic
	flipped := append([]byte(nil), valid...)
	flipped[len(magic)] ^= 0xFF // corrupt the first block-length varint
	f.Add(flipped)
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xFF // corrupt block payload
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadAll(bytes.NewReader(data))
		if err == nil && tbl == nil {
			t.Error("ReadAll returned nil table without error")
		}
	})
}
