package archive

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datagen"
)

// FuzzDecodeArchive asserts the archive readers never panic on corrupted
// bytes: every input must either decode to a valid table or fail with an
// error, through both the streaming reader and the footer-driven seek
// reader. Run with `go test -fuzz=FuzzDecodeArchive ./internal/archive`
// for real fuzzing; the seed corpus runs as a normal test.
func FuzzDecodeArchive(f *testing.F) {
	// Seed with a valid two-segment v2 archive plus targeted corruptions.
	tb := datagen.CDR(600, 1)
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		f.Fatal(err)
	}
	for lo := 0; lo < tb.NumRows(); lo += 300 {
		rows := make([]int, 0, 300)
		for r := lo; r < lo+300 && r < tb.NumRows(); r++ {
			rows = append(rows, r)
		}
		block, err := tb.SelectRows(rows)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := aw.WriteBlock(block); err != nil {
			f.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magicV2))             // header only: no terminator, no footer
	f.Add([]byte(magicV1))             // v1 header only
	f.Add(valid[:len(valid)/2])        // truncated mid-segment-body
	f.Add(append([]byte(nil), 'X', 0)) // wrong magic
	// Truncated mid-length-prefix: segment frames are KBs, so the first
	// length uvarint spans several bytes; cut after its first byte.
	f.Add(valid[:len(magicV2)+1])
	// Truncated mid-footer: keep the terminator and part of the footer
	// but drop the trailer and the footer's tail.
	f.Add(valid[: len(valid)-trailerSize-3 : len(valid)-trailerSize-3])
	// Truncated mid-trailer.
	f.Add(valid[:len(valid)-trailerSize/2])
	flippedLen := append([]byte(nil), valid...)
	flippedLen[len(magicV2)] ^= 0xFF // corrupt the first segment-length varint
	f.Add(flippedLen)
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xFF // corrupt segment payload or footer
	f.Add(mutated)
	badTrailer := append([]byte(nil), valid...)
	badTrailer[len(badTrailer)-trailerSize+2] ^= 0xFF // corrupt declared footer length
	f.Add(badTrailer)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-trailerSize] ^= 0xFF // corrupt the footer checksum
	f.Add(badCRC)

	// Tight limits: no corrupted input may allocate past these, and a
	// valid archive that fits them must still decode.
	lim := codec.DecodeLimits{
		MaxRows:        1 << 12,
		MaxCols:        64,
		MaxDictEntries: 1 << 12,
		MaxModelBytes:  1 << 22,
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ReadAll(bytes.NewReader(data))
		if err == nil && tbl == nil {
			t.Error("ReadAll returned nil table without error")
		}
		tbl, err = ReadAllLimited(bytes.NewReader(data), lim)
		if err == nil && tbl == nil {
			t.Error("ReadAllLimited returned nil table without error")
		}
		sr, err := OpenSegmentedLimited(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		for i := 0; i < sr.NumSegments(); i++ {
			if tbl, err := sr.Segment(i); err == nil && tbl == nil {
				t.Errorf("Segment(%d) returned nil table without error", i)
			}
		}
	})
}
