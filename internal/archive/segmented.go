// Segment-parallel archive construction and footer-driven reading.
// WriteTable splits a table into row segments and compresses them on a
// bounded worker pool — each segment's SPARTAN pipeline (sample, model
// selection, CaRT construction, outlier scan) is independent — while a
// single writer goroutine appends frames strictly in segment order, so
// the output bytes are identical at any worker count. SegReader opens
// the footer of a seekable v2 archive and decodes segment bodies on
// demand, letting Query skip segments whose zone maps refute the
// predicate.
package archive

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/table"
)

// DefaultSegmentRows is the segment size used when SegmentOptions leaves
// SegmentRows zero. Large enough that per-segment model overhead (each
// segment carries its own dictionaries and CaRTs) stays small against
// the compressed payload, small enough that a handful of segments fit in
// memory during parallel compression.
const DefaultSegmentRows = 64 << 10

// SegmentOptions shapes how WriteTable splits and schedules work.
type SegmentOptions struct {
	// SegmentRows is the target rows per segment; zero selects
	// DefaultSegmentRows. The final segment holds the remainder.
	SegmentRows int
	// Workers bounds how many segments compress concurrently; zero
	// selects GOMAXPROCS. The output bytes do not depend on it.
	Workers int
}

func (o SegmentOptions) withDefaults(rows int) SegmentOptions {
	if o.SegmentRows <= 0 {
		o.SegmentRows = DefaultSegmentRows
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if nseg := (rows + o.SegmentRows - 1) / o.SegmentRows; o.Workers > nseg && nseg > 0 {
		o.Workers = nseg
	}
	return o
}

// TableStats aggregates per-segment compression statistics.
type TableStats struct {
	Segments        int
	Rows            int
	RawBytes        int
	CompressedBytes int     // total archive size incl. framing and footer
	Ratio           float64 // CompressedBytes / RawBytes
	Outliers        int
	PerSegment      []*core.Stats
}

// segResult carries one compressed segment from a worker to the writer.
type segResult struct {
	frame []byte
	rows  int
	zones []ZoneMap
	stats *core.Stats
	err   error
}

// WriteTable compresses t into a segmented v2 archive on w. It is
// WriteTableContext with a background context.
func WriteTable(w io.Writer, t *table.Table, opts core.Options, seg SegmentOptions) (*TableStats, error) {
	return WriteTableContext(context.Background(), w, t, opts, seg)
}

// WriteTableContext splits t into row segments and compresses them
// concurrently (bounded by seg.Workers), writing frames in segment
// order. Output bytes are deterministic: each segment's sampling seed is
// derived from its index exactly as sequential WriteBlock calls would
// derive it, so any worker count — including 1 — produces identical
// archives. Cancelling ctx abandons in-flight segments and returns.
func WriteTableContext(ctx context.Context, w io.Writer, t *table.Table, opts core.Options, seg SegmentOptions) (*TableStats, error) {
	if t == nil || t.NumCols() == 0 {
		return nil, fmt.Errorf("archive: nil or empty table")
	}
	rows := t.NumRows()
	seg = seg.withDefaults(rows)
	nseg := (rows + seg.SegmentRows - 1) / seg.SegmentRows

	aw, err := NewWriter(w, opts)
	if err != nil {
		return nil, err
	}
	if nseg == 0 {
		// A zero-row table yields a legal empty archive; readers report
		// ErrEmptyArchive because no segment ever recorded the schema.
		if err := aw.Close(); err != nil {
			return nil, err
		}
		return &TableStats{CompressedBytes: int(aw.total)}, nil
	}
	if err := aw.noteSchema(t.Schema()); err != nil {
		return nil, err
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each result channel is buffered so a finished worker never blocks:
	// the writer drains them strictly in order, and after an error the
	// unread buffers are simply garbage-collected.
	results := make([]chan segResult, nseg)
	for i := range results {
		results[i] = make(chan segResult, 1)
	}
	sem := make(chan struct{}, seg.Workers)
	go func() {
		for i := 0; i < nseg; i++ {
			select {
			case <-cctx.Done():
				for j := i; j < nseg; j++ {
					results[j] <- segResult{err: cctx.Err()}
				}
				return
			case sem <- struct{}{}:
			}
			go func(i int) {
				defer func() { <-sem }()
				results[i] <- compressSegment(cctx, t, i, seg, opts)
			}(i)
		}
	}()

	stats := &TableStats{Segments: nseg, Rows: rows, RawBytes: t.RawSizeBytes()}
	for i := 0; i < nseg; i++ {
		res := <-results[i]
		if res.err != nil {
			return nil, fmt.Errorf("archive: segment %d: %w", i, res.err)
		}
		if err := aw.appendFrame(res.frame, res.rows, res.zones); err != nil {
			return nil, err
		}
		stats.Outliers += res.stats.Outliers
		stats.PerSegment = append(stats.PerSegment, res.stats)
	}
	if err := aw.Close(); err != nil {
		return nil, err
	}
	stats.CompressedBytes = int(aw.total)
	if stats.RawBytes > 0 {
		stats.Ratio = float64(stats.CompressedBytes) / float64(stats.RawBytes)
	}
	return stats, nil
}

// compressSegment compresses rows [idx·segRows, idx·segRows+segRows) of
// t into a frame. It only reads t, so segments compress concurrently
// over one shared table.
func compressSegment(ctx context.Context, t *table.Table, idx int, seg SegmentOptions, opts core.Options) segResult {
	lo := idx * seg.SegmentRows
	hi := lo + seg.SegmentRows
	if hi > t.NumRows() {
		hi = t.NumRows()
	}
	sel := make([]int, hi-lo)
	for i := range sel {
		sel[i] = lo + i
	}
	part, err := t.SelectRows(sel)
	if err != nil {
		return segResult{err: err}
	}
	// Same per-segment seed rule as sequential WriteBlock calls, so the
	// parallel path emits byte-identical frames.
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Seed += int64(idx)
	if seg.Workers > 1 {
		// Segment-level parallelism already saturates the cores; don't
		// multiply it by the outlier scan's internal fan-out.
		opts.ScanWorkers = 1
	}
	var frame countBuffer
	stats, err := core.CompressContext(ctx, &frame, part, opts)
	if err != nil {
		return segResult{err: err}
	}
	zones, err := computeZones(part, opts.Tolerances)
	if err != nil {
		return segResult{err: err}
	}
	return segResult{frame: frame.data, rows: part.NumRows(), zones: zones, stats: stats}
}

// SegReader reads a v2 archive through its footer: segments decode on
// demand by index, and Query consults zone maps to skip segments a
// predicate refutes. Methods that touch the underlying stream share its
// seek position and must not be called concurrently.
type SegReader struct {
	r      io.ReadSeeker
	lim    codec.DecodeLimits
	schema table.Schema
	segs   []SegmentInfo
	size   int64
	rows   int
	closed bool
}

// ErrReaderClosed is returned by segment reads attempted after Close.
var ErrReaderClosed = errors.New("archive: reader is closed")

// Close releases the reader. When the underlying stream is itself an
// io.Closer — an *os.File, a network body — it is closed too; an
// in-memory reader just drops the reference. Close is idempotent and
// nil-receiver-safe: second and later calls, and calls on a nil
// reader, return nil. Reads after Close fail with ErrReaderClosed.
func (sr *SegReader) Close() error {
	if sr == nil || sr.closed {
		return nil
	}
	sr.closed = true
	r := sr.r
	sr.r = nil
	if c, ok := r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// OpenSegmented parses the footer of a seekable v2 archive with default
// decode limits. v1 archives have no footer; read them with NewReader.
func OpenSegmented(r io.ReadSeeker) (*SegReader, error) {
	return OpenSegmentedLimited(r, codec.DecodeLimits{})
}

// OpenSegmentedLimited is OpenSegmented with explicit decode limits,
// applied to the footer parse and every segment decode.
func OpenSegmentedLimited(r io.ReadSeeker, lim codec.DecodeLimits) (*SegReader, error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	got := make([]byte, len(magicV2))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("archive: reading magic: %w", err)
	}
	if string(got) == magicV1 {
		return nil, fmt.Errorf("archive: v1 archive has no footer; use NewReader")
	}
	if string(got) != magicV2 {
		return nil, fmt.Errorf("archive: bad magic %q", got)
	}
	size, err := r.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	// Smallest legal archive: magic, terminator byte, empty footer, trailer.
	if size < int64(len(magicV2))+1+int64(trailerSize) {
		return nil, fmt.Errorf("archive: %d bytes is too short for a v2 archive", size)
	}
	if _, err := r.Seek(size-int64(trailerSize), io.SeekStart); err != nil {
		return nil, err
	}
	var tr [trailerSize]byte
	if _, err := io.ReadFull(r, tr[:]); err != nil {
		return nil, fmt.Errorf("archive: reading trailer: %w", err)
	}
	if string(tr[8:]) != endMagic {
		return nil, fmt.Errorf("archive: bad end magic %q (truncated or not a v2 archive)", tr[8:])
	}
	wantCRC := binary.LittleEndian.Uint32(tr[0:4])
	footLen := int64(binary.LittleEndian.Uint32(tr[4:8]))
	if footLen > maxFooterBytes || footLen > size-int64(trailerSize)-int64(len(magicV2))-1 {
		return nil, fmt.Errorf("archive: trailer claims %d-byte footer in %d-byte archive", footLen, size)
	}
	if _, err := r.Seek(size-int64(trailerSize)-footLen, io.SeekStart); err != nil {
		return nil, err
	}
	foot, err := readFrameBytes(r, uint64(footLen))
	if err != nil {
		return nil, fmt.Errorf("archive: reading footer: %w", err)
	}
	if got := crc32.ChecksumIEEE(foot); got != wantCRC {
		return nil, fmt.Errorf("archive: footer checksum mismatch (want %08x, got %08x)", wantCRC, got)
	}
	schema, segs, err := readFooter(bufio.NewReader(bytes.NewReader(foot)), size, lim)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, seg := range segs {
		if seg.Rows > math.MaxInt-total {
			return nil, fmt.Errorf("archive: footer row counts overflow")
		}
		total += seg.Rows
	}
	return &SegReader{r: r, lim: lim, schema: schema, segs: segs, size: size, rows: total}, nil
}

// Schema returns the archive schema (nil for an empty archive).
func (sr *SegReader) Schema() table.Schema { return sr.schema }

// NumSegments returns how many segments the footer records.
func (sr *SegReader) NumSegments() int { return len(sr.segs) }

// Info returns the footer entry for segment i.
func (sr *SegReader) Info(i int) SegmentInfo { return sr.segs[i] }

// TotalRows returns the archive-wide row count from the footer.
func (sr *SegReader) TotalRows() int { return sr.rows }

// frame reads segment i's raw compressed bytes.
func (sr *SegReader) frame(i int) ([]byte, error) {
	if sr.closed {
		return nil, ErrReaderClosed
	}
	seg := sr.segs[i]
	if _, err := sr.r.Seek(seg.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	frame, err := readFrameBytes(sr.r, uint64(seg.Length))
	if err != nil {
		return nil, fmt.Errorf("archive: reading segment %d: %w", i, err)
	}
	return frame, nil
}

// Segment decodes segment i, verifying its frame against the footer.
func (sr *SegReader) Segment(i int) (*table.Table, error) {
	frame, err := sr.frame(i)
	if err != nil {
		return nil, err
	}
	t, err := decodeFrame(frame, i, sr.lim)
	if err != nil {
		return nil, err
	}
	if t.NumRows() != sr.segs[i].Rows {
		return nil, fmt.Errorf("archive: segment %d decoded %d rows, footer records %d", i, t.NumRows(), sr.segs[i].Rows)
	}
	return t, nil
}

// ReadAll decodes every segment (concurrently, bounded at GOMAXPROCS)
// and concatenates the rows. An empty archive returns ErrEmptyArchive.
func (sr *SegReader) ReadAll() (*table.Table, error) {
	frames := make([][]byte, len(sr.segs))
	for i := range sr.segs {
		var err error
		if frames[i], err = sr.frame(i); err != nil {
			return nil, err
		}
	}
	tables, err := decodeFrames(frames, sr.lim)
	if err != nil {
		return nil, err
	}
	return mergeTables(tables)
}

// QueryStats reports how much decoding a query's zone-map pruning saved.
type QueryStats struct {
	Segments    int // segments in the archive
	Decoded     int // segments whose bodies were decompressed
	Pruned      int // segments skipped because their zones refuted Where
	RowsDecoded int
	RowsPruned  int
}

// Query runs q against the archive, decoding only segments whose zone
// maps cannot refute the WHERE predicate. Tolerances (quantile forms
// included) resolve against archive-wide footer ranges, and the query
// evaluates with the archive-wide row count and value bounds in scope,
// so the result — definite rows, uncertain rows and interval bounds —
// is identical to decoding every segment and querying the whole table.
func (sr *SegReader) Query(tol table.Tolerances, q query.Query) (*query.Result, *QueryStats, error) {
	if sr.closed {
		return nil, nil, ErrReaderClosed
	}
	if len(sr.segs) == 0 {
		return nil, nil, ErrEmptyArchive
	}
	colIdx := make(map[string]int, len(sr.schema))
	for i, a := range sr.schema {
		colIdx[a.Name] = i
	}
	// Archive-wide value bounds: the union of the (tolerance-widened)
	// segment zones. Resolving quantile tolerances against these instead
	// of a pruned subset's narrower ranges keeps the error bounds the
	// full-decode path would use.
	scope := &query.Scope{TotalRows: sr.rows, Ranges: make(map[string][2]float64)}
	ranges := make([]float64, len(sr.schema))
	for i, a := range sr.schema {
		if a.Kind != table.Numeric {
			continue
		}
		lo, hi := sr.segs[0].Zones[i].Min, sr.segs[0].Zones[i].Max
		for _, seg := range sr.segs[1:] {
			lo = math.Min(lo, seg.Zones[i].Min)
			hi = math.Max(hi, seg.Zones[i].Max)
		}
		scope.Ranges[a.Name] = [2]float64{lo, hi}
		ranges[i] = hi - lo
	}
	if tol == nil {
		tol = make(table.Tolerances, len(sr.schema))
	}
	resolved, err := tol.ResolveRanges(sr.schema, ranges)
	if err != nil {
		return nil, nil, err
	}
	tolMap := make(map[string]float64, len(sr.schema))
	for i, a := range sr.schema {
		tolMap[a.Name] = resolved[i].Value
	}

	stats := &QueryStats{Segments: len(sr.segs)}
	var kept []int
	for i, seg := range sr.segs {
		zones := func(column string) (query.ColumnZone, bool) {
			c, ok := colIdx[column]
			if !ok {
				return query.ColumnZone{}, false
			}
			z := seg.Zones[c]
			if sr.schema[c].Kind == table.Numeric {
				return query.ColumnZone{Kind: table.Numeric, Lo: z.Min, Hi: z.Max}, true
			}
			return query.ColumnZone{Kind: table.Categorical, MayContain: z.MayContain}, true
		}
		if query.CanMatch(q.Where, zones, tolMap) {
			kept = append(kept, i)
			stats.Decoded++
			stats.RowsDecoded += seg.Rows
		} else {
			stats.Pruned++
			stats.RowsPruned += seg.Rows
		}
	}

	var t *table.Table
	if len(kept) == 0 {
		// Every segment refuted: query an empty table with the footer
		// schema so validation and group synthesis still run.
		cols := make([]*table.Column, len(sr.schema))
		for i, a := range sr.schema {
			cols[i] = &table.Column{Kind: a.Kind}
		}
		if t, err = table.New(sr.schema.Clone(), cols); err != nil {
			return nil, nil, err
		}
	} else {
		frames := make([][]byte, len(kept))
		for k, i := range kept {
			if frames[k], err = sr.frame(i); err != nil {
				return nil, nil, err
			}
		}
		tables, err := decodeFrames(frames, sr.lim)
		if err != nil {
			return nil, nil, err
		}
		for k, dt := range tables {
			if dt.NumRows() != sr.segs[kept[k]].Rows {
				return nil, nil, fmt.Errorf("archive: segment %d decoded %d rows, footer records %d", kept[k], dt.NumRows(), sr.segs[kept[k]].Rows)
			}
		}
		if t, err = mergeTables(tables); err != nil {
			return nil, nil, err
		}
	}
	res, err := query.RunScoped(t, tol, q, scope)
	if err != nil {
		return nil, nil, err
	}
	return res, stats, nil
}
