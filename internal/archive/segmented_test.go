package archive

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/query"
	"repro/internal/table"
)

// prunableTable builds a table whose halves occupy disjoint numeric
// ranges and categorical domains, so a 2-segment split gives zone maps
// that can refute half-targeting predicates.
func prunableTable(t *testing.T, rowsPerHalf int) *table.Table {
	t.Helper()
	b, err := table.NewBuilder(table.Schema{
		{Name: "v", Kind: table.Numeric},
		{Name: "w", Kind: table.Numeric},
		{Name: "region", Kind: table.Categorical},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rowsPerHalf; i++ {
		b.MustAppendRow(float64(i%10), float64(i%7)*3.5, "east")
	}
	for i := 0; i < rowsPerHalf; i++ {
		b.MustAppendRow(1000+float64(i%10), float64(i%7)*3.5, "west")
	}
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestWriteTableRoundTrip(t *testing.T) {
	tb := datagen.CDR(2500, 7)
	var buf bytes.Buffer
	stats, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 600})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 5 {
		t.Errorf("segments = %d, want 5", stats.Segments)
	}
	if stats.Rows != tb.NumRows() {
		t.Errorf("rows = %d, want %d", stats.Rows, tb.NumRows())
	}
	if stats.CompressedBytes != buf.Len() {
		t.Errorf("CompressedBytes = %d, archive is %d bytes", stats.CompressedBytes, buf.Len())
	}
	// Streaming read path.
	back, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("streaming round trip changed the table")
	}
	// Footer-driven read path.
	sr, err := OpenSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSegments() != 5 || sr.TotalRows() != tb.NumRows() {
		t.Errorf("footer: %d segments / %d rows, want 5 / %d", sr.NumSegments(), sr.TotalRows(), tb.NumRows())
	}
	back2, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back2) {
		t.Error("footer round trip changed the table")
	}
	// Per-segment decode agrees with the footer's row counts.
	for i := 0; i < sr.NumSegments(); i++ {
		seg, err := sr.Segment(i)
		if err != nil {
			t.Fatal(err)
		}
		if seg.NumRows() != sr.Info(i).Rows {
			t.Errorf("segment %d: %d rows, footer says %d", i, seg.NumRows(), sr.Info(i).Rows)
		}
	}
}

// TestParallelDeterminism: the archive bytes must not depend on the
// worker count, and must match what sequential WriteBlock calls over the
// same row split produce.
func TestParallelDeterminism(t *testing.T) {
	tb := datagen.CDR(2000, 11)
	write := func(workers int) []byte {
		var buf bytes.Buffer
		if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 500, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := write(1)
	parallel := write(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parallel archive bytes differ from sequential")
	}
	// Sequential WriteBlock over the same split.
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, block := range splitBlocks(t, tb, 500) {
		if _, err := aw.WriteBlock(block); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, buf.Bytes()) {
		t.Fatal("WriteTable bytes differ from sequential WriteBlock calls")
	}
}

func TestZoneMapPruning(t *testing.T) {
	tb := prunableTable(t, 300)
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, tb, core.Options{}, SegmentOptions{SegmentRows: 300}); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	full, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		where      query.Predicate
		wantPruned int
	}{
		{"numeric refutes first half", query.NumCmp("v", query.Gt, 500), 1},
		{"numeric refutes second half", query.NumCmp("v", query.Lt, 500), 1},
		{"numeric refutes nothing", query.NumCmp("w", query.Ge, 0), 0},
		{"categorical refutes first half", query.CatIn("region", "west"), 1},
		{"conjunction refutes both halves", query.And(query.NumCmp("v", query.Gt, 100), query.NumCmp("v", query.Lt, 900)), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := query.Query{Agg: query.Sum, Column: "w", Where: tc.where}
			res, qs, err := sr.Query(nil, q)
			if err != nil {
				t.Fatal(err)
			}
			if qs.Pruned != tc.wantPruned {
				t.Errorf("pruned %d segments, want %d (stats %+v)", qs.Pruned, tc.wantPruned, qs)
			}
			if qs.Pruned+qs.Decoded != qs.Segments {
				t.Errorf("pruned %d + decoded %d != %d segments", qs.Pruned, qs.Decoded, qs.Segments)
			}
			want, err := query.Run(full, nil, q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, res, want)
		})
	}
}

// TestZoneMapPruningLossy: pruning under a nonzero numeric tolerance
// must match the full-decode answer, including its uncertainty bounds.
func TestZoneMapPruningLossy(t *testing.T) {
	tb := prunableTable(t, 300)
	tol := table.Tolerances{{Value: 0.5}, {Value: 0.5}, {}}
	var buf bytes.Buffer
	if _, err := WriteTable(&buf, tb, core.Options{Tolerances: tol}, SegmentOptions{SegmentRows: 300}); err != nil {
		t.Fatal(err)
	}
	sr, err := OpenSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	full, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Agg: query.Sum, Column: "w", Where: query.NumCmp("v", query.Gt, 500)}
	res, qs, err := sr.Query(tol, q)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Pruned != 1 {
		t.Errorf("pruned %d segments, want 1", qs.Pruned)
	}
	want, err := query.Run(full, tol, q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, res, want)
}

func assertSameResult(t *testing.T, got, want *query.Result) {
	t.Helper()
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("got %d groups, want %d", len(got.Groups), len(want.Groups))
	}
	for i := range got.Groups {
		g, w := got.Groups[i], want.Groups[i]
		if g != w {
			t.Errorf("group %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestFramingGarbage (framing bugfix): a frame whose declared length
// exceeds its codec stream must fail with FramingError instead of
// silently desyncing the reader on the trailing garbage.
func TestFramingGarbage(t *testing.T) {
	tb := datagen.CDR(200, 5)
	var stream bytes.Buffer
	if _, err := core.Compress(&stream, tb, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Hand-frame an archive whose single frame is the valid codec stream
	// padded with trailing garbage, all inside the declared length.
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	data := []byte(magicV2)
	data = binary.AppendUvarint(data, uint64(stream.Len()+len(garbage)))
	data = append(data, stream.Bytes()...)
	data = append(data, garbage...)
	data = append(data, 0)

	_, err := ReadAll(bytes.NewReader(data))
	var fe *FramingError
	if !errors.As(err, &fe) {
		t.Fatalf("ReadAll = %v, want FramingError", err)
	}
	if fe.Segment != 0 || fe.Declared != int64(stream.Len()+len(garbage)) || fe.Consumed != int64(stream.Len()) {
		t.Errorf("FramingError = %+v, want segment 0, declared %d, consumed %d",
			fe, stream.Len()+len(garbage), stream.Len())
	}
	// A correctly framed stream still decodes.
	ok := []byte(magicV2)
	ok = binary.AppendUvarint(ok, uint64(stream.Len()))
	ok = append(ok, stream.Bytes()...)
	ok = append(ok, 0)
	back, err := ReadAll(bytes.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("hand-framed archive round trip changed the table")
	}
}

// failAfterWriter fails every Write once n bytes have passed through.
type failAfterWriter struct {
	n    int
	seen int
}

var errInjected = errors.New("injected write failure")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.seen >= w.n {
		return 0, errInjected
	}
	w.seen += len(p)
	return len(p), nil
}

// TestWriterStickyError (torn-write bugfix): after a failed frame write
// the Writer must refuse further writes and surface the original error
// from Close, instead of appending frames to a torn stream.
func TestWriterStickyError(t *testing.T) {
	aw, err := NewWriter(&failAfterWriter{n: len(magicV2)}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Large enough to overflow the bufio buffer and hit the sink.
	block := datagen.CDR(2000, 3)
	if _, err := aw.WriteBlock(block); !errors.Is(err, errInjected) {
		t.Fatalf("WriteBlock = %v, want injected failure", err)
	}
	if _, err := aw.WriteBlock(block); !errors.Is(err, errInjected) {
		t.Fatalf("second WriteBlock = %v, want latched injected failure", err)
	}
	if err := aw.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want latched injected failure", err)
	}
	if err := aw.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("second Close = %v, want latched injected failure", err)
	}
}

// TestEmptyArchive (zero-segment bugfix): writing an empty archive is
// legal and round-trips to the typed ErrEmptyArchive on every read path
// that must materialize rows.
func TestEmptyArchive(t *testing.T) {
	var buf bytes.Buffer
	aw, err := NewWriter(&buf, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrEmptyArchive) {
		t.Errorf("ReadAll = %v, want ErrEmptyArchive", err)
	}
	sr, err := OpenSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSegments() != 0 || sr.TotalRows() != 0 {
		t.Errorf("empty archive reports %d segments / %d rows", sr.NumSegments(), sr.TotalRows())
	}
	if _, err := sr.ReadAll(); !errors.Is(err, ErrEmptyArchive) {
		t.Errorf("SegReader.ReadAll = %v, want ErrEmptyArchive", err)
	}
	if _, _, err := sr.Query(nil, query.Query{Agg: query.Count}); !errors.Is(err, ErrEmptyArchive) {
		t.Errorf("SegReader.Query = %v, want ErrEmptyArchive", err)
	}
	// The streaming reader's Next reports plain EOF (no rows is only an
	// error when a caller asks for a merged table).
	ar, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ar.Next(); err != io.EOF {
		t.Errorf("Next on empty archive = %v, want io.EOF", err)
	}
}

// TestV1ReadCompat: the streaming reader still decodes v1 archives
// (magic "SPARC1\n", same framing, no footer).
func TestV1ReadCompat(t *testing.T) {
	tb := datagen.CDR(900, 9)
	blocks := splitBlocks(t, tb, 300)
	data := []byte(magicV1)
	for i, block := range blocks {
		var stream bytes.Buffer
		opts := core.Options{Seed: 1 + int64(i)} // v1 writer's per-block seed rule
		if _, err := core.Compress(&stream, block, opts); err != nil {
			t.Fatal(err)
		}
		data = binary.AppendUvarint(data, uint64(stream.Len()))
		data = append(data, stream.Bytes()...)
	}
	data = append(data, 0)

	back, err := ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !table.Equal(tb, back) {
		t.Error("v1 archive round trip changed the table")
	}
	if _, err := OpenSegmented(bytes.NewReader(data)); err == nil {
		t.Error("OpenSegmented accepted a v1 archive (it has no footer)")
	}
}

// TestWriteTableEmpty: a zero-row table produces a legal empty archive.
func TestWriteTableEmpty(t *testing.T) {
	b, err := table.NewBuilder(table.Schema{{Name: "x", Kind: table.Numeric}})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stats, err := WriteTable(&buf, empty, core.Options{}, SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 0 {
		t.Errorf("segments = %d, want 0", stats.Segments)
	}
	if stats.CompressedBytes != buf.Len() {
		t.Errorf("CompressedBytes = %d, archive is %d bytes", stats.CompressedBytes, buf.Len())
	}
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrEmptyArchive) {
		t.Errorf("ReadAll = %v, want ErrEmptyArchive", err)
	}
}

// TestSegmentedCancel: a cancelled context abandons the parallel write.
func TestSegmentedCancel(t *testing.T) {
	tb := datagen.CDR(3000, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WriteTableContext(ctx, io.Discard, tb, core.Options{}, SegmentOptions{SegmentRows: 300}); err == nil {
		t.Fatal("WriteTableContext succeeded with a cancelled context")
	}
}
