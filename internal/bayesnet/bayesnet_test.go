package bayesnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func TestNetworkAddEdge(t *testing.T) {
	g := NewNetwork([]string{"a", "b", "c"})
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 0); err == nil {
		t.Error("AddEdge accepted a cycle")
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("AddEdge accepted a duplicate edge")
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("AddEdge accepted a self edge")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("AddEdge accepted out-of-range node")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestMarkovBlanket(t *testing.T) {
	// Classic structure: 0->2, 1->2, 2->3, 4 isolated.
	g := NewNetwork([]string{"a", "b", "c", "d", "e"})
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)

	// β(0) = parents(∅) ∪ children{2} ∪ co-parents{1}.
	wantSet(t, g.MarkovBlanket(0), []int{1, 2}, "MB(0)")
	// β(2) = {0,1} ∪ {3} ∪ ∅.
	wantSet(t, g.MarkovBlanket(2), []int{0, 1, 3}, "MB(2)")
	// β(4) = ∅.
	wantSet(t, g.MarkovBlanket(4), nil, "MB(4)")
}

func TestTopoOrder(t *testing.T) {
	g := NewNetwork([]string{"a", "b", "c", "d"})
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 2, 3)
	order := g.TopoOrder()
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topo order %v", e, order)
		}
	}
	// Determinism.
	order2 := g.TopoOrder()
	for i := range order {
		if order[i] != order2[i] {
			t.Fatal("TopoOrder not deterministic")
		}
	}
}

func mustEdge(t *testing.T, g *Network, u, v int) {
	t.Helper()
	if err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func wantSet(t *testing.T, got, want []int, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s = %v, want %v", msg, got, want)
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s = %v, want %v", msg, got, want)
			return
		}
	}
}

// chainTable builds a table with a strong dependency chain
// c0 -> c1 -> c2 and an independent column "noise".
func chainTable(rng *rand.Rand, n int) *table.Table {
	schema := table.Schema{
		{Name: "c0", Kind: table.Categorical},
		{Name: "c1", Kind: table.Categorical},
		{Name: "c2", Kind: table.Categorical},
		{Name: "noise", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	labels := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		v := rng.Intn(4)
		b.MustAppendRow(labels[v], labels[v], labels[v], labels[rng.Intn(4)])
	}
	return b.MustBuild()
}

func TestBuildFindsChainAndIgnoresNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tb := chainTable(rng, 600)
	g, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The noise column should be disconnected.
	if len(g.Parents(3)) != 0 || len(g.Children(3)) != 0 {
		t.Errorf("noise column connected: parents=%v children=%v",
			g.Parents(3), g.Children(3))
	}
	// The dependent trio must be connected (as some DAG over {0,1,2}).
	deg := 0
	for i := 0; i < 3; i++ {
		deg += len(g.Parents(i)) + len(g.Children(i))
	}
	if deg < 4 { // at least 2 edges among the trio
		t.Errorf("dependency chain underdetected, network:\n%s", g)
	}
}

func TestBuildNumericDependency(t *testing.T) {
	schema := table.Schema{
		{Name: "x", Kind: table.Numeric},
		{Name: "y", Kind: table.Numeric},
		{Name: "indep", Kind: table.Numeric},
	}
	b := table.MustBuilder(schema)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 800; i++ {
		x := rng.Float64() * 100
		b.MustAppendRow(x, 2*x+rng.Float64(), rng.Float64()*100)
	}
	tb := b.MustBuild()
	g, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// x and y must be adjacent in some direction.
	adj := false
	for _, e := range g.Edges() {
		if (e[0] == 0 && e[1] == 1) || (e[0] == 1 && e[1] == 0) {
			adj = true
		}
		if e[0] == 2 || e[1] == 2 {
			t.Errorf("independent column got edge %v", e)
		}
	}
	if !adj {
		t.Errorf("x-y dependency missed, network:\n%s", g)
	}
}

func TestBuildThinsTransitiveEdge(t *testing.T) {
	// X -> Z -> Y with Y a noisy copy of Z: after thinning, the X-Y edge
	// should be removed because Z separates them.
	schema := table.Schema{
		{Name: "x", Kind: table.Categorical},
		{Name: "z", Kind: table.Categorical},
		{Name: "y", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	rng := rand.New(rand.NewSource(17))
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < 2000; i++ {
		x := rng.Intn(4)
		z := x
		if rng.Float64() < 0.15 {
			z = rng.Intn(4)
		}
		y := z
		if rng.Float64() < 0.15 {
			y = rng.Intn(4)
		}
		b.MustAppendRow(labels[x], labels[z], labels[y])
	}
	tb := b.MustBuild()
	g, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if (e[0] == 0 && e[1] == 2) || (e[0] == 2 && e[1] == 0) {
			t.Errorf("transitive x-y edge survived thinning:\n%s", g)
		}
	}
}

func TestBuildMaxParentsCap(t *testing.T) {
	// 6 columns all equal: a clique before capping. MaxParents=2 must hold.
	schema := make(table.Schema, 6)
	for i := range schema {
		schema[i] = table.Attribute{Name: string(rune('a' + i)), Kind: table.Categorical}
	}
	b := table.MustBuilder(schema)
	rng := rand.New(rand.NewSource(2))
	labels := []string{"p", "q", "r"}
	for i := 0; i < 400; i++ {
		v := labels[rng.Intn(3)]
		b.MustAppendRow(v, v, v, v, v, v)
	}
	tb := b.MustBuild()
	g, err := Build(tb, Config{MaxParents: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if len(g.Parents(v)) > 2 {
			t.Errorf("node %d has %d parents, cap is 2", v, len(g.Parents(v)))
		}
	}
	// Parent/child lists must stay mutually consistent after capping.
	for v := 0; v < g.NumNodes(); v++ {
		for _, p := range g.Parents(v) {
			found := false
			for _, c := range g.Children(p) {
				if c == v {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d→%d in parents but not children", p, v)
			}
		}
	}
}

func TestBuildAlwaysAcyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := table.Schema{
			{Name: "a", Kind: table.Categorical},
			{Name: "b", Kind: table.Categorical},
			{Name: "c", Kind: table.Numeric},
			{Name: "d", Kind: table.Numeric},
		}
		b := table.MustBuilder(schema)
		labels := []string{"u", "v", "w"}
		for i := 0; i < 200; i++ {
			x := rng.Intn(3)
			b.MustAppendRow(labels[x], labels[rng.Intn(3)],
				float64(x)+rng.Float64(), rng.Float64()*10)
		}
		tb := b.MustBuild()
		g, err := Build(tb, Config{})
		if err != nil {
			return false
		}
		// TopoOrder panics on cycles; reaching here with full length is the
		// acyclicity proof.
		return len(g.TopoOrder()) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBuildEmptyTableErrors(t *testing.T) {
	b := table.MustBuilder(table.Schema{{Name: "a", Kind: table.Numeric}})
	tb := b.MustBuild()
	// Zero rows is fine (no edges), zero columns is impossible by schema
	// validation, so just check it runs.
	g, err := Build(tb, Config{})
	if err != nil {
		t.Fatalf("Build on empty table: %v", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("empty table produced %d edges", g.NumEdges())
	}
}

func TestBuildDeterministic(t *testing.T) {
	tb := chainTable(rand.New(rand.NewSource(9)), 400)
	g1, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestOrientationPrefersHighEntropyParents(t *testing.T) {
	// A fine-grained driver column and a coarse recode of it: the edge
	// must point driver -> recode (predict low entropy from high).
	schema := table.Schema{
		{Name: "driver", Kind: table.Categorical},
		{Name: "recode", Kind: table.Categorical},
	}
	b := table.MustBuilder(schema)
	rng := rand.New(rand.NewSource(44))
	fine := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i := 0; i < 800; i++ {
		v := rng.Intn(8)
		coarse := "lo"
		if v >= 4 {
			coarse = "hi"
		}
		b.MustAppendRow(fine[v], coarse)
	}
	tb := b.MustBuild()
	g, err := Build(tb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	if len(edges) != 1 {
		t.Fatalf("edges = %v, want exactly driver->recode", edges)
	}
	if edges[0] != [2]int{0, 1} {
		t.Errorf("edge = %v, want driver(0) -> recode(1)", edges[0])
	}
}
