package bayesnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/table"
)

// Config controls the constraint-based builder.
type Config struct {
	// Bins is the number of equi-depth discretization bins for numeric
	// attributes (default 8). The paper's CI tests operate on discrete
	// variables; numeric columns are discretized first.
	Bins int
	// Epsilon is the mutual-information threshold (bits) below which two
	// variables are considered (conditionally) independent (default 0.015).
	Epsilon float64
	// MaxCondSet caps the size of conditioning sets in CI tests
	// (default 3). Larger sets make tests unreliable on small samples
	// (paper §3.1 cites exactly this concern).
	MaxCondSet int
	// MaxParents caps the in-degree of any node after orientation
	// (default 4); excess edges with the weakest MI are dropped. This keeps
	// CaRT predictor sets small, mirroring the sparse networks the paper's
	// selector depends on.
	MaxParents int
}

func (c Config) withDefaults() Config {
	if c.Bins <= 0 {
		c.Bins = 8
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.015
	}
	if c.MaxCondSet <= 0 {
		c.MaxCondSet = 3
	}
	if c.MaxParents <= 0 {
		c.MaxParents = 4
	}
	return c
}

// Build infers a Bayesian network from the given table (typically a small
// random sample of the full data, per the paper). The number of CI tests is
// O(n²·MaxCondSet) here — comfortably under the paper's O(n⁴) budget.
func Build(t *table.Table, cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	n := t.NumCols()
	if n == 0 {
		return nil, fmt.Errorf("bayesnet: table has no attributes")
	}
	codes, cards := discretize(t, cfg.Bins)

	// Pairwise mutual information matrix.
	mi := make([][]float64, n)
	for i := range mi {
		mi[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := stats.MutualInformation(codes[i], codes[j], cards[i], cards[j])
			mi[i][j] = v
			mi[j][i] = v
		}
	}

	b := &builder{cfg: cfg, n: n, rows: t.NumRows(), codes: codes, cards: cards, mi: mi,
		adj: make([]map[int]bool, n)}
	for i := range b.adj {
		b.adj[i] = make(map[int]bool)
	}
	b.draft()
	b.thicken()
	b.thin()
	return b.orient(t)
}

type builder struct {
	cfg    Config
	n      int
	rows   int
	codes  [][]int
	cards  []int
	mi     [][]float64
	adj    []map[int]bool // undirected skeleton
	defer2 []pair         // pairs deferred from drafting to thickening
}

type pair struct {
	u, v int
	mi   float64
}

// sortedPairs returns all unordered pairs with MI above epsilon, strongest
// first (ties broken by indices for determinism).
func (b *builder) sortedPairs() []pair {
	var ps []pair
	for u := 0; u < b.n; u++ {
		for v := u + 1; v < b.n; v++ {
			if b.dependent(u, v) {
				ps = append(ps, pair{u, v, b.mi[u][v]})
			}
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].mi != ps[j].mi {
			return ps[i].mi > ps[j].mi
		}
		if ps[i].u != ps[j].u {
			return ps[i].u < ps[j].u
		}
		return ps[i].v < ps[j].v
	})
	return ps
}

// draft adds an edge for each dependent pair unless the endpoints are
// already connected in the skeleton (Cheng et al. Phase I): such pairs are
// deferred to thickening, where a proper CI test decides.
func (b *builder) draft() {
	for _, p := range b.sortedPairs() {
		if b.connected(p.u, p.v) {
			b.defer2 = append(b.defer2, p)
			continue
		}
		b.adj[p.u][p.v] = true
		b.adj[p.v][p.u] = true
	}
}

// thicken revisits deferred pairs and adds an edge whenever the pair cannot
// be separated by conditioning on a cut set (Phase II).
func (b *builder) thicken() {
	for _, p := range b.defer2 {
		if b.separated(p.u, p.v) {
			continue
		}
		b.adj[p.u][p.v] = true
		b.adj[p.v][p.u] = true
	}
}

// thin re-examines every edge: with the rest of the skeleton available, if
// some conditioning set d-separates the endpoints, the edge is removed
// (Phase III). Edges are visited weakest-MI first so that spurious
// low-information edges are pruned before strong ones are re-tested.
func (b *builder) thin() {
	type edge struct {
		u, v int
		mi   float64
	}
	var edges []edge
	for u := 0; u < b.n; u++ {
		for v := range b.adj[u] {
			if u < v {
				edges = append(edges, edge{u, v, b.mi[u][v]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].mi != edges[j].mi {
			return edges[i].mi < edges[j].mi
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		// Temporarily remove the edge so the conditioning candidates are
		// the remaining neighbors.
		delete(b.adj[e.u], e.v)
		delete(b.adj[e.v], e.u)
		// Only edges with an alternative path between their endpoints are
		// candidates for removal (Cheng et al.): with no other path the
		// edge is the sole carrier of the observed dependence.
		if !b.connected(e.u, e.v) || !b.separated(e.u, e.v) {
			b.adj[e.u][e.v] = true
			b.adj[e.v][e.u] = true
		}
	}
}

// connected reports whether u and v are connected in the skeleton.
func (b *builder) connected(u, v int) bool {
	seen := make([]bool, b.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == v {
			return true
		}
		for w := range b.adj[x] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// separated runs MI-divergence CI tests of u ⟂ v conditioned on candidate
// cut sets drawn from the neighborhoods of u and v, and reports whether any
// test accepts independence. Candidate sets grow greedily by descending MI
// with the opposite endpoint, capped at MaxCondSet (this avoids the
// exponential subset enumeration, as Cheng et al. do).
func (b *builder) separated(u, v int) bool {
	for _, base := range [2]int{u, v} {
		other := v
		if base == v {
			other = u
		}
		cands := b.neighborsByMI(base, other)
		if len(cands) == 0 {
			continue
		}
		limit := b.cfg.MaxCondSet
		if limit > len(cands) {
			limit = len(cands)
		}
		cond := make([]int, 0, limit)
		for k := 0; k < limit; k++ {
			cond = append(cond, cands[k])
			if b.ciIndependent(u, v, cond) {
				return true
			}
		}
	}
	return false
}

// neighborsByMI returns the skeleton neighbors of base (excluding `other`)
// sorted by descending MI with `other`.
func (b *builder) neighborsByMI(base, other int) []int {
	var out []int
	for w := range b.adj[base] {
		if w != other {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if b.mi[out[i]][other] != b.mi[out[j]][other] {
			return b.mi[out[i]][other] > b.mi[out[j]][other]
		}
		return out[i] < out[j]
	})
	return out
}

// gCritical is the significance level of the G-tests below. 0.995 keeps
// false edges out of the (sample-built) network while the MI floor epsilon
// removes statistically-significant-but-tiny dependencies that would never
// pay for a CaRT predictor.
const gSignificance = 0.995

// dependent applies a marginal G-test: u and v are dependent if their
// empirical MI both exceeds the epsilon floor and is statistically
// significant (G = 2·N·ln2·MI exceeds the chi-square critical value with
// (card(u)-1)(card(v)-1) degrees of freedom).
func (b *builder) dependent(u, v int) bool {
	mi := b.mi[u][v]
	if mi <= b.cfg.Epsilon {
		return false
	}
	g := 2 * float64(b.rows) * math.Ln2 * mi
	dof := (b.cards[u] - 1) * (b.cards[v] - 1)
	return g > chiSquareQuantile(gSignificance, dof)
}

// ciIndependent tests u ⟂ v | cond with a conditional G-test; the degrees
// of freedom scale with the conditioning-set cardinality, which accounts
// for the positive small-sample bias of empirical conditional MI.
func (b *builder) ciIndependent(u, v int, cond []int) bool {
	condCols := make([][]int, len(cond))
	for i, c := range cond {
		condCols[i] = b.codes[c]
	}
	z, cz := stats.CompositeCodes(condCols)
	cmi := stats.ConditionalMutualInformation(b.codes[u], b.codes[v], z, b.cards[u], b.cards[v], cz)
	if cmi < b.cfg.Epsilon {
		return true
	}
	g := 2 * float64(b.rows) * math.Ln2 * cmi
	dof := (b.cards[u] - 1) * (b.cards[v] - 1) * cz
	return g <= chiSquareQuantile(gSignificance, dof)
}

// orient turns the skeleton into a DAG. The full paper uses Bayesian
// scoring to orient edges; here every edge points from the
// higher-entropy endpoint to the lower (for adjacent X, Y the conditional
// entropies satisfy H(Y|X) < H(X|Y) ⟺ H(Y) < H(X), so this choice makes
// each child the endpoint its parent explains better — ties broken by
// total neighborhood MI, hubs first). A single global priority guarantees
// acyclicity. In-degrees are then capped at MaxParents keeping the
// strongest-MI parents.
func (b *builder) orient(t *table.Table) (*Network, error) {
	prio := make([]float64, b.n)
	for u := 0; u < b.n; u++ {
		totalMI := 0.0
		for w := range b.adj[u] {
			totalMI += b.mi[u][w]
		}
		prio[u] = stats.Entropy(b.codes[u], b.cards[u]) + 1e-6*totalMI
	}
	order := make([]int, b.n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return prio[order[i]] > prio[order[j]]
	})
	rank := make([]int, b.n)
	for r, node := range order {
		rank[node] = r
	}

	g := NewNetwork(t.Schema().Names())
	for u := 0; u < b.n; u++ {
		for v := range b.adj[u] {
			if u >= v {
				continue
			}
			from, to := u, v
			if rank[v] < rank[u] {
				from, to = v, u
			}
			if err := g.AddEdge(from, to); err != nil {
				return nil, err
			}
		}
	}
	b.capParents(g)
	return g, nil
}

// capParents trims each node's parent set to the MaxParents strongest (by
// MI) parents.
func (b *builder) capParents(g *Network) {
	for v := 0; v < g.NumNodes(); v++ {
		ps := g.parents[v]
		if len(ps) <= b.cfg.MaxParents {
			continue
		}
		sort.Slice(ps, func(i, j int) bool {
			if b.mi[ps[i]][v] != b.mi[ps[j]][v] {
				return b.mi[ps[i]][v] > b.mi[ps[j]][v]
			}
			return ps[i] < ps[j]
		})
		dropped := ps[b.cfg.MaxParents:]
		g.parents[v] = append([]int(nil), ps[:b.cfg.MaxParents]...)
		for _, u := range dropped {
			g.children[u] = removeInt(g.children[u], v)
		}
	}
}

func removeInt(s []int, x int) []int {
	out := s[:0]
	for _, v := range s {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// discretize converts every column to integer codes: categorical columns
// use their dictionary codes, numeric columns are equi-depth discretized.
func discretize(t *table.Table, bins int) (codes [][]int, cards []int) {
	n := t.NumCols()
	codes = make([][]int, n)
	cards = make([]int, n)
	for i := 0; i < n; i++ {
		col := t.Col(i)
		if col.Kind == table.Categorical {
			cs := make([]int, len(col.Codes))
			for r, c := range col.Codes {
				cs[r] = int(c)
			}
			codes[i] = cs
			cards[i] = len(col.Dict)
			if cards[i] == 0 {
				cards[i] = 1
			}
			continue
		}
		d := stats.NewDiscretizer(col.Floats, bins)
		codes[i] = d.CodeAll(col.Floats)
		cards[i] = d.Bins()
	}
	return codes, cards
}
