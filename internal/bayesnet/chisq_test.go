package bayesnet

import (
	"math"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want, eps float64 }{
		{0.5, 0, 1e-8},
		{0.975, 1.959964, 1e-4},
		{0.995, 2.575829, 1e-4},
		{0.025, -1.959964, 1e-4},
		{0.001, -3.090232, 1e-4},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > c.eps {
			t.Errorf("normalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("normalQuantile should be ±Inf at the boundaries")
	}
}

func TestChiSquareQuantile(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		q    float64
		dof  int
		want float64
		tol  float64 // Wilson-Hilferty is approximate
	}{
		{0.95, 1, 3.841, 0.15},
		{0.95, 5, 11.070, 0.15},
		{0.99, 10, 23.209, 0.2},
		{0.995, 20, 39.997, 0.3},
	}
	for _, c := range cases {
		got := chiSquareQuantile(c.q, c.dof)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("chiSquareQuantile(%g, %d) = %g, want %g ±%g",
				c.q, c.dof, got, c.want, c.tol)
		}
	}
	// dof < 1 clamps to 1.
	if got := chiSquareQuantile(0.95, 0); math.Abs(got-3.841) > 0.2 {
		t.Errorf("chiSquareQuantile with dof=0 = %g, want ≈3.841", got)
	}
	// Monotone in dof.
	if chiSquareQuantile(0.95, 3) >= chiSquareQuantile(0.95, 30) {
		t.Error("chiSquareQuantile not increasing in dof")
	}
}
