// Package bayesnet implements SPARTAN's DependencyFinder substrate: a
// constraint-based Bayesian-network builder in the style of Cheng, Bell
// and Liu (CIKM 1997), using mutual-information-divergence conditional-
// independence tests in three phases (drafting, thickening, thinning),
// followed by edge orientation.
//
// The network's role in SPARTAN (paper §3.1) is to expose, for each
// attribute, a small "predictive neighborhood" — its parents π(Xᵢ) or its
// Markov blanket β(Xᵢ) — that the CaRT selector searches over instead of
// the exponential space of all predictor subsets.
package bayesnet

import (
	"fmt"
	"sort"
)

// Network is a directed acyclic graph over the attributes of a table.
// Node i corresponds to schema attribute i.
type Network struct {
	names    []string
	parents  [][]int
	children [][]int
}

// NewNetwork creates a network with the given node names and no edges.
func NewNetwork(names []string) *Network {
	return &Network{
		names:    append([]string(nil), names...),
		parents:  make([][]int, len(names)),
		children: make([][]int, len(names)),
	}
}

// NumNodes returns the number of attributes/nodes.
func (g *Network) NumNodes() int { return len(g.names) }

// Name returns the attribute name of node i.
func (g *Network) Name(i int) string { return g.names[i] }

// Parents returns the parent set π(Xᵢ). Callers must not modify it.
func (g *Network) Parents(i int) []int { return g.parents[i] }

// Children returns the children of node i. Callers must not modify it.
func (g *Network) Children(i int) []int { return g.children[i] }

// AddEdge inserts the directed edge u→v. It reports an error if the edge
// would create a cycle or already exists.
func (g *Network) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("bayesnet: self edge %d", u)
	}
	if u < 0 || u >= len(g.names) || v < 0 || v >= len(g.names) {
		return fmt.Errorf("bayesnet: edge (%d,%d) out of range", u, v)
	}
	for _, p := range g.parents[v] {
		if p == u {
			return fmt.Errorf("bayesnet: edge %d→%d already present", u, v)
		}
	}
	if g.reachable(v, u) {
		return fmt.Errorf("bayesnet: edge %d→%d would create a cycle", u, v)
	}
	g.parents[v] = append(g.parents[v], u)
	g.children[u] = append(g.children[u], v)
	return nil
}

// reachable reports whether there is a directed path from to dst.
func (g *Network) reachable(from, dst int) bool {
	if from == dst {
		return true
	}
	seen := make([]bool, len(g.names))
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.children[u] {
			if w == dst {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// MarkovBlanket returns β(Xᵢ): parents, children and parents of children
// (excluding i itself), sorted and de-duplicated.
func (g *Network) MarkovBlanket(i int) []int {
	set := make(map[int]struct{})
	for _, p := range g.parents[i] {
		set[p] = struct{}{}
	}
	for _, c := range g.children[i] {
		set[c] = struct{}{}
		for _, cp := range g.parents[c] {
			if cp != i {
				set[cp] = struct{}{}
			}
		}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// TopoOrder returns a topological ordering of the nodes (roots first).
// The ordering is deterministic: ties break by node index.
func (g *Network) TopoOrder() []int {
	n := len(g.names)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.parents[v])
	}
	// Min-index-first frontier for determinism.
	frontier := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	order := make([]int, 0, n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, w := range g.children[u] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(order) != n {
		panic("bayesnet: cycle in supposedly acyclic network")
	}
	return order
}

// Edges returns all directed edges as (from, to) pairs sorted
// lexicographically.
func (g *Network) Edges() [][2]int {
	var out [][2]int
	for v := range g.parents {
		for _, u := range g.parents[v] {
			out = append(out, [2]int{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the edge count.
func (g *Network) NumEdges() int {
	n := 0
	for _, ps := range g.parents {
		n += len(ps)
	}
	return n
}

// String renders the network as "name <- parent, parent" lines, useful in
// logs and debug output.
func (g *Network) String() string {
	s := ""
	for v := range g.names {
		s += g.names[v] + " <-"
		for _, p := range g.parents[v] {
			s += " " + g.names[p]
		}
		s += "\n"
	}
	return s
}
