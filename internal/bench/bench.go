// Package bench is SPARTAN's recorded performance trajectory: it runs
// named scenarios (end-to-end compress/decode/query plus per-component
// microbenches over the datagen datasets) with warmup and repetitions
// and emits a versioned BENCH_<n>.json snapshot — rows/sec, bytes/sec,
// queries/sec, compression ratio, allocs/op, per-phase span durations
// and allocation attribution, and an environment fingerprint. Snapshots
// from different commits are compared with Diff, which is how an engine
// PR proves its before/after claim (ROADMAP item 3); `spartanbench perf`
// and `spartanbench diff` are the command-line drivers, and CI records a
// smoke snapshot on every PR.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/obs"
)

// Config parameterizes a bench run. The zero value selects the standard
// local configuration (4000 rows, 1 warmup, 3 measured reps, all
// scenarios); CI's smoke run lowers rows and reps.
type Config struct {
	// Rows is the dataset size every scenario generates (default 4000,
	// matching the in-repo testing.B benchmarks).
	Rows int
	// Seed fixes dataset generation (default 1); scenarios are fully
	// deterministic for a given (Rows, Seed) pair modulo wall-clock.
	Seed int64
	// Warmup is the number of untimed iterations before measurement
	// (default 1; negative means none).
	Warmup int
	// Reps is the number of measured iterations per scenario (default 3).
	Reps int
	// Scenarios filters by name: a scenario runs when its name equals or
	// has a "/"-prefix match with any entry ("compress" selects
	// "compress/cdr"). Nil or empty selects all scenarios.
	Scenarios []string
	// Handicap injects an artificial per-iteration sleep into every
	// measured op. It exists so the regression-diff path can be exercised
	// end to end (a snapshot recorded with a handicap must make Diff
	// against an honest one report regressions); never set it when
	// recording a real trajectory point. spartanbench wires it to the
	// SPARTAN_BENCH_HANDICAP environment variable for the same reason.
	Handicap time.Duration
	// ProfileDir, when non-empty, captures a CPU profile over each
	// scenario's measured loop and a heap profile after it, as
	// <dir>/<scenario>_cpu.pprof and <dir>/<scenario>_heap.pprof.
	ProfileDir string
	// Progress, when non-nil, receives one line per completed scenario.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	return c
}

// opStats is what one scenario iteration reports back to the harness:
// the work quantities that become rates, and optionally the run's
// pipeline trace for per-phase attribution.
type opStats struct {
	rows    int     // rows processed this op
	bytes   int     // raw (uncompressed) bytes processed this op
	queries int     // queries answered this op
	ratio   float64 // compression ratio achieved (compress scenarios)
	trace   *obs.Trace
}

// scenario is one named benchmark: setup generates inputs (untimed) and
// returns the op the harness times.
type scenario struct {
	name  string
	setup func(cfg Config) (op func(*opStats) error, err error)
}

// Run executes every selected scenario and assembles the snapshot.
func Run(cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	snap := &Snapshot{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Env:           Fingerprint(),
		Rows:          cfg.Rows,
		Seed:          cfg.Seed,
		Warmup:        cfg.Warmup,
		Reps:          cfg.Reps,
	}
	selected := make([]scenario, 0, len(scenarios))
	for _, sc := range scenarios {
		if matchScenario(sc.name, cfg.Scenarios) {
			selected = append(selected, sc)
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("bench: no scenarios match %v (have %s)",
			cfg.Scenarios, strings.Join(ScenarioNames(), ", "))
	}
	snap.Scenarios = make([]ScenarioResult, 0, len(selected))
	for _, sc := range selected {
		res, err := runScenario(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %s: %w", sc.name, err)
		}
		snap.Scenarios = append(snap.Scenarios, res)
		if cfg.Progress != nil {
			fmt.Fprintln(cfg.Progress, res.String())
		}
	}
	return snap, nil
}

// ScenarioNames lists every registered scenario in run order.
func ScenarioNames() []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.name
	}
	return out
}

// matchScenario reports whether name is selected by the filter list:
// exact match or path-prefix match ("compress" matches "compress/cdr").
func matchScenario(name string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if f == name || strings.HasPrefix(name, f+"/") {
			return true
		}
	}
	return false
}

// runScenario measures one scenario: setup (untimed), warmup, then Reps
// timed iterations bracketed by exact allocation readings
// (runtime.ReadMemStats, the same source testing.B uses for
// -benchmem), with optional CPU/heap profiles over the measured loop.
func runScenario(sc scenario, cfg Config) (ScenarioResult, error) {
	op, err := sc.setup(cfg)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("setup: %w", err)
	}
	for i := 0; i < cfg.Warmup; i++ {
		var st opStats
		if err := op(&st); err != nil {
			return ScenarioResult{}, fmt.Errorf("warmup: %w", err)
		}
	}

	runtime.GC() // settle the heap so the measured window is comparable

	stopCPU, err := startCPUProfile(cfg.ProfileDir, sc.name)
	if err != nil {
		return ScenarioResult{}, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var agg aggregate
	for i := 0; i < cfg.Reps; i++ {
		var st opStats
		if err := op(&st); err != nil {
			stopCPU()
			return ScenarioResult{}, err
		}
		if cfg.Handicap > 0 {
			time.Sleep(cfg.Handicap)
		}
		agg.add(&st)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	stopCPU()
	if err := writeHeapProfile(cfg.ProfileDir, sc.name); err != nil {
		return ScenarioResult{}, err
	}

	ops := float64(cfg.Reps)
	secs := elapsed.Seconds()
	res := ScenarioResult{
		Name:            sc.name,
		Ops:             cfg.Reps,
		NsPerOp:         float64(elapsed.Nanoseconds()) / ops,
		AllocsPerOp:     float64(after.Mallocs-before.Mallocs) / ops,
		AllocBytesPerOp: float64(after.TotalAlloc-before.TotalAlloc) / ops,
	}
	if secs > 0 {
		res.RowsPerSec = float64(agg.rows) / secs
		res.BytesPerSec = float64(agg.bytes) / secs
		res.QueriesPerSec = float64(agg.queries) / secs
	}
	if agg.ratioOps > 0 {
		res.Ratio = agg.ratioSum / float64(agg.ratioOps)
	}
	res.PhaseNs, res.PhaseAllocBytes = agg.phases(ops)
	return res, nil
}

// aggregate accumulates per-op reports across the measured iterations.
type aggregate struct {
	rows, bytes, queries int
	ratioSum             float64
	ratioOps             int
	phaseNs              map[string]float64
	phaseAllocBytes      map[string]float64
}

func (a *aggregate) add(st *opStats) {
	a.rows += st.rows
	a.bytes += st.bytes
	a.queries += st.queries
	if st.ratio > 0 {
		a.ratioSum += st.ratio
		a.ratioOps++
	}
	if st.trace == nil {
		return
	}
	if a.phaseNs == nil {
		a.phaseNs = map[string]float64{}
		a.phaseAllocBytes = map[string]float64{}
	}
	for _, sp := range st.trace.Spans() {
		if sp.Depth == 0 {
			continue // the root duplicates NsPerOp
		}
		a.phaseNs[sp.Name] += float64(sp.Duration().Nanoseconds())
		if res, ok := sp.Resources(); ok {
			a.phaseAllocBytes[sp.Name] += float64(res.AllocBytes)
		}
	}
}

// phases averages the accumulated per-phase sums over the op count.
func (a *aggregate) phases(ops float64) (ns, allocBytes map[string]float64) {
	if len(a.phaseNs) == 0 {
		return nil, nil
	}
	ns = make(map[string]float64, len(a.phaseNs))
	for k, v := range a.phaseNs {
		ns[k] = v / ops
	}
	if len(a.phaseAllocBytes) > 0 {
		allocBytes = make(map[string]float64, len(a.phaseAllocBytes))
		for k, v := range a.phaseAllocBytes {
			allocBytes[k] = v / ops
		}
	}
	return ns, allocBytes
}

// profilePath flattens a scenario name into a file name:
// compress/cdr → <dir>/compress_cdr_<kind>.pprof.
func profilePath(dir, name, kind string) string {
	return filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+"_"+kind+".pprof")
}

// startCPUProfile begins a CPU profile for the scenario when profiling
// is enabled; the returned stop is always safe to call.
func startCPUProfile(dir, name string) (stop func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(profilePath(dir, name, "cpu"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "bench: closing cpu profile: %v\n", err)
		}
	}, nil
}

// writeHeapProfile snapshots the heap after a scenario's measured loop.
func writeHeapProfile(dir, name string) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(profilePath(dir, name, "heap"))
	if err != nil {
		return err
	}
	runtime.GC() // up-to-date allocation data in the profile
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}
