package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps harness tests fast: a few hundred rows, one rep.
func tinyConfig() Config {
	return Config{Rows: 400, Seed: 1, Warmup: -1, Reps: 1}
}

// TestRunSmoke runs the full pipeline scenarios at tiny scale and
// asserts the snapshot carries non-zero values for every metric the
// acceptance criteria name: compress/decode rows/sec, queries/sec,
// allocs/op, and per-phase durations.
func TestRunSmoke(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scenarios = []string{"compress", "decompress", "query"}
	snap, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SchemaVersion != SchemaVersion || snap.CreatedAt == "" {
		t.Errorf("snapshot header incomplete: %+v", snap)
	}
	byName := map[string]ScenarioResult{}
	for _, sc := range snap.Scenarios {
		byName[sc.Name] = sc
		if sc.NsPerOp <= 0 || sc.AllocsPerOp <= 0 || sc.AllocBytesPerOp <= 0 {
			t.Errorf("%s: zero cost metrics: %+v", sc.Name, sc)
		}
	}
	comp, ok := byName["compress/cdr"]
	if !ok {
		t.Fatalf("compress/cdr missing from %v", snap.Scenarios)
	}
	if comp.RowsPerSec <= 0 || comp.BytesPerSec <= 0 || comp.Ratio <= 0 {
		t.Errorf("compress/cdr rates incomplete: %+v", comp)
	}
	if len(comp.PhaseNs) == 0 || comp.PhaseNs["cart_selection"] <= 0 {
		t.Errorf("compress/cdr missing per-phase durations: %+v", comp.PhaseNs)
	}
	if len(comp.PhaseAllocBytes) == 0 {
		t.Errorf("compress/cdr missing per-phase allocation attribution")
	}
	if dec := byName["decompress/cdr"]; dec.RowsPerSec <= 0 {
		t.Errorf("decompress/cdr rows/sec = %v, want > 0", dec.RowsPerSec)
	}
	if q := byName["query/aggregate"]; q.QueriesPerSec <= 0 {
		t.Errorf("query/aggregate queries/sec = %v, want > 0", q.QueriesPerSec)
	}
}

// TestRunScenarioFilter: prefix and exact filters select, unknown names
// error rather than silently measuring nothing.
func TestRunScenarioFilter(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scenarios = []string{"micro/cart_build"}
	snap, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Scenarios) != 1 || snap.Scenarios[0].Name != "micro/cart_build" {
		t.Fatalf("filter selected %v", snap.Scenarios)
	}
	cfg.Scenarios = []string{"no-such-scenario"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown scenario filter did not error")
	}
}

// TestHandicapRegression is the acceptance criterion's injected-slowdown
// check end to end: an honest snapshot diffed against itself is clean,
// while one recorded with the test-only Handicap hook must make Diff
// report a readable per-metric regression.
func TestHandicapRegression(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scenarios = []string{"micro/cart_build"}
	honest, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := Diff(honest, honest, DiffOptions{}).Regressions(); n != 0 {
		t.Fatalf("self-diff: %d regressions, want 0", n)
	}

	slow := cfg
	// Dwarf the honest ns/op so the verdict is noise-proof at any
	// plausible threshold.
	slow.Handicap = time.Duration(10 * honest.Scenarios[0].NsPerOp)
	if slow.Handicap < 50*time.Millisecond {
		slow.Handicap = 50 * time.Millisecond
	}
	handicapped, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(honest, handicapped, DiffOptions{})
	if rep.Regressions() == 0 {
		t.Fatalf("handicapped run not flagged: honest %v ns/op vs handicapped %v ns/op",
			honest.Scenarios[0].NsPerOp, handicapped.Scenarios[0].NsPerOp)
	}
	var b strings.Builder
	rep.Write(&b)
	if !strings.Contains(b.String(), "REGRESSION") || !strings.Contains(b.String(), "ns_per_op") {
		t.Errorf("regression report not per-metric readable:\n%s", b.String())
	}
}

// TestProfileCapture: -profile writes a cpu and heap profile per
// scenario with flattened names.
func TestProfileCapture(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scenarios = []string{"micro/fascicle_cluster"}
	cfg.ProfileDir = t.TempDir()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"micro_fascicle_cluster_cpu.pprof", "micro_fascicle_cluster_heap.pprof"} {
		st, err := os.Stat(filepath.Join(cfg.ProfileDir, name))
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}
