package bench

import (
	"fmt"
	"io"
)

// DefaultThreshold is the fractional worsening past which a metric delta
// counts as a regression. Wall-clock benchmarks are noisy — especially
// on shared CI runners — so the default is deliberately generous; an
// engine PR claiming a speedup should tighten it (or simply read the
// report).
const DefaultThreshold = 0.40

// DiffOptions tunes snapshot comparison.
type DiffOptions struct {
	// Threshold is the fractional worsening (0.40 = 40% worse) that
	// flags a regression; <= 0 selects DefaultThreshold.
	Threshold float64
}

// metricDef names a compared ScenarioResult metric and how to judge it.
type metricDef struct {
	name        string
	get         func(ScenarioResult) float64
	higherWorse bool
}

// diffMetrics are the per-scenario metrics the diff gates on, in report
// order. Phase-level numbers are attribution detail, not gates: a real
// slowdown always surfaces in one of these totals.
var diffMetrics = []metricDef{
	{"ns_per_op", func(r ScenarioResult) float64 { return r.NsPerOp }, true},
	{"allocs_per_op", func(r ScenarioResult) float64 { return r.AllocsPerOp }, true},
	{"alloc_bytes_per_op", func(r ScenarioResult) float64 { return r.AllocBytesPerOp }, true},
	{"rows_per_sec", func(r ScenarioResult) float64 { return r.RowsPerSec }, false},
	{"bytes_per_sec", func(r ScenarioResult) float64 { return r.BytesPerSec }, false},
	{"queries_per_sec", func(r ScenarioResult) float64 { return r.QueriesPerSec }, false},
	{"compression_ratio", func(r ScenarioResult) float64 { return r.Ratio }, true},
}

// Delta is one compared metric.
type Delta struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	// Worse is the fractional worsening: positive means the new snapshot
	// is worse on this metric (slower, more allocations, lower
	// throughput, fatter archives), negative means better.
	Worse      float64 `json:"worse"`
	Regression bool    `json:"regression"`
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// OnlyOld/OnlyNew list scenarios present in exactly one snapshot —
	// reported, never gated on (the new-regressions-only rule: a new
	// scenario has no baseline to regress from).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// EnvMismatch is set when the two snapshots were recorded on
	// different machines or toolchains.
	EnvMismatch bool `json:"env_mismatch,omitempty"`
	// ConfigMismatch is set when rows/seed/reps differ.
	ConfigMismatch bool `json:"config_mismatch,omitempty"`
}

// Regressions counts deltas past the threshold.
func (r *Report) Regressions() int {
	n := 0
	for _, d := range r.Deltas {
		if d.Regression {
			n++
		}
	}
	return n
}

// Diff compares two snapshots scenario by scenario. Scenarios are
// matched by name; metrics that are zero on either side (a unit the
// scenario does not measure) are skipped.
func Diff(oldSnap, newSnap *Snapshot, opts DiffOptions) *Report {
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultThreshold
	}
	rep := &Report{
		Threshold:      opts.Threshold,
		EnvMismatch:    oldSnap.Env != newSnap.Env,
		ConfigMismatch: oldSnap.Rows != newSnap.Rows || oldSnap.Seed != newSnap.Seed || oldSnap.Reps != newSnap.Reps,
	}
	oldByName := make(map[string]ScenarioResult, len(oldSnap.Scenarios))
	for _, sc := range oldSnap.Scenarios {
		oldByName[sc.Name] = sc
	}
	matched := make(map[string]bool, len(newSnap.Scenarios))
	for _, sc := range newSnap.Scenarios {
		base, ok := oldByName[sc.Name]
		if !ok {
			rep.OnlyNew = append(rep.OnlyNew, sc.Name)
			continue
		}
		matched[sc.Name] = true
		for _, m := range diffMetrics {
			oldV, newV := m.get(base), m.get(sc)
			if oldV <= 0 || newV <= 0 {
				continue
			}
			worse := newV/oldV - 1
			if !m.higherWorse {
				worse = oldV/newV - 1
			}
			rep.Deltas = append(rep.Deltas, Delta{
				Scenario:   sc.Name,
				Metric:     m.name,
				Old:        oldV,
				New:        newV,
				Worse:      worse,
				Regression: worse > opts.Threshold,
			})
		}
	}
	for _, sc := range oldSnap.Scenarios {
		if !matched[sc.Name] {
			rep.OnlyOld = append(rep.OnlyOld, sc.Name)
		}
	}
	return rep
}

// Write renders the per-metric report: every compared metric with its
// old/new values and signed change, regressions marked, then a one-line
// verdict. The format is the human receipt an engine PR pastes next to
// its speedup claim.
func (r *Report) Write(w io.Writer) {
	if r.EnvMismatch {
		fmt.Fprintln(w, "warning: snapshots recorded on different environments; deltas may reflect the machine, not the code")
	}
	if r.ConfigMismatch {
		fmt.Fprintln(w, "warning: snapshots recorded with different rows/seed/reps; deltas are not comparable like-for-like")
	}
	fmt.Fprintf(w, "%-24s %-20s %14s %14s %9s\n", "scenario", "metric", "old", "new", "change")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-24s %-20s %14s %14s %+8.1f%%%s\n",
			d.Scenario, d.Metric, fmtMetric(d.Old), fmtMetric(d.New), signedChange(d), mark)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(w, "%-24s removed (present only in old snapshot)\n", name)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(w, "%-24s added (no baseline; not gated)\n", name)
	}
	if n := r.Regressions(); n > 0 {
		fmt.Fprintf(w, "%d metric(s) regressed more than %.0f%%\n", n, r.Threshold*100)
	} else {
		fmt.Fprintf(w, "no regressions past %.0f%%\n", r.Threshold*100)
	}
}

// signedChange renders the raw directional change of the metric's value
// (new vs old), independent of which direction is "worse".
func signedChange(d Delta) float64 {
	return (d.New/d.Old - 1) * 100
}

// fmtMetric renders large values compactly (1.23e9-style would hide
// small deltas; k/M suffixes keep columns readable).
func fmtMetric(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
