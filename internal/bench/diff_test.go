package bench

import (
	"strings"
	"testing"
)

func snapWith(results ...ScenarioResult) *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		Env:           Fingerprint(),
		Rows:          1000, Seed: 1, Warmup: 1, Reps: 3,
		Scenarios: results,
	}
}

func TestDiffIdenticalSnapshots(t *testing.T) {
	a := snapWith(ScenarioResult{
		Name: "compress/cdr", Ops: 3,
		NsPerOp: 1e8, AllocsPerOp: 1000, AllocBytesPerOp: 1e6,
		RowsPerSec: 1e4, Ratio: 0.2,
	})
	rep := Diff(a, a, DiffOptions{})
	if n := rep.Regressions(); n != 0 {
		t.Fatalf("identical snapshots: %d regressions, want 0", n)
	}
	if rep.EnvMismatch || rep.ConfigMismatch {
		t.Errorf("identical snapshots flagged as mismatched: %+v", rep)
	}
	var b strings.Builder
	rep.Write(&b)
	if !strings.Contains(b.String(), "no regressions") {
		t.Errorf("report missing verdict:\n%s", b.String())
	}
}

// TestDiffDirections: each metric regresses in its own bad direction —
// time and allocations up, throughput down, ratio up — and improvements
// never flag.
func TestDiffDirections(t *testing.T) {
	base := ScenarioResult{
		Name: "compress/cdr", Ops: 3,
		NsPerOp: 1e8, AllocsPerOp: 1000, AllocBytesPerOp: 1e6,
		RowsPerSec: 1e4, BytesPerSec: 1e6, QueriesPerSec: 100, Ratio: 0.2,
	}
	slower := base
	slower.NsPerOp *= 2       // worse: slower
	slower.RowsPerSec /= 2    // worse: less throughput
	slower.AllocsPerOp *= 10  // worse: more allocations
	slower.Ratio = 0.4        // worse: fatter archive
	slower.QueriesPerSec *= 2 // better — must NOT flag

	rep := Diff(snapWith(base), snapWith(slower), DiffOptions{Threshold: 0.5})
	gotRegressed := map[string]bool{}
	for _, d := range rep.Deltas {
		if d.Regression {
			gotRegressed[d.Metric] = true
		}
	}
	for _, want := range []string{"ns_per_op", "rows_per_sec", "allocs_per_op", "compression_ratio"} {
		if !gotRegressed[want] {
			t.Errorf("metric %s did not flag as regression; deltas: %+v", want, rep.Deltas)
		}
	}
	if gotRegressed["queries_per_sec"] {
		t.Error("improved queries/sec flagged as regression")
	}

	var b strings.Builder
	rep.Write(&b)
	out := b.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "ns_per_op") {
		t.Errorf("report not readable per-metric:\n%s", out)
	}

	// The reverse diff (slowdown as baseline, fast as new) flags only the
	// one metric that actually got worse in that direction: queries/sec.
	rev := Diff(snapWith(slower), snapWith(base), DiffOptions{Threshold: 0.5})
	for _, d := range rev.Deltas {
		if d.Regression != (d.Metric == "queries_per_sec") {
			t.Errorf("reverse diff: %s regression=%v, want %v", d.Metric, d.Regression, !d.Regression)
		}
	}
}

// TestDiffNewAndRemovedScenarios: scenarios without a counterpart are
// reported but never gated (the new-regressions-only rule).
func TestDiffNewAndRemovedScenarios(t *testing.T) {
	old := snapWith(
		ScenarioResult{Name: "compress/cdr", NsPerOp: 1e8},
		ScenarioResult{Name: "micro/legacy", NsPerOp: 1e6},
	)
	cur := snapWith(
		ScenarioResult{Name: "compress/cdr", NsPerOp: 1e8},
		ScenarioResult{Name: "compress/segmented", NsPerOp: 9e9},
	)
	rep := Diff(old, cur, DiffOptions{})
	if n := rep.Regressions(); n != 0 {
		t.Fatalf("unmatched scenarios gated: %d regressions", n)
	}
	if len(rep.OnlyOld) != 1 || rep.OnlyOld[0] != "micro/legacy" {
		t.Errorf("OnlyOld = %v", rep.OnlyOld)
	}
	if len(rep.OnlyNew) != 1 || rep.OnlyNew[0] != "compress/segmented" {
		t.Errorf("OnlyNew = %v", rep.OnlyNew)
	}
}

// TestDiffMismatchWarnings: differing env or config is surfaced in the
// report so nobody trusts an apples-to-oranges comparison.
func TestDiffMismatchWarnings(t *testing.T) {
	a := snapWith(ScenarioResult{Name: "compress/cdr", NsPerOp: 1e8})
	b := snapWith(ScenarioResult{Name: "compress/cdr", NsPerOp: 1e8})
	b.Rows = 99999
	b.Env.GoVersion = "go9.99"
	rep := Diff(a, b, DiffOptions{})
	if !rep.ConfigMismatch || !rep.EnvMismatch {
		t.Fatalf("mismatches not detected: %+v", rep)
	}
	var w strings.Builder
	rep.Write(&w)
	if !strings.Contains(w.String(), "warning:") {
		t.Errorf("report missing warnings:\n%s", w.String())
	}
}
