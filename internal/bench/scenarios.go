package bench

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/archive"
	"repro/internal/bayesnet"
	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fascicle"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/table"
)

// scenarios is the registry, in run (and snapshot) order: the three
// archival-throughput pipelines first — rows/sec and bytes/sec are the
// numbers that matter at scale — then the per-component microbenches
// mirroring the §4.2 accounting (CaRT construction dominates, then the
// DependencyFinder, then the full-table passes).
var scenarios = []scenario{
	{name: "compress/cdr", setup: setupCompress},
	{name: "compress/segmented_serial", setup: setupSegmented(1)},
	{name: "compress/segmented_parallel", setup: setupSegmented(0)},
	{name: "decompress/cdr", setup: setupDecompress},
	{name: "query/aggregate", setup: setupQuery},
	{name: "micro/bayesnet_build", setup: setupBayesNet},
	{name: "micro/cart_build", setup: setupCartBuild},
	{name: "micro/outlier_scan", setup: setupOutlierScan},
	{name: "micro/fascicle_cluster", setup: setupFascicleCluster},
}

// countingWriter discards the stream but keeps its length, so compress
// scenarios don't pay for buffering the archive they never read.
type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// setupCompress times the full pipeline on the CDR workload at 1%
// tolerance. Each op runs under a resource-capturing trace, so the
// snapshot records the §4.2 phase tree in both nanoseconds and allocated
// bytes per op.
func setupCompress(cfg Config) (func(*opStats) error, error) {
	t := datagen.CDR(cfg.Rows, cfg.Seed)
	raw := t.RawSizeBytes()
	tol := table.UniformTolerances(t, 0.01, 0)
	return func(st *opStats) error {
		tr := obs.NewTrace("compress")
		tr.CaptureResources()
		var w countingWriter
		stats, err := core.Compress(&w, t, core.Options{Tolerances: tol, Trace: tr})
		if err != nil {
			return err
		}
		st.rows, st.bytes, st.ratio, st.trace = t.NumRows(), raw, stats.Ratio, tr
		return nil
	}, nil
}

// setupSegmented builds a segmented-archive compression scenario with a
// fixed worker count: 1 isolates the serial row-group cost, 0 (=
// GOMAXPROCS) exercises the parallel pipeline on the same input. The
// output bytes are identical at either setting, so any delta between the
// two scenarios is pure scheduling.
func setupSegmented(workers int) func(Config) (func(*opStats) error, error) {
	return func(cfg Config) (func(*opStats) error, error) {
		t := datagen.CDR(cfg.Rows, cfg.Seed)
		raw := t.RawSizeBytes()
		opts := core.Options{Tolerances: table.UniformTolerances(t, 0.01, 0)}
		seg := archive.SegmentOptions{SegmentRows: (t.NumRows() + 3) / 4, Workers: workers}
		return func(st *opStats) error {
			var w countingWriter
			stats, err := archive.WriteTable(&w, t, opts, seg)
			if err != nil {
				return err
			}
			st.rows, st.bytes, st.ratio = t.NumRows(), raw, stats.Ratio
			return nil
		}, nil
	}
}

// setupDecompress times archive decode: the read path every query and
// download pays.
func setupDecompress(cfg Config) (func(*opStats) error, error) {
	t := datagen.CDR(cfg.Rows, cfg.Seed)
	raw := t.RawSizeBytes()
	tol := table.UniformTolerances(t, 0.01, 0)
	data, _, err := compressBytes(t, core.Options{Tolerances: tol})
	if err != nil {
		return nil, err
	}
	return func(st *opStats) error {
		if _, err := decompressBytes(data); err != nil {
			return err
		}
		st.rows, st.bytes = t.NumRows(), raw
		return nil
	}, nil
}

// setupQuery times the bounded-approximate aggregation path (AVG with a
// numeric predicate and GROUP BY on the CDR workload).
func setupQuery(cfg Config) (func(*opStats) error, error) {
	t := datagen.CDR(cfg.Rows, cfg.Seed)
	tol := table.UniformTolerances(t, 0.01, 0)
	q := query.Query{
		Agg:     query.Avg,
		Column:  "charge_cents",
		Where:   query.NumCmp("duration_sec", query.Gt, 200),
		GroupBy: "plan",
	}
	return func(st *opStats) error {
		if _, err := query.Run(t, tol, q); err != nil {
			return err
		}
		st.rows, st.queries = t.NumRows(), 1
		return nil
	}, nil
}

// setupBayesNet isolates the DependencyFinder's model build on a
// Census sample.
func setupBayesNet(cfg Config) (func(*opStats) error, error) {
	t := datagen.Census(cfg.Rows, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := t.Sample(minInt(1500, t.NumRows()), rng)
	return func(st *opStats) error {
		if _, err := bayesnet.Build(sample, bayesnet.Config{}); err != nil {
			return err
		}
		st.rows = sample.NumRows()
		return nil
	}, nil
}

// setupCartBuild isolates one regression-CaRT construction on Corel —
// the paper attributes 50-75% of SPARTAN's time here.
func setupCartBuild(cfg Config) (func(*opStats) error, error) {
	t := datagen.Corel(cfg.Rows, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := t.Sample(minInt(500, t.NumRows()), rng)
	cm := cart.NewCostModel(t)
	tol := 0.01 * t.Col(16).Range()
	return func(st *opStats) error {
		if _, _, err := cart.Build(sample, 16, []int{14, 15, 17, 18}, tol, cm,
			cart.Config{FullRows: t.NumRows()}); err != nil {
			return err
		}
		st.rows = sample.NumRows()
		return nil
	}, nil
}

// setupOutlierScan isolates the full-table model-application pass.
func setupOutlierScan(cfg Config) (func(*opStats) error, error) {
	t := datagen.Corel(cfg.Rows, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := t.Sample(minInt(500, t.NumRows()), rng)
	cm := cart.NewCostModel(t)
	tol := 0.01 * t.Col(16).Range()
	m, _, err := cart.Build(sample, 16, []int{14, 15, 17, 18}, tol, cm,
		cart.Config{FullRows: t.NumRows()})
	if err != nil {
		return nil, err
	}
	raw := t.NumRows() * 4 // one float32 column scanned per op
	return func(st *opStats) error {
		if err := m.ComputeOutliers(t, tol); err != nil {
			return err
		}
		st.rows, st.bytes = t.NumRows(), raw
		return nil
	}, nil
}

// setupFascicleCluster isolates the RowAggregator's clustering pass.
func setupFascicleCluster(cfg Config) (func(*opStats) error, error) {
	t := datagen.CDR(cfg.Rows, cfg.Seed)
	widths := make([]float64, t.NumCols())
	for i := 0; i < t.NumCols(); i++ {
		if t.Attr(i).Kind == table.Numeric {
			widths[i] = 0.01 * t.Col(i).Range()
		}
	}
	raw := t.RawSizeBytes()
	return func(st *opStats) error {
		if _, err := fascicle.Cluster(t, fascicle.Params{Widths: widths}); err != nil {
			return err
		}
		st.rows, st.bytes = t.NumRows(), raw
		return nil
	}, nil
}

// compressBytes/decompressBytes mirror the root package's convenience
// helpers without importing it (internal packages cannot).
func compressBytes(t *table.Table, opts core.Options) ([]byte, *core.Stats, error) {
	var buf appendWriter
	stats, err := core.Compress(&buf, t, opts)
	if err != nil {
		return nil, nil, err
	}
	return buf.b, stats, nil
}

func decompressBytes(data []byte) (*table.Table, error) {
	return core.Decompress(bytes.NewReader(data))
}

type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fmtRate renders a rate for progress lines.
func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
