package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// SchemaVersion is the BENCH_<n>.json schema version. Bump it on any
// incompatible change to Snapshot's shape; ReadSnapshot refuses versions
// it does not understand so a diff never silently compares mismatched
// schemas.
const SchemaVersion = 1

// Snapshot is one recorded point of the performance trajectory — the
// serialized form of a full bench run, written as BENCH_<n>.json.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	CreatedAt     string `json:"created_at"` // RFC 3339, UTC
	Env           Env    `json:"env"`

	// The run configuration, so two snapshots are known-comparable (Diff
	// warns when they are not).
	Rows   int   `json:"rows"`
	Seed   int64 `json:"seed"`
	Warmup int   `json:"warmup"`
	Reps   int   `json:"reps"`

	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult is one scenario's measured numbers, all per-op averages
// over the measured repetitions.
type ScenarioResult struct {
	Name string `json:"name"`
	Ops  int    `json:"ops"` // measured iterations

	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`

	// Throughput rates over the measured window; zero when the scenario
	// does not process that unit.
	RowsPerSec    float64 `json:"rows_per_sec,omitempty"`
	BytesPerSec   float64 `json:"bytes_per_sec,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`

	// Ratio is the compression ratio (compressed/raw, smaller is better)
	// for pipeline scenarios.
	Ratio float64 `json:"compression_ratio,omitempty"`

	// PhaseNs/PhaseAllocBytes attribute the op to the §4.2 pipeline
	// phases (span names → mean ns and allocated bytes per op), for
	// scenarios that run under a resource-capturing trace.
	PhaseNs         map[string]float64 `json:"phase_ns,omitempty"`
	PhaseAllocBytes map[string]float64 `json:"phase_alloc_bytes,omitempty"`
}

// String renders a one-line summary (progress output and perf listing).
func (r ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10v/op  %8.0f allocs/op  %10s B/op",
		r.Name, time.Duration(r.NsPerOp).Round(time.Microsecond),
		r.AllocsPerOp, fmtRate(r.AllocBytesPerOp))
	if r.RowsPerSec > 0 {
		fmt.Fprintf(&b, "  %8s rows/s", fmtRate(r.RowsPerSec))
	}
	if r.QueriesPerSec > 0 {
		fmt.Fprintf(&b, "  %6.1f queries/s", r.QueriesPerSec)
	}
	if r.Ratio > 0 {
		fmt.Fprintf(&b, "  ratio %.4f", r.Ratio)
	}
	return b.String()
}

// Env fingerprints the machine and toolchain a snapshot was recorded on.
// Two snapshots are only honestly comparable when their fingerprints
// match; Diff prints a warning when they do not.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPU        string `json:"cpu,omitempty"` // model name, best-effort
}

func (e Env) String() string {
	s := fmt.Sprintf("%s %s/%s gomaxprocs=%d cpus=%d", e.GoVersion, e.GOOS, e.GOARCH, e.GOMAXPROCS, e.NumCPU)
	if e.CPU != "" {
		s += " " + e.CPU
	}
	return s
}

// Fingerprint samples the environment. It is deterministic within a
// process (and across processes on the same machine and toolchain).
func Fingerprint() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPU:        cpuModel(),
	}
}

// cpuModel reads the CPU model name from /proc/cpuinfo (linux;
// best-effort, "" elsewhere).
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer func() {
		_ = f.Close() // read-only file
	}()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// WriteFile writes the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads and validates one BENCH_<n>.json.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, this tool understands %d",
			path, s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}

// snapshotName matches versioned snapshot files: BENCH_<n>.json.
var snapshotName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NextPath returns the next unused auto-numbered snapshot path under
// dir: one past the highest existing BENCH_<n>.json, starting at 1.
func NextPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	next := 1
	for _, e := range entries {
		m := snapshotName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next)), nil
}
