package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleSnapshot exercises every schema field, including the optional
// ones, so the round-trip test covers the full shape.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		SchemaVersion: SchemaVersion,
		CreatedAt:     "2026-08-09T12:00:00Z",
		Env: Env{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 1, NumCPU: 1, CPU: "Test CPU @ 1.0GHz",
		},
		Rows: 4000, Seed: 1, Warmup: 1, Reps: 3,
		Scenarios: []ScenarioResult{
			{
				Name: "compress/cdr", Ops: 3,
				NsPerOp: 1.25e8, AllocsPerOp: 120345, AllocBytesPerOp: 4.5e7,
				RowsPerSec: 32000, BytesPerSec: 9.6e5, Ratio: 0.19,
				PhaseNs:         map[string]float64{"cart_selection": 6e7, "encode": 1e7},
				PhaseAllocBytes: map[string]float64{"cart_selection": 3e7, "encode": 5e6},
			},
			{
				Name: "query/aggregate", Ops: 3,
				NsPerOp: 2.5e6, AllocsPerOp: 820, AllocBytesPerOp: 65536,
				RowsPerSec: 1.6e6, QueriesPerSec: 400,
			},
		},
	}
}

// TestSnapshotRoundTrip is the schema golden test: marshal → unmarshal
// → deep-equal. Any field that does not survive the trip (lossy tags,
// time types with monotonic clocks, unexported data) fails here before
// it can corrupt a recorded trajectory.
func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReadSnapshotRejectsUnknownSchema: a future-versioned file must be
// refused, not silently mis-diffed.
func TestReadSnapshotRejectsUnknownSchema(t *testing.T) {
	s := sampleSnapshot()
	s.SchemaVersion = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("ReadSnapshot accepted an unknown schema version")
	}
}

// TestFingerprintDeterministic: the environment fingerprint must be
// stable within a process — it is the comparability key of the recorded
// trajectory.
func TestFingerprintDeterministic(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Errorf("Fingerprint not deterministic:\n a %+v\n b %+v", a, b)
	}
	if a.GoVersion == "" || a.GOOS == "" || a.GOARCH == "" || a.GOMAXPROCS <= 0 || a.NumCPU <= 0 {
		t.Errorf("Fingerprint has empty required fields: %+v", a)
	}
}

// TestNextPath: auto-numbering starts at 1, skips past the highest
// existing snapshot, and ignores non-matching files.
func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_1.json"); p != want {
		t.Errorf("empty dir: NextPath = %q, want %q", p, want)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_7.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_8.json"); p != want {
		t.Errorf("NextPath = %q, want %q", p, want)
	}
}
