package cart

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
)

// PruneMode selects the pruning strategy, enabling the paper's ablation of
// integrated build+prune vs conventional build-then-prune (§3.3, §4.2).
type PruneMode int

const (
	// PruneIntegrated interleaves pruning with growth: a node is never
	// expanded when a lower bound on any subtree's cost already exceeds the
	// node's leaf cost, and grown subtrees costlier than a leaf collapse
	// immediately. This is SPARTAN's default.
	PruneIntegrated PruneMode = iota
	// PruneAfter grows the full tree (bounded by MaxDepth/MinLeafRows),
	// then prunes bottom-up by storage cost — the conventional two-phase
	// approach the paper compares against.
	PruneAfter
	// PruneNone grows the full tree and keeps it; used in tests.
	PruneNone
)

// Config bounds tree growth.
type Config struct {
	// MinLeafRows is the minimum number of sample rows per leaf
	// (default 4).
	MinLeafRows int
	// MaxDepth bounds the tree depth (default 24).
	MaxDepth int
	// Prune selects the pruning strategy (default PruneIntegrated).
	Prune PruneMode
	// FullRows is the row count of the full table the model will be
	// applied to; sample outlier counts are scaled by FullRows/sampleRows
	// when estimating storage costs. If zero, the sample is assumed to be
	// the full table.
	FullRows int
}

func (c Config) withDefaults(sampleRows int) Config {
	if c.MinLeafRows <= 0 {
		c.MinLeafRows = 4
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.FullRows <= 0 {
		c.FullRows = sampleRows
	}
	return c
}

// Build constructs a CaRT predicting target from the candidate predictor
// attributes cands, trained on sample (typically a small random sample of
// the full table). tol is the resolved error tolerance of the target
// (absolute bound for numeric targets, misclassification probability for
// categorical ones). The returned model has no outliers yet; call
// (*Model).ComputeOutliers against the full table before measuring
// PredCost precisely. Build itself returns a cost estimate based on
// sample-scaled outlier counts.
//
// cands must not contain target; an empty cands yields an error (the
// selector assigns infinite prediction cost to such attributes).
func Build(sample *table.Table, target int, cands []int, tol float64,
	cm *CostModel, cfg Config) (*Model, float64, error) {
	return BuildContext(context.Background(), sample, target, cands, tol, cm, cfg)
}

// BuildContext is Build with cancellation: growth checks ctx at every
// node expansion, so a cancelled context abandons the tree within one
// split evaluation and returns the (wrapped) context error.
func BuildContext(ctx context.Context, sample *table.Table, target int, cands []int, tol float64,
	cm *CostModel, cfg Config) (*Model, float64, error) {
	if len(cands) == 0 {
		return nil, 0, fmt.Errorf("cart: no candidate predictors for attribute %d", target)
	}
	for _, c := range cands {
		if c == target {
			return nil, 0, fmt.Errorf("cart: target %d appears in its own predictor set", target)
		}
		if c < 0 || c >= sample.NumCols() {
			return nil, 0, fmt.Errorf("cart: candidate %d out of range", c)
		}
	}
	if sample.NumRows() == 0 {
		return nil, 0, fmt.Errorf("cart: empty sample")
	}
	cfg = cfg.withDefaults(sample.NumRows())
	b := &treeBuilder{
		t:      sample,
		target: target,
		cands:  append([]int(nil), cands...),
		tol:    tol,
		cm:     cm,
		cfg:    cfg,
		scale:  float64(cfg.FullRows) / float64(sample.NumRows()),
	}
	sort.Ints(b.cands)
	rows := make([]int, sample.NumRows())
	for i := range rows {
		rows[i] = i
	}
	kind := sample.Attr(target).Kind
	var root *Node
	var cost float64
	if kind == table.Numeric {
		root, cost = b.buildRegression(ctx, rows, 0)
	} else {
		root, cost = b.buildClassification(ctx, rows, 0)
	}
	if cfg.Prune == PruneAfter && b.ctxErr == nil {
		if kind == table.Numeric {
			root, cost = b.pruneRegression(ctx, root, rows)
		} else {
			root, cost = b.pruneClassification(ctx, root, rows)
		}
	}
	if b.ctxErr != nil {
		return nil, 0, fmt.Errorf("cart: build cancelled: %w", b.ctxErr)
	}
	m := &Model{Target: target, TargetKind: kind, Root: root}
	return m, cost, nil
}

type treeBuilder struct {
	t      *table.Table
	target int
	cands  []int
	tol    float64
	cm     *CostModel
	cfg    Config
	scale  float64 // full-table rows per sample row
	// ctxErr records the first cancellation observed during growth. The
	// recursive builders return a placeholder leaf once it is set, so the
	// whole tree unwinds without threading an error through every level;
	// BuildContext converts it into the returned error.
	ctxErr error
}

// cancelled reports (and latches) whether ctx is done. It is checked at
// every node expansion, bounding the work after a cancel to one split
// evaluation.
func (b *treeBuilder) cancelled(ctx context.Context) bool {
	if b.ctxErr != nil {
		return true
	}
	if err := ctx.Err(); err != nil {
		b.ctxErr = err
		return true
	}
	return false
}

// leafFloor is the cheapest any expanded subtree could cost: one internal
// node plus two leaves with zero outliers. This realizes the paper's
// "lower bound on the cost of a yet-to-be-expanded subtree" that lets
// pruning run during growth.
func (b *treeBuilder) leafFloor() float64 {
	minInternal := math.Inf(1)
	for _, c := range b.cands {
		if v := b.cm.InternalBits(c); v < minInternal {
			minInternal = v
		}
	}
	return minInternal + 2*b.cm.LeafBits(b.target)
}

// outlierCost converts a sample outlier count into estimated full-table
// outlier bits.
func (b *treeBuilder) outlierCost(sampleOutliers int) float64 {
	return b.scale * float64(sampleOutliers) * b.cm.OutlierBits(b.target)
}
