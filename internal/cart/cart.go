// Package cart implements SPARTAN's CaRTBuilder (paper §3.3): guaranteed-
// error classification and regression trees used as column predictors.
//
// A Model predicts one target attribute from a set of predictor attributes.
// Trees are built on a sample, then "applied" to the full table where every
// row violating the target's error tolerance is recorded as an exact
// outlier. The storage cost of a model (tree bits + outlier bits) is what
// the CaRTSelector trades against the cost of materializing the column.
//
// Two build strategies are provided for the paper's ablation: integrated
// build+prune (expansion stops when a lower bound proves a subtree cannot
// beat the leaf, paper §3.3) and build-then-prune (grow fully, prune
// bottom-up by storage cost).
package cart

import (
	"fmt"
	"sort"

	"repro/internal/table"
)

// Node is a binary tree node. Internal nodes split on a predictor
// attribute: numeric splits send rows with value <= SplitValue left;
// categorical splits send rows whose code is in SplitLeft left. Leaves
// carry the prediction for their region.
type Node struct {
	Leaf bool

	// Internal-node fields.
	SplitAttr  int     // table column index of the split attribute
	SplitValue float64 // numeric threshold (numeric splits)
	SplitLeft  []int32 // sorted codes routed left (categorical splits)
	SplitIsCat bool    // discriminates the two split forms
	Left       *Node
	Right      *Node

	// Leaf fields.
	NumValue float64 // predicted value (regression)
	CatValue int32   // predicted code (classification)
}

// route returns the child a row falls into.
func (n *Node) route(t *table.Table, row int) *Node {
	if n.takeLeft(t, row) {
		return n.Left
	}
	return n.Right
}

func (n *Node) takeLeft(t *table.Table, row int) bool {
	if n.SplitIsCat {
		code := t.Code(row, n.SplitAttr)
		return containsCode(n.SplitLeft, code)
	}
	return t.Float(row, n.SplitAttr) <= n.SplitValue
}

func containsCode(sorted []int32, c int32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == c
}

// Outlier records a row whose predicted value violates the tolerance; the
// exact value is stored in the compressed output.
type Outlier struct {
	Row  int
	Num  float64 // exact numeric value (regression targets)
	Code int32   // exact code (classification targets)
}

// Model is a CaRT predictor 𝒳ᵢ → Xᵢ for a single target attribute.
type Model struct {
	Target     int // target column index
	TargetKind table.Kind
	Root       *Node
	// Outliers lists full-table rows stored exactly. For numeric targets it
	// contains every row violating the absolute bound; for categorical
	// targets it contains misclassified rows beyond the probability budget.
	Outliers []Outlier
}

// PredictRow returns the model's raw prediction for one row of t (before
// outlier substitution).
func (m *Model) PredictRow(t *table.Table, row int) (float64, int32) {
	n := m.Root
	for !n.Leaf {
		n = n.route(t, row)
	}
	return n.NumValue, n.CatValue
}

// UsedPredictors returns the sorted set of attribute indices that actually
// appear in split nodes. Irrelevant candidates passed to the builder are
// naturally filtered out here (paper §3.2, Greedy step 2).
func (m *Model) UsedPredictors() []int {
	set := map[int]struct{}{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.Leaf {
			return
		}
		set[n.SplitAttr] = struct{}{}
		walk(n.Left)
		walk(n.Right)
	}
	walk(m.Root)
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// NumNodes returns the total node count of the tree.
func (m *Model) NumNodes() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Leaf {
			return 1
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(m.Root)
}

// NumLeaves returns the leaf count.
func (m *Model) NumLeaves() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Leaf {
			return 1
		}
		return count(n.Left) + count(n.Right)
	}
	return count(m.Root)
}

// Depth returns the maximum root-to-leaf depth (a single leaf has depth 1).
func (m *Model) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n == nil {
			return 0
		}
		if n.Leaf {
			return 1
		}
		l, r := depth(n.Left), depth(n.Right)
		if l > r {
			return 1 + l
		}
		return 1 + r
	}
	return depth(m.Root)
}

// String renders the tree structure for debugging.
func (m *Model) String() string {
	var b []byte
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n == nil {
			return
		}
		if n.Leaf {
			if m.TargetKind == table.Numeric {
				b = append(b, fmt.Sprintf("%sleaf %.4g\n", indent, n.NumValue)...)
			} else {
				b = append(b, fmt.Sprintf("%sleaf code %d\n", indent, n.CatValue)...)
			}
			return
		}
		if n.SplitIsCat {
			b = append(b, fmt.Sprintf("%sattr %d in %v ?\n", indent, n.SplitAttr, n.SplitLeft)...)
		} else {
			b = append(b, fmt.Sprintf("%sattr %d <= %.4g ?\n", indent, n.SplitAttr, n.SplitValue)...)
		}
		walk(n.Left, indent+"  ")
		walk(n.Right, indent+"  ")
	}
	walk(m.Root, "")
	return string(b)
}
